"""Tests for the units and errors foundation modules."""

import numpy as np
import pytest

from repro import errors
from repro.units import (
    G_GAL,
    G_SI,
    angular_frequency,
    frequency_to_period,
    g_to_gal,
    gal_to_g,
    gal_to_si,
    period_to_frequency,
    si_to_gal,
)


class TestUnits:
    def test_gravity_constants_consistent(self):
        assert G_GAL == pytest.approx(G_SI * 100.0)

    def test_gal_g_roundtrip_scalar(self):
        assert g_to_gal(gal_to_g(123.4)) == pytest.approx(123.4)

    def test_gal_g_roundtrip_array(self):
        acc = np.array([1.0, -50.0, 981.0])
        assert np.allclose(g_to_gal(gal_to_g(acc)), acc)

    def test_one_g_in_gal(self):
        assert g_to_gal(1.0) == pytest.approx(980.665)

    def test_si_conversions(self):
        assert gal_to_si(100.0) == pytest.approx(1.0)
        assert si_to_gal(9.80665) == pytest.approx(G_GAL)

    def test_period_frequency_inverse(self):
        assert period_to_frequency(frequency_to_period(2.5)) == pytest.approx(2.5)
        periods = np.array([0.1, 1.0, 10.0])
        assert np.allclose(frequency_to_period(period_to_frequency(periods)), periods)

    def test_angular_frequency(self):
        assert angular_frequency(1.0) == pytest.approx(2 * np.pi)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.FormatError,
            errors.HeaderError,
            errors.DataBlockError,
            errors.PipelineError,
            errors.MissingArtifactError,
            errors.DependencyError,
            errors.StageOrderError,
            errors.ParallelError,
            errors.BackendError,
            errors.SchedulerError,
            errors.SignalError,
            errors.FilterDesignError,
            errors.CalibrationError,
            errors.TransientToolError,
            errors.RetryExhaustedError,
            errors.QuarantinedRecordError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_header_error_is_format_error(self):
        assert issubclass(errors.HeaderError, errors.FormatError)
        assert issubclass(errors.DataBlockError, errors.FormatError)

    def test_stage_order_is_dependency_error(self):
        assert issubclass(errors.StageOrderError, errors.DependencyError)

    def test_missing_artifact_message(self):
        err = errors.MissingArtifactError("/ws/work/x.v2", process="P16")
        assert "/ws/work/x.v2" in str(err)
        assert "P16" in str(err)
        assert err.path == "/ws/work/x.v2"
        assert err.process == "P16"

    def test_missing_artifact_without_process(self):
        err = errors.MissingArtifactError("file.dat")
        assert "file.dat" in str(err)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.FilterDesignError("bad corners")

    def test_transient_tool_error_is_pipeline_error(self):
        assert issubclass(errors.TransientToolError, errors.PipelineError)
        with pytest.raises(errors.ReproError):
            raise errors.TransientToolError("flaky read")

    def test_retry_exhausted_carries_attempt_context(self):
        cause = errors.TransientToolError("still flaky")
        err = errors.RetryExhaustedError("ST01l", 3, cause)
        assert err.record == "ST01l"
        assert err.attempts == 3
        assert err.cause is cause
        assert "ST01l" in str(err)
        assert "3" in str(err)
        assert "TransientToolError" in str(err)
        with pytest.raises(errors.ReproError):
            raise err

    def test_quarantined_record_carries_identity(self):
        err = errors.QuarantinedRecordError("ST02", attempts=2)
        assert err.record == "ST02"
        assert err.attempts == 2
        assert "ST02" in str(err)
        with pytest.raises(errors.ReproError):
            raise err
