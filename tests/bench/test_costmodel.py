"""Tests for the calibrated cost model."""

import pytest

from repro.bench.costmodel import DEFAULT_COST_MODEL, CostModel, Overheads
from repro.bench.paper_data import PAPER_STAGE_IX_SHARE, paper_row
from repro.bench.workloads import EventWorkload, paper_workloads
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER, REDUNDANT_PROCESSES


@pytest.fixture(scope="module")
def anchor():
    """The calibration workload (largest event)."""
    return paper_workloads()[-1]


class TestCalibrationAnchors:
    def test_sequential_original_total_matches(self, anchor):
        total = DEFAULT_COST_MODEL.sequential_total(ORIGINAL_ORDER, anchor)
        assert total == pytest.approx(483.7, rel=0.002)

    def test_sequential_optimized_total_matches(self, anchor):
        total = DEFAULT_COST_MODEL.sequential_total(OPTIMIZED_ORDER, anchor)
        assert total == pytest.approx(426.0, rel=0.002)

    def test_stage_ix_share(self, anchor):
        p16 = DEFAULT_COST_MODEL.cost(16, anchor)
        total = DEFAULT_COST_MODEL.sequential_total(ORIGINAL_ORDER, anchor)
        assert p16 / total == pytest.approx(PAPER_STAGE_IX_SHARE, abs=0.01)

    def test_redundant_cost_matches_published_gap(self, anchor):
        redundant = sum(DEFAULT_COST_MODEL.cost(pid, anchor) for pid in REDUNDANT_PROCESSES)
        assert redundant == pytest.approx(483.7 - 426.0, rel=0.01)


class TestScaling:
    def test_cost_linear_in_points(self):
        small = EventWorkload("A", "a", (10_000,))
        large = EventWorkload("B", "b", (20_000,))
        pc = DEFAULT_COST_MODEL.process(16)
        gain = DEFAULT_COST_MODEL.cost(16, large) - DEFAULT_COST_MODEL.cost(16, small)
        assert gain == pytest.approx(pc.per_point_s * 10_000)

    def test_cost_grows_with_files(self):
        few = EventWorkload("A", "a", (30_000,))
        many = EventWorkload("B", "b", (10_000, 10_000, 10_000))
        assert DEFAULT_COST_MODEL.cost(9, many) > DEFAULT_COST_MODEL.cost(9, few)

    def test_file_cost_shares_sum_to_total(self, anchor):
        for pid in (3, 4, 16, 19):
            shares = DEFAULT_COST_MODEL.file_cost_shares(pid, anchor)
            assert sum(shares) == pytest.approx(DEFAULT_COST_MODEL.cost(pid, anchor))
            assert len(shares) == anchor.n_files

    def test_bigger_files_get_bigger_shares(self):
        workload = EventWorkload("A", "a", (10_000, 30_000))
        shares = DEFAULT_COST_MODEL.file_cost_shares(16, workload)
        assert shares[1] > shares[0]


class TestResources:
    def test_all_processes_have_profiles(self):
        for pid in range(20):
            pc = DEFAULT_COST_MODEL.process(pid)
            assert 0 <= pc.io <= 1
            assert 0 <= pc.mem <= 1
            assert pc.io + pc.mem <= 1.0

    def test_response_spectrum_is_compute_bound(self):
        pc = DEFAULT_COST_MODEL.process(16)
        assert pc.io < 0.3
        assert pc.mem > 0.3

    def test_gem_generation_is_io_bound(self):
        assert DEFAULT_COST_MODEL.process(19).io > 0.7


class TestOverheads:
    def test_driver_cost_scaling(self):
        ovh = Overheads()
        small = ovh.driver_cost(56_000)
        large = ovh.driver_cost(384_000)
        assert large > small
        assert large == pytest.approx(ovh.driver_fixed_s + ovh.driver_per_point_s * 384_000)

    def test_custom_overheads_accepted(self):
        model = CostModel(overheads=Overheads(task_spawn_s=0.1))
        assert model.overheads.task_spawn_s == 0.1
