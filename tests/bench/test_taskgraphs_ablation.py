"""Tests for the task-graph builder, ablations and measured harness."""

import pytest

from repro.bench.ablation import (
    amdahl_bound,
    sweep_io_capacity,
    sweep_staging_cost,
    sweep_workers,
)
from repro.bench.costmodel import DEFAULT_COST_MODEL
from repro.bench.taskgraphs import build_sim_tasks, simulate_implementation
from repro.bench.workloads import (
    EventWorkload,
    paper_workloads,
    scaled_workload,
    workload_for,
)
from repro.errors import CalibrationError
from repro.parallel.simulate import simulate_task_graph, PAPER_MACHINE
from repro.synth.events import PAPER_EVENTS


@pytest.fixture(scope="module")
def small_workload():
    return EventWorkload("W", "w", (10_000, 14_000, 12_000))


class TestWorkloads:
    def test_paper_workloads_match_catalog(self):
        workloads = paper_workloads()
        assert [w.n_files for w in workloads] == [5, 5, 9, 15, 18, 19]
        assert [w.total_points for w in workloads] == [
            56_000, 115_000, 145_000, 309_000, 361_000, 384_000
        ]

    def test_scaled_workload_preserves_structure(self):
        event = PAPER_EVENTS[0]
        scaled = scaled_workload(event, 0.1)
        assert scaled.n_files == event.n_files
        assert scaled.total_points < event.total_points

    def test_scaled_workload_floor(self):
        event = PAPER_EVENTS[0]
        scaled = scaled_workload(event, 0.0001, min_points=400)
        assert min(scaled.file_points) == 400

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            scaled_workload(PAPER_EVENTS[0], 0.0)

    def test_workload_for(self):
        w = workload_for(PAPER_EVENTS[2])
        assert w.event_id == "EV-JUL19A"
        assert w.n_files == 9


class TestGraphBuilder:
    def test_sequential_graph_is_a_chain(self, small_workload):
        tasks = build_sim_tasks("seq-original", small_workload)
        assert len(tasks) == 20
        for prev, task in zip(tasks, tasks[1:]):
            assert task.deps == (prev.name,)

    def test_optimized_graph_has_seventeen(self, small_workload):
        assert len(build_sim_tasks("seq-optimized", small_workload)) == 17

    def test_full_graph_expands_loops(self, small_workload):
        tasks = build_sim_tasks("full-parallel", small_workload)
        names = [t.name for t in tasks]
        # Stage IX expands to one task per trace (3 per station).
        assert sum(1 for n in names if n.startswith("IX.P16.")) == 9
        # Temp-folder stages carry staging and exe tasks.
        assert any(n.startswith("IV.in.") for n in names)
        assert any(n.startswith("IV.exe.") for n in names)
        assert any(n.startswith("IV.out.") for n in names)

    def test_graphs_simulate_cleanly(self, small_workload):
        for impl in ("seq-original", "seq-optimized", "partial-parallel", "full-parallel"):
            tasks = build_sim_tasks(impl, small_workload)
            result = simulate_task_graph(tasks, PAPER_MACHINE)
            assert result.makespan_s > 0

    def test_unknown_implementation_rejected(self, small_workload):
        with pytest.raises(CalibrationError):
            build_sim_tasks("quantum", small_workload)

    def test_sequential_makespan_equals_cost_sum(self, small_workload):
        from repro.core.registry import ORIGINAL_ORDER

        expected = DEFAULT_COST_MODEL.sequential_total(ORIGINAL_ORDER, small_workload)
        result = simulate_implementation("seq-original", small_workload)
        assert result.makespan_s == pytest.approx(expected, rel=1e-9)

    def test_parallel_beats_sequential(self, small_workload):
        seq = simulate_implementation("seq-optimized", small_workload).makespan_s
        full = simulate_implementation("full-parallel", small_workload).makespan_s
        assert full < seq

    def test_driver_tasks_present_only_in_parallel(self, small_workload):
        seq_names = {t.stage for t in build_sim_tasks("seq-original", small_workload)}
        par_names = {t.stage for t in build_sim_tasks("full-parallel", small_workload)}
        assert "driver" not in seq_names
        assert "driver" in par_names


class TestAblations:
    def test_worker_sweep_monotone_then_flat(self):
        points = sweep_workers(counts=(1, 2, 4, 8, 12), workload=paper_workloads()[0])
        speedups = [p.speedup for p in points]
        assert speedups[0] == pytest.approx(1.0, abs=0.25)
        # Broadly increasing; adding slow E-core/HT workers to a greedy
        # schedule may cost a few percent locally (real LPT behaviour).
        assert all(b >= a - 0.15 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 2.0

    def test_more_io_capacity_helps(self):
        points = sweep_io_capacity(capacities=(1.0, 4.0), workload=paper_workloads()[0])
        assert points[1].speedup > points[0].speedup

    def test_staging_cost_hurts(self):
        points = sweep_staging_cost(multipliers=(0.0, 4.0), workload=paper_workloads()[0])
        assert points[0].speedup > points[1].speedup

    def test_machine_presets(self):
        from repro.bench.ablation import sweep_machines

        workload = paper_workloads()[0]
        full = sweep_machines(workload=workload)
        assert set(full) == {"paper-i5", "office-desktop", "workstation-16c", "server-32c"}
        # More machine beats less machine for the barriered version...
        assert full["workstation-16c"].speedup > full["paper-i5"].speedup
        assert full["paper-i5"].speedup > full["office-desktop"].speedup
        # ...but saturates near the critical-path bound.
        from repro.bench.ablation import amdahl_bound

        bound = amdahl_bound(workload=workload)
        assert full["server-32c"].speedup < bound * 1.01
        # The wavefront keeps scaling where the barriers stall.
        wavefront = sweep_machines(workload=workload, implementation="wavefront-parallel")
        assert wavefront["server-32c"].speedup > full["server-32c"].speedup

    def test_amdahl_bound_exceeds_machine_speedup(self):
        workload = paper_workloads()[0]
        bound = amdahl_bound(workload=workload)
        actual = (
            simulate_implementation("seq-original", workload).makespan_s
            / simulate_implementation("full-parallel", workload).makespan_s
        )
        assert bound > actual
