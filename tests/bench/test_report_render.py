"""Tests for report formatting and the measured-table module."""

import pytest

from repro.bench.measured_table import MeasuredTableRow, render_measured_table
from repro.bench.report import comparison_table, format_table, relative_error


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(("name", "value"), [("a", 1.5), ("long-name", 22.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Right-aligned columns: every row has equal length.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table(("x",), [(3.14159,)])
        assert "3.14" in text

    def test_comparison_table_title(self):
        text = comparison_table(("a",), [(1,)], title="My table")
        assert text.startswith("My table\n")

    def test_empty_rows(self):
        text = format_table(("only", "headers"), [])
        assert "only" in text


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.10)
        assert relative_error(90.0, 100.0) == pytest.approx(-0.10)

    def test_zero_reference(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(5.0, 0.0) == float("inf")


class TestMeasuredTable:
    def test_render_and_speedup(self):
        row = MeasuredTableRow(
            event_id="EV-X",
            n_files=3,
            total_points=1_000,
            times_s={
                "seq-original": 2.0,
                "seq-optimized": 1.8,
                "partial-parallel": 1.7,
                "full-parallel": 1.0,
            },
        )
        assert row.speedup == pytest.approx(2.0)
        text = render_measured_table([row])
        assert "EV-X" in text
        assert "2.00x" in text
