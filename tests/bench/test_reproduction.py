"""The headline reproduction assertions: Table I and Figures 11-13.

These tests pin the *shape* claims of the paper (who wins, by what
rough factor, where crossovers fall) and bound the deviation of our
model-mode numbers from the published ones.
"""

import pytest

from repro.bench.figure11 import figure11_model, stage_ix_share
from repro.bench.figure12 import figure12_model, monotone_in_points, render_figure12
from repro.bench.figure13 import figure13_model, render_figure13, speedup_is_increasing
from repro.bench.paper_data import (
    PAPER_PAR_POINTS_PER_SECOND,
    PAPER_SEQ_POINTS_PER_SECOND,
    PAPER_STAGE_SPEEDUPS,
    PAPER_TABLE1,
)
from repro.bench.table1 import max_relative_error, render_table1, table1_model


@pytest.fixture(scope="module")
def table1():
    return table1_model()


@pytest.fixture(scope="module")
def fig11():
    return figure11_model()


class TestTable1:
    def test_six_events(self, table1):
        assert len(table1) == 6

    def test_every_cell_within_tolerance(self, table1):
        # Calibrated on one event; the other five are predictions.
        assert max_relative_error(table1) < 0.12

    def test_ordering_between_implementations(self, table1):
        # For every event: original > optimized > partial > full.
        for row in table1:
            assert row.seq_original_s > row.seq_optimized_s
            assert row.seq_optimized_s > row.partial_parallel_s
            assert row.partial_parallel_s > row.full_parallel_s

    def test_speedups_in_paper_band(self, table1):
        for row in table1:
            assert 2.2 < row.speedup < 3.1

    def test_calibration_event_is_near_exact(self, table1):
        row = next(r for r in table1 if r.event_id == "EV-JUL19B")
        paper = row.paper()
        assert row.seq_original_s == pytest.approx(paper.seq_original_s, rel=0.005)
        assert row.full_parallel_s == pytest.approx(paper.full_parallel_s, rel=0.01)

    def test_speedup_dip_shape_reproduced(self, table1):
        # Table I shows a non-monotonic dip: Apr'18 (5 big files) beats
        # Jul'19A (9 smaller files) despite fewer points.  Our model
        # reproduces that crossover.
        by_id = {r.event_id: r for r in table1}
        assert by_id["EV-APR18"].speedup > by_id["EV-JUL19A"].speedup
        paper = {r.event_id: r for r in PAPER_TABLE1}
        assert paper["EV-APR18"].speedup > paper["EV-JUL19A"].speedup

    def test_render_contains_all_events(self, table1):
        text = render_table1(table1)
        for row in table1:
            assert row.label in text


class TestFigure11:
    def test_stage_ix_dominates(self, fig11):
        ix = next(r for r in fig11 if r.stage == "IX")
        others = [r.sequential_s for r in fig11 if r.stage != "IX"]
        assert ix.sequential_s > max(others)

    def test_stage_ix_share_matches(self, fig11, table1):
        seq_total = next(r for r in table1 if r.event_id == "EV-JUL19B").seq_original_s
        assert stage_ix_share(fig11, seq_total) == pytest.approx(0.572, abs=0.01)

    def test_stage_ix_has_best_speedup(self, fig11):
        ix = next(r for r in fig11 if r.stage == "IX")
        for row in fig11:
            if row.stage not in ("IX", "VII"):
                assert ix.speedup > row.speedup

    def test_per_stage_speedups_near_paper(self, fig11):
        for row in fig11:
            published = PAPER_STAGE_SPEEDUPS.get(row.stage)
            if published is None:
                continue
            assert row.speedup == pytest.approx(published, rel=0.2), row.stage

    def test_stage_vii_stays_sequential(self, fig11):
        vii = next(r for r in fig11 if r.stage == "VII")
        assert vii.speedup == pytest.approx(1.0, abs=0.2)


class TestFigure12:
    def test_series_shapes(self):
        series = figure12_model()
        assert len(series["events"]) == 6
        for key in ("seq_original_s", "full_parallel_s"):
            assert len(series[key]) == 6

    def test_time_monotone_in_points(self, table1):
        assert monotone_in_points(table1)

    def test_render(self):
        text = render_figure12(figure12_model())
        assert "Fully Parallelized" in text


class TestFigure13:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure13_model()

    def test_speedup_band(self, rows):
        # Paper: 2.4x to 2.9x across problem sizes.
        assert min(r.speedup for r in rows) > 2.2
        assert max(r.speedup for r in rows) < 3.0

    def test_largest_faster_than_smallest(self, rows):
        assert rows[-1].speedup > rows[0].speedup

    def test_broad_trend_with_one_dip(self, rows):
        # The paper's own series is not strictly monotone (Apr'18 dip);
        # ours reproduces it: mostly increasing, at most one decrease.
        downs = sum(b.speedup < a.speedup for a, b in zip(rows, rows[1:]))
        assert downs <= 1
        ups = sum(b.speedup >= a.speedup for a, b in zip(rows, rows[1:]))
        assert ups >= 3

    def test_parallel_throughput_band(self, rows):
        lo, hi = PAPER_PAR_POINTS_PER_SECOND
        for row in rows:
            assert 0.9 * lo < row.points_per_second_parallel < 1.05 * hi

    def test_sequential_throughput_near_800(self, rows):
        for row in rows:
            assert row.points_per_second_sequential == pytest.approx(
                PAPER_SEQ_POINTS_PER_SECOND, rel=0.15
            )

    def test_render(self, rows):
        assert "Speedup" in render_figure13(rows)
