"""Unit tests for the OpenMP-shaped primitives (parallel_for, TaskGroup)."""

import threading
import time

import pytest

from repro.errors import ParallelError
from repro.parallel.backend import Backend
from repro.parallel.omp import TaskGroup, parallel_for, parallel_for_chunked


def square(x: int) -> int:
    return x * x


def failing(x: int) -> int:
    if x == 3:
        raise ValueError("boom on 3")
    return x


class TestParallelFor:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_order_preserved(self, backend):
        out = parallel_for(square, list(range(20)), backend=backend, num_workers=3)
        assert out == [i * i for i in range(20)]

    def test_empty_items(self):
        assert parallel_for(square, [], backend="thread") == []

    def test_single_item(self):
        assert parallel_for(square, [7], backend="thread", num_workers=4) == [49]

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_schedules_agree(self, schedule):
        out = parallel_for(
            square, list(range(17)), backend="thread", num_workers=3, schedule=schedule
        )
        assert out == [i * i for i in range(17)]

    def test_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom on 3"):
            parallel_for(failing, list(range(6)), backend="serial")

    def test_exception_propagates_threaded(self):
        with pytest.raises(ValueError, match="boom on 3"):
            parallel_for(failing, list(range(6)), backend="thread", num_workers=2)

    def test_actually_concurrent_threads(self):
        # Two 50 ms sleeps on two workers should overlap.
        barrier = threading.Barrier(2, timeout=5)

        def body(_: int) -> bool:
            barrier.wait()  # deadlocks unless two bodies run at once
            return True

        out = parallel_for(body, [0, 1], backend="thread", num_workers=2,
                           schedule="dynamic")
        assert out == [True, True]

    def test_thread_results_match_serial(self, rng):
        items = rng.integers(0, 1000, size=50).tolist()
        serial = parallel_for(square, items, backend="serial")
        threaded = parallel_for(square, items, backend="thread", num_workers=4)
        assert serial == threaded


class TestParallelForChunked:
    def test_chunked_body_receives_batches(self):
        seen: list[int] = []

        def body(chunk):
            seen.append(len(chunk))
            return [x + 1 for x in chunk]

        out = parallel_for_chunked(body, list(range(10)), backend="serial", num_workers=3)
        assert out == list(range(1, 11))
        assert sum(seen) == 10

    def test_wrong_result_count_rejected(self):
        def bad(chunk):
            return [0]  # wrong length

        with pytest.raises(ParallelError):
            parallel_for_chunked(bad, list(range(10)), backend="serial", num_workers=2)

    def test_threaded(self):
        def body(chunk):
            return [x * 2 for x in chunk]

        out = parallel_for_chunked(body, list(range(31)), backend="thread", num_workers=4)
        assert out == [x * 2 for x in range(31)]

    def test_empty(self):
        assert parallel_for_chunked(lambda c: list(c), [], backend="thread") == []


class TestSharedExecutor:
    def test_serial_yields_none(self):
        from repro.parallel.omp import shared_executor

        with shared_executor("serial") as pool:
            assert pool is None

    def test_single_worker_yields_none(self):
        from repro.parallel.omp import shared_executor

        with shared_executor("thread", num_workers=1) as pool:
            assert pool is None

    def test_reused_across_loops(self):
        from repro.parallel.omp import shared_executor

        with shared_executor("thread", num_workers=3) as pool:
            assert pool is not None
            first = parallel_for(square, list(range(10)), executor=pool)
            second = parallel_for(square, list(range(5)), executor=pool)
        assert first == [i * i for i in range(10)]
        assert second == [i * i for i in range(5)]

    def test_exception_propagates_through_shared_pool(self):
        from repro.parallel.omp import shared_executor

        with shared_executor("thread", num_workers=2) as pool:
            with pytest.raises(ValueError, match="boom on 3"):
                parallel_for(failing, list(range(6)), executor=pool)
            # The pool survives the failure and remains usable.
            assert parallel_for(square, [2], executor=pool) == [4]

    def test_pool_shut_down_after_context(self):
        from repro.parallel.omp import shared_executor

        with shared_executor("thread", num_workers=2) as pool:
            pass
        with pytest.raises(RuntimeError):
            pool.submit(square, 1)


class TestTaskGroup:
    def test_collects_results_in_submission_order(self):
        with TaskGroup(backend="thread", num_workers=3) as tg:
            tg.task(square, 2)
            tg.task(square, 3)
            tg.task(square, 4)
        assert tg.results == [4, 9, 16]

    def test_serial_backend(self):
        with TaskGroup(backend="serial") as tg:
            tg.task(square, 5)
        assert tg.results == [25]

    def test_explicit_taskwait_batches(self):
        with TaskGroup(backend="thread", num_workers=2) as tg:
            tg.task(square, 1)
            first = tg.taskwait()
            tg.task(square, 2)
        assert first == [1]
        assert tg.results == [1, 4]

    def test_exception_at_barrier(self):
        with pytest.raises(ValueError, match="boom on 3"):
            with TaskGroup(backend="thread", num_workers=2) as tg:
                tg.task(failing, 3)

    def test_tasks_run_concurrently(self):
        barrier = threading.Barrier(2, timeout=5)

        def body() -> bool:
            barrier.wait()
            return True

        with TaskGroup(backend="thread", num_workers=2) as tg:
            tg.task(body)
            tg.task(body)
        assert tg.results == [True, True]

    def test_single_worker_degrades_to_serial(self):
        with TaskGroup(backend="thread", num_workers=1) as tg:
            tg.task(square, 6)
            tg.task(square, 7)
        assert tg.results == [36, 49]
