"""Tests for the MPI-style cluster runtime."""

import multiprocessing as mp

import pytest

from repro.errors import ParallelError
from repro.parallel.cluster import Communicator, cluster_map, run_cluster


# SPMD bodies must be module-level (picklable).
def body_rank_size(comm):
    return (comm.rank, comm.size)


def body_ring(comm):
    """Pass a token around the ring, accumulating ranks."""
    if comm.rank == 0:
        comm.send([0], dest=1 % comm.size)
        token = comm.recv(source=comm.size - 1)
        return token
    token = comm.recv(source=comm.rank - 1)
    token.append(comm.rank)
    comm.send(token, dest=(comm.rank + 1) % comm.size)
    return None


def body_bcast(comm):
    value = {"payload": 42} if comm.rank == 0 else None
    return comm.bcast(value, root=0)


def body_scatter_gather(comm):
    chunks = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
    mine = comm.scatter(chunks, root=0)
    return comm.gather(mine * 2, root=0)


def body_allgather(comm):
    return comm.allgather(comm.rank**2)


def body_barrier_then_value(comm):
    comm.barrier()
    return comm.rank


def body_tag_matching(comm):
    if comm.size < 2:
        return "skip"
    if comm.rank == 0:
        # Send tag-5 first, then tag-7; rank 1 asks for 7 first.
        comm.send("five", dest=1, tag=5)
        comm.send("seven", dest=1, tag=7)
        return None
    seven = comm.recv(source=0, tag=7)
    five = comm.recv(source=0, tag=5)
    return (seven, five)


def body_failing(comm):
    if comm.rank == 1:
        raise RuntimeError("rank 1 exploded")
    return comm.rank


def square(x):
    return x * x


class TestCommunicator:
    def test_invalid_rank_rejected(self):
        with pytest.raises(ParallelError):
            Communicator(rank=3, size=2, mailboxes=[mp.Queue(), mp.Queue()])

    def test_mailbox_count_checked(self):
        with pytest.raises(ParallelError):
            Communicator(rank=0, size=2, mailboxes=[mp.Queue()])

    def test_send_to_invalid_rank(self):
        comm = Communicator(rank=0, size=1, mailboxes=[mp.Queue()])
        with pytest.raises(ParallelError):
            comm.send("x", dest=5)

    def test_single_rank_collectives(self):
        comm = Communicator(rank=0, size=1, mailboxes=[mp.Queue()])
        assert comm.bcast("v") == "v"
        assert comm.scatter(["only"]) == "only"
        assert comm.gather("g") == ["g"]
        assert comm.allgather(7) == [7]
        comm.barrier()  # must not deadlock


class TestRunCluster:
    def test_single_rank_inline(self):
        assert run_cluster(body_rank_size, 1) == [(0, 1)]

    def test_ranks_and_sizes(self):
        results = run_cluster(body_rank_size, 3, timeout=60.0)
        assert results == [(0, 3), (1, 3), (2, 3)]

    def test_ring_token(self):
        results = run_cluster(body_ring, 3, timeout=60.0)
        assert results[0] == [0, 1, 2]

    def test_bcast(self):
        results = run_cluster(body_bcast, 3, timeout=60.0)
        assert results == [{"payload": 42}] * 3

    def test_scatter_gather(self):
        results = run_cluster(body_scatter_gather, 3, timeout=60.0)
        assert results[0] == [0, 20, 40]
        assert results[1] is None and results[2] is None

    def test_allgather(self):
        results = run_cluster(body_allgather, 3, timeout=60.0)
        assert results == [[0, 1, 4]] * 3

    def test_barrier(self):
        assert run_cluster(body_barrier_then_value, 2, timeout=60.0) == [0, 1]

    def test_tag_matching_with_stash(self):
        results = run_cluster(body_tag_matching, 2, timeout=60.0)
        assert results[1] == ("seven", "five")

    def test_rank_failure_surfaces(self):
        with pytest.raises(ParallelError, match="rank 1"):
            run_cluster(body_failing, 2, timeout=60.0)

    def test_bad_size_rejected(self):
        with pytest.raises(ParallelError):
            run_cluster(body_rank_size, 0)


class TestClusterMap:
    def test_order_preserved(self):
        items = list(range(11))
        assert cluster_map(square, items, size=3, timeout=60.0) == [i * i for i in items]

    def test_empty(self):
        assert cluster_map(square, [], size=4) == []

    def test_size_clamped_to_items(self):
        assert cluster_map(square, [3], size=8, timeout=60.0) == [9]

    def test_single_rank(self):
        assert cluster_map(square, [1, 2, 3], size=1) == [1, 4, 9]
