"""Tests for chunk isolation and the failure path of parallel_for.

Two concerns share this file: the :class:`Isolation` machinery (one
poisoned item must not take its chunk mates down, and retry/exhaustion
counts must match across backends) and the regression guarding the
plain failure path (a failing chunk must not drop the observability of
chunks that *did* complete, and must leave no executor behind).
"""

from __future__ import annotations

import time

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.parallel.omp import Isolation, TaskGroup, parallel_for
from repro.resilience.faults import attempt_scope, current_attempt


class FlakyError(RuntimeError):
    """Module-level so the process backend can pickle it."""


def flaky_until_third(x: int) -> int:
    if x == 3 and current_attempt() <= 2:
        raise FlakyError(f"boom on {x}")
    return x * 10


def always_flaky(x: int) -> int:
    if x == 3:
        raise FlakyError(f"boom on {x}")
    return x * 10


def fail_slowly_on_nine(x: int) -> int:
    if x == 9:
        time.sleep(0.2)  # let every other chunk complete first
        raise ValueError("boom on 9")
    return x * 10


def make_isolation(max_attempts: int = 3) -> Isolation:
    return Isolation(
        max_attempts=max_attempts,
        retryable=(FlakyError,),
        attempt_scope=attempt_scope,
    )


class TestIsolationRecovery:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_retry_recovers_without_losing_chunk_mates(self, backend):
        isolate = make_isolation(max_attempts=3)
        out = parallel_for(
            flaky_until_third, list(range(6)), backend=backend, num_workers=2,
            chunk_size=3, isolate=isolate,
        )
        assert out == [0, 10, 20, 30, 40, 50]
        assert isolate.reports == []

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_exhaustion_isolates_only_the_poisoned_item(self, backend):
        isolate = make_isolation(max_attempts=2)
        out = parallel_for(
            always_flaky, list(range(6)), backend=backend, num_workers=2,
            chunk_size=3, isolate=isolate,
        )
        assert out == [0, 10, 20, None, 40, 50]
        assert len(isolate.reports) == 1
        assert isinstance(isolate.reports[0], FlakyError)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_retry_count_matches_across_backends(self, backend):
        retries: list[tuple[str, int]] = []
        caught: list[tuple[str, int]] = []
        isolate = make_isolation(max_attempts=3)
        isolate.on_retry = lambda record, attempt: retries.append((record, attempt))
        isolate.on_caught = lambda record, attempt: caught.append((record, attempt))
        parallel_for(
            flaky_until_third, list(range(6)), backend=backend, num_workers=2,
            chunk_size=2, isolate=isolate,
        )
        # Attempt-based firing: exactly two catches, two retries, on
        # every backend and chunking.
        assert caught == [("3", 1), ("3", 2)]
        assert retries == [("3", 1), ("3", 2)]

    def test_on_exhausted_builds_the_report(self):
        isolate = make_isolation(max_attempts=1)
        isolate.on_exhausted = lambda record, error, attempts: (record, type(error).__name__, attempts)
        out = parallel_for(
            always_flaky, list(range(6)), backend="thread", num_workers=2,
            isolate=isolate,
        )
        assert out[3] is None
        assert isolate.reports == [("3", "FlakyError", 1)]

    def test_non_retryable_still_propagates(self):
        isolate = make_isolation()
        with pytest.raises(ValueError, match="boom on 9"):
            parallel_for(
                fail_slowly_on_nine, list(range(10)), backend="thread",
                num_workers=2, isolate=isolate,
            )


class TestFailurePathObservability:
    """Regression: a failing chunk must not drop completed-chunk data."""

    def test_completed_chunk_metrics_survive_the_failure(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="boom on 9"):
            parallel_for(
                fail_slowly_on_nine, list(range(10)), backend="thread",
                num_workers=2, chunk_size=1, metrics=registry,
            )
        # Nine chunks completed while chunk 9 slept; their counters and
        # histograms must have been folded in before the raise.
        assert registry.total("repro_parallel_chunks_total") == 9
        observed = sum(
            inst.count
            for labels, inst in registry.samples_all()
            if labels[0] == "repro_parallel_chunk_duration_seconds"
        )
        assert observed == 9

    def test_executor_not_leaked_after_failure(self):
        for _ in range(3):
            with pytest.raises(ValueError, match="boom on 9"):
                parallel_for(
                    fail_slowly_on_nine, list(range(10)), backend="thread",
                    num_workers=2, chunk_size=1,
                )
        # A fresh loop on the same backend still works: pools were shut
        # down, not orphaned with live chunks.
        assert parallel_for(
            fail_slowly_on_nine, list(range(9)), backend="thread", num_workers=2
        ) == [x * 10 for x in range(9)]

    @pytest.mark.slow
    def test_process_backend_failure_path(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="boom on 9"):
            parallel_for(
                fail_slowly_on_nine, list(range(10)), backend="process",
                num_workers=2, chunk_size=1, metrics=registry,
            )
        assert registry.total("repro_parallel_chunks_total") == 9

    def test_taskwait_folds_completed_tasks(self):
        registry = MetricsRegistry()

        def ok() -> int:
            return 1

        def bad() -> int:
            time.sleep(0.1)
            raise ValueError("task boom")

        with pytest.raises(ValueError, match="task boom"):
            with TaskGroup(backend="thread", num_workers=2, metrics=registry) as tg:
                tg.task(ok)
                tg.task(ok)
                tg.task(bad)
        assert registry.total("repro_parallel_tasks_total") == 2
