"""Unit tests for the simulated machine and fluid scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.parallel.simulate import (
    PAPER_MACHINE,
    SimTask,
    SimulatedMachine,
    paper_machine,
    simulate_task_graph,
)

UNIFORM = SimulatedMachine(speeds=(1.0, 1.0, 1.0, 1.0), io_capacity=100.0, mem_capacity=100.0)
SERIAL = SimulatedMachine(speeds=(1.0,), io_capacity=100.0, mem_capacity=100.0)


class TestSimTask:
    def test_rejects_negative_work(self):
        with pytest.raises(SchedulerError):
            SimTask("t", -1.0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(SchedulerError):
            SimTask("t", 1.0, io_fraction=1.5)
        with pytest.raises(SchedulerError):
            SimTask("t", 1.0, io_fraction=0.6, mem_fraction=0.6)


class TestMachine:
    def test_paper_machine_shape(self):
        machine = paper_machine()
        assert machine.num_workers == 12
        assert machine.speeds.count(1.0) == 4

    def test_restricted_keeps_fastest(self):
        limited = PAPER_MACHINE.restricted(4)
        assert limited.speeds == (1.0, 1.0, 1.0, 1.0)

    def test_rejects_empty(self):
        with pytest.raises(SchedulerError):
            SimulatedMachine(speeds=())

    def test_rejects_bad_capacity(self):
        with pytest.raises(SchedulerError):
            SimulatedMachine(speeds=(1.0,), io_capacity=0.0)


class TestScheduler:
    def test_empty_graph(self):
        result = simulate_task_graph([], UNIFORM)
        assert result.makespan_s == 0.0

    def test_single_task(self):
        result = simulate_task_graph([SimTask("a", 5.0)], UNIFORM)
        assert result.makespan_s == pytest.approx(5.0)

    def test_serial_machine_sums_work(self):
        tasks = [SimTask(f"t{i}", 2.0) for i in range(5)]
        result = simulate_task_graph(tasks, SERIAL)
        assert result.makespan_s == pytest.approx(10.0)

    def test_perfect_parallelism(self):
        tasks = [SimTask(f"t{i}", 3.0) for i in range(4)]
        result = simulate_task_graph(tasks, UNIFORM)
        assert result.makespan_s == pytest.approx(3.0)

    def test_makespan_at_least_critical_path(self):
        tasks = [
            SimTask("a", 2.0),
            SimTask("b", 3.0, deps=("a",)),
            SimTask("c", 4.0, deps=("b",)),
        ]
        result = simulate_task_graph(tasks, UNIFORM)
        assert result.makespan_s == pytest.approx(9.0)

    def test_makespan_at_least_work_over_capacity(self):
        tasks = [SimTask(f"t{i}", 1.0) for i in range(16)]
        result = simulate_task_graph(tasks, UNIFORM)
        assert result.makespan_s >= 16.0 / 4 - 1e-9

    def test_dependency_ordering(self):
        tasks = [SimTask("a", 1.0), SimTask("b", 1.0, deps=("a",))]
        result = simulate_task_graph(tasks, UNIFORM)
        placement = {p.name: p for p in result.placements}
        assert placement["b"].start_s >= placement["a"].finish_s - 1e-12

    def test_slower_workers_slow_tasks(self):
        machine = SimulatedMachine(speeds=(0.5,), io_capacity=10.0, mem_capacity=10.0)
        result = simulate_task_graph([SimTask("a", 3.0)], machine)
        assert result.makespan_s == pytest.approx(6.0)

    def test_io_contention_stretches(self):
        machine = SimulatedMachine(speeds=(1.0, 1.0, 1.0, 1.0), io_capacity=1.0,
                                   mem_capacity=100.0)
        tasks = [SimTask(f"t{i}", 1.0, io_fraction=1.0) for i in range(4)]
        result = simulate_task_graph(tasks, machine)
        # Four pure-IO tasks on one IO stream: no faster than serial.
        assert result.makespan_s == pytest.approx(4.0)

    def test_mem_contention_stretches(self):
        machine = SimulatedMachine(speeds=(1.0, 1.0), io_capacity=100.0, mem_capacity=1.0)
        tasks = [SimTask(f"t{i}", 1.0, mem_fraction=1.0) for i in range(2)]
        result = simulate_task_graph(tasks, machine)
        assert result.makespan_s == pytest.approx(2.0)

    def test_compute_tasks_unaffected_by_io_capacity(self):
        tight = SimulatedMachine(speeds=(1.0, 1.0), io_capacity=0.001, mem_capacity=100.0)
        tasks = [SimTask(f"t{i}", 1.0, io_fraction=0.0) for i in range(2)]
        result = simulate_task_graph(tasks, tight)
        assert result.makespan_s == pytest.approx(1.0)

    def test_zero_work_tasks(self):
        tasks = [SimTask("a", 0.0), SimTask("b", 1.0, deps=("a",))]
        result = simulate_task_graph(tasks, UNIFORM)
        assert result.makespan_s == pytest.approx(1.0)

    def test_determinism(self):
        tasks = [SimTask(f"t{i}", 1.0 + (i % 3), io_fraction=0.3) for i in range(20)]
        r1 = simulate_task_graph(tasks, PAPER_MACHINE)
        r2 = simulate_task_graph(tasks, PAPER_MACHINE)
        assert r1.makespan_s == r2.makespan_s
        assert [(p.name, p.worker) for p in r1.placements] == [
            (p.name, p.worker) for p in r2.placements
        ]

    def test_stage_durations(self):
        tasks = [
            SimTask("a", 2.0, stage="S1"),
            SimTask("b", 2.0, stage="S1"),
            SimTask("c", 1.0, deps=("a", "b"), stage="S2"),
        ]
        result = simulate_task_graph(tasks, UNIFORM)
        durations = result.stage_durations()
        assert durations["S1"] == pytest.approx(2.0)
        assert durations["S2"] == pytest.approx(1.0)

    def test_no_worker_overlap(self):
        tasks = [SimTask(f"t{i}", 1.0 + 0.1 * i) for i in range(10)]
        result = simulate_task_graph(tasks, UNIFORM)
        by_worker: dict[int, list] = {}
        for p in result.placements:
            by_worker.setdefault(p.worker, []).append((p.start_s, p.finish_s))
        for intervals in by_worker.values():
            intervals.sort()
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9

    def test_cycle_detected(self):
        tasks = [SimTask("a", 1.0, deps=("b",)), SimTask("b", 1.0, deps=("a",))]
        with pytest.raises(SchedulerError):
            simulate_task_graph(tasks, UNIFORM)

    def test_unknown_dep_detected(self):
        with pytest.raises(SchedulerError):
            simulate_task_graph([SimTask("a", 1.0, deps=("ghost",))], UNIFORM)

    def test_duplicate_name_detected(self):
        with pytest.raises(SchedulerError):
            simulate_task_graph([SimTask("a", 1.0), SimTask("a", 2.0)], UNIFORM)

    def test_heterogeneous_prefers_fast_workers(self):
        machine = SimulatedMachine(speeds=(1.0, 0.1), io_capacity=100.0, mem_capacity=100.0)
        result = simulate_task_graph([SimTask("a", 1.0)], machine)
        assert result.placements[0].worker == 0
        assert result.makespan_s == pytest.approx(1.0)
