"""Unit tests for backends and loop scheduling policies."""

import pytest

from repro.errors import BackendError, ParallelError
from repro.parallel.backend import Backend, available_backends, resolve_workers
from repro.parallel.chunks import Schedule, chunk_indices


class TestBackend:
    def test_coerce_string(self):
        assert Backend.coerce("thread") is Backend.THREAD
        assert Backend.coerce("process") is Backend.PROCESS
        assert Backend.coerce("serial") is Backend.SERIAL

    def test_coerce_enum_passthrough(self):
        assert Backend.coerce(Backend.THREAD) is Backend.THREAD

    def test_unknown_rejected(self):
        with pytest.raises(BackendError):
            Backend.coerce("gpu")

    def test_available_backends(self):
        assert set(available_backends()) == {Backend.SERIAL, Backend.THREAD, Backend.PROCESS}

    def test_resolve_workers_default(self):
        assert resolve_workers(None) >= 1

    def test_resolve_workers_explicit(self):
        assert resolve_workers(7) == 7

    def test_resolve_workers_rejects_zero(self):
        with pytest.raises(BackendError):
            resolve_workers(0)


def covered_indices(chunks):
    out = []
    for chunk in chunks:
        out.extend(chunk)
    return out


class TestChunks:
    def test_static_even_split(self):
        chunks = chunk_indices(12, 4, Schedule.STATIC)
        assert [len(c) for c in chunks] == [3, 3, 3, 3]

    def test_static_remainder_spread(self):
        chunks = chunk_indices(10, 4, Schedule.STATIC)
        assert [len(c) for c in chunks] == [3, 3, 2, 2]

    def test_static_with_chunk_size(self):
        chunks = chunk_indices(10, 4, Schedule.STATIC, chunk_size=4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_dynamic_default_unit_chunks(self):
        chunks = chunk_indices(5, 2, Schedule.DYNAMIC)
        assert [len(c) for c in chunks] == [1] * 5

    def test_dynamic_chunk_size(self):
        chunks = chunk_indices(10, 3, "dynamic", chunk_size=3)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_guided_shrinks(self):
        chunks = chunk_indices(100, 4, Schedule.GUIDED)
        sizes = [len(c) for c in chunks]
        assert sizes[0] == 25
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_guided_floor(self):
        chunks = chunk_indices(100, 4, Schedule.GUIDED, chunk_size=10)
        assert all(len(c) >= 10 for c in chunks[:-1])

    @pytest.mark.parametrize("schedule", list(Schedule))
    @pytest.mark.parametrize("n,workers", [(0, 1), (1, 4), (7, 3), (100, 8)])
    def test_full_coverage(self, schedule, n, workers):
        chunks = chunk_indices(n, workers, schedule)
        assert sorted(covered_indices(chunks)) == list(range(n))

    def test_more_workers_than_items(self):
        chunks = chunk_indices(2, 10, Schedule.STATIC)
        assert sorted(covered_indices(chunks)) == [0, 1]

    def test_rejects_bad_args(self):
        with pytest.raises(ParallelError):
            chunk_indices(-1, 2)
        with pytest.raises(ParallelError):
            chunk_indices(5, 0)
        with pytest.raises(ParallelError):
            chunk_indices(5, 2, Schedule.DYNAMIC, chunk_size=0)
        with pytest.raises(ParallelError):
            chunk_indices(5, 2, "unknown")
