"""Unit tests for the stochastic simulator's physical models."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.synth.path import PathModel
from repro.synth.site import SiteModel
from repro.synth.source import BruneSource, corner_frequency, moment_from_magnitude


class TestSource:
    def test_moment_scaling(self):
        # +1 magnitude unit = x10^1.5 moment (Hanks & Kanamori).
        ratio = moment_from_magnitude(6.0) / moment_from_magnitude(5.0)
        assert ratio == pytest.approx(10**1.5)

    def test_known_moment_value(self):
        # M 6.0 -> 1.26e25 dyne-cm (classic benchmark value).
        assert moment_from_magnitude(6.0) == pytest.approx(1.122e25, rel=0.01)

    def test_corner_frequency_decreases_with_magnitude(self):
        small = BruneSource(magnitude=4.0)
        large = BruneSource(magnitude=7.0)
        assert small.corner_frequency > large.corner_frequency

    def test_corner_frequency_increases_with_stress_drop(self):
        low = BruneSource(magnitude=5.5, stress_drop_bars=30.0)
        high = BruneSource(magnitude=5.5, stress_drop_bars=300.0)
        assert high.corner_frequency > low.corner_frequency

    def test_spectrum_shape(self):
        source = BruneSource(magnitude=5.5)
        fc = source.corner_frequency
        freqs = np.array([0.01 * fc, fc, 100 * fc])
        spec = source.acceleration_spectrum(freqs)
        # omega^2 growth below the corner, flat far above it.
        assert spec[1] / spec[0] == pytest.approx((fc / (0.01 * fc)) ** 2 / 2, rel=0.1)
        assert spec[2] / spec[1] == pytest.approx(2.0, rel=0.1)

    def test_duration_inverse_of_corner(self):
        source = BruneSource(magnitude=5.0)
        assert source.duration_s() == pytest.approx(1.0 / source.corner_frequency)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SignalError):
            corner_frequency(-1.0)


class TestPath:
    def test_body_wave_spreading(self):
        path = PathModel()
        assert path.geometric_spreading(10.0) == pytest.approx(0.1)

    def test_surface_wave_transition(self):
        path = PathModel(spreading_crossover_km=70.0)
        # Continuous at the crossover, slower decay beyond.
        at = path.geometric_spreading(70.0)
        beyond = path.geometric_spreading(280.0)
        assert at == pytest.approx(1 / 70.0)
        assert beyond == pytest.approx(at * np.sqrt(70.0 / 280.0))

    def test_anelastic_attenuation_monotone_in_distance(self):
        path = PathModel()
        freqs = np.array([1.0, 10.0])
        near = path.anelastic(freqs, 10.0)
        far = path.anelastic(freqs, 80.0)
        assert np.all(far < near)

    def test_anelastic_attenuates_high_frequencies_more(self):
        path = PathModel()
        att = path.anelastic(np.array([0.5, 20.0]), 50.0)
        assert att[1] < att[0]

    def test_path_duration_rule(self):
        assert PathModel().path_duration_s(40.0) == pytest.approx(2.0)

    def test_rejects_non_positive_distance(self):
        with pytest.raises(SignalError):
            PathModel().geometric_spreading(0.0)
        with pytest.raises(SignalError):
            PathModel().path_duration_s(-5.0)


class TestSite:
    def test_kappa_filter_at_zero_is_unity(self):
        site = SiteModel(kappa_s=0.04)
        assert site.kappa_filter(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_kappa_kills_high_frequencies(self):
        site = SiteModel(kappa_s=0.04)
        out = site.kappa_filter(np.array([1.0, 10.0, 50.0]))
        assert out[0] > out[1] > out[2]
        assert out[2] < 0.01

    def test_amplification_interpolates(self):
        site = SiteModel()
        amp = site.amplification(np.array([0.01, 1.0, 50.0]))
        assert amp[0] == pytest.approx(1.0)
        assert 1.0 < amp[1] < amp[2]

    def test_rejects_negative_kappa(self):
        with pytest.raises(SignalError):
            SiteModel(kappa_s=-0.01)

    def test_combined_factor(self):
        site = SiteModel(kappa_s=0.02)
        freqs = np.array([0.5, 5.0])
        assert np.allclose(
            site.apply(freqs), site.amplification(freqs) * site.kappa_filter(freqs)
        )
