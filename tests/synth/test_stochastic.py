"""Unit tests for the stochastic ground-motion simulator."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.synth.source import BruneSource
from repro.synth.stochastic import StochasticSimulator, saragoni_hart_window


class TestSaragoniHart:
    def test_unit_peak(self):
        w = saragoni_hart_window(500)
        assert w.max() == pytest.approx(1.0)

    def test_starts_at_zero(self):
        assert saragoni_hart_window(100)[0] == 0.0

    def test_peak_near_eps_fraction(self):
        w = saragoni_hart_window(1000, eps=0.2)
        assert np.argmax(w) == pytest.approx(200, abs=20)

    def test_tail_amplitude(self):
        w = saragoni_hart_window(1000, eps=0.2, eta=0.05)
        assert w[-1] == pytest.approx(0.05, rel=0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(SignalError):
            saragoni_hart_window(0)
        with pytest.raises(SignalError):
            saragoni_hart_window(100, eps=1.5)


class TestSimulator:
    def make(self, magnitude=5.5):
        return StochasticSimulator(source=BruneSource(magnitude=magnitude))

    def test_deterministic_given_seed(self):
        sim = self.make()
        a = sim.simulate(2000, 0.01, 20.0, np.random.default_rng(5))
        b = sim.simulate(2000, 0.01, 20.0, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        sim = self.make()
        a = sim.simulate(2000, 0.01, 20.0, np.random.default_rng(5))
        b = sim.simulate(2000, 0.01, 20.0, np.random.default_rng(6))
        assert not np.array_equal(a, b)

    def test_length_and_finiteness(self):
        sim = self.make()
        acc = sim.simulate(3333, 0.005, 15.0, np.random.default_rng(1))
        assert acc.shape == (3333,)
        assert np.all(np.isfinite(acc))

    def test_closer_station_shakes_harder(self):
        sim = self.make()
        near = sim.simulate(4000, 0.01, 10.0, np.random.default_rng(2))
        far = sim.simulate(4000, 0.01, 80.0, np.random.default_rng(2))
        assert np.abs(near).max() > np.abs(far).max()

    def test_bigger_event_shakes_harder(self):
        near = self.make(6.5).simulate(4000, 0.01, 30.0, np.random.default_rng(3))
        small = self.make(4.5).simulate(4000, 0.01, 30.0, np.random.default_rng(3))
        assert np.abs(near).max() > np.abs(small).max()

    def test_plausible_pga_range(self):
        # A M5.5 at 20 km should produce tens of gal, not thousands.
        sim = self.make()
        acc = sim.simulate(6000, 0.01, 20.0, np.random.default_rng(4))
        pga = np.abs(acc).max()
        assert 1.0 < pga < 2000.0

    def test_pre_event_noise_floor(self):
        sim = self.make()
        acc = sim.simulate(8000, 0.01, 20.0, np.random.default_rng(7),
                           pre_event_fraction=0.1, noise_floor_gal=0.02)
        lead = acc[:400]  # well inside the pre-event window
        assert np.abs(lead).max() < 1.0
        assert np.std(lead) == pytest.approx(0.02, rel=0.5)

    def test_target_spectrum_positive(self):
        sim = self.make()
        freqs = np.geomspace(0.1, 50.0, 100)
        spec = sim.target_spectrum(freqs, 25.0)
        assert np.all(spec > 0)

    def test_rejects_tiny_records(self):
        with pytest.raises(SignalError):
            self.make().simulate(8, 0.01, 10.0, np.random.default_rng(0))

    def test_rejects_bad_dt(self):
        with pytest.raises(SignalError):
            self.make().simulate(100, 0.0, 10.0, np.random.default_rng(0))
