"""Unit tests for the event catalog, station network and dataset writer."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.formats.common import COMPONENTS
from repro.formats.v1 import read_v1
from repro.synth.dataset import generate_event_dataset, synthesize_station_record
from repro.synth.events import (
    MAX_FILE_POINTS,
    MIN_FILE_POINTS,
    PAPER_EVENTS,
    EventSpec,
    distribute_points,
    paper_event,
)
from repro.synth.network import INSTRUMENT_DT, make_network


class TestDistributePoints:
    def test_exact_total(self):
        parts = distribute_points(100_000, 7, 5_000, 30_000, seed=1)
        assert sum(parts) == 100_000
        assert len(parts) == 7

    def test_bounds_respected(self):
        parts = distribute_points(100_000, 7, 5_000, 30_000, seed=2)
        assert all(5_000 <= p <= 30_000 for p in parts)

    def test_deterministic(self):
        a = distribute_points(50_000, 4, 5_000, 30_000, seed=3)
        b = distribute_points(50_000, 4, 5_000, 30_000, seed=3)
        assert a == b

    def test_tight_totals(self):
        assert distribute_points(15_000, 3, 5_000, 5_000, seed=1) == [5_000] * 3

    def test_impossible_split_rejected(self):
        with pytest.raises(SignalError):
            distribute_points(1_000, 3, 5_000, 30_000, seed=1)


class TestCatalog:
    def test_matches_table1_structure(self):
        structure = [(e.n_files, e.total_points) for e in PAPER_EVENTS]
        assert structure == [
            (5, 56_000),
            (5, 115_000),
            (9, 145_000),
            (15, 309_000),
            (18, 361_000),
            (19, 384_000),
        ]

    def test_file_points_within_paper_bounds(self):
        for event in PAPER_EVENTS:
            points = event.file_points()
            assert sum(points) == event.total_points
            assert all(MIN_FILE_POINTS <= p <= MAX_FILE_POINTS for p in points)

    def test_lookup(self):
        assert paper_event("EV-MAY19").n_files == 18
        with pytest.raises(SignalError):
            paper_event("EV-NOPE")

    def test_invalid_event_rejected(self):
        with pytest.raises(SignalError):
            EventSpec("BAD", "2020-01-01", 5.0, 2, 1_000, seed=1)


class TestNetwork:
    def test_deterministic(self):
        assert make_network(5, seed=9) == make_network(5, seed=9)

    def test_codes_and_sorting(self):
        stations = make_network(4, seed=9)
        assert [s.code for s in stations] == ["ST01", "ST02", "ST03", "ST04"]
        distances = [s.distance_km for s in stations]
        assert distances == sorted(distances)

    def test_instrument_rates(self):
        stations = make_network(30, seed=9)
        assert {s.dt for s in stations} <= set(INSTRUMENT_DT)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            make_network(0, seed=1)


class TestDataset:
    def test_station_record_components(self):
        event = EventSpec("T", "2020-01-01", 5.2, 1, 8_000, seed=5)
        station = make_network(1, seed=5)[0]
        record = synthesize_station_record(event, station, 1_000)
        assert set(record.components) == set(COMPONENTS)
        assert record.npts == 1_000
        # Vertical weaker than horizontals (0.6 scaling).
        assert np.abs(record.components["v"]).max() < np.abs(record.components["l"]).max()

    def test_generate_writes_expected_files(self, tmp_path):
        event = EventSpec("T", "2020-01-01", 5.2, 3, 24_000, seed=5)
        manifest = generate_event_dataset(event, tmp_path)
        assert manifest.n_files == 3
        assert manifest.total_points == 24_000
        for path in manifest.paths:
            record = read_v1(path)
            assert record.header.event_id == "T"

    def test_points_override(self, tmp_path):
        event = EventSpec("T", "2020-01-01", 5.2, 3, 24_000, seed=5)
        manifest = generate_event_dataset(event, tmp_path, points_override=[100, 200, 300])
        assert manifest.total_points == 600
        record = read_v1(manifest.paths[2])
        assert record.npts == 300

    def test_regeneration_is_bit_identical(self, tmp_path):
        event = EventSpec("T", "2020-01-01", 5.2, 2, 16_000, seed=5)
        m1 = generate_event_dataset(event, tmp_path / "a")
        m2 = generate_event_dataset(event, tmp_path / "b")
        for p1, p2 in zip(m1.paths, m2.paths):
            assert open(p1, "rb").read() == open(p2, "rb").read()

    def test_header_carries_provenance(self, tmp_path):
        event = EventSpec("T", "2020-03-04", 5.7, 1, 8_000, seed=6)
        manifest = generate_event_dataset(event, tmp_path)
        record = read_v1(manifest.paths[0])
        assert record.header.origin_time == "2020-03-04"
        assert record.header.magnitude == pytest.approx(5.7)
        assert "DIST-KM" in record.header.extra
