"""Tests for the event-catalog file format."""

import pytest

from repro.errors import SignalError
from repro.synth.events import PAPER_EVENTS, EventSpec, read_catalog, write_catalog


class TestCatalogIO:
    def test_roundtrip(self, tmp_path):
        events = [
            EventSpec("EV-A", "2024-02-01", 4.7, 1, 8_000, seed=11),
            EventSpec("EV-B", "2024-02-15", 5.9, 3, 45_000, seed=22),
        ]
        path = tmp_path / "catalog.txt"
        write_catalog(path, events)
        assert read_catalog(path) == events

    def test_paper_catalog_roundtrip(self, tmp_path):
        path = tmp_path / "paper.txt"
        write_catalog(path, PAPER_EVENTS)
        assert tuple(read_catalog(path)) == PAPER_EVENTS

    def test_missing_file(self, tmp_path):
        with pytest.raises(SignalError):
            read_catalog(tmp_path / "nope.txt")

    def test_wrong_banner(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("NOT A CATALOG\n")
        with pytest.raises(SignalError):
            read_catalog(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("OANT EVENT CATALOG\nEVENT only three fields\n")
        with pytest.raises(SignalError):
            read_catalog(path)

    def test_bad_numeric_field(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("OANT EVENT CATALOG\nEVENT E 2024-01-01 five 1 8000 1\n")
        with pytest.raises(SignalError):
            read_catalog(path)

    def test_invalid_event_spec_rejected(self, tmp_path):
        # Parses, but the spec itself is impossible (too few points).
        path = tmp_path / "bad.txt"
        path.write_text("OANT EVENT CATALOG\nEVENT E 2024-01-01 5.0 3 1000 1\n")
        with pytest.raises(SignalError):
            read_catalog(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "cat.txt"
        path.write_text(
            "OANT EVENT CATALOG\n\nEVENT E 2024-01-01 5.00 1 8000 1\n\n"
        )
        assert len(read_catalog(path)) == 1


class TestBulletinCli:
    def test_end_to_end(self, tmp_path, capsys):
        from repro.cli import main_bulletin

        events = [EventSpec("EV-CLI", "2024-03-01", 4.9, 1, 8_000, seed=5)]
        catalog = tmp_path / "catalog.txt"
        write_catalog(catalog, events)
        out = tmp_path / "bulletin.txt"
        rc = main_bulletin(
            [
                str(catalog),
                "--root",
                str(tmp_path / "run"),
                "--scale",
                "0.1",
                "--periods",
                "10",
                "--workers",
                "2",
                "-i",
                "seq-optimized",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "EV-CLI" in capsys.readouterr().out
        assert out.read_text().startswith("Seismic activity bulletin")
