"""Property tests of metrics-shard merging.

The process backend merges worker shards into the driver's registry in
whatever order chunks complete; correctness of the merged totals
therefore rests on merge being associative and commutative and on
histogram merges preserving count and sum exactly.  These properties
hold by construction (counters add, gauges max, histograms add
bucketwise); hypothesis checks them over arbitrary shard contents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.metrics import MetricsRegistry

BOUNDS = (0.01, 0.1, 1.0, 10.0)

label_sets = st.sampled_from(
    [{}, {"op": "read"}, {"op": "write"}, {"op": "read", "artifact": "v1"}]
)

counter_ops = st.tuples(
    st.just("counter"), st.sampled_from(["a_total", "b_total"]), label_sets,
    st.floats(0, 1e6, allow_nan=False),
)
gauge_ops = st.tuples(
    st.just("gauge"), st.sampled_from(["depth", "high_water"]), label_sets,
    st.floats(0, 1e6, allow_nan=False),
)
histogram_ops = st.tuples(
    st.just("histogram"), st.sampled_from(["dur_seconds"]), label_sets,
    st.floats(0, 100, allow_nan=False),
)

shards = st.lists(
    st.one_of(counter_ops, gauge_ops, histogram_ops), max_size=25
)


def build(ops) -> MetricsRegistry:
    registry = MetricsRegistry()
    for kind, name, labels, value in ops:
        if kind == "counter":
            registry.counter(name, **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name, **labels).set_max(value)
        else:
            registry.histogram(name, buckets=BOUNDS, **labels).observe(value)
    return registry


def state(registry: MetricsRegistry) -> dict:
    return {
        (name, labels): inst.payload()
        for (name, labels), inst in registry.samples_all()
    }


def assert_state_close(a: dict, b: dict) -> None:
    """Equality up to float-addition reassociation slack.

    Integer bucket counts must match exactly; float sums/values may
    differ in the last ulp when the additions were grouped differently.
    """
    assert a.keys() == b.keys()
    for key, payload in a.items():
        other = b[key]
        for field, value in payload.items():
            if isinstance(value, list):
                assert other[field] == value, (key, field)
            else:
                assert other[field] == pytest.approx(
                    value, rel=1e-12, abs=1e-9
                ), (key, field)


class TestMergeProperties:
    @given(shards, shards)
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, ops_a, ops_b):
        ab = build(ops_a).merge(build(ops_b))
        ba = build(ops_b).merge(build(ops_a))
        assert state(ab) == state(ba)

    @given(shards, shards, shards)
    @settings(max_examples=60, deadline=None)
    def test_associative(self, ops_a, ops_b, ops_c):
        left = build(ops_a).merge(build(ops_b)).merge(build(ops_c))
        bc = build(ops_b).merge(build(ops_c))
        right = build(ops_a).merge(bc)
        assert_state_close(state(left), state(right))

    @given(st.lists(shards, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_histogram_merge_preserves_count_and_sum(self, shard_ops):
        observations = [
            value
            for ops in shard_ops
            for kind, _, _, value in ops
            if kind == "histogram"
        ]
        merged = MetricsRegistry()
        for ops in shard_ops:
            merged.merge(build(ops).to_dict())
        total_count = 0
        total_sum = 0.0
        for (name, _), inst in merged.samples_all():
            if name == "dur_seconds":
                total_count += inst.count
                total_sum += inst.sum
        assert total_count == len(observations)
        # Addition order differs between the flat sum and the per-shard
        # partial sums, so allow float-associativity slack only.
        assert total_sum == pytest.approx(sum(observations), rel=1e-12, abs=1e-9)

    @given(shards)
    @settings(max_examples=60, deadline=None)
    def test_merge_of_dict_shard_equals_merge_of_registry(self, ops):
        direct = MetricsRegistry().merge(build(ops))
        via_wire = MetricsRegistry().merge(build(ops).to_dict())
        assert state(direct) == state(via_wire)

    @given(shards)
    @settings(max_examples=60, deadline=None)
    def test_empty_is_identity(self, ops):
        registry = build(ops)
        before = state(registry)
        registry.merge(MetricsRegistry())
        assert state(registry) == before
