"""Property-based tests for the DSP substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.detrend import remove_linear_trend, remove_mean
from repro.dsp.fft import fft_pure, ifft_pure, irfft, rfft
from repro.dsp.fir import BandPassSpec, design_bandpass, fir_filter
from repro.dsp.integrate import integrate_trapezoid
from repro.dsp.peak import peak_amplitude
from repro.dsp.window import cosine_taper, hamming

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def signals(min_size=1, max_size=257):
    return arrays(np.float64, st.integers(min_size, max_size), elements=finite_floats)


class TestFFTProperties:
    @given(signals(min_size=1, max_size=130))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, x):
        back = ifft_pure(fft_pure(x)).real
        scale = max(np.abs(x).max(), 1.0)
        assert np.allclose(back, x, atol=1e-7 * scale)

    @given(signals(min_size=2, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, x):
        spec = fft_pure(x)
        energy_t = np.sum(np.abs(x) ** 2)
        energy_f = np.sum(np.abs(spec) ** 2) / len(x)
        assert energy_f == pytest.approx(energy_t, rel=1e-6, abs=1e-6)

    @given(signals(min_size=2, max_size=100), st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, x, a, b):
        y = x[::-1].copy()
        lhs = fft_pure(a * x + b * y)
        rhs = a * fft_pure(x) + b * fft_pure(y)
        scale = max(np.abs(rhs).max(), 1.0)
        assert np.allclose(lhs, rhs, atol=1e-7 * scale)

    @given(signals(min_size=2, max_size=128))
    @settings(max_examples=40, deadline=None)
    def test_rfft_matches_full(self, x):
        full = fft_pure(x)
        half = rfft(x, pure=True)
        assert np.allclose(half, full[: len(half)], atol=1e-7 * max(np.abs(full).max(), 1.0))

    @given(signals(min_size=2, max_size=96))
    @settings(max_examples=40, deadline=None)
    def test_real_roundtrip(self, x):
        back = irfft(rfft(x), len(x))
        assert np.allclose(back, x, atol=1e-8 * max(np.abs(x).max(), 1.0))


class TestWindowProperties:
    @given(st.integers(1, 500))
    @settings(max_examples=50, deadline=None)
    def test_hamming_bounded(self, n):
        w = hamming(n)
        assert np.all(w >= 0.079)
        assert np.all(w <= 1.0 + 1e-12)

    @given(st.integers(1, 400), st.floats(0, 0.5))
    @settings(max_examples=50, deadline=None)
    def test_taper_bounded_and_symmetric(self, n, fraction):
        w = cosine_taper(n, fraction)
        assert np.all((0 <= w) & (w <= 1 + 1e-12))
        assert np.allclose(w, w[::-1])


class TestDetrendProperties:
    @given(signals(min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_mean_removal_idempotent(self, x):
        once = remove_mean(x)
        twice = remove_mean(once)
        assert np.allclose(once, twice, atol=1e-9 * max(np.abs(x).max(), 1.0))

    @given(signals(min_size=2), st.floats(-100, 100), st.floats(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_line_invariance(self, x, offset, slope):
        # Adding any line must not change the detrended output.
        t = np.arange(len(x), dtype=float)
        a = remove_linear_trend(x)
        b = remove_linear_trend(x + offset + slope * t)
        assert np.allclose(a, b, atol=1e-6 * max(np.abs(x).max(), 1.0) + 1e-6)


class TestIntegrateProperties:
    @given(signals(min_size=2), st.floats(1e-4, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_linearity_in_signal(self, x, dt):
        a = integrate_trapezoid(x, dt)
        b = integrate_trapezoid(2.5 * x, dt)
        assert np.allclose(b, 2.5 * a, rtol=1e-9, atol=1e-12)

    @given(signals(min_size=2), st.floats(1e-4, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_peak(self, x, dt):
        # |integral| <= duration * peak.
        out = integrate_trapezoid(x, dt)
        bound = (len(x) - 1) * dt * np.abs(x).max() + 1e-12
        assert np.all(np.abs(out) <= bound * (1 + 1e-9))


class TestFilterProperties:
    @given(signals(min_size=64, max_size=256), st.floats(0.5, 3.0))
    @settings(max_examples=20, deadline=None)
    def test_gain_bounded(self, x, scale):
        # A normalized band-pass never amplifies energy materially.
        dt = 0.01
        taps = design_bandpass(BandPassSpec(0.5, 1.0, 10.0, 12.0), dt)
        y = fir_filter(x * scale, taps)
        in_rms = np.sqrt(np.mean((x * scale) ** 2))
        out_rms = np.sqrt(np.mean(y**2))
        assert out_rms <= 1.6 * in_rms + 1e-9

    @given(signals(min_size=16, max_size=128))
    @settings(max_examples=30, deadline=None)
    def test_zero_input_zero_output(self, x):
        dt = 0.01
        taps = design_bandpass(BandPassSpec(0.5, 1.0, 10.0, 12.0), dt)
        y = fir_filter(np.zeros_like(x), taps)
        assert np.allclose(y, 0.0)


class TestPeakProperties:
    @given(signals(min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_peak_dominates(self, x):
        peak = peak_amplitude(x)
        assert np.all(np.abs(x) <= abs(peak) + 1e-15)
        assert abs(peak) == np.abs(x).max()
