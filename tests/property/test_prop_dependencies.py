"""Property-based tests for the dependency analysis."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dependencies import build_process_graph, parallelizable_sets
from repro.errors import DependencyError
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER


def subsets(order):
    """Non-empty subsequences of a process order."""
    return st.lists(
        st.sampled_from(list(order)), min_size=1, max_size=len(order), unique=True
    ).map(lambda pids: [p for p in order if p in pids])


@given(subsets(OPTIMIZED_ORDER) | subsets(ORIGINAL_ORDER))
@settings(max_examples=120, deadline=None)
def test_parallelizable_sets_layers_are_antichains(pids):
    try:
        graph = build_process_graph(pids)
    except DependencyError:
        # Some subsets read artifact versions they do not produce and
        # cannot resolve externally; those are rejected by design.
        assume(False)
    layers = parallelizable_sets(pids)

    # The layers partition the subset.
    flat = [pid for layer in layers for pid in layer]
    assert sorted(flat) == sorted(pids)
    assert len(flat) == len(set(flat))

    # No dependency edge inside a layer (each layer is an antichain) …
    for layer in layers:
        members = set(layer)
        for a in layer:
            for b in layer:
                if a != b:
                    assert not graph.has_edge(a, b), (a, b, members)

    # … and every edge points from an earlier layer to a later one.
    index = {pid: k for k, layer in enumerate(layers) for pid in layer}
    for a, b in graph.edges:
        assert index[a] < index[b], (a, b)


@given(subsets(OPTIMIZED_ORDER))
@settings(max_examples=60, deadline=None)
def test_full_order_prefixes_always_resolve(pids):
    # Prefixes of the optimized order always carry their own inputs
    # (or resolve them as external), so the graph must always build.
    prefix = list(OPTIMIZED_ORDER[: len(pids)])
    graph = build_process_graph(prefix)
    assert set(graph.nodes) == set(prefix)
