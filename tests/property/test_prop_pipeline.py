"""Property test: implementation equivalence on randomized events.

For arbitrary (small) synthetic events, the sequential-optimized and
fully-parallel implementations must produce byte-identical artifact
trees — the pipeline-level generalization of the fixed-event
integration tests.  Marked slow: each example is a full double
pipeline run.
"""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FullyParallel, SequentialOptimized
from repro.core.context import ParallelSettings
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.dataset import generate_event_dataset
from repro.synth.events import EventSpec


def tree_hash(work_dir) -> dict[str, str]:
    return {
        p.relative_to(work_dir).as_posix(): hashlib.md5(p.read_bytes()).hexdigest()
        for p in sorted(work_dir.rglob("*"))
        if p.is_file()
    }


@st.composite
def random_events(draw):
    n_files = draw(st.integers(1, 3))
    per_file = draw(st.integers(7_300, 9_000))
    return EventSpec(
        event_id="EV-PROP",
        date="2024-01-01",
        magnitude=draw(st.floats(4.2, 6.5)),
        n_files=n_files,
        total_points=n_files * per_file,
        seed=draw(st.integers(0, 2**20)),
    )


@pytest.mark.slow
class TestPipelinePropertyEquality:
    @given(event=random_events(), workers=st.integers(2, 5))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_parallel_equals_sequential(self, tmp_path_factory, event, workers):
        config = ResponseSpectrumConfig(periods=default_periods(8), dampings=(0.05,))
        trees = {}
        for impl_cls in (SequentialOptimized, FullyParallel):
            from repro.core import RunContext

            root = tmp_path_factory.mktemp("prop-pipe") / impl_cls.name
            ctx = RunContext.for_directory(
                root,
                response_config=config,
                parallel=ParallelSettings(num_workers=workers),
            )
            # Scale the event down: keep structure, shrink records.
            points = [max(600, p // 12) for p in event.file_points()]
            generate_event_dataset(event, ctx.workspace.input_dir, points_override=points)
            impl_cls().run(ctx)
            trees[impl_cls.name] = tree_hash(ctx.workspace.work_dir)
        a = trees["seq-optimized"]
        b = trees["full-parallel"]
        assert set(a) == set(b)
        assert not [k for k in a if a[k] != b[k]]
