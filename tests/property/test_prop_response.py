"""Property-based tests for the response-spectrum solver invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.spectra.response import (
    ResponseSpectrumConfig,
    response_spectrum_nigam_jennings,
    sdof_coefficients,
    sdof_response_history,
)

acc_arrays = arrays(
    np.float64,
    st.integers(64, 400),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)

periods = st.floats(0.05, 10.0)
dampings = st.floats(0.0, 0.5)


class TestSdofProperties:
    @given(periods, dampings, st.floats(0.001, 0.05))
    @settings(max_examples=60, deadline=None)
    def test_stability(self, T, z, dt):
        # The one-step map must not amplify free vibration (|eig| <= 1).
        A, _, _ = sdof_coefficients(T, z, dt)
        eigs = np.linalg.eigvals(A)
        assert np.all(np.abs(eigs) <= 1.0 + 1e-9)

    @given(acc_arrays, periods, dampings)
    @settings(max_examples=30, deadline=None)
    def test_response_scales_linearly(self, acc, T, z):
        dt = 0.01
        x1, v1, a1 = sdof_response_history(acc, dt, T, z)
        x2, v2, a2 = sdof_response_history(2.0 * acc, dt, T, z)
        scale = max(np.abs(x1).max(), 1e-12)
        assert np.allclose(x2, 2.0 * x1, atol=1e-9 * scale)

    @given(acc_arrays, periods)
    @settings(max_examples=30, deadline=None)
    def test_damping_never_increases_displacement_peak(self, acc, T):
        # Only approximately true: for impulse-like inputs heavier
        # damping can shift the transient so the sampled peak grows a
        # few percent (hypothesis found a 5.02% case), hence the loose
        # tolerance — the property guards against gross sign/coupling
        # errors, not exact monotonicity.
        dt = 0.01
        config_lo = ResponseSpectrumConfig(periods=np.array([T]), dampings=(0.02,))
        config_hi = ResponseSpectrumConfig(periods=np.array([T]), dampings=(0.3,))
        lo = response_spectrum_nigam_jennings(acc, dt, config_lo)
        hi = response_spectrum_nigam_jennings(acc, dt, config_hi)
        assert hi.sd[0, 0] <= lo.sd[0, 0] * 1.15 + 1e-12

    @given(acc_arrays)
    @settings(max_examples=20, deadline=None)
    def test_spectra_are_non_negative_and_finite(self, acc):
        dt = 0.01
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.1, 5.0, 5), dampings=(0.05,)
        )
        spectrum = response_spectrum_nigam_jennings(acc, dt, config)
        for arr in (spectrum.sa, spectrum.sv, spectrum.sd):
            assert np.all(np.isfinite(arr))
            assert np.all(arr >= 0)

    @given(acc_arrays, periods, dampings)
    @settings(max_examples=30, deadline=None)
    def test_time_shift_invariance_of_peak(self, acc, T, z):
        # Prepending silence must not change the peak response.  The
        # first sample is zeroed so the piecewise-linear forcing is
        # identical with and without the silent prefix (otherwise the
        # prefix adds a one-step ramp from 0 to acc[0]).
        acc = acc.copy()
        acc[0] = 0.0
        dt = 0.01
        config = ResponseSpectrumConfig(periods=np.array([T]), dampings=(z,))
        base = response_spectrum_nigam_jennings(acc, dt, config)
        shifted = response_spectrum_nigam_jennings(
            np.concatenate([np.zeros(50), acc]), dt, config
        )
        scale = max(base.sd[0, 0], 1e-9)
        assert shifted.sd[0, 0] == pytest.approx(base.sd[0, 0], rel=1e-6, abs=1e-9 * scale)
