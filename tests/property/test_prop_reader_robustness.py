"""Fuzz-robustness: corrupted files never crash with foreign exceptions.

Every reader must either parse a file or raise a typed
:class:`~repro.errors.ReproError` — corrupt input from a flaky
instrument or a truncated transfer must surface as a diagnosable
format error, not an IndexError three modules away.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.peak import PeakValues
from repro.errors import ReproError
from repro.formats.common import COMPONENTS, Header
from repro.formats.filelist import read_filelist, read_metadata
from repro.formats.fourier import FourierRecord, read_fourier, write_fourier
from repro.formats.gem import GemSeries, read_gem, write_gem
from repro.formats.params import FilterParams, read_filter_params, write_filter_params
from repro.formats.response import ResponseRecord, read_response, write_response
from repro.formats.v1 import RawRecord, read_v1, write_v1
from repro.formats.v2 import CorrectedRecord, read_v2, write_v2
from repro.dsp.fir import DEFAULT_BANDPASS


def _valid_files(tmp_path):
    """One valid instance of every format, returned as (path, reader)."""
    rng = np.random.default_rng(0)
    header = Header(station="FZ", component="l", dt=0.01, npts=0, magnitude=5.0)
    out = []

    v1 = tmp_path / "FZ.v1"
    write_v1(v1, RawRecord(header=header.copy_for(), components={c: rng.normal(size=12) for c in COMPONENTS}))
    out.append((v1, read_v1))

    v2 = tmp_path / "FZl.v2"
    write_v2(
        v2,
        CorrectedRecord(
            header=header.copy_for(),
            acceleration=rng.normal(size=10),
            velocity=rng.normal(size=10),
            displacement=rng.normal(size=10),
            peaks=PeakValues(1, 0.1, 2, 0.2, 3, 0.3),
            f_stop_low=0.05,
            f_pass_low=0.1,
            f_pass_high=25.0,
            f_stop_high=30.0,
        ),
    )
    out.append((v2, read_v2))

    f = tmp_path / "FZl.f"
    periods = np.geomspace(0.1, 10, 8)
    write_fourier(
        f,
        FourierRecord(
            header=header.copy_for(),
            periods=periods,
            acceleration=np.abs(rng.normal(size=8)) + 0.1,
            velocity=np.abs(rng.normal(size=8)) + 0.1,
            displacement=np.abs(rng.normal(size=8)) + 0.1,
        ),
    )
    out.append((f, read_fourier))

    r = tmp_path / "FZl.r"
    write_response(
        r,
        ResponseRecord(
            header=header.copy_for(),
            periods=periods,
            dampings=np.array([0.05]),
            sa=np.abs(rng.normal(size=(1, 8))),
            sv=np.abs(rng.normal(size=(1, 8))),
            sd=np.abs(rng.normal(size=(1, 8))),
        ),
    )
    out.append((r, read_response))

    gem = tmp_path / "FZl2A.gem"
    write_gem(gem, GemSeries("FZ", "l", "2", "A", np.arange(5.0), rng.normal(size=5)))
    out.append((gem, read_gem))

    par = tmp_path / "filter.par"
    write_filter_params(par, FilterParams(default=DEFAULT_BANDPASS))
    out.append((par, read_filter_params))

    lst = tmp_path / "v1files.lst"
    from repro.formats.filelist import write_filelist

    write_filelist(lst, ["FZ.v1"])
    out.append((lst, read_filelist))

    meta = tmp_path / "x.meta"
    from repro.formats.filelist import MetadataFile, write_metadata

    write_metadata(meta, MetadataFile(purpose="X", entries=[("FZ", "FZl.v2")]))
    out.append((meta, read_metadata))
    return out


@pytest.fixture(scope="module")
def format_corpus(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("fuzz-corpus")
    return [(path.read_text(), reader, path.suffix) for path, reader in _valid_files(tmp)]


corruptions = st.sampled_from(["truncate", "delete_line", "mangle_line", "swap_chars", "blank"])


class TestReaderRobustness:
    @given(
        which=st.integers(0, 7),
        corruption=corruptions,
        position=st.floats(0.0, 1.0),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_corrupted_file_never_crashes(
        self, tmp_path_factory, format_corpus, which, corruption, position, data
    ):
        text, reader, suffix = format_corpus[which % len(format_corpus)]
        lines = text.splitlines()
        idx = min(int(position * len(lines)), len(lines) - 1)
        if corruption == "truncate":
            mutated = "\n".join(lines[:idx])
        elif corruption == "delete_line":
            mutated = "\n".join(lines[:idx] + lines[idx + 1 :])
        elif corruption == "mangle_line":
            junk = data.draw(st.text(max_size=30))
            mutated = "\n".join(lines[:idx] + [junk] + lines[idx + 1 :])
        elif corruption == "swap_chars":
            line = lines[idx]
            if len(line) >= 2:
                k = data.draw(st.integers(0, len(line) - 2))
                line = line[:k] + line[k + 1] + line[k] + line[k + 2 :]
            mutated = "\n".join(lines[:idx] + [line] + lines[idx + 1 :])
        else:
            mutated = ""
        path = tmp_path_factory.mktemp("fuzz") / f"mutant{suffix}"
        path.write_text(mutated + "\n")
        try:
            reader(path)
        except ReproError:
            pass  # typed rejection is the contract
        # Silent acceptance is fine too: some mutations are harmless
        # (swapping characters inside a station name, for example).
