"""Property-based round-trip tests for the file formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dsp.peak import PeakValues
from repro.formats.common import COMPONENTS, Header, format_fixed_block, parse_fixed_block
from repro.formats.gem import GemSeries, read_gem, write_gem
from repro.formats.v1 import RawRecord, read_v1, write_v1
from repro.formats.v2 import CorrectedRecord, read_v2, write_v2

# E15.7 fields carry ~7 significant digits; values are drawn within the
# format's representable range.
format_floats = st.floats(
    min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
)

station_names = st.text(
    alphabet=st.sampled_from("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"), min_size=1, max_size=8
)


def value_arrays(min_size=1, max_size=64):
    return arrays(np.float64, st.integers(min_size, max_size), elements=format_floats)


def assert_close_e15(a, b):
    # E15.7 guarantees 7 significant digits.
    np.testing.assert_allclose(a, b, rtol=2e-7, atol=1e-30)


class TestFixedBlockProperties:
    @given(value_arrays(min_size=0, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, values):
        text = format_fixed_block(values)
        parsed = parse_fixed_block(text.splitlines(), len(values))
        assert_close_e15(parsed, values)


class TestV1Properties:
    @given(station_names, value_arrays(min_size=1, max_size=40), st.floats(1e-3, 0.1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, tmp_path_factory, station, base, dt):
        components = {c: base * (i + 1) for i, c in enumerate(COMPONENTS)}
        header = Header(station=station, dt=dt, npts=len(base))
        record = RawRecord(header=header, components=components)
        path = tmp_path_factory.mktemp("v1prop") / f"{station}.v1"
        write_v1(path, record)
        back = read_v1(path)
        assert back.header.station == station
        assert back.header.dt == pytest.approx(dt, rel=1e-5)
        for comp in COMPONENTS:
            assert_close_e15(back.components[comp], components[comp])


class TestV2Properties:
    @given(value_arrays(min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, tmp_path_factory, series):
        record = CorrectedRecord(
            header=Header(station="PR", component="l", dt=0.01, npts=len(series)),
            acceleration=series,
            velocity=series * 0.5,
            displacement=series * 0.25,
            peaks=PeakValues(
                float(series[0]), 0.0, float(series[-1]), 0.1, 0.0, 0.2
            ),
            f_stop_low=0.05,
            f_pass_low=0.1,
            f_pass_high=25.0,
            f_stop_high=30.0,
        )
        path = tmp_path_factory.mktemp("v2prop") / "PRl.v2"
        write_v2(path, record)
        back = read_v2(path)
        assert_close_e15(back.acceleration, record.acceleration)
        assert_close_e15(back.velocity, record.velocity)
        assert_close_e15(back.displacement, record.displacement)


class TestGemProperties:
    @given(
        station_names,
        st.sampled_from(["2", "R"]),
        st.sampled_from(["A", "V", "D"]),
        value_arrays(min_size=0, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, tmp_path_factory, station, source, quantity, values):
        series = GemSeries(
            station=station,
            component="t",
            source=source,
            quantity=quantity,
            abscissa=np.arange(len(values), dtype=float),
            values=values,
        )
        path = tmp_path_factory.mktemp("gemprop") / "x.gem"
        write_gem(path, series)
        back = read_gem(path)
        assert back.station == station
        assert back.source == source
        assert back.quantity == quantity
        assert_close_e15(back.values, values)
