"""Property-based tests for the parallel runtime and the simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.chunks import Schedule, chunk_indices
from repro.parallel.omp import parallel_for
from repro.parallel.simulate import SimTask, SimulatedMachine, simulate_task_graph

schedules = st.sampled_from(list(Schedule))


class TestChunkProperties:
    @given(st.integers(0, 500), st.integers(1, 32), schedules,
           st.one_of(st.none(), st.integers(1, 50)))
    @settings(max_examples=100, deadline=None)
    def test_exact_cover(self, n, workers, schedule, chunk_size):
        chunks = chunk_indices(n, workers, schedule, chunk_size)
        covered = [i for chunk in chunks for i in chunk]
        assert sorted(covered) == list(range(n))
        assert len(covered) == n  # no duplicates

    @given(st.integers(1, 300), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_static_balance(self, n, workers):
        chunks = chunk_indices(n, workers, Schedule.STATIC)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestParallelForProperties:
    @given(st.lists(st.integers(-1000, 1000), max_size=40), st.integers(1, 5), schedules)
    @settings(max_examples=30, deadline=None)
    def test_matches_map(self, items, workers, schedule):
        out = parallel_for(
            abs, items, backend="thread", num_workers=workers, schedule=schedule
        )
        assert out == [abs(i) for i in items]


def task_graphs():
    """Random DAGs: each task may depend on earlier-indexed tasks."""

    @st.composite
    def build(draw):
        n = draw(st.integers(1, 25))
        tasks = []
        for i in range(n):
            deps = ()
            if i:
                dep_idx = draw(
                    st.lists(st.integers(0, i - 1), max_size=3, unique=True)
                )
                deps = tuple(f"t{j}" for j in dep_idx)
            tasks.append(
                SimTask(
                    name=f"t{i}",
                    work_s=draw(st.floats(0.0, 10.0)),
                    io_fraction=draw(st.floats(0.0, 0.6)),
                    mem_fraction=draw(st.floats(0.0, 0.4)),
                    deps=deps,
                )
            )
        return tasks

    return build()


def machines():
    @st.composite
    def build(draw):
        n = draw(st.integers(1, 8))
        speeds = tuple(draw(st.floats(0.2, 1.0)) for _ in range(n))
        return SimulatedMachine(
            speeds=speeds,
            io_capacity=draw(st.floats(0.5, 8.0)),
            mem_capacity=draw(st.floats(0.5, 8.0)),
        )

    return build()


class TestSchedulerProperties:
    @given(task_graphs(), machines())
    @settings(max_examples=60, deadline=None)
    def test_fundamental_bounds(self, tasks, machine):
        result = simulate_task_graph(tasks, machine)
        total_work = sum(t.work_s for t in tasks)
        # Makespan cannot beat total work over aggregate speed.
        aggregate = sum(machine.speeds)
        assert result.makespan_s >= total_work / aggregate - 1e-6
        # And cannot beat the critical path at the fastest worker.
        by_name = {t.name: t for t in tasks}
        depth: dict[str, float] = {}

        def path_cost(name: str) -> float:
            if name not in depth:
                task = by_name[name]
                depth[name] = task.work_s + max(
                    (path_cost(d) for d in task.deps), default=0.0
                )
            return depth[name]

        critical = max(path_cost(t.name) for t in tasks)
        fastest = max(machine.speeds)
        assert result.makespan_s >= critical / fastest - 1e-6

    @given(task_graphs(), machines())
    @settings(max_examples=60, deadline=None)
    def test_all_tasks_placed_exactly_once(self, tasks, machine):
        result = simulate_task_graph(tasks, machine)
        assert sorted(p.name for p in result.placements) == sorted(t.name for t in tasks)

    @given(task_graphs(), machines())
    @settings(max_examples=60, deadline=None)
    def test_dependencies_respected(self, tasks, machine):
        result = simulate_task_graph(tasks, machine)
        finish = {p.name: p.finish_s for p in result.placements}
        start = {p.name: p.start_s for p in result.placements}
        for task in tasks:
            for dep in task.deps:
                assert start[task.name] >= finish[dep] - 1e-9

    @given(task_graphs(), machines())
    @settings(max_examples=60, deadline=None)
    def test_no_worker_overlap(self, tasks, machine):
        result = simulate_task_graph(tasks, machine)
        by_worker: dict[int, list[tuple[float, float]]] = {}
        for p in result.placements:
            by_worker.setdefault(p.worker, []).append((p.start_s, p.finish_s))
        for intervals in by_worker.values():
            intervals.sort()
            for (_, f1), (s2, _) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9

    @given(task_graphs())
    @settings(max_examples=40, deadline=None)
    def test_more_identical_workers_never_hurt(self, tasks):
        slow = SimulatedMachine(speeds=(1.0,), io_capacity=100.0, mem_capacity=100.0)
        fast = SimulatedMachine(speeds=(1.0,) * 4, io_capacity=100.0, mem_capacity=100.0)
        t_slow = simulate_task_graph(tasks, slow).makespan_s
        t_fast = simulate_task_graph(tasks, fast).makespan_s
        # With uniform speeds and no contention, a greedy list schedule
        # on more workers is within the classic 2x Graham bound of the
        # single-worker serialization (and in practice never slower).
        assert t_fast <= t_slow + 1e-6
