"""Critical path, stage efficiency, and the speedup model — exact math
on a hand-built trace.

The fixture is small enough to solve by hand:

    run   [0, 10]
      A   [0, 4]   stage, no units (serial)
      B   [4, 10]  stage with three chunks:
            c1 [4, 7]  worker w1
            c2 [4, 9]  worker w2
            c3 [7, 10] worker w1

The best non-overlapping chain through B is c1 + c3 (6 s), beating c2
alone (5 s); the critical path is A then c1 then c3, length 10.
"""

from __future__ import annotations

import pytest

from repro.observability.critpath import (
    OUTSIDE_STAGES,
    critical_path,
    critical_path_length,
    explain,
    render_explain,
    speedup_model,
    stage_shares,
    stage_stats,
)
from repro.observability.tracer import Span, Trace


def span(span_id, parent_id, name, kind, start, duration, worker="main"):
    return Span(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        kind=kind,
        start_s=start,
        duration_s=duration,
        worker=worker,
    )


@pytest.fixture()
def trace() -> Trace:
    return Trace(
        epoch=0.0,
        spans=[
            span(1, None, "run", "run", 0.0, 10.0),
            span(2, 1, "A", "stage", 0.0, 4.0),
            span(3, 1, "B", "stage", 4.0, 6.0),
            span(4, 3, "c1", "chunk", 4.0, 3.0, worker="w1"),
            span(5, 3, "c2", "chunk", 4.0, 5.0, worker="w2"),
            span(6, 3, "c3", "chunk", 7.0, 3.0, worker="w1"),
        ],
    )


class TestCriticalPath:
    def test_segments_partition_root_wall_clock(self, trace):
        segments = critical_path(trace)
        assert critical_path_length(segments) == pytest.approx(10.0)
        cursor = 0.0
        for seg in segments:
            assert seg.start_s == pytest.approx(cursor)
            cursor = seg.end_s
        assert cursor == pytest.approx(10.0)

    def test_chain_prefers_max_total_duration(self, trace):
        # c1 + c3 (6 s) beats the single overlapping c2 (5 s).
        names = [s.name for s in critical_path(trace) if s.kind == "chunk"]
        assert names == ["c1", "c3"]

    def test_stage_shares(self, trace):
        shares = stage_shares(critical_path(trace))
        assert shares == {"A": pytest.approx(4.0), "B": pytest.approx(6.0)}

    def test_orchestration_gap_is_outside_stages(self):
        trace = Trace(
            epoch=0.0,
            spans=[
                span(1, None, "run", "run", 0.0, 5.0),
                span(2, 1, "A", "stage", 1.0, 3.0),
            ],
        )
        shares = stage_shares(critical_path(trace))
        assert shares[OUTSIDE_STAGES] == pytest.approx(2.0)  # [0,1] + [4,5]
        assert shares["A"] == pytest.approx(3.0)

    def test_empty_trace(self):
        assert critical_path(Trace(epoch=0.0, spans=[])) == []


class TestStageStats:
    def test_serial_stage_counts_as_its_own_work(self, trace):
        stats = {s.name: s for s in stage_stats(trace)}
        a = stats["A"]
        assert (a.work_s, a.max_unit_s, a.units, a.lanes) == (4.0, 4.0, 0, 1)
        assert not a.parallel
        assert a.efficiency == 1.0

    def test_parallel_stage_measures_units_and_lanes(self, trace):
        b = {s.name: s for s in stage_stats(trace)}["B"]
        assert b.parallel
        assert b.work_s == pytest.approx(11.0)
        assert b.max_unit_s == pytest.approx(5.0)
        assert b.units == 3
        assert b.lanes == 2  # w1 and w2
        assert b.efficiency == pytest.approx(11.0 / (2 * 6.0))

    def test_efficiency_caps_at_one(self):
        trace = Trace(
            epoch=0.0,
            spans=[
                span(1, None, "B", "stage", 0.0, 1.0),
                span(2, 1, "c", "chunk", 0.0, 2.0, worker="w1"),
            ],
        )
        assert stage_stats(trace)[0].efficiency == 1.0


class TestSpeedupModel:
    def test_work_span_quantities(self, trace):
        model = speedup_model(trace, workers=2)
        assert model.serial_s == pytest.approx(4.0)
        assert model.t1_s == pytest.approx(15.0)  # 4 + 11
        assert model.t_inf_s == pytest.approx(9.0)  # 4 + 5
        assert model.measured_s == pytest.approx(10.0)

    def test_amdahl_at_two_workers(self, trace):
        model = speedup_model(trace, workers=2)
        assert model.parallel_fraction == pytest.approx(11.0 / 15.0)
        # 1 / ((4/15) + (11/15)/2) = 30/19
        assert model.amdahl_speedup == pytest.approx(30.0 / 19.0)

    def test_brent_bound(self, trace):
        model = speedup_model(trace, workers=2)
        assert model.brent_time_s == pytest.approx(4.0 + 11.0 / 2 + 5.0)
        assert model.brent_speedup == pytest.approx(15.0 / 14.5)

    def test_hard_ceiling(self, trace):
        assert speedup_model(trace, workers=2).bound_speedup == pytest.approx(
            min(2.0, 15.0 / 9.0)
        )
        # With many workers the span term dominates.
        assert speedup_model(trace, workers=64).bound_speedup == pytest.approx(
            15.0 / 9.0
        )

    def test_to_dict_round_numbers(self, trace):
        data = speedup_model(trace, workers=2).to_dict()
        assert data["t1_s"] == 15.0
        assert data["amdahl_speedup"] == round(30.0 / 19.0, 4)


class TestExplain:
    def test_report_structure(self, trace):
        report = explain(trace, workers=2)
        assert report["critical_path_s"] == pytest.approx(10.0)
        stages = {s["stage"]: s for s in report["stages"]}
        assert stages["B"]["critical_path_share"] == pytest.approx(0.6)
        assert stages["B"]["efficiency"] == pytest.approx(11.0 / 12.0, abs=1e-4)
        assert report["model"]["t_inf_s"] == pytest.approx(9.0)

    def test_render_names_bottleneck_first(self, trace):
        text = render_explain(explain(trace, workers=2))
        lines = text.splitlines()
        assert "critical path" in lines[0]
        # Stages ranked by critical-path share: B (60%) before A (40%).
        assert lines[1].startswith("stage B")
        assert "predicted speedup" in text

    def test_render_includes_measured_speedup(self, trace):
        text = render_explain(explain(trace, workers=2), measured_speedup=1.23)
        assert "measured 1.23x" in text
