"""The sampling profiler: merge algebra, exports, span attribution."""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.profiling import (
    Profile,
    SamplingProfiler,
    begin_worker_profile,
    drain_worker_profile,
    profiling_session,
    stack_state,
    thread_labels,
    labeled_thread,
)
from repro.observability.tracer import Tracer
from repro.parallel.omp import parallel_for

# Exactly-representable interval so summed weights are order-exact and
# the associativity assertions can compare floats with ==.
INTERVAL = 0.25

labels_st = st.dictionaries(
    st.sampled_from(["stage", "span", "process", "state"]),
    st.sampled_from(["I", "IX", "chunk", "waiting"]),
    max_size=3,
)
stack_st = st.lists(
    st.sampled_from(["mod:f", "mod:g", "dsp:filter", "io:read"]),
    min_size=1,
    max_size=4,
).map(tuple)
entries_st = st.lists(
    st.tuples(stack_st, labels_st, st.integers(min_value=1, max_value=5)),
    max_size=8,
)


def build(entries) -> Profile:
    profile = Profile(interval_s=INTERVAL)
    for stack, labels, count in entries:
        profile.record(stack, labels, count=count)
    return profile


def _busy(seconds: float) -> int:
    """Burn CPU (not sleep) so the sampler sees working frames."""
    deadline = time.perf_counter() + seconds
    n = 0
    while time.perf_counter() < deadline:
        n += 1
    return n


def _work_item(_i: int) -> int:  # module-level: process pools pickle it
    return _busy(0.03)


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(a=entries_st, b=entries_st, c=entries_st)
    def test_associative(self, a, b, c):
        left = build(a).merge(build(b).merge(build(c)))
        right = build(a).merge(build(b)).merge(build(c))
        assert left.entries() == right.entries()

    @settings(max_examples=50, deadline=None)
    @given(a=entries_st, b=entries_st)
    def test_commutative(self, a, b):
        assert build(a).merge(build(b)).entries() == build(b).merge(build(a)).entries()

    @settings(max_examples=25, deadline=None)
    @given(a=entries_st)
    def test_empty_is_identity(self, a):
        assert build(a).merge(Profile(interval_s=INTERVAL)).entries() == build(a).entries()

    @settings(max_examples=25, deadline=None)
    @given(a=entries_st, b=entries_st)
    def test_dict_shard_merges_like_profile(self, a, b):
        # The wire format (to_dict) is what rides home with chunk
        # results; merging it must equal merging the live object.
        via_shard = build(a).merge(build(b).to_dict())
        via_profile = build(a).merge(build(b))
        assert via_shard.entries() == via_profile.entries()


class TestRoundTrips:
    def test_dict_round_trip_exact(self):
        profile = build(
            [(("mod:f", "mod:g"), {"stage": "IX"}, 3), (("io:read",), {}, 1)]
        )
        clone = Profile.from_dict(profile.to_dict())
        assert clone.entries() == profile.entries()
        assert clone.interval_s == profile.interval_s

    def test_collapsed_round_trip_keeps_stacks_and_counts(self):
        profile = build(
            [
                (("mod:f", "mod:g"), {"stage": "IX"}, 3),
                (("mod:f", "mod:g"), {"stage": "X"}, 2),  # merged across labels
                (("io:read",), {}, 1),
            ]
        )
        text = profile.to_collapsed()
        assert "mod:f;mod:g 5" in text
        clone = Profile.from_collapsed(text, interval_s=INTERVAL)
        assert clone.total_samples == profile.total_samples
        assert {s for _l, s, _c, _s in clone.entries()} == {
            ("mod:f", "mod:g"), ("io:read",)
        }

    def test_speedscope_weights_cover_non_idle_seconds(self):
        profile = build(
            [
                (("mod:f",), {"stage": "IX"}, 4),
                (("threading:wait",), {"state": "idle"}, 2),
            ]
        )
        doc = profile.to_speedscope("t")
        assert doc["$schema"].endswith("file-format-schema.json")
        (scope,) = doc["profiles"]
        assert sum(scope["weights"]) == pytest.approx(4 * INTERVAL)
        frames = doc["shared"]["frames"]
        assert all(
            0 <= i < len(frames) for sample in scope["samples"] for i in sample
        )

    def test_speedscope_group_by_stage_splits_profiles(self):
        profile = build(
            [(("mod:f",), {"stage": "IX"}, 1), (("mod:g",), {"stage": "X"}, 1)]
        )
        doc = profile.to_speedscope("t", group_by="stage")
        assert [p["name"] for p in doc["profiles"]] == ["IX", "X"]


class TestStackState:
    def test_runtime_leaf_is_waiting(self):
        assert stack_state(("mod:f", "threading:wait")) == "waiting"
        assert stack_state(("mod:f", "queue:get")) == "waiting"

    def test_all_runtime_is_idle(self):
        assert stack_state(("threading:_bootstrap", "queue:get")) == "idle"

    def test_working_otherwise(self):
        assert stack_state(("threading:_bootstrap", "mod:f")) == "working"


class TestThreadLabels:
    def test_labeled_thread_registers_and_clears(self):
        import threading

        tid = threading.get_ident()
        with labeled_thread({"stage": "IX"}):
            assert thread_labels(tid) == {"stage": "IX"}
        assert thread_labels(tid) is None


def _run_profiled_loop(backend: str) -> Profile:
    tracer = Tracer()
    profiler = SamplingProfiler(hz=250.0)
    with profiling_session(profiler, tracer=tracer):
        with tracer.span("run", kind="run", implementation="prof-test"):
            with tracer.span("IX", kind="stage", stage="IX"):
                parallel_for(
                    _work_item, list(range(8)), backend=backend, num_workers=2,
                    tracer=tracer, span="response_trace",
                )
    return profiler.profile


class TestSpanAttribution:
    def test_thread_backend_samples_attributed(self):
        profile = _run_profiled_loop("thread")
        assert profile.total_samples > 0
        assert profile.attributed_fraction() >= 0.95
        assert "IX" in profile.label_values("stage")

    def test_process_backend_merges_worker_shards(self):
        profile = _run_profiled_loop("process")
        assert profile.total_samples > 0
        assert profile.attributed_fraction() >= 0.95
        assert "IX" in profile.label_values("stage")

    def test_serial_backend_attributes_loop_body(self):
        profile = _run_profiled_loop("serial")
        assert profile.attributed_fraction() >= 0.95
        assert "IX" in profile.label_values("stage")


class TestWorkerProtocol:
    def test_bare_process_gets_a_sampling_window(self):
        # No driver profiler installed (the bare pool-worker situation):
        # the shim opens a window on the process-wide worker sampler.
        kind, _payload = token = begin_worker_profile(
            250.0, {"stage": "IX", "backend": "process"}
        )
        assert kind == "window"
        _busy(0.08)
        shard = drain_worker_profile(token)
        assert shard is not None and shard["entries"]
        profile = Profile.from_dict(shard)
        assert "IX" in profile.label_values("stage")
        assert profile.attributed_fraction() >= 0.95

    def test_driver_process_just_registers_labels(self):
        import threading

        tracer = Tracer()
        profiler = SamplingProfiler(hz=250.0)
        with profiling_session(profiler, tracer=tracer):
            kind, tid = token = begin_worker_profile(250.0, {"stage": "X"})
            assert kind == "labels"
            assert tid == threading.get_ident()
            assert thread_labels(tid) == {"stage": "X"}
            # In-process the driver sampler already holds the samples:
            # nothing to ship.
            assert drain_worker_profile(token) is None
        assert thread_labels(threading.get_ident()) is None


class TestProfilerLifecycle:
    def test_disabled_profiler_records_nothing(self):
        profiler = SamplingProfiler(hz=250.0)
        profiler.enabled = False
        with profiling_session(profiler) as installed:
            assert installed is None
        assert profiler.profile.total_samples == 0

    def test_pickling_disables_and_empties(self):
        import pickle

        profiler = SamplingProfiler(hz=123.0)
        clone = pickle.loads(pickle.dumps(profiler))
        assert clone.hz == 123.0
        assert clone.enabled is False
        assert clone.profile.total_samples == 0

    def test_sample_once_sees_other_threads(self):
        # The snapshot covers every thread except the sampler itself, so
        # a busy helper thread must show its frames.
        import threading

        stop = threading.Event()
        worker = threading.Thread(
            target=lambda: [_busy(0.01) for _ in iter(lambda: stop.is_set(), True)]
        )
        worker.start()
        try:
            profiler = SamplingProfiler(hz=250.0)
            assert profiler.sample_once() >= 1
        finally:
            stop.set()
            worker.join()
        frames = [f for _l, s, _c, _s in profiler.profile.entries() for f in s]
        assert any("test_profiling" in f for f in frames)
