"""Traced pipeline runs: span structure and trace/result agreement.

The acceptance bar: for every backend, the per-stage span durations in
the exported trace reproduce ``PipelineResult.stage_durations`` within
1 ms (they are in fact identical — the result is set from the spans).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.core import FullyParallel, SequentialOptimized, WavefrontParallel
from repro.core.context import ParallelSettings
from repro.core.stages import STAGES
from repro.observability.export import to_chrome_trace, write_chrome_trace
from repro.observability.tracer import Tracer

from tests.conftest import SINGLE_EVENT, make_context


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory: pytest.TempPathFactory) -> Path:
    directory = tmp_path_factory.mktemp("trace-dataset")
    from repro.synth.dataset import generate_event_dataset

    generate_event_dataset(SINGLE_EVENT, directory)
    return directory


def traced_run(tmp_path: Path, dataset_dir: Path, impl, backend: str):
    ctx = make_context(
        tmp_path / "ws",
        parallel=ParallelSettings.uniform(backend, num_workers=2),
    )
    for src in dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    ctx.tracer = Tracer()
    return impl.run(ctx)


def assert_trace_matches_result(result) -> None:
    trace = result.trace
    assert trace is not None and trace.spans
    span_stages = trace.stage_durations()
    assert set(span_stages) == set(result.stage_durations)
    for stage, duration in result.stage_durations.items():
        assert abs(span_stages[stage] - duration) < 1e-3, stage


@pytest.mark.parametrize(
    "backend",
    ["serial", "thread", pytest.param("process", marks=pytest.mark.slow)],
)
def test_full_parallel_trace_all_backends(
    tmp_path: Path, dataset_dir: Path, backend: str
) -> None:
    result = traced_run(tmp_path, dataset_dir, FullyParallel(), backend)
    trace = result.trace
    assert_trace_matches_result(result)

    # Structure: one run root containing one implementation span
    # containing the 11 stage spans, in plan order.
    roots = trace.roots()
    assert len(roots) == 1 and roots[0].kind == "run"
    run = roots[0]
    assert run.attributes["implementation"] == "full-parallel"
    assert run.attributes["loop_backend"] == backend
    (impl_span,) = trace.children(run)
    assert impl_span.kind == "implementation"
    stages = [s for s in trace.children(impl_span) if s.kind == "stage"]
    assert [s.name for s in stages] == [stage.name for stage in STAGES]

    # Leaf work: the parallel stages produced chunk/task spans nested
    # under their stage, regardless of backend.
    assert trace.by_kind("task"), "tasks strategy produced no task spans"
    chunks = trace.by_kind("chunk")
    assert chunks, "loop strategy produced no chunk spans"
    by_id = {s.span_id: s for s in trace.spans}
    for chunk in chunks:
        cursor = chunk
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]
            if cursor.kind == "stage":
                break
        assert cursor.kind == "stage", f"chunk {chunk.name} not under a stage"

    # Every span fits inside the run span's window (small slack for the
    # wall-clock placement of cross-process records).
    for span in trace.spans:
        assert span.start_s >= run.start_s - 0.05
        assert span.end_s <= run.end_s + 0.05


def test_sequential_trace_has_process_spans(tmp_path: Path, dataset_dir: Path) -> None:
    result = traced_run(tmp_path, dataset_dir, SequentialOptimized(), "serial")
    assert_trace_matches_result(result)
    trace = result.trace
    processes = trace.by_kind("process")
    # One process span per executed process, each inside its own stage
    # span, matching the result's process rows one-for-one.
    assert [p.attributes["pid"] for p in processes] == [p.pid for p in result.processes]
    for span in processes:
        parent = next(s for s in trace.spans if s.span_id == span.parent_id)
        assert parent.kind == "stage"


def test_wavefront_trace(tmp_path: Path, dataset_dir: Path) -> None:
    result = traced_run(tmp_path, dataset_dir, WavefrontParallel(), "thread")
    assert_trace_matches_result(result)
    names = {s.name for s in result.trace.by_kind("stage")}
    assert names == {"prologue", "wavefront", "epilogue"}
    assert result.trace.by_kind("chunk"), "station pipelines should be chunk spans"


def test_chrome_export_matches_result(tmp_path: Path, dataset_dir: Path) -> None:
    """The acceptance check, end to end through the JSON file."""
    result = traced_run(tmp_path, dataset_dir, FullyParallel(), "thread")
    path = write_chrome_trace(tmp_path / "run.trace.json", result.trace)
    doc = json.loads(path.read_text())
    assert doc == to_chrome_trace(result.trace)
    sums: dict[str, float] = {}
    for event in doc["traceEvents"]:
        if event.get("ph") == "X" and event.get("cat") == "stage":
            sums[event["name"]] = sums.get(event["name"], 0.0) + event["dur"] / 1e6
    assert set(sums) == set(result.stage_durations)
    for stage, duration in result.stage_durations.items():
        assert abs(sums[stage] - duration) < 1e-3


def test_untraced_run_has_no_trace(tmp_path: Path, dataset_dir: Path) -> None:
    ctx = make_context(tmp_path / "ws")
    for src in dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    result = SequentialOptimized().run(ctx)
    assert ctx.tracer is None
    assert result.trace is None
    assert result.stage_durations  # timing still reported
