"""PipelineResult serialization and the name-lookup error contract."""

from __future__ import annotations

import json

import pytest

from repro.core import ALL_IMPLEMENTATIONS, implementation_by_name
from repro.core.runner import PipelineResult, ProcessTiming
from repro.observability.tracer import Tracer


def sample_result(with_trace: bool) -> PipelineResult:
    trace = None
    if with_trace:
        tracer = Tracer()
        with tracer.span("run", kind="run", implementation="full-parallel"):
            with tracer.span("I", kind="stage"):
                pass
        trace = tracer.trace()
    return PipelineResult(
        implementation="full-parallel",
        total_s=1.25,
        processes=[
            ProcessTiming(pid=0, name="read_headers", stage="I", duration_s=0.1),
            ProcessTiming(pid=16, name="response_spectra", stage="IX", duration_s=0.9),
        ],
        stage_durations={"I": 0.1, "IX": 0.9},
        trace=trace,
    )


@pytest.mark.parametrize("with_trace", [False, True])
def test_round_trip_exact(with_trace: bool) -> None:
    result = sample_result(with_trace)
    clone = PipelineResult.from_dict(result.to_dict())
    assert clone == result  # trace excluded from equality by design
    assert clone.processes == result.processes
    assert clone.stage_durations == result.stage_durations
    if with_trace:
        assert clone.trace is not None
        assert clone.trace.epoch == result.trace.epoch
        assert clone.trace.spans == result.trace.spans
    else:
        assert clone.trace is None


def test_round_trip_survives_json(tmp_path) -> None:
    result = sample_result(True)
    path = tmp_path / "result.json"
    path.write_text(json.dumps(result.to_dict()))
    clone = PipelineResult.from_dict(json.loads(path.read_text()))
    assert clone == result
    assert clone.trace.spans == result.trace.spans


def test_unknown_implementation_error_lists_names() -> None:
    with pytest.raises(ValueError) as excinfo:
        implementation_by_name("no-such-impl")
    message = str(excinfo.value)
    assert "no-such-impl" in message
    for impl in ALL_IMPLEMENTATIONS:
        assert impl.name in message
