"""Exporter tests on a hand-built trace — fast, no pipeline."""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.observability.export import (
    pipeline_result_view,
    to_chrome_trace,
    to_prometheus_text,
    to_simulation_result,
    trace_placements,
    write_chrome_trace,
)
from repro.observability.tracer import Tracer
from repro.parallel.timing import stage_timings_from_trace
from repro.plotting.gantt import plot_trace_gantt


@pytest.fixture()
def sample_trace():
    """run > implementation > two stages, with process/chunk leaves."""
    tracer = Tracer()
    with tracer.span("full-parallel @ ws", kind="run", implementation="full-parallel"):
        with tracer.span("full-parallel", kind="implementation"):
            with tracer.span("IX", kind="stage", strategy="loop") as stage9:
                time.sleep(0.002)
                tracer.record(
                    "response_trace[0:2]", kind="chunk", start_s=tracer.now(),
                    duration_s=0.001, worker="999:pool-0", parent=stage9, size=2,
                )
            with tracer.span("X", kind="stage", strategy="seq"):
                with tracer.span("P16 plot_spectra", kind="process", pid=16, stage="X"):
                    time.sleep(0.001)
    return tracer.trace()


class TestChromeTrace:
    def test_schema(self, sample_trace) -> None:
        doc = to_chrome_trace(sample_trace)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["epoch_unix_s"] == sample_trace.epoch
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(meta) + len(complete) == len(events)
        # One thread_name metadata row per distinct worker.
        workers = {s.worker for s in sample_trace.spans}
        assert {e["args"]["name"] for e in meta} == workers
        assert len(complete) == len(sample_trace.spans)
        for event in complete:
            assert event["ph"] == "X"
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["cat"] in ("run", "implementation", "stage", "process", "chunk")
            assert "span_id" in event["args"]

    def test_timestamps_are_microseconds(self, sample_trace) -> None:
        doc = to_chrome_trace(sample_trace)
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        stage = next(s for s in sample_trace.spans if s.name == "IX")
        assert by_name["IX"]["ts"] == pytest.approx(stage.start_s * 1e6)
        assert by_name["IX"]["dur"] == pytest.approx(stage.duration_s * 1e6)

    def test_write_round_trips_as_json(self, sample_trace, tmp_path: Path) -> None:
        out = write_chrome_trace(tmp_path / "t.json", sample_trace)
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) > 0


class TestPrometheus:
    def test_gauges_present_and_parseable(self, sample_trace) -> None:
        text = to_prometheus_text(sample_trace)
        assert text.endswith("\n")
        for metric in (
            "repro_run_duration_seconds",
            "repro_stage_duration_seconds",
            "repro_span_count",
            "repro_stage_work_seconds_total",
            "repro_stage_work_spans",
        ):
            assert f"# TYPE {metric} gauge" in text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_labels, value = line.rsplit(" ", 1)
            float(value)  # parseable sample
            assert "{" in name_labels and name_labels.endswith("}")

    def test_work_attributed_to_enclosing_stage(self, sample_trace) -> None:
        text = to_prometheus_text(sample_trace)
        # The chunk ran under stage IX even though it carries no stage
        # attribute of its own — attribution goes through parent links.
        assert 'repro_stage_work_spans{stage="IX"} 1.000000' in text

    def test_label_escaping(self) -> None:
        tracer = Tracer()
        with tracer.span('we"ird', kind="stage"):
            pass
        text = to_prometheus_text(tracer.trace())
        assert 'stage="we\\"ird"' in text

    def test_registry_types_survive_combined_export(self, sample_trace) -> None:
        # Regression guard: the trace-derived series are gauges, but a
        # registry appended to the same exposition must keep counter
        # and histogram families intact (never degrade to gauge).
        from repro.observability.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("io_total").inc(5)
        reg.histogram("chunk_seconds", buckets=(1.0,)).observe(0.5)
        text = to_prometheus_text(sample_trace, metrics=reg)
        assert "# TYPE repro_run_duration_seconds gauge" in text
        assert "# TYPE io_total counter" in text
        assert "# TYPE io_total gauge" not in text
        assert "# TYPE chunk_seconds histogram" in text
        assert 'chunk_seconds_bucket{le="+Inf"} 1' in text
        assert "chunk_seconds_sum 0.500000" in text
        assert "chunk_seconds_count 1" in text


class TestPlacements:
    def test_auto_granularity_picks_leaf_level(self, sample_trace) -> None:
        placements = trace_placements(sample_trace)
        # chunk level is present, so stage/process spans are not bars.
        assert {p.name for p in placements} == {"response_trace[0:2]"}
        assert placements[0].stage == "IX"

    def test_explicit_kinds(self, sample_trace) -> None:
        placements = trace_placements(sample_trace, kinds=("stage",))
        assert [p.name for p in placements] == ["IX", "X"]
        assert min(p.start_s for p in placements) == 0.0

    def test_empty_trace_gives_no_placements(self) -> None:
        placements = trace_placements(Tracer().trace())
        assert placements == []

    def test_simulation_result_makespan(self, sample_trace) -> None:
        result = to_simulation_result(sample_trace, kinds=("stage", "process"))
        assert result.makespan_s == pytest.approx(
            max(p.finish_s for p in result.placements)
        )

    def test_gantt_renders_postscript(self, sample_trace, tmp_path: Path) -> None:
        out = tmp_path / "trace.ps"
        plot_trace_gantt(out, sample_trace)
        content = out.read_text()
        assert content.startswith("%!PS-Adobe")
        assert "IX" in content

    def test_gantt_rejects_empty_trace(self, tmp_path: Path) -> None:
        with pytest.raises(ReproError):
            plot_trace_gantt(tmp_path / "x.ps", Tracer().trace())


class TestPipelineResultView:
    def test_rebuilds_from_spans(self, sample_trace) -> None:
        view = pipeline_result_view(sample_trace)
        run = sample_trace.by_kind("run")[0]
        assert view.implementation == "full-parallel"
        assert view.total_s == run.duration_s
        assert view.stage_durations == sample_trace.stage_durations()
        assert [p.pid for p in view.processes] == [16]
        assert view.processes[0].stage == "X"

    def test_requires_run_span(self) -> None:
        with pytest.raises(ReproError):
            pipeline_result_view(Tracer().trace())


class TestStageTimings:
    def test_work_spans_become_task_records(self, sample_trace) -> None:
        timings = {t.stage: t for t in stage_timings_from_trace(sample_trace)}
        assert set(timings) == {"IX", "X"}
        assert [t.name for t in timings["IX"].tasks] == ["response_trace[0:2]"]
        assert timings["IX"].task_total_s == pytest.approx(0.001)
        assert [t.name for t in timings["X"].tasks] == ["P16 plot_spectra"]
        stage9 = sample_trace.by_kind("stage")[0]
        assert timings["IX"].duration_s == stage9.duration_s
