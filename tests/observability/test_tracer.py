"""Unit tests of the span tracer itself — no pipeline involved."""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.observability.tracer import Span, Trace, Tracer, maybe_span, worker_label


class TestSpanNesting:
    def test_with_block_nests_via_thread_stack(self) -> None:
        tracer = Tracer()
        with tracer.span("outer", kind="stage") as outer:
            with tracer.span("inner", kind="process") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        trace = tracer.trace()
        assert [s.name for s in trace.spans] == ["inner", "outer"]  # close order
        by_name = {s.name: s for s in trace.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_sibling_spans_share_parent(self) -> None:
        tracer = Tracer()
        with tracer.span("root", kind="run") as root:
            with tracer.span("a", kind="stage"):
                pass
            with tracer.span("b", kind="stage"):
                pass
        trace = tracer.trace()
        kids = trace.children(root)
        assert [s.name for s in kids] == ["a", "b"]
        assert all(s.parent_id == root.span_id for s in kids)

    def test_explicit_parent_overrides_stack(self) -> None:
        tracer = Tracer()
        with tracer.span("root", kind="run") as root:
            with tracer.span("stage", kind="stage"):
                with tracer.span("detached", kind="task", parent=root) as det:
                    pass
        assert det.parent_id == root.span_id

    def test_parent_none_makes_root(self) -> None:
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("free", parent=None) as free:
                pass
        assert free.parent_id is None

    def test_duration_and_ordering(self) -> None:
        tracer = Tracer()
        with tracer.span("timed") as sp:
            time.sleep(0.01)
        assert sp.duration_s >= 0.009
        assert sp.end_s == pytest.approx(sp.start_s + sp.duration_s)

    def test_attributes_and_worker(self) -> None:
        tracer = Tracer()
        with tracer.span("s", kind="stage", strategy="loop", pid=7) as sp:
            pass
        assert sp.attributes == {"strategy": "loop", "pid": 7}
        assert sp.worker == worker_label()
        assert ":" in sp.worker

    def test_threads_get_independent_stacks(self) -> None:
        tracer = Tracer()
        seen: dict[str, int | None] = {}

        def body() -> None:
            with tracer.span("in-thread", kind="task") as sp:
                seen["parent"] = sp.parent_id

        with tracer.span("main-root", kind="run"):
            t = threading.Thread(target=body)
            t.start()
            t.join()
        # The worker thread's stack is empty: its span is a root, not a
        # child of the main thread's open span.
        assert seen["parent"] is None


class TestRecord:
    def test_record_ingests_external_measurement(self) -> None:
        tracer = Tracer()
        with tracer.span("root", kind="run") as root:
            sp = tracer.record(
                "remote", kind="chunk", start_s=0.5, duration_s=0.25,
                worker="1234:MainThread", parent=root, size=3,
            )
        assert sp is not None
        assert sp.parent_id == root.span_id
        assert sp.start_s == 0.5
        assert sp.duration_s == 0.25
        assert sp.worker == "1234:MainThread"
        assert sp.attributes == {"size": 3}
        assert sp in tracer.trace().spans

    def test_disabled_tracer_records_nothing(self) -> None:
        tracer = Tracer(enabled=False)
        with tracer.span("s") as sp:
            assert sp is None
        assert tracer.record("r", kind="chunk", start_s=0, duration_s=0, worker="w") is None
        assert tracer.trace().spans == []


class TestPickle:
    def test_tracer_pickles_as_disabled(self) -> None:
        tracer = Tracer()
        with tracer.span("before"):
            pass
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.enabled is False
        assert clone.epoch == tracer.epoch
        with clone.span("after") as sp:
            assert sp is None
        assert clone.trace().spans == []
        # The original is unaffected.
        assert tracer.enabled is True
        assert len(tracer.trace().spans) == 1


class TestMaybeSpan:
    def test_none_tracer_yields_none(self) -> None:
        with maybe_span(None, "x", kind="stage") as sp:
            assert sp is None

    def test_enabled_tracer_delegates(self) -> None:
        tracer = Tracer()
        with maybe_span(tracer, "x", kind="stage", strategy="seq") as sp:
            assert sp is not None
        assert tracer.trace().spans[0].attributes["strategy"] == "seq"


class TestTrace:
    def _sample(self) -> Trace:
        tracer = Tracer()
        with tracer.span("run", kind="run"):
            with tracer.span("I", kind="stage"):
                pass
            with tracer.span("II", kind="stage"):
                pass
            with tracer.span("II", kind="stage"):  # repeat accumulates
                pass
        return tracer.trace()

    def test_by_kind_and_roots(self) -> None:
        trace = self._sample()
        assert [s.name for s in trace.by_kind("stage")] == ["I", "II", "II"]
        assert [s.name for s in trace.roots()] == ["run"]

    def test_stage_durations_accumulate_repeats(self) -> None:
        trace = self._sample()
        durations = trace.stage_durations()
        stages = trace.by_kind("stage")
        assert durations["I"] == stages[0].duration_s
        assert durations["II"] == pytest.approx(stages[1].duration_s + stages[2].duration_s)

    def test_dict_round_trip(self) -> None:
        trace = self._sample()
        clone = Trace.from_dict(trace.to_dict())
        assert clone.epoch == trace.epoch
        assert clone.spans == trace.spans

    def test_subtree_keeps_descendants_only(self) -> None:
        tracer = Tracer()
        with tracer.span("first", kind="run") as first:
            with tracer.span("child", kind="stage"):
                pass
        with tracer.span("second", kind="run") as second:
            pass
        sub = tracer.subtree(first)
        assert {s.name for s in sub.spans} == {"first", "child"}
        assert {s.name for s in tracer.subtree(second).spans} == {"second"}


def test_span_dict_round_trip() -> None:
    sp = Span(
        span_id=3, parent_id=1, name="x", kind="chunk",
        start_s=1.5, duration_s=0.5, worker="9:T", attributes={"a": 1},
    )
    assert Span.from_dict(sp.to_dict()) == sp
