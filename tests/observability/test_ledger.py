"""Tests for the persistent run ledger (``repro-ledger``).

The acceptance bar from the ISSUE: ``repro-ledger trend`` must detect
an injected 2x stage slowdown across two recorded runs, using the perf
gate's noise-aware thresholds.
"""

from types import SimpleNamespace

import pytest

from repro.observability.ledger import (
    LEDGER_ENV,
    RunLedger,
    compare_rows,
    entries_from_bench,
    main_ledger,
    maybe_append_run,
    run_entry,
    trend,
)


def _entry(total_s=2.0, stages=None, **overrides):
    entry = {
        "created_utc": "2026-08-08T00:00:00Z",
        "source": "run",
        "event_id": "EV-NOV18",
        "workspace": "/ws",
        "implementation": "dag-parallel",
        "backend": "thread",
        "workers": 2,
        "total_s": total_s,
        "stages": stages or {"G1": 0.5, "G2": 1.5},
        "stage_self": None,
        "critical_path_s": None,
        "quarantined": 0,
        "quarantine_signature": None,
        "speedup": None,
        "extra": None,
    }
    entry.update(overrides)
    return entry


def _fake_run(total_s=1.5, quarantine=()):
    ctx = SimpleNamespace(
        workspace=SimpleNamespace(root="/tmp/ws"),
        parallel=SimpleNamespace(
            loop_backend=SimpleNamespace(value="thread"), workers=2
        ),
    )
    result = SimpleNamespace(
        implementation="dag-parallel",
        total_s=total_s,
        stage_durations={"G1": 0.4, "G2": 1.1},
        trace=None,
        quarantine=list(quarantine),
    )
    return ctx, result


class TestRunLedger:
    def test_append_get_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.sqlite")
        row_id = ledger.append(_entry())
        row = ledger.get(row_id)
        assert row["implementation"] == "dag-parallel"
        assert row["stages"] == {"G1": 0.5, "G2": 1.5}
        assert row["total_s"] == pytest.approx(2.0)
        assert len(ledger) == 1

    def test_rows_filter_and_order(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.sqlite")
        ledger.append(_entry(event_id="EV-A"))
        ledger.append(_entry(event_id="EV-B"))
        ledger.append(_entry(event_id="EV-A", implementation="wavefront-parallel"))
        assert len(ledger.rows()) == 3
        assert [r["event_id"] for r in ledger.rows(event_id="EV-A")] == [
            "EV-A", "EV-A",
        ]
        assert len(ledger.rows(implementation="wavefront-parallel")) == 1
        assert len(ledger.rows(limit=2)) == 2

    def test_reopen_persists(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        RunLedger(path).append(_entry())
        assert len(RunLedger(path)) == 1

    def test_run_entry_from_context_and_result(self):
        ctx, result = _fake_run()
        entry = run_entry(ctx, result)
        assert entry["implementation"] == "dag-parallel"
        assert entry["backend"] == "thread"
        assert entry["workers"] == 2
        assert entry["stages"] == {"G1": 0.4, "G2": 1.1}
        assert entry["quarantined"] == 0

    def test_run_entry_quarantine_signature_is_stable(self):
        reports = [SimpleNamespace(record="STA02"), SimpleNamespace(record="STA01")]
        ctx, result = _fake_run(quarantine=reports)
        entry = run_entry(ctx, result)
        assert entry["quarantined"] == 2
        assert entry["quarantine_signature"] == "STA01,STA02"


class TestAutoAppend:
    def test_noop_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        ctx, result = _fake_run()
        assert maybe_append_run(ctx, result) is None

    def test_appends_when_env_set(self, tmp_path, monkeypatch):
        db = tmp_path / "ledger.sqlite"
        monkeypatch.setenv(LEDGER_ENV, str(db))
        ctx, result = _fake_run()
        row_id = maybe_append_run(ctx, result)
        assert row_id is not None
        assert len(RunLedger(db)) == 1

    def test_never_raises_on_broken_ledger(self, tmp_path, monkeypatch):
        # Pointing the env at a directory makes sqlite fail to open;
        # the hook must swallow it — a broken ledger never fails a run.
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path))
        ctx, result = _fake_run()
        assert maybe_append_run(ctx, result) is None


class TestCompareAndTrend:
    def test_2x_stage_slowdown_is_flagged(self, tmp_path):
        older = _entry(stages={"G1": 0.5, "G2": 1.5})
        newer = _entry(total_s=3.5, stages={"G1": 0.5, "G2": 3.0})
        ledger = RunLedger(tmp_path / "ledger.sqlite")
        ledger.append(older)
        ledger.append(newer)
        flagged = trend(ledger.rows())
        assert len(flagged) == 1
        _old, _new, regressions = flagged[0]
        assert any(d.metric == "stage[G2]" for d in regressions)

    def test_within_noise_is_not_flagged(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.sqlite")
        ledger.append(_entry(stages={"G1": 0.5, "G2": 1.5}))
        ledger.append(_entry(stages={"G1": 0.52, "G2": 1.55}))
        assert trend(ledger.rows()) == []

    def test_different_configs_never_compared(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.sqlite")
        ledger.append(_entry(backend="thread", stages={"G2": 1.0}))
        ledger.append(_entry(backend="process", stages={"G2": 5.0}))
        assert trend(ledger.rows()) == []

    def test_compare_rows_reports_improvement(self):
        older = _entry(stages={"G2": 3.0})
        older["id"] = 1
        newer = _entry(total_s=1.0, stages={"G2": 1.0})
        newer["id"] = 2
        deltas, regressions = compare_rows(older, newer)
        assert regressions == []
        assert {d.status for d in deltas} == {"improved"}


class TestBenchEntries:
    def test_entries_from_bench_document(self):
        doc = {
            "created_utc": "2026-08-08T00:00:00Z",
            "config": {"backend": "thread", "workers": 2},
            "events": {
                "EV-NOV18": {
                    "implementations": {
                        "dag-parallel": {
                            "total_s": 1.2,
                            "stages": {"G1": 0.2},
                            "stage_self_s": {"G1": 0.1},
                            "critical_path_s": 1.0,
                            "speedup_vs_original": 2.5,
                            "runs_s": [1.2, 1.3],
                        }
                    }
                }
            },
        }
        entries = entries_from_bench(doc)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["source"] == "perf-record"
        assert entry["event_id"] == "EV-NOV18"
        assert entry["speedup"] == 2.5
        assert entry["extra"] == {"runs_s": [1.2, 1.3]}


class TestLedgerCli:
    def _seeded(self, tmp_path):
        db = tmp_path / "ledger.sqlite"
        ledger = RunLedger(db)
        ledger.append(_entry(stages={"G1": 0.5, "G2": 1.5}))
        ledger.append(_entry(total_s=3.5, stages={"G1": 0.5, "G2": 3.0}))
        return db

    def test_list_and_show(self, tmp_path, capsys):
        db = self._seeded(tmp_path)
        assert main_ledger(["--db", str(db), "list"]) == 0
        out = capsys.readouterr().out
        assert "dag-parallel" in out and "EV-NOV18" in out
        assert main_ledger(["--db", str(db), "show", "1"]) == 0
        out = capsys.readouterr().out
        assert "G2" in out and "thread" in out

    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        db = self._seeded(tmp_path)
        assert main_ledger(["--db", str(db), "compare", "1", "2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_trend_detects_injected_slowdown(self, tmp_path, capsys):
        db = self._seeded(tmp_path)
        assert main_ledger(["--db", str(db), "trend"]) == 1
        out = capsys.readouterr().out
        assert "stage[G2]" in out
        assert "REGRESSION" in out

    def test_trend_advisory_mode_exits_zero(self, tmp_path, capsys):
        db = self._seeded(tmp_path)
        assert main_ledger(["--db", str(db), "trend", "--advisory"]) == 0
        assert "ADVISORY" in capsys.readouterr().out

    def test_missing_db_is_a_clear_error(self, tmp_path, capsys):
        code = main_ledger(["--db", str(tmp_path / "nope.sqlite"), "list"])
        assert code == 2
        assert "no ledger" in capsys.readouterr().err

    def test_env_var_resolves_db(self, tmp_path, monkeypatch, capsys):
        db = self._seeded(tmp_path)
        monkeypatch.setenv(LEDGER_ENV, str(db))
        assert main_ledger(["list"]) == 0
        assert "dag-parallel" in capsys.readouterr().out
