"""The one-call ``repro.run()`` facade."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

import repro
from repro.core import RunContext, SequentialOptimized
from repro.core.context import ParallelSettings
from repro.parallel.backend import Backend

from tests.conftest import SINGLE_EVENT, make_context, tiny_response_config


@pytest.fixture(scope="module")
def facade_workspace(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """One generated-and-processed workspace, reused read-only."""
    root = tmp_path_factory.mktemp("facade") / "ws"
    result = repro.run(
        SINGLE_EVENT,
        policy="seq-optimized",
        workspace=root,
        backend="serial",
        response_periods=12,
    )
    assert result.implementation == "seq-optimized"
    return root


def test_event_source_generates_and_runs(facade_workspace: Path) -> None:
    # The fixture ran the pipeline from an EventSpec; the workspace now
    # holds both the generated inputs and the artifacts.
    assert list(facade_workspace.glob("input/*.v1"))
    assert any(facade_workspace.glob("work/**/*.v2"))


def test_directory_source_with_trace(facade_workspace: Path, tmp_path: Path) -> None:
    trace_path = tmp_path / "run.trace.json"
    result = repro.run(
        facade_workspace,
        policy="seq-optimized",
        backend="thread",
        workers=2,
        trace=trace_path,
        response_periods=12,
    )
    assert result.trace is not None
    doc = json.loads(trace_path.read_text())
    stage_events = [e for e in doc["traceEvents"] if e.get("cat") == "stage"]
    assert len(stage_events) == len(result.stage_durations)


def test_trace_true_attaches_without_writing(facade_workspace: Path) -> None:
    result = repro.run(
        facade_workspace, policy="seq-optimized", trace=True, response_periods=12
    )
    assert result.trace is not None
    assert result.trace.stage_durations() == result.stage_durations


def test_untraced_by_default(facade_workspace: Path) -> None:
    result = repro.run(facade_workspace, policy="seq-optimized", response_periods=12)
    assert result.trace is None
    assert result.profile is None


def test_profile_path_writes_speedscope(facade_workspace: Path, tmp_path: Path) -> None:
    out = tmp_path / "run.speedscope.json"
    result = repro.run(
        facade_workspace, policy="seq-optimized", profile=out, response_periods=12
    )
    # Profiling implies tracing: samples attribute through open spans.
    assert result.trace is not None
    assert result.profile is not None
    doc = json.loads(out.read_text())
    assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
    if result.profile.total_samples:  # tiny runs may record few samples
        assert result.profile.attributed_fraction() >= 0.95


def test_implementation_class_and_instance(facade_workspace: Path) -> None:
    by_class = repro.run(facade_workspace, SequentialOptimized, response_periods=12)
    by_instance = repro.run(facade_workspace, SequentialOptimized(), response_periods=12)
    assert by_class.implementation == by_instance.implementation == "seq-optimized"


def test_backend_accepts_enum(facade_workspace: Path) -> None:
    result = repro.run(
        facade_workspace, policy="seq-optimized", backend=Backend.SERIAL,
        response_periods=12,
    )
    assert result.trace is None
    assert result.stage_durations


def test_run_context_source_used_as_is(
    facade_workspace: Path, tmp_path: Path
) -> None:
    ctx = make_context(tmp_path / "ws")
    for src in facade_workspace.glob("input/*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    result = repro.run(ctx, policy="seq-optimized", trace=True)
    assert ctx.tracer is not None
    assert result.trace is not None


def test_run_context_source_rejects_settings(tmp_path: Path) -> None:
    ctx = make_context(tmp_path / "ws")
    with pytest.raises(ValueError, match="RunContext"):
        repro.run(ctx, backend="thread")


def test_unknown_policy_propagates() -> None:
    with pytest.raises(ValueError, match="known"):
        repro.run("anywhere", policy="bogus-policy")


def test_implementation_string_deprecated(facade_workspace: Path) -> None:
    # The pre-engine positional spelling still runs, but warns with the
    # policy= replacement.
    with pytest.warns(DeprecationWarning, match="policy='seq-optimized'"):
        result = repro.run(facade_workspace, "seq-optimized", response_periods=12)
    assert result.implementation == "seq-optimized"


def test_implementation_and_policy_conflict(facade_workspace: Path) -> None:
    with pytest.raises(ValueError, match="not both"):
        repro.run(facade_workspace, "seq-optimized", policy="seq-optimized")


def test_facade_is_exported() -> None:
    assert "run" in repro.__all__
    assert repro.run is not None
    assert repro.Tracer is not None and repro.Trace is not None


def test_uniform_settings_coerce_strings() -> None:
    settings = ParallelSettings.uniform("process", num_workers=3)
    assert settings.loop_backend == Backend.PROCESS
    assert settings.task_backend == Backend.PROCESS
    assert settings.tool_backend == Backend.PROCESS
    assert settings.num_workers == 3
    with pytest.raises(Exception):
        ParallelSettings.uniform("not-a-backend")
