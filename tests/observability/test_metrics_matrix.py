"""Metrics collection across the implementation x backend matrix.

The acceptance bar of the metrics plumbing: for every paper
implementation under both pool backends, the registry the driver hands
in comes back with the run's chunk/task counters, the audit-derived
I/O byte counts and the per-process data-point counts — regardless of
whether the increments happened on driver threads (thread backend) or
in forked workers whose shards travelled home with the results
(process backend).
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.core import implementation_by_name
from repro.core.context import ParallelSettings
from repro.observability.metrics import MetricsRegistry

from tests.conftest import SINGLE_EVENT, make_context

IMPLEMENTATIONS = (
    "seq-original", "seq-optimized", "partial-parallel", "full-parallel",
)


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory: pytest.TempPathFactory) -> Path:
    directory = tmp_path_factory.mktemp("metrics-dataset")
    from repro.synth.dataset import generate_event_dataset

    generate_event_dataset(SINGLE_EVENT, directory)
    return directory


def metered_run(tmp_path: Path, dataset_dir: Path, impl_name: str, backend: str):
    ctx = make_context(
        tmp_path / "ws",
        parallel=ParallelSettings.uniform(backend, num_workers=2),
    )
    for src in dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    ctx.metrics = MetricsRegistry()
    implementation_by_name(impl_name)().run(ctx)
    return ctx.metrics


@pytest.mark.parametrize("impl_name", IMPLEMENTATIONS)
@pytest.mark.parametrize(
    "backend",
    ["thread", pytest.param("process", marks=pytest.mark.slow)],
)
def test_matrix_populates_registry(
    tmp_path: Path, dataset_dir: Path, impl_name: str, backend: str
) -> None:
    registry = metered_run(tmp_path, dataset_dir, impl_name, backend)

    # Audit-derived I/O flows for every implementation: the pipeline
    # must at minimum read the input .v1 files and write artifacts.
    assert registry.total("repro_artifact_io_bytes_total", op="read") > 0
    assert registry.total("repro_artifact_io_bytes_total", op="write") > 0
    assert registry.total("repro_artifact_io_total") > 0
    assert registry.total("repro_points_processed_total") > 0

    # Every pipeline process P0..P19 executed exactly once.
    runs = {
        dict(labels[1]).get("process"): inst.value
        for labels, inst in registry.samples_all()
        if labels[0] == "repro_process_runs_total"
    }
    assert all(v >= 1 for v in runs.values())
    assert registry.total("repro_process_runs_total") >= len(runs)
    assert registry.total("repro_process_seconds_total") > 0

    chunks = registry.total("repro_parallel_chunks_total")
    tasks = registry.total("repro_parallel_tasks_total")
    if impl_name in ("partial-parallel", "full-parallel"):
        # The parallel implementations must have scheduled real work
        # through the runtime, and the histograms must agree.
        assert chunks + tasks > 0
        observed = sum(
            inst.count
            for labels, inst in registry.samples_all()
            if labels[0] in (
                "repro_parallel_chunk_duration_seconds",
                "repro_parallel_task_duration_seconds",
            )
        )
        assert observed == chunks + tasks
        assert registry.total("repro_parallel_worker_busy_seconds_total") > 0
    else:
        assert chunks == 0 and tasks == 0


@pytest.mark.slow
def test_thread_and_process_backends_agree_on_invariants(
    tmp_path: Path, dataset_dir: Path
) -> None:
    """Backend choice must not change the deterministic counters."""
    reg_thread = metered_run(tmp_path / "t", dataset_dir, "full-parallel", "thread")
    reg_process = metered_run(tmp_path / "p", dataset_dir, "full-parallel", "process")
    for name in (
        "repro_points_processed_total",
        "repro_parallel_chunks_total",
        "repro_parallel_tasks_total",
        "repro_process_runs_total",
    ):
        assert reg_thread.total(name) == reg_process.total(name), name
    # Byte counts are deterministic too: same artifacts, same sizes.
    for op in ("read", "write"):
        assert reg_thread.total(
            "repro_artifact_io_bytes_total", op=op
        ) == reg_process.total("repro_artifact_io_bytes_total", op=op), op
