"""The metrics registry: instruments, merging, plumbing, exposition."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ReproError
from repro.observability.metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    begin_worker_window,
    collecting,
    drain_worker_shard,
    record_io,
    record_points,
    record_process,
    recording_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ReproError):
            Counter().inc(-1)

    def test_gauge_set_and_set_max(self):
        g = Gauge()
        g.set(4.0)
        g.set_max(2.0)
        assert g.value == 4.0
        g.set_max(7.0)
        assert g.value == 7.0

    def test_histogram_buckets_and_overflow(self):
        h = Histogram(boundaries=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(ReproError):
            Histogram(boundaries=(2.0, 1.0))
        with pytest.raises(ReproError):
            Histogram(boundaries=(1.0, 1.0))

    def test_histogram_merge_boundary_mismatch(self):
        a = Histogram(boundaries=(1.0,))
        b = Histogram(boundaries=(2.0,))
        with pytest.raises(ReproError):
            a.merge(b.payload())


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", op="read")
        b = reg.counter("x_total", op="read")
        assert a is b
        assert reg.counter("x_total", op="write") is not a
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ReproError):
            reg.gauge("x_total")

    def test_histogram_boundary_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ReproError):
            reg.histogram("h", buckets=(1.0, 3.0))
        # No explicit buckets: reuses the bound ones.
        assert reg.histogram("h").boundaries == (1.0, 2.0)

    def test_value_and_total(self):
        reg = MetricsRegistry()
        reg.counter("io_total", op="read", artifact="v1").inc(2)
        reg.counter("io_total", op="read", artifact="v2").inc(3)
        reg.counter("io_total", op="write", artifact="v1").inc(10)
        assert reg.value("io_total", op="read", artifact="v1") == 2
        assert reg.value("io_total", op="missing") is None
        assert reg.total("io_total") == 15
        assert reg.total("io_total", op="read") == 5

    def test_roundtrip_and_merge_semantics(self):
        a = MetricsRegistry()
        a.counter("c_total").inc(2)
        a.gauge("g").set(5.0)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry.from_dict(a.to_dict())
        assert b.to_dict() == a.to_dict()
        b.gauge("g").set(3.0)
        b.merge(a)
        assert b.value("c_total") == 4  # counters add
        assert b.value("g") == 5.0  # gauges take the max
        assert b.value("h") == 2  # histogram counts add

    def test_pickles_empty(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(9)
        clone = pickle.loads(pickle.dumps(reg))
        assert len(clone) == 0
        clone.counter("other_total").inc()  # still usable
        assert len(reg) == 1  # original untouched

    def test_default_histogram_buckets(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").boundaries == DURATION_BUCKETS


class TestPrometheusText:
    def test_families_and_cumulative_buckets(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="a counter", op="read").inc(2)
        reg.gauge("g").set(1.5)
        h = reg.histogram("h_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus_text()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{op="read"} 2.000000' in text
        assert "# TYPE g gauge" in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="10"} 2' in text  # cumulative
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_count 2" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", path='a"b\\c').inc()
        text = reg.to_prometheus_text()
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus_text() == ""


class TestPrometheusTypeRegression:
    """Regression guard: every instrument must export under its own
    ``# TYPE`` family — a counter or histogram silently degrading to
    gauge exposition would poison rate()/quantile queries downstream.
    """

    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("req_total").inc(3)
        reg.gauge("depth").set(7)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_counter_is_never_a_gauge(self):
        text = self._registry().to_prometheus_text()
        assert "# TYPE req_total counter" in text
        assert "# TYPE req_total gauge" not in text

    def test_histogram_exports_the_full_family(self):
        text = self._registry().to_prometheus_text()
        assert "# TYPE lat_seconds histogram" in text
        assert "# TYPE lat_seconds gauge" not in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 0.550000" in text
        assert "lat_seconds_count 2" in text

    def test_one_type_line_per_family(self):
        text = self._registry().to_prometheus_text()
        for family in ("req_total", "depth", "lat_seconds"):
            type_lines = [
                line for line in text.splitlines()
                if line.startswith(f"# TYPE {family} ")
            ]
            assert len(type_lines) == 1, family

    def test_merged_shards_keep_their_types(self):
        a = self._registry()
        b = self._registry()
        a.merge(b.to_dict())
        text = a.to_prometheus_text()
        assert "# TYPE req_total counter" in text
        assert "# TYPE lat_seconds histogram" in text
        assert "lat_seconds_count 4" in text  # bucketwise addition


class TestPlumbing:
    def test_collecting_installs_and_restores(self):
        reg = MetricsRegistry()
        assert recording_registry() is None
        with collecting(reg):
            assert recording_registry() is reg
        assert recording_registry() is None

    def test_collecting_tolerates_none(self):
        with collecting(None) as got:
            assert got is None
            assert recording_registry() is None

    def test_worker_window_drains_shard(self):
        begin_worker_window()
        try:
            window = recording_registry()
            assert window is not None
            window.counter("c_total").inc(3)
        finally:
            shard = drain_worker_shard()
        assert shard is not None
        merged = MetricsRegistry().merge(shard)
        assert merged.value("c_total") == 3
        assert drain_worker_shard() is None  # window is closed

    def test_empty_window_drains_to_none(self):
        begin_worker_window()
        assert drain_worker_shard() is None

    def test_installed_registry_wins_over_window(self):
        reg = MetricsRegistry()
        begin_worker_window()
        try:
            with collecting(reg):
                assert recording_registry() is reg
        finally:
            drain_worker_shard()


class TestRecordingHelpers:
    def test_noop_without_registry(self):
        record_io("read", "v1", 100)
        record_points(5)
        record_process(3, 0.1)  # must not raise

    def test_record_io(self):
        reg = MetricsRegistry()
        with collecting(reg):
            record_io("read", "v1", 100, process="P3")
            record_io("read", "v1", 50, process="P3")
        assert reg.value(
            "repro_artifact_io_bytes_total", op="read", artifact="v1", process="P3"
        ) == 150
        assert reg.value(
            "repro_artifact_io_total", op="read", artifact="v1", process="P3"
        ) == 2

    def test_record_io_bytes_only(self):
        reg = MetricsRegistry()
        with collecting(reg):
            record_io("write", "v2", 64, process="P4", count_access=False)
        assert reg.value(
            "repro_artifact_io_bytes_total", op="write", artifact="v2", process="P4"
        ) == 64
        assert reg.total("repro_artifact_io_total") == 0

    def test_record_points_and_process(self):
        reg = MetricsRegistry()
        with collecting(reg):
            record_points(1000, process="P16")
            record_process(16, 0.25)
        assert reg.value("repro_points_processed_total", process="P16") == 1000
        assert reg.value("repro_process_runs_total", process="P16") == 1
        assert reg.value("repro_process_seconds_total", process="P16") == pytest.approx(0.25)
