"""The perf-regression gate: recording, schema, thresholds, CLI."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.observability.perf import (
    METRIC_CLASSES,
    SCHEMA,
    Thresholds,
    check_bench,
    latest_bench,
    main_perf,
    record_bench,
    render_bench,
    render_deltas,
    validate_bench,
    write_bench,
)
from repro.synth.events import EventSpec

PERF_EVENT = EventSpec("EV-PERF", "2020-01-01", 5.0, 1, 30_000, seed=7)


@pytest.fixture(scope="module")
def bench_doc() -> dict:
    """One real (tiny) recording shared by the module's tests."""
    return record_bench(
        events=[PERF_EVENT],
        implementations=("seq-original", "full-parallel"),
        scale=0.02,
        repeats=1,
        periods=8,
        workers=2,
        sample_interval=0.01,
        profile_hz=150.0,
    )


class TestThresholds:
    def test_lower_is_better_band(self):
        t = Thresholds(rel=0.5, abs=0.01)
        assert not t.regressed(1.0, 1.4)
        assert t.regressed(1.0, 1.6)
        assert t.improved(1.0, 0.4)
        assert not t.improved(1.0, 0.6)

    def test_absolute_floor_shields_tiny_values(self):
        t = METRIC_CLASSES["stage_s"]
        # A 5 ms stage doubling stays inside the 20 ms absolute floor.
        assert not t.regressed(0.005, 0.010)

    def test_higher_is_better_inverts(self):
        t = Thresholds(rel=0.3, abs=0.1, higher_is_better=True)
        assert t.regressed(4.0, 2.0)
        assert not t.regressed(4.0, 3.5)
        assert t.improved(4.0, 6.0)


class TestRecord:
    def test_schema_valid(self, bench_doc):
        assert bench_doc["schema"] == SCHEMA
        assert validate_bench(bench_doc) == []

    def test_cells_cover_requested_matrix(self, bench_doc):
        cell = bench_doc["events"]["EV-PERF"]
        assert set(cell["implementations"]) == {"seq-original", "full-parallel"}
        for entry in cell["implementations"].values():
            assert entry["total_s"] > 0
            assert entry["stages"]
            assert entry["stage_self_s"]
            assert entry["io"]["read_bytes"] > 0
            assert entry["io"]["points"] > 0
            assert len(entry["runs_s"]) == 1

    def test_speedup_vs_original(self, bench_doc):
        impls = bench_doc["events"]["EV-PERF"]["implementations"]
        assert impls["seq-original"]["speedup_vs_original"] == pytest.approx(1.0)
        assert impls["full-parallel"]["speedup_vs_original"] > 0

    def test_parallel_counters_only_for_parallel(self, bench_doc):
        impls = bench_doc["events"]["EV-PERF"]["implementations"]
        seq = impls["seq-original"]["parallel"]
        par = impls["full-parallel"]["parallel"]
        assert seq["chunks"] == 0 and seq["tasks"] == 0
        assert par["chunks"] + par["tasks"] > 0

    def test_render_bench_mentions_stages(self, bench_doc):
        text = render_bench(bench_doc)
        assert "EV-PERF" in text
        assert "speedup" in text
        assert "self s" in text

    def test_critical_path_embedded(self, bench_doc):
        for entry in bench_doc["events"]["EV-PERF"]["implementations"].values():
            assert entry["critical_path_s"] > 0
            # The path partitions the run span, so it cannot exceed the
            # measured wall-clock (rounding slack aside).
            assert entry["critical_path_s"] <= entry["total_s"] * 1.01 + 1e-6
            assert entry["critical_path_stages"]

    def test_profile_block_embedded(self, bench_doc):
        for entry in bench_doc["events"]["EV-PERF"]["implementations"].values():
            profile = entry["profile"]
            assert profile["hz"] == 150.0
            assert profile["samples"] >= 0
            assert 0.0 <= profile["attributed_fraction"] <= 1.0
            assert isinstance(profile["top_frames"], list)
            for row in profile["top_frames"]:
                assert set(row) == {"frame", "seconds", "samples"}

    def test_validate_flags_broken_docs(self, bench_doc):
        broken = copy.deepcopy(bench_doc)
        broken["schema"] = "other/9"
        del broken["events"]["EV-PERF"]["implementations"]["full-parallel"]["stages"]
        errors = validate_bench(broken)
        assert any("schema" in e for e in errors)
        assert any("stages" in e for e in errors)

    def test_validate_v2_requires_critical_path(self, bench_doc):
        broken = copy.deepcopy(bench_doc)
        entry = broken["events"]["EV-PERF"]["implementations"]["seq-original"]
        entry["critical_path_s"] = -1.0
        entry["profile"] = {"samples": "many"}
        errors = validate_bench(broken)
        assert any("critical_path_s" in e for e in errors)
        assert any("profile" in e for e in errors)

    def test_validate_accepts_v1_without_v2_fields(self, bench_doc):
        old = copy.deepcopy(bench_doc)
        old["schema"] = "repro-bench/1"
        for entry in old["events"]["EV-PERF"]["implementations"].values():
            del entry["critical_path_s"], entry["critical_path_stages"]
            entry.pop("profile", None)
        assert validate_bench(old) == []


class TestWriteAndDiscover:
    def test_write_and_latest(self, bench_doc, tmp_path: Path):
        path = write_bench(bench_doc, tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        older = tmp_path / "BENCH_19990101T000000Z.json"
        older.write_text("{}")
        assert latest_bench(tmp_path) == path
        assert json.loads(path.read_text()) == bench_doc

    def test_latest_empty_dir(self, tmp_path: Path):
        assert latest_bench(tmp_path) is None


class TestCheck:
    def test_identical_docs_pass_clean(self, bench_doc):
        deltas, regressions = check_bench(bench_doc, copy.deepcopy(bench_doc))
        assert deltas
        assert regressions == []
        assert all(d.status == "ok" for d in deltas)

    def test_detects_injected_stage_slowdown(self, bench_doc):
        slow = copy.deepcopy(bench_doc)
        entry = slow["events"]["EV-PERF"]["implementations"]["full-parallel"]
        stage = max(entry["stages"], key=entry["stages"].get)
        # 2x on the heaviest stage, lifted past the absolute floor.
        entry["stages"][stage] = entry["stages"][stage] * 2 + 0.05
        entry["total_s"] = entry["total_s"] * 2 + 0.2
        deltas, regressions = check_bench(bench_doc, slow)
        failing = {(d.implementation, d.metric) for d in regressions}
        assert ("full-parallel", f"stage[{stage}]") in failing
        assert ("full-parallel", "end_to_end_s") in failing

    def test_detects_speedup_collapse(self, bench_doc):
        slow = copy.deepcopy(bench_doc)
        entry = slow["events"]["EV-PERF"]["implementations"]["full-parallel"]
        entry["speedup_vs_original"] = 0.01
        _, regressions = check_bench(bench_doc, slow)
        assert any(d.metric == "speedup" for d in regressions)

    def test_only_common_cells_compared(self, bench_doc):
        shrunk = copy.deepcopy(bench_doc)
        del shrunk["events"]["EV-PERF"]["implementations"]["full-parallel"]
        deltas, regressions = check_bench(bench_doc, shrunk)
        assert regressions == []
        assert all(d.implementation == "seq-original" for d in deltas)

    def test_failure_names_worst_regressed_stage(self, bench_doc, tmp_path, capsys):
        slow = copy.deepcopy(bench_doc)
        entry = slow["events"]["EV-PERF"]["implementations"]["full-parallel"]
        stage = max(entry["stages"], key=entry["stages"].get)
        entry["stages"][stage] = entry["stages"][stage] * 2 + 0.05
        if entry["stage_self_s"].get(stage) is not None:
            entry["stage_self_s"][stage] = entry["stage_self_s"][stage] * 2 + 0.05
        base = write_bench(bench_doc, tmp_path)
        against = tmp_path / "slow.json"
        against.write_text(json.dumps(slow))
        assert main_perf(
            ["check", "--baseline", str(base), "--against", str(against)]
        ) == 1
        out = capsys.readouterr().out
        assert f"worst-regressed stage: {stage}" in out
        assert "self-time" in out

    def test_render_deltas(self, bench_doc):
        slow = copy.deepcopy(bench_doc)
        slow["events"]["EV-PERF"]["implementations"]["seq-original"]["total_s"] *= 10
        deltas, _ = check_bench(bench_doc, slow)
        table = render_deltas(deltas)
        assert "REGRESSION" in table
        assert "within thresholds" in table


class TestCli:
    def test_check_without_baseline_exits_2(self, tmp_path: Path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main_perf(["check", "--against", "whatever.json"]) == 2

    def test_check_against_passes_and_fails(
        self, bench_doc, tmp_path: Path, capsys
    ):
        base = write_bench(bench_doc, tmp_path)
        same = tmp_path / "same.json"
        same.write_text(json.dumps(bench_doc))
        assert main_perf(
            ["check", "--baseline", str(base), "--against", str(same)]
        ) == 0

        slow_doc = copy.deepcopy(bench_doc)
        for entry in slow_doc["events"]["EV-PERF"]["implementations"].values():
            entry["total_s"] = entry["total_s"] * 3 + 1.0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(slow_doc))
        assert main_perf(
            ["check", "--baseline", str(base), "--against", str(slow)]
        ) == 1
        # Advisory mode reports but does not fail.
        assert main_perf(
            ["check", "--baseline", str(base), "--against", str(slow), "--advisory"]
        ) == 0
        out = capsys.readouterr().out
        assert "ADVISORY" in out


class TestAgainstDirectory:
    """``--against`` accepting a directory of BENCH artifacts."""

    def test_picks_newest_valid_candidate(self, bench_doc, tmp_path: Path):
        from repro.observability.perf import resolve_bench_source

        old = copy.deepcopy(bench_doc)
        old["created_utc"] = "2020-01-01T00:00:00Z"
        write_bench(old, tmp_path)
        newest = write_bench(bench_doc, tmp_path)
        doc, label = resolve_bench_source(tmp_path)
        assert label == str(newest)
        assert doc == bench_doc

    def test_skips_invalid_newer_files(self, bench_doc, tmp_path: Path):
        from repro.observability.perf import resolve_bench_source

        valid = write_bench(bench_doc, tmp_path)
        (tmp_path / "BENCH_99990101T000000Z.json").write_text('{"schema": "nope"}')
        (tmp_path / "BENCH_99990202T000000Z.json").write_text("not json at all")
        doc, label = resolve_bench_source(tmp_path)
        assert label == str(valid)
        assert validate_bench(doc) == []

    def test_empty_directory_is_an_error(self, tmp_path: Path):
        from repro.observability.perf import resolve_bench_source

        with pytest.raises(ValueError, match="no BENCH_"):
            resolve_bench_source(tmp_path)

    def test_error_lists_every_rejected_candidate(self, tmp_path: Path):
        from repro.observability.perf import resolve_bench_source

        (tmp_path / "BENCH_20200101T000000Z.json").write_text('{"schema": "x"}')
        (tmp_path / "BENCH_20200102T000000Z.json").write_text("garbage")
        with pytest.raises(ValueError) as err:
            resolve_bench_source(tmp_path)
        message = str(err.value)
        assert "BENCH_20200101T000000Z.json" in message
        assert "BENCH_20200102T000000Z.json" in message
        assert "unreadable" in message

    def test_cli_check_against_directory(self, bench_doc, tmp_path: Path, capsys):
        base = write_bench(bench_doc, tmp_path)
        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        write_bench(bench_doc, artifacts)
        assert main_perf(
            ["check", "--baseline", str(base), "--against", str(artifacts)]
        ) == 0
        out = capsys.readouterr().out
        assert "current:  " in out and "artifacts" in out

    def test_cli_reports_unresolvable_directory(self, bench_doc, tmp_path: Path, capsys):
        base = write_bench(bench_doc, tmp_path)
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main_perf(
            ["check", "--baseline", str(base), "--against", str(empty)]
        ) == 2
        assert "no BENCH_" in capsys.readouterr().err


class TestExplain:
    def test_explain_prints_bottleneck_reports(self, capsys):
        assert main_perf(
            [
                "explain", "--event", "EV-NOV18",
                "--implementations", "seq-original,full-parallel",
                "--scale", "0.02", "--periods", "8", "--workers", "2",
                "--hz", "150",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "== seq-original ==" in out
        assert "== full-parallel ==" in out
        assert "critical path:" in out
        assert "of critical path" in out
        assert "efficiency" in out
        assert "predicted speedup: Amdahl" in out
        # Non-baseline implementations report measured speedup too.
        assert "measured" in out
        assert "span-attributed" in out
