"""Tests for the live run event bus (``repro.observability.events``).

Covers the ISSUE's acceptance points: round-trip through a real
pipeline run on the thread AND process backends, deterministic shard
merging, schema validation, and the tracer-mirroring bar (>= 95% of
the tracer's stage/task transitions must surface as events).
"""

import json
import threading

import pytest

from repro.bench.harness import small_response_config
from repro.bench.workloads import materialize, scaled_workload
from repro.core.context import ParallelSettings, RunContext
from repro.engine.policy import pipeline_factory
from repro.observability.events import (
    EVENTS_DIR,
    SCHEMA,
    clear_events,
    emit,
    emit_channel,
    enable_events,
    read_events,
    read_events_file,
    release_events,
    validate_events,
    write_events,
)
from repro.observability.tracer import Tracer
from repro.synth.events import paper_event


def _run_with_events(tmp_path, backend, *, tracer=False):
    event = paper_event("EV-NOV18")
    workload = scaled_workload(event, 0.02)
    ctx = RunContext.for_directory(
        tmp_path / f"ws-{backend}",
        parallel=ParallelSettings.uniform(backend, num_workers=2),
        response_config=small_response_config(n_periods=20),
    )
    ctx.events = True
    if tracer:
        ctx.tracer = Tracer()
    materialize(event, workload, ctx.workspace.input_dir)
    result = pipeline_factory("dag-parallel")().run(ctx)
    return ctx, result, read_events(ctx.workspace.root)


@pytest.mark.slow
class TestPipelineRoundTrip:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_stream_validates_and_covers_lifecycle(self, tmp_path, backend):
        _ctx, result, events = _run_with_events(tmp_path, backend)
        assert validate_events(events) == []
        types = [e["type"] for e in events]
        assert types[0] == "run_started"
        assert events[0]["schema"] == SCHEMA
        assert types[-1] == "run_finished"
        assert events[-1]["status"] == "ok"
        assert events[-1]["total_s"] == pytest.approx(result.total_s, rel=0.5)
        assert "plan" in types
        assert types.count("stage_started") == types.count("stage_finished")
        assert "units_total" in types and "unit_finished" in types

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_merge_is_deterministic(self, tmp_path, backend):
        ctx, _result, events = _run_with_events(tmp_path, backend)
        again = read_events(ctx.workspace.root)
        assert events == again

    def test_progress_accounts_for_planned_units(self, tmp_path):
        _ctx, _result, events = _run_with_events(tmp_path, "thread")
        planned = sum(
            e["total"] for e in events if e["type"] == "units_total"
        )
        done = sum(e["count"] for e in events if e["type"] == "unit_finished")
        assert planned > 0
        # No retries in a clean run: done must match the plan exactly.
        assert done == planned

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_tracer_transitions_mirrored(self, tmp_path, backend):
        ctx, result, events = _run_with_events(tmp_path, backend, tracer=True)
        trace = result.trace
        assert trace is not None
        stage_spans = {s.name for s in trace.spans if s.kind == "stage"}
        stage_events = {
            e["stage"] for e in events if e["type"] == "stage_finished"
        }
        assert stage_spans <= stage_events

        work_spans = [s for s in trace.spans if s.kind in ("chunk", "task")]
        work_events = [
            e for e in events if e["type"] in ("unit_finished", "task_finished")
        ]
        assert len(work_events) >= 0.95 * len(work_spans)

    def test_log_survives_run_for_posthoc_readers(self, tmp_path):
        ctx, _result, events = _run_with_events(tmp_path, "thread")
        log_dir = ctx.workspace.root / EVENTS_DIR
        assert log_dir.is_dir()
        assert list(log_dir.glob("events-*.jsonl"))
        assert events  # still readable after release_events


class TestShardMerging:
    def test_multi_writer_total_order(self, tmp_path):
        root = tmp_path / "ws"
        root.mkdir()
        enable_events(root)
        emit(root, "run_started", schema=SCHEMA, implementation="x",
             workspace=str(root), workers=4)

        def worker(n):
            for i in range(20):
                emit(root, "unit_finished", span=f"w{n}", count=1,
                     duration_s=0.001, worker=f"w{n}")

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        release_events(root)
        events = read_events(root)
        assert len(events) == 81
        assert validate_events(events) == []
        keys = [(e["t"], e["pid"], e["tid"], e["seq"]) for e in events]
        assert keys == sorted(keys)
        assert events == read_events(root)

    def test_seq_stays_monotonic_across_release(self, tmp_path):
        # The batch layer emits its summary after the runner released
        # the log; the reopened shard must not restart its counter.
        root = tmp_path / "ws"
        root.mkdir()
        enable_events(root)
        emit(root, "run_started", schema=SCHEMA, implementation="x",
             workspace=str(root), workers=1)
        release_events(root)
        emit(root, "batch_event_finished", event_id="EV", status="ok")
        events = read_events(root)
        assert validate_events(events) == []
        clear_events(root)
        assert read_events(root) == []

    def test_partial_trailing_line_is_tolerated(self, tmp_path):
        root = tmp_path / "ws"
        (root / EVENTS_DIR).mkdir(parents=True)
        shard = root / EVENTS_DIR / "events-1-1.jsonl"
        good = json.dumps({"type": "run_started", "t": 1.0, "pid": 1,
                           "tid": 1, "seq": 1, "schema": SCHEMA,
                           "implementation": "x", "workspace": "w",
                           "workers": 1})
        shard.write_text(good + "\n" + '{"type": "unit_fin')
        events = read_events(root)
        assert len(events) == 1

    def test_emit_is_noop_without_marker(self, tmp_path):
        root = tmp_path / "ws"
        root.mkdir()
        emit(root, "run_started", schema=SCHEMA, implementation="x",
             workspace=str(root), workers=1)
        assert read_events(root) == []
        emit_channel(None, "unit_finished")  # disabled channel: no-op


class TestValidation:
    def _stream(self):
        return [
            {"type": "run_started", "t": 1.0, "pid": 1, "tid": 1, "seq": 1,
             "schema": SCHEMA, "implementation": "x", "workspace": "w",
             "workers": 2},
            {"type": "stage_started", "t": 2.0, "pid": 1, "tid": 1, "seq": 2,
             "stage": "G1"},
            {"type": "run_finished", "t": 3.0, "pid": 1, "tid": 1, "seq": 3,
             "total_s": 2.0, "status": "ok"},
        ]

    def test_clean_stream_passes(self):
        assert validate_events(self._stream()) == []

    def test_empty_stream_flagged(self):
        assert validate_events([]) == ["empty event stream"]

    def test_must_open_with_run_started(self):
        events = self._stream()[1:]
        assert any("run_started" in p for p in validate_events(events))

    def test_unknown_schema_flagged(self):
        events = self._stream()
        events[0]["schema"] = "repro-events/99"
        assert any("unknown schema" in p for p in validate_events(events))

    def test_missing_required_field_flagged(self):
        events = self._stream()
        del events[1]["stage"]
        assert any("missing field 'stage'" in p for p in validate_events(events))

    def test_unknown_type_flagged(self):
        events = self._stream()
        events[1]["type"] = "mystery"
        assert any("unknown type" in p for p in validate_events(events))

    def test_non_monotonic_seq_flagged(self):
        events = self._stream()
        events[2]["seq"] = 1
        assert any("not increasing" in p for p in validate_events(events))


class TestFixtureRoundTrip:
    def test_write_then_read(self, tmp_path):
        events = [
            {"type": "run_started", "t": 1.0, "pid": 1, "tid": 1, "seq": 1,
             "schema": SCHEMA, "implementation": "x", "workspace": "w",
             "workers": 2},
            {"type": "run_finished", "t": 2.0, "pid": 1, "tid": 1, "seq": 2,
             "total_s": 1.0, "status": "ok"},
        ]
        path = tmp_path / "events.jsonl"
        write_events(path, events)
        assert read_events_file(path) == events
