"""Tests for the ``repro-top`` monitor view and renderer.

The view and renderer are pure (event list in, state/text out), so the
tests drive them from synthetic recorded streams — including a
mid-run truncation to exercise progress bars and the ETA.
"""

import pytest

from repro.observability.events import SCHEMA
from repro.observability.top import RunView, WorkerLane, render_top


def _stream(*, finished=True, with_retry=False):
    """A synthetic two-stage run: G1 serial tasks, G2 parallel units."""
    events = [
        {"type": "run_started", "t": 10.0, "pid": 1, "tid": 1, "seq": 1,
         "schema": SCHEMA, "implementation": "dag-parallel",
         "workspace": "/ws", "workers": 2, "loop_backend": "thread"},
        {"type": "plan", "t": 10.01, "pid": 1, "tid": 1, "seq": 2,
         "policy": "dag-parallel", "regions": [
             {"label": "G1", "strategy": "custom", "tasks": ["p00"]},
             {"label": "G2", "strategy": "parallel-for",
              "tasks": ["p02", "p03"]},
         ]},
        {"type": "stage_started", "t": 10.02, "pid": 1, "tid": 1, "seq": 3,
         "stage": "G1"},
        {"type": "task_finished", "t": 10.10, "pid": 1, "tid": 2, "seq": 1,
         "stage": "G1", "span": "p00", "duration_s": 0.08, "worker": "1:T1"},
        {"type": "stage_finished", "t": 10.12, "pid": 1, "tid": 1, "seq": 4,
         "stage": "G1", "duration_s": 0.1},
        {"type": "stage_started", "t": 10.12, "pid": 1, "tid": 1, "seq": 5,
         "stage": "G2"},
        {"type": "units_total", "t": 10.13, "pid": 1, "tid": 1, "seq": 6,
         "stage": "G2", "span": "p02", "total": 10, "chunks": 5,
         "backend": "thread"},
        {"type": "heartbeat", "t": 10.2, "pid": 1, "tid": 3, "seq": 1,
         "rss_bytes": 64 * 1024 * 1024, "threads": 5, "utilization": 0.5},
        {"type": "unit_finished", "t": 10.3, "pid": 1, "tid": 2, "seq": 2,
         "stage": "G2", "span": "p02", "count": 2, "duration_s": 0.2,
         "worker": "1:T1"},
        {"type": "unit_finished", "t": 10.3, "pid": 1, "tid": 4, "seq": 1,
         "stage": "G2", "span": "p02", "count": 2, "duration_s": 0.2,
         "worker": "1:T2"},
    ]
    if with_retry:
        events += [
            {"type": "fault", "t": 10.31, "pid": 1, "tid": 2, "seq": 3,
             "kind": "transient", "process": "p02"},
            {"type": "retry", "t": 10.32, "pid": 1, "tid": 2, "seq": 4,
             "process": "p02", "attempt": 1},
            {"type": "quarantine", "t": 10.33, "pid": 1, "tid": 1, "seq": 7,
             "record": "STA01", "process": "p02"},
        ]
    if finished:
        events += [
            {"type": "unit_finished", "t": 10.5, "pid": 1, "tid": 2, "seq": 5,
             "stage": "G2", "span": "p02", "count": 6, "duration_s": 0.55,
             "worker": "1:T1"},
            {"type": "stage_finished", "t": 10.6, "pid": 1, "tid": 1, "seq": 8,
             "stage": "G2", "duration_s": 0.48},
            {"type": "run_finished", "t": 10.61, "pid": 1, "tid": 1, "seq": 9,
             "total_s": 0.61, "status": "ok"},
        ]
    return events


class TestRunView:
    def test_finished_run_folds_completely(self):
        view = RunView.from_events(_stream())
        assert view.status == "ok"
        assert view.implementation == "dag-parallel"
        assert view.policy == "dag-parallel"
        assert view.workers == 2
        assert view.total_s == pytest.approx(0.61)
        assert [s.name for s in view.stages] == ["G1", "G2"]
        g1, g2 = view.stages
        assert g1.status == "done" and g1.tasks == 1 and g1.tasks_done == 1
        assert g2.status == "done"
        assert g2.units_total == 10 and g2.units_done == 10
        assert g2.fraction == 1.0
        assert view.eta_s() == 0.0

    def test_partial_run_reports_progress_and_eta(self):
        view = RunView.from_events(_stream(finished=False))
        assert view.status == "running"
        g2 = view.stages[1]
        assert g2.status == "running"
        assert g2.units_done == 4 and g2.units_total == 10
        assert g2.fraction == pytest.approx(0.4)
        eta = view.eta_s()
        # 6 units left at 0.1 s each over 2 lanes, plus one trailing
        # unit (Brent bound): 6*0.1/2 + 0.1 = 0.4 s.
        assert eta == pytest.approx(0.4, rel=0.05)

    def test_eta_unknown_before_any_stage_completes(self):
        events = _stream(finished=False)
        # Drop G1's completion: a pending stage with no completed stage
        # to extrapolate from must yield "unknown", not a guess.
        events = [e for e in events if e["type"] != "stage_finished"]
        events[1]["regions"] = events[1]["regions"] + [
            {"label": "G3", "strategy": "parallel-for", "tasks": ["p05"]}
        ]
        view = RunView.from_events(events)
        assert view.eta_s() is None

    def test_retry_counters_and_quarantine(self):
        view = RunView.from_events(_stream(with_retry=True))
        assert view.retries == 1
        assert view.faults == 1
        assert view.quarantined == ["STA01"]

    def test_progress_clamped_at_plan_total(self):
        # A retried unit is counted twice by the shards; the view must
        # clamp at units_total so progress never reads past 100%.
        events = _stream(finished=False)
        events.append(
            {"type": "unit_finished", "t": 10.4, "pid": 1, "tid": 2, "seq": 5,
             "stage": "G2", "span": "p02", "count": 9, "duration_s": 0.9,
             "worker": "1:T1"}
        )
        g2 = RunView.from_events(events).stages[1]
        assert g2._units_done == 13
        assert g2.units_done == 10
        assert g2.fraction == 1.0

    def test_worker_lanes_accumulate(self):
        view = RunView.from_events(_stream())
        assert set(view.lanes) == {"1:T1", "1:T2"}
        lane = view.lanes["1:T1"]
        assert isinstance(lane, WorkerLane)
        assert lane.busy_s == pytest.approx(0.08 + 0.2 + 0.55)
        assert lane.units == 9

    def test_heartbeat_latest_wins(self):
        view = RunView.from_events(_stream())
        assert view.heartbeat["rss_bytes"] == 64 * 1024 * 1024

    def test_empty_stream_is_waiting(self):
        view = RunView.from_events([])
        assert view.status == "waiting"
        assert view.eta_s() is None


class TestRenderTop:
    def test_finished_frame_contents(self):
        frame = render_top(RunView.from_events(_stream()))
        assert "dag-parallel" in frame
        assert "thread x2" in frame
        assert "status ok" in frame
        assert "G1" in frame and "G2" in frame
        assert "10/10" in frame
        assert "worker lanes" in frame
        assert "1:T1" in frame
        assert "retries 0" in frame
        assert "rss    64.0 MiB" in frame

    def test_running_frame_shows_bars_and_eta(self):
        frame = render_top(RunView.from_events(_stream(finished=False)))
        assert "status running" in frame
        assert "eta 0.4s" in frame
        assert "4/10" in frame
        assert "#" in frame and "-" in frame  # partially filled bar

    def test_degraded_counters_rendered(self):
        frame = render_top(RunView.from_events(_stream(with_retry=True)))
        assert "retries 1" in frame
        assert "quarantined 1" in frame
        assert "STA01" in frame

    def test_render_is_pure(self):
        view = RunView.from_events(_stream())
        assert render_top(view) == render_top(view)
