"""Tests for the self-contained HTML run report (``repro-report``)."""

import pytest

from repro.bench.harness import small_response_config
from repro.bench.workloads import materialize, scaled_workload
from repro.core.context import ParallelSettings, RunContext
from repro.engine.policy import pipeline_factory
from repro.observability.metrics import MetricsRegistry
from repro.observability.report_html import (
    main_report,
    render_html_report,
    write_html_report,
)
from repro.observability.tracer import Tracer
from repro.synth.events import paper_event


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    event = paper_event("EV-NOV18")
    workload = scaled_workload(event, 0.02)
    root = tmp_path_factory.mktemp("report-run")
    ctx = RunContext.for_directory(
        root / "ws",
        parallel=ParallelSettings.uniform("thread", num_workers=2),
        response_config=small_response_config(n_periods=20),
    )
    ctx.tracer = Tracer()
    ctx.metrics = MetricsRegistry()
    materialize(event, workload, ctx.workspace.input_dir)
    result = pipeline_factory("dag-parallel")().run(ctx)
    return ctx, result


class TestRenderHtmlReport:
    def test_self_contained_document(self, traced_run):
        ctx, result = traced_run
        text = render_html_report(result, metrics=ctx.metrics, workers=2)
        assert text.startswith("<!DOCTYPE html>")
        assert "</html>" in text
        # Self-contained: no external scripts, stylesheets or images.
        assert "<script" not in text
        assert "http://" not in text.replace("http://www.w3.org", "")
        assert 'rel="stylesheet"' not in text

    def test_sections_present(self, traced_run):
        ctx, result = traced_run
        text = render_html_report(result, metrics=ctx.metrics, workers=2)
        assert "Schedule (measured Gantt)" in text
        assert "<svg" in text
        assert "Critical path" in text
        assert "critical path:" in text  # rendered explain block
        assert "Metrics" in text
        assert "status-ok" in text

    def test_stage_names_and_policy_rendered(self, traced_run):
        _ctx, result = traced_run
        text = render_html_report(result, workers=2)
        assert result.implementation in text
        for stage in result.stage_durations:
            assert stage in text

    def test_without_trace_falls_back_to_stage_table(self, traced_run):
        _ctx, result = traced_run
        trace, result.trace = result.trace, None
        try:
            text = render_html_report(result)
            assert "Stages" in text
            assert "Gantt" not in text
        finally:
            result.trace = trace

    def test_title_is_escaped(self, traced_run):
        _ctx, result = traced_run
        text = render_html_report(result, title="<b>run & report</b>")
        assert "<b>run" not in text
        assert "&lt;b&gt;run &amp; report&lt;/b&gt;" in text

    def test_write_creates_parents(self, traced_run, tmp_path):
        _ctx, result = traced_run
        out = write_html_report(tmp_path / "deep" / "r.html", result)
        assert out.exists()
        assert out.read_text().startswith("<!DOCTYPE html>")


class TestReportCli:
    def test_workspace_mode_from_event_log(self, tmp_path, capsys):
        event = paper_event("EV-NOV18")
        workload = scaled_workload(event, 0.02)
        ctx = RunContext.for_directory(
            tmp_path / "ws",
            parallel=ParallelSettings.uniform("thread", num_workers=2),
            response_config=small_response_config(n_periods=20),
        )
        ctx.events = True
        materialize(event, workload, ctx.workspace.input_dir)
        pipeline_factory("dag-parallel")().run(ctx)
        out = tmp_path / "run.html"
        code = main_report(
            ["--workspace", str(ctx.workspace.root), str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert "Monitor snapshot" in text
        assert "Live events" in text
        assert "run_finished" in text

    def test_workspace_mode_without_log_errors(self, tmp_path, capsys):
        code = main_report(
            ["--workspace", str(tmp_path), str(tmp_path / "out.html")]
        )
        assert code == 2
        assert "no event log" in capsys.readouterr().err
