"""Span self-time: duration minus direct children, per trace annotation."""

from __future__ import annotations

import pytest

from repro.observability.tracer import Span, Trace


def span(span_id, parent_id, duration, *, name="s", kind="span", start=0.0):
    return Span(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        kind=kind,
        start_s=start,
        duration_s=duration,
        worker="w",
    )


def test_self_time_before_annotation_is_duration():
    sp = span(1, None, 2.0)
    assert sp.self_time == 2.0


def test_annotate_subtracts_direct_children_only():
    trace = Trace(
        epoch=0.0,
        spans=[
            span(1, None, 10.0, name="stage", kind="stage"),
            span(2, 1, 3.0),
            span(3, 1, 4.0),
            span(4, 2, 1.0),  # grandchild: counts against 2, not 1
        ],
    )
    trace.annotate_self_times()
    by_id = {s.span_id: s for s in trace.spans}
    assert by_id[1].self_time == pytest.approx(3.0)
    assert by_id[2].self_time == pytest.approx(2.0)
    assert by_id[3].self_time == pytest.approx(4.0)
    assert by_id[4].self_time == pytest.approx(1.0)


def test_self_time_clamped_for_overlapping_children():
    # Pool workers run children concurrently: their summed duration can
    # exceed the parent's wall-clock.  Self time clamps at zero.
    trace = Trace(
        epoch=0.0,
        spans=[span(1, None, 1.0), span(2, 1, 0.8), span(3, 1, 0.7)],
    )
    trace.annotate_self_times()
    assert trace.spans[0].self_time == 0.0


def test_annotation_is_idempotent():
    trace = Trace(epoch=0.0, spans=[span(1, None, 5.0), span(2, 1, 2.0)])
    trace.annotate_self_times()
    trace.annotate_self_times()
    assert trace.spans[0].child_duration_s == pytest.approx(2.0)


def test_stage_self_times_sums_per_stage_name():
    trace = Trace(
        epoch=0.0,
        spans=[
            span(1, None, 4.0, name="IX", kind="stage"),
            span(2, 1, 1.0, kind="process"),
            span(3, None, 2.0, name="IX", kind="stage"),
            span(4, None, 1.5, name="X", kind="stage"),
        ],
    )
    self_times = trace.stage_self_times()
    assert self_times["IX"] == pytest.approx(5.0)  # (4-1) + 2
    assert self_times["X"] == pytest.approx(1.5)


def test_child_duration_not_serialized():
    sp = span(1, None, 3.0)
    sp.child_duration_s = 2.0
    data = sp.to_dict()
    assert "child_duration_s" not in data
    clone = Span.from_dict(data)
    assert clone.child_duration_s == 0.0
    assert clone == sp  # annotation is excluded from equality
