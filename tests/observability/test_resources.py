"""Resource telemetry: the /proc sampler and its log aggregates."""

from __future__ import annotations

import time

import pytest

from repro.observability.export import to_chrome_trace
from repro.observability.resources import (
    ResourceLog,
    ResourceSample,
    ResourceSampler,
    merge_logs,
    resources_available,
)
from repro.observability.tracer import Tracer

needs_proc = pytest.mark.skipif(
    not resources_available(), reason="host has no /proc"
)


def sample(t, cores=(0.2, 0.9), rss=1000, fds=4, threads=2, vol=0, invol=0):
    return ResourceSample(
        t_s=t, per_core=cores, rss_bytes=rss, open_fds=fds, n_threads=threads,
        vol_ctx_switches=vol, invol_ctx_switches=invol,
    )


class TestResourceLog:
    def test_empty_summary_is_zeros(self):
        summary = ResourceLog(interval_s=0.05).summary()
        assert summary["n_samples"] == 0
        assert summary["peak_rss_bytes"] == 0
        assert summary["mean_utilization"] == 0.0

    def test_summary_aggregates(self):
        log = ResourceLog(
            interval_s=0.05,
            samples=[
                sample(0.0, cores=(0.0, 0.0), rss=100, fds=3, threads=1),
                sample(0.1, cores=(1.0, 0.6), rss=300, fds=9, threads=4),
            ],
        )
        summary = log.summary()
        assert summary["n_samples"] == 2
        assert summary["n_cores"] == 2
        assert summary["peak_rss_bytes"] == 300
        assert summary["max_utilization"] == pytest.approx(0.8)
        assert summary["mean_utilization"] == pytest.approx(0.4)
        assert summary["max_busy_cores"] == 2
        assert summary["peak_open_fds"] == 9
        assert summary["peak_threads"] == 4

    def test_utilization_between_windows(self):
        log = ResourceLog(
            interval_s=0.05,
            samples=[sample(0.0, cores=(0.0,)), sample(1.0, cores=(1.0,))],
        )
        assert log.utilization_between(0.5, 2.0)["mean_utilization"] == 1.0
        assert log.utilization_between(5.0, 6.0)["n_samples"] == 0

    def test_summary_ctx_switch_spread(self):
        # The /proc counters are cumulative; the run's own switches are
        # the first-to-last spread, not the absolute values.
        log = ResourceLog(
            interval_s=0.05,
            samples=[sample(0.0, vol=100, invol=10), sample(0.1, vol=160, invol=13)],
        )
        summary = log.summary()
        assert summary["vol_ctx_switches"] == 60
        assert summary["invol_ctx_switches"] == 3

    def test_roundtrip(self):
        log = ResourceLog(interval_s=0.01, samples=[sample(0.5, vol=7, invol=2)])
        clone = ResourceLog.from_dict(log.to_dict())
        assert clone == log

    def test_from_dict_defaults_missing_switch_counts(self):
        # Logs serialized before the counters existed still load.
        data = sample(0.5).to_dict()
        del data["vol_ctx_switches"], data["invol_ctx_switches"]
        loaded = ResourceSample.from_dict(data)
        assert loaded.vol_ctx_switches == 0
        assert loaded.invol_ctx_switches == 0

    def test_merge_logs_sorts_by_time(self):
        a = ResourceLog(interval_s=0.1, samples=[sample(2.0)])
        b = ResourceLog(interval_s=0.05, samples=[sample(1.0)])
        merged = merge_logs([a, b])
        assert [s.t_s for s in merged.samples] == [1.0, 2.0]
        assert merged.interval_s == 0.05


@needs_proc
class TestResourceSampler:
    def test_samples_and_closing_sample(self):
        with ResourceSampler(interval_s=0.01) as sampler:
            time.sleep(0.06)
        log = sampler.log()
        assert len(log) >= 2  # periodic samples plus the closing one
        s = log.samples[-1]
        assert s.rss_bytes > 0
        assert s.n_threads >= 1
        assert s.open_fds >= 1
        assert all(0.0 <= u <= 1.0 for u in s.per_core)
        # Cumulative kernel counters: positive and non-decreasing.
        assert s.vol_ctx_switches > 0
        vols = [x.vol_ctx_switches for x in log.samples]
        assert vols == sorted(vols)

    def test_timestamps_follow_tracer_clock(self):
        tracer = Tracer()
        time.sleep(0.02)  # tracer clock is already past zero
        with ResourceSampler(interval_s=0.01, tracer=tracer) as sampler:
            time.sleep(0.03)
        log = sampler.log()
        assert log.samples
        assert all(s.t_s >= 0.02 for s in log.samples)
        assert all(s.t_s <= tracer.now() for s in log.samples)

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler(interval_s=0.01).start()
        time.sleep(0.02)
        first = sampler.stop()
        assert sampler.stop() == first


class TestChromeTraceCounters:
    def test_counter_events_emitted(self):
        tracer = Tracer()
        with tracer.span("run", kind="run"):
            pass
        log = ResourceLog(interval_s=0.05, samples=[sample(0.5)])
        doc = to_chrome_trace(tracer.trace(), resources=log)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {"cores_busy", "rss_mb", "process_state"}
        busy = next(e for e in counters if e["name"] == "cores_busy")
        assert busy["ts"] == pytest.approx(0.5e6)
        assert busy["args"] == {"cpu0": 0.2, "cpu1": 0.9}

    def test_ctx_switch_track_plots_interval_increments(self):
        tracer = Tracer()
        with tracer.span("run", kind="run"):
            pass
        log = ResourceLog(
            interval_s=0.05,
            samples=[
                sample(0.1, vol=100, invol=5),
                sample(0.2, vol=130, invol=9),
                sample(0.3, vol=130, invol=9),
            ],
        )
        doc = to_chrome_trace(tracer.trace(), resources=log)
        switches = [
            e for e in doc["traceEvents"]
            if e["ph"] == "C" and e["name"] == "ctx_switches"
        ]
        # No event for the first sample: increments need a predecessor.
        assert [e["args"] for e in switches] == [
            {"voluntary": 30, "involuntary": 4},
            {"voluntary": 0, "involuntary": 0},
        ]

    def test_no_resources_no_counters(self):
        tracer = Tracer()
        with tracer.span("run", kind="run"):
            pass
        doc = to_chrome_trace(tracer.trace())
        assert not [e for e in doc["traceEvents"] if e["ph"] == "C"]
