"""Unit tests for repro.dsp.detrend."""

import numpy as np
import pytest

from repro.dsp.detrend import (
    baseline_correct,
    remove_linear_trend,
    remove_mean,
    remove_polynomial_trend,
)
from repro.errors import SignalError


class TestRemoveMean:
    def test_zero_mean_output(self, rng):
        x = rng.normal(size=500) + 3.7
        assert remove_mean(x).mean() == pytest.approx(0.0, abs=1e-12)

    def test_preserves_shape(self, rng):
        x = rng.normal(size=123)
        assert remove_mean(x).shape == x.shape

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            remove_mean(np.array([]))


class TestRemoveLinear:
    def test_removes_pure_line(self):
        t = np.arange(100, dtype=float)
        x = 2.0 + 0.5 * t
        assert np.allclose(remove_linear_trend(x), 0.0, atol=1e-9)

    def test_leaves_oscillation(self, rng):
        t = np.linspace(0, 10, 1000)
        osc = np.sin(2 * np.pi * 1.0 * t)
        x = osc + 5.0 + 0.3 * t
        y = remove_linear_trend(x)
        # The partial final cycle leaks slightly into the line fit.
        assert np.corrcoef(y, osc)[0, 1] > 0.995

    def test_single_sample(self):
        assert remove_linear_trend(np.array([42.0])).tolist() == [0.0]

    def test_output_is_orthogonal_to_line(self, rng):
        x = rng.normal(size=200)
        y = remove_linear_trend(x)
        t = np.arange(200) - 99.5
        assert abs(np.dot(y, t)) < 1e-6 * np.linalg.norm(y) * np.linalg.norm(t) + 1e-9


class TestRemovePolynomial:
    def test_order_zero_is_mean_removal(self, rng):
        x = rng.normal(size=100) + 2.0
        assert np.allclose(remove_polynomial_trend(x, 0), remove_mean(x))

    def test_removes_cubic(self):
        t = np.linspace(-1, 1, 300)
        x = 1.0 + t - 2 * t**2 + 0.5 * t**3
        assert np.allclose(remove_polynomial_trend(x, 3), 0.0, atol=1e-8)

    def test_short_signal_falls_back_to_mean(self):
        x = np.array([1.0, 2.0])
        y = remove_polynomial_trend(x, 5)
        assert y.mean() == pytest.approx(0.0, abs=1e-12)

    def test_rejects_negative_order(self):
        with pytest.raises(SignalError):
            remove_polynomial_trend(np.ones(10), -1)


class TestBaselineCorrect:
    def test_removes_instrument_offset(self, rng):
        x = rng.normal(size=2000) * 0.01
        x += 7.5  # instrument offset
        y = baseline_correct(x)
        assert abs(y.mean()) < 0.05

    def test_removes_drift(self):
        t = np.arange(1000, dtype=float)
        x = 0.002 * t  # slow drift
        y = baseline_correct(x)
        assert np.max(np.abs(y)) < np.max(np.abs(x)) * 0.05

    def test_preserves_signal_energy(self, rng):
        t = np.linspace(0, 20, 2000)
        sig = np.sin(2 * np.pi * 2.0 * t)
        y = baseline_correct(sig + 3.0)
        assert np.corrcoef(y, sig)[0, 1] > 0.999

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            baseline_correct(np.array([]))
