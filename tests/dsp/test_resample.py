"""Unit tests for repro.dsp.resample."""

import numpy as np
import pytest

from repro.dsp.resample import decimate, resample_linear
from repro.errors import SignalError


class TestDecimate:
    def test_factor_one_is_identity(self, rng):
        x = rng.normal(size=100)
        y, dt = decimate(x, 1, 0.01)
        assert np.array_equal(y, x)
        assert dt == 0.01

    def test_length_and_dt(self, rng):
        x = rng.normal(size=1000)
        y, dt = decimate(x, 4, 0.005)
        assert len(y) == 250
        assert dt == pytest.approx(0.02)

    def test_preserves_low_frequency_content(self):
        dt = 0.005
        t = np.arange(8000) * dt
        x = np.sin(2 * np.pi * 1.0 * t)
        y, new_dt = decimate(x, 2, dt)
        t2 = np.arange(len(y)) * new_dt
        expected = np.sin(2 * np.pi * 1.0 * t2)
        mid = slice(500, 3000)
        assert np.corrcoef(y[mid], expected[mid])[0, 1] > 0.999

    def test_suppresses_aliasing_band(self):
        dt = 0.005  # 200 Hz; decimating by 2 -> new Nyquist 50 Hz
        t = np.arange(8000) * dt
        x = np.sin(2 * np.pi * 80.0 * t)  # above the new Nyquist
        y, _ = decimate(x, 2, dt)
        assert np.max(np.abs(y[500:3000])) < 0.05

    def test_rejects_bad_factor(self):
        with pytest.raises(SignalError):
            decimate(np.ones(10), 0, 0.01)


class TestResampleLinear:
    def test_identity_rate(self, rng):
        x = rng.normal(size=64)
        y = resample_linear(x, 0.01, 0.01)
        assert np.allclose(y, x)

    def test_duration_preserved(self):
        x = np.arange(101, dtype=float)
        y = resample_linear(x, 0.01, 0.02)
        assert len(y) == 51
        assert y[-1] == pytest.approx(100.0)

    def test_upsampling_interpolates(self):
        x = np.array([0.0, 1.0])
        y = resample_linear(x, 0.1, 0.05)
        assert np.allclose(y, [0.0, 0.5, 1.0])

    def test_empty(self):
        assert resample_linear(np.array([]), 0.01, 0.02).size == 0

    def test_rejects_bad_rates(self):
        with pytest.raises(SignalError):
            resample_linear(np.ones(5), 0.0, 0.01)
