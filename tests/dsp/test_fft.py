"""Unit tests for repro.dsp.fft (the self-contained FFT)."""

import numpy as np
import pytest

from repro.dsp.fft import (
    fft,
    fft_bluestein,
    fft_pure,
    fft_radix2,
    ifft,
    ifft_pure,
    ifft_radix2,
    irfft,
    next_pow2,
    rfft,
    rfft_frequencies,
)
from repro.errors import SignalError


class TestNextPow2:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1000, 1024), (1024, 1024)]
    )
    def test_values(self, n, expected):
        assert next_pow2(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(SignalError):
            next_pow2(0)


class TestRadix2:
    def test_matches_numpy(self, rng):
        for n in (1, 2, 4, 64, 256):
            x = rng.normal(size=n) + 1j * rng.normal(size=n)
            assert np.allclose(fft_radix2(x), np.fft.fft(x), atol=1e-10)

    def test_roundtrip(self, rng):
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        assert np.allclose(ifft_radix2(fft_radix2(x)), x, atol=1e-10)

    def test_rejects_non_pow2(self):
        with pytest.raises(SignalError):
            fft_radix2(np.zeros(6))

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            fft_radix2(np.array([]))

    def test_impulse(self):
        x = np.zeros(16)
        x[0] = 1.0
        assert np.allclose(fft_radix2(x), np.ones(16))


class TestBluestein:
    @pytest.mark.parametrize("n", [1, 3, 5, 6, 7, 12, 100, 101, 255])
    def test_matches_numpy(self, rng, n):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-8)

    def test_power_of_two_also_works(self, rng):
        x = rng.normal(size=32)
        assert np.allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-9)


class TestPureDispatch:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 30, 128, 333])
    def test_any_length(self, rng, n):
        x = rng.normal(size=n)
        assert np.allclose(fft_pure(x), np.fft.fft(x), atol=1e-8)

    def test_inverse_roundtrip(self, rng):
        x = rng.normal(size=90) + 1j * rng.normal(size=90)
        assert np.allclose(ifft_pure(fft_pure(x)), x, atol=1e-9)

    def test_linearity(self, rng):
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        lhs = fft_pure(2.0 * a + 3.0 * b)
        rhs = 2.0 * fft_pure(a) + 3.0 * fft_pure(b)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_parseval(self, rng):
        x = rng.normal(size=256)
        spec = fft_pure(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(np.sum(np.abs(spec) ** 2) / 256)


class TestPublicWrappers:
    def test_fft_default_is_numpy(self, rng):
        x = rng.normal(size=100)
        assert np.allclose(fft(x), np.fft.fft(x))

    def test_fft_pure_flag(self, rng):
        x = rng.normal(size=100)
        assert np.allclose(fft(x, pure=True), np.fft.fft(x), atol=1e-8)

    def test_ifft_pure_flag(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        assert np.allclose(ifft(x, pure=True), np.fft.ifft(x), atol=1e-9)

    def test_rfft_matches_numpy(self, rng):
        x = rng.normal(size=101)
        assert np.allclose(rfft(x), np.fft.rfft(x))
        assert np.allclose(rfft(x, pure=True), np.fft.rfft(x), atol=1e-8)

    def test_irfft_roundtrip(self, rng):
        x = rng.normal(size=128)
        assert np.allclose(irfft(rfft(x), 128), x, atol=1e-10)

    def test_irfft_pure_roundtrip(self, rng):
        for n in (64, 65):
            x = rng.normal(size=n)
            assert np.allclose(irfft(rfft(x), n, pure=True), x, atol=1e-8)


class TestFrequencies:
    def test_matches_numpy(self):
        assert np.allclose(rfft_frequencies(100, 0.01), np.fft.rfftfreq(100, 0.01))

    def test_nyquist_is_last(self):
        freqs = rfft_frequencies(100, 0.005)
        assert freqs[-1] == pytest.approx(100.0)  # 1/(2*0.005)

    def test_rejects_bad_args(self):
        with pytest.raises(SignalError):
            rfft_frequencies(0, 0.01)
        with pytest.raises(SignalError):
            rfft_frequencies(10, -1.0)
