"""Unit tests for repro.dsp.integrate."""

import numpy as np
import pytest

from repro.dsp.integrate import (
    acceleration_to_motion,
    acceleration_to_velocity,
    differentiate_central,
    integrate_trapezoid,
    velocity_to_displacement,
)
from repro.errors import SignalError


class TestTrapezoid:
    def test_constant_integrates_to_ramp(self):
        dt = 0.1
        x = np.ones(11)
        out = integrate_trapezoid(x, dt)
        assert np.allclose(out, np.arange(11) * dt)

    def test_starts_at_zero(self, rng):
        out = integrate_trapezoid(rng.normal(size=50), 0.01)
        assert out[0] == 0.0

    def test_matches_analytic_sine(self):
        dt = 0.001
        t = np.arange(0, 2, dt)
        x = np.cos(2 * np.pi * t)
        out = integrate_trapezoid(x, dt)
        expected = np.sin(2 * np.pi * t) / (2 * np.pi)
        assert np.allclose(out, expected, atol=1e-5)

    def test_linearity(self, rng):
        a = rng.normal(size=100)
        b = rng.normal(size=100)
        lhs = integrate_trapezoid(a + 2 * b, 0.01)
        rhs = integrate_trapezoid(a, 0.01) + 2 * integrate_trapezoid(b, 0.01)
        assert np.allclose(lhs, rhs)

    def test_empty(self):
        assert integrate_trapezoid(np.array([]), 0.01).size == 0

    def test_rejects_bad_dt(self):
        with pytest.raises(SignalError):
            integrate_trapezoid(np.ones(10), 0.0)

    def test_rejects_2d(self):
        with pytest.raises(SignalError):
            integrate_trapezoid(np.ones((2, 5)), 0.01)


class TestDifferentiate:
    def test_inverse_of_integration(self, rng):
        dt = 0.01
        x = np.sin(np.linspace(0, 6, 1000))
        vel = integrate_trapezoid(x, dt)
        back = differentiate_central(vel, dt)
        assert np.allclose(back[5:-5], x[5:-5], atol=1e-3)

    def test_short_signals(self):
        assert np.all(differentiate_central(np.array([1.0]), 0.01) == 0.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(SignalError):
            differentiate_central(np.ones(10), -0.1)


class TestMotionChain:
    def test_sine_acceleration_peaks(self):
        # a(t) = A sin(w t) from rest -> v = (A/w)(1 - cos w t), whose
        # peak is 2A/w; after detrending v -> -(A/w) cos w t, so the
        # displacement peak is A/w^2.
        dt = 0.002
        f = 1.0
        w = 2 * np.pi * f
        t = np.arange(0, 30, dt)
        acc = 10.0 * np.sin(w * t)
        vel_raw = acceleration_to_velocity(acc, dt, detrend=False)
        assert np.max(np.abs(vel_raw)) == pytest.approx(2 * 10.0 / w, rel=0.02)
        vel = acceleration_to_velocity(acc, dt, detrend=True)
        disp = velocity_to_displacement(vel, dt, detrend=True)
        assert np.max(np.abs(disp)) == pytest.approx(10.0 / w**2, rel=0.1)

    def test_detrend_removes_velocity_drift(self, rng):
        dt = 0.01
        acc = rng.normal(size=5000) + 0.05  # small accel bias -> drift
        vel = acceleration_to_velocity(acc, dt, detrend=True)
        # Without detrending the drift dominates; with it the ends stay bounded.
        drift = acceleration_to_velocity(acc, dt, detrend=False)
        assert np.abs(vel[-1]) < np.abs(drift[-1])

    def test_triple_output_consistency(self, rng):
        dt = 0.01
        raw = rng.normal(size=2000)
        a, v, d = acceleration_to_motion(raw, dt)
        assert a.shape == v.shape == d.shape
        assert np.array_equal(a, np.asarray(raw, dtype=float))
