"""Unit tests for repro.dsp.peak."""

import numpy as np
import pytest

from repro.dsp.peak import PeakValues, peak_amplitude, peak_ground_motion, peak_index
from repro.errors import SignalError


class TestPeakIndex:
    def test_finds_largest_magnitude(self):
        x = np.array([1.0, -5.0, 3.0])
        assert peak_index(x) == 1

    def test_signed_amplitude(self):
        x = np.array([1.0, -5.0, 3.0])
        assert peak_amplitude(x) == -5.0

    def test_first_of_ties(self):
        x = np.array([2.0, -2.0])
        assert peak_index(x) == 0

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            peak_index(np.array([]))


class TestPeakGroundMotion:
    def test_times_match_indices(self):
        dt = 0.01
        acc = np.zeros(100)
        acc[40] = -9.0
        vel = np.zeros(100)
        vel[10] = 2.0
        disp = np.zeros(100)
        disp[99] = 0.5
        peaks = peak_ground_motion(acc, vel, disp, dt)
        assert peaks.pga == -9.0
        assert peaks.pga_time == pytest.approx(0.40)
        assert peaks.pgv == 2.0
        assert peaks.pgv_time == pytest.approx(0.10)
        assert peaks.pgd == 0.5
        assert peaks.pgd_time == pytest.approx(0.99)

    def test_as_tuple_ordering(self):
        peaks = PeakValues(1.0, 0.1, 2.0, 0.2, 3.0, 0.3)
        assert peaks.as_tuple() == (1.0, 0.1, 2.0, 0.2, 3.0, 0.3)

    def test_rejects_bad_dt(self):
        with pytest.raises(SignalError):
            peak_ground_motion(np.ones(5), np.ones(5), np.ones(5), 0.0)
