"""Unit tests for repro.dsp.fir (Hamming band-pass design/filtering)."""

import numpy as np
import pytest

from repro.dsp.fir import (
    DEFAULT_BANDPASS,
    BandPassSpec,
    design_bandpass,
    filter_delay_samples,
    fir_filter,
    hamming_bandpass,
)
from repro.errors import FilterDesignError


def freq_response(taps: np.ndarray, freqs: np.ndarray, dt: float) -> np.ndarray:
    m = (len(taps) - 1) // 2
    n = np.arange(-m, m + 1)
    return np.array(
        [np.abs(np.sum(taps * np.exp(-2j * np.pi * f * dt * n))) for f in freqs]
    )


class TestBandPassSpec:
    def test_default_is_valid(self):
        DEFAULT_BANDPASS.validate(nyquist=50.0)

    def test_rejects_unordered_corners(self):
        spec = BandPassSpec(0.2, 0.1, 25.0, 30.0)
        with pytest.raises(FilterDesignError):
            spec.validate(nyquist=50.0)

    def test_rejects_above_nyquist(self):
        spec = BandPassSpec(0.05, 0.1, 25.0, 60.0)
        with pytest.raises(FilterDesignError):
            spec.validate(nyquist=50.0)

    def test_rejects_nan(self):
        spec = BandPassSpec(0.05, float("nan"), 25.0, 30.0)
        with pytest.raises(FilterDesignError):
            spec.validate(nyquist=50.0)

    def test_transition_width(self):
        spec = BandPassSpec(0.05, 0.10, 25.0, 30.0)
        assert spec.transition_width == pytest.approx(0.05)

    def test_with_low_corners(self):
        updated = DEFAULT_BANDPASS.with_low_corners(0.2, 0.4)
        assert updated.f_stop_low == 0.2
        assert updated.f_pass_low == 0.4
        assert updated.f_pass_high == DEFAULT_BANDPASS.f_pass_high
        assert updated.f_stop_high == DEFAULT_BANDPASS.f_stop_high


class TestDesign:
    def test_taps_are_odd_and_symmetric(self):
        taps = design_bandpass(DEFAULT_BANDPASS, 0.01)
        assert len(taps) % 2 == 1
        assert np.allclose(taps, taps[::-1])

    def test_max_taps_respected(self):
        taps = design_bandpass(DEFAULT_BANDPASS, 0.005, max_taps=513)
        assert len(taps) <= 513

    def test_passband_gain_near_unity(self):
        spec = BandPassSpec(0.5, 1.0, 10.0, 12.0)
        dt = 0.01
        taps = design_bandpass(spec, dt)
        freqs = np.array([2.0, 3.0, 5.0])
        gains = freq_response(taps, freqs, dt)
        assert np.all(np.abs(gains - 1.0) < 0.05)

    def test_stopband_attenuation(self):
        spec = BandPassSpec(0.5, 1.0, 10.0, 12.0)
        dt = 0.01
        taps = design_bandpass(spec, dt)
        gains = freq_response(taps, np.array([0.1, 20.0, 40.0]), dt)
        assert np.all(gains < 0.05)

    def test_rejects_bad_dt(self):
        with pytest.raises(FilterDesignError):
            design_bandpass(DEFAULT_BANDPASS, 0.0)


class TestFilter:
    def test_preserves_length(self, rng):
        x = rng.normal(size=777)
        taps = design_bandpass(DEFAULT_BANDPASS, 0.01)
        assert fir_filter(x, taps).shape == x.shape

    def test_zero_phase_alignment(self):
        # A pass-band sinusoid should come through nearly unshifted.
        dt = 0.01
        t = np.arange(4000) * dt
        x = np.sin(2 * np.pi * 2.0 * t)
        y = hamming_bandpass(x, dt, BandPassSpec(0.2, 0.5, 10.0, 15.0))
        mid = slice(1000, 3000)
        corr = np.corrcoef(x[mid], y[mid])[0, 1]
        assert corr > 0.999

    def test_removes_dc(self):
        dt = 0.01
        x = np.ones(4000) * 5.0
        y = hamming_bandpass(x, dt, BandPassSpec(0.2, 0.5, 10.0, 15.0))
        assert np.max(np.abs(y[1000:3000])) < 0.05

    def test_removes_high_frequency(self):
        dt = 0.01
        t = np.arange(4000) * dt
        x = np.sin(2 * np.pi * 40.0 * t)
        y = hamming_bandpass(x, dt, BandPassSpec(0.2, 0.5, 10.0, 15.0))
        assert np.max(np.abs(y[1000:3000])) < 0.05

    def test_linearity(self, rng):
        dt = 0.01
        a = rng.normal(size=1000)
        b = rng.normal(size=1000)
        taps = design_bandpass(DEFAULT_BANDPASS, dt)
        lhs = fir_filter(2 * a - b, taps)
        rhs = 2 * fir_filter(a, taps) - fir_filter(b, taps)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_empty_signal(self):
        taps = design_bandpass(DEFAULT_BANDPASS, 0.01)
        assert fir_filter(np.array([]), taps).size == 0

    def test_rejects_2d(self):
        taps = design_bandpass(DEFAULT_BANDPASS, 0.01)
        with pytest.raises(FilterDesignError):
            fir_filter(np.zeros((3, 3)), taps)

    def test_delay_helper(self):
        taps = np.ones(9)
        assert filter_delay_samples(taps) == 4
