"""Unit tests for repro.dsp.window."""

import numpy as np
import pytest

from repro.dsp.window import apply_taper, cosine_taper, hamming, hann
from repro.errors import SignalError


class TestHamming:
    def test_endpoints(self):
        w = hamming(11)
        assert w[0] == pytest.approx(0.08)
        assert w[-1] == pytest.approx(0.08)

    def test_peak_at_center(self):
        w = hamming(11)
        assert w[5] == pytest.approx(1.0)
        assert np.argmax(w) == 5

    def test_symmetry(self):
        w = hamming(64)
        assert np.allclose(w, w[::-1])

    def test_matches_closed_form(self):
        n = 21
        k = np.arange(n)
        expected = 0.54 - 0.46 * np.cos(2 * np.pi * k / (n - 1))
        assert np.allclose(hamming(n), expected)

    def test_matches_numpy(self):
        assert np.allclose(hamming(33), np.hamming(33))

    def test_length_one(self):
        assert hamming(1).tolist() == [1.0]

    def test_rejects_non_positive(self):
        with pytest.raises(SignalError):
            hamming(0)


class TestHann:
    def test_endpoints_zero(self):
        w = hann(9)
        assert w[0] == pytest.approx(0.0)
        assert w[-1] == pytest.approx(0.0)

    def test_matches_numpy(self):
        assert np.allclose(hann(33), np.hanning(33))

    def test_length_one(self):
        assert hann(1).tolist() == [1.0]

    def test_rejects_non_positive(self):
        with pytest.raises(SignalError):
            hann(-3)


class TestCosineTaper:
    def test_middle_untouched(self):
        w = cosine_taper(101, 0.05)
        assert np.all(w[10:91] == 1.0)

    def test_ends_are_zero(self):
        w = cosine_taper(100, 0.1)
        assert w[0] == pytest.approx(0.0)
        assert w[-1] == pytest.approx(0.0)

    def test_zero_fraction_is_boxcar(self):
        assert np.all(cosine_taper(50, 0.0) == 1.0)

    def test_symmetry(self):
        w = cosine_taper(80, 0.2)
        assert np.allclose(w, w[::-1])

    def test_monotone_ramp(self):
        w = cosine_taper(200, 0.25)
        ramp = w[:50]
        assert np.all(np.diff(ramp) >= 0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(SignalError):
            cosine_taper(10, 0.7)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            cosine_taper(0)


class TestApplyTaper:
    def test_preserves_length_and_dtype(self, rng):
        x = rng.normal(size=500)
        y = apply_taper(x, 0.05)
        assert y.shape == x.shape
        assert y.dtype == np.float64

    def test_does_not_modify_input(self, rng):
        x = rng.normal(size=100)
        before = x.copy()
        apply_taper(x)
        assert np.array_equal(x, before)

    def test_reduces_edge_energy(self, rng):
        x = np.ones(1000)
        y = apply_taper(x, 0.1)
        assert abs(y[0]) < 1e-12 and abs(y[-1]) < 1e-12
        assert y[500] == pytest.approx(1.0)
