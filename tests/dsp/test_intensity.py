"""Unit tests for the intensity-measure module."""

import numpy as np
import pytest

from repro.dsp.intensity import (
    arias_intensity,
    bracketed_duration,
    cumulative_absolute_velocity,
    husid_curve,
    intensity_measures,
    rms_acceleration,
    significant_duration,
)
from repro.errors import SignalError
from repro.units import G_GAL


@pytest.fixture()
def pulse_record():
    """A 10 s record with all its energy between 4 s and 6 s."""
    dt = 0.01
    acc = np.zeros(1000)
    acc[400:600] = 100.0  # constant 100 gal burst
    return acc, dt


class TestArias:
    def test_constant_burst_closed_form(self, pulse_record):
        acc, dt = pulse_record
        # Ia = pi/(2g) * a^2 * T_burst.
        expected = np.pi / (2 * G_GAL) * 100.0**2 * 2.0
        assert arias_intensity(acc, dt) == pytest.approx(expected, rel=0.01)

    def test_scales_quadratically(self, pulse_record):
        acc, dt = pulse_record
        assert arias_intensity(2 * acc, dt) == pytest.approx(
            4 * arias_intensity(acc, dt)
        )

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            arias_intensity(np.array([]), 0.01)


class TestHusid:
    def test_monotone_zero_to_one(self, pulse_record):
        acc, dt = pulse_record
        husid = husid_curve(acc, dt)
        assert husid[0] == 0.0
        assert husid[-1] == pytest.approx(1.0)
        assert np.all(np.diff(husid) >= -1e-12)

    def test_flat_before_burst(self, pulse_record):
        acc, dt = pulse_record
        husid = husid_curve(acc, dt)
        assert np.all(husid[:400] == 0.0)
        assert np.all(husid[600:] == pytest.approx(1.0))

    def test_zero_record(self):
        husid = husid_curve(np.zeros(100), 0.01)
        assert np.all(husid == 0.0)


class TestDurations:
    def test_significant_duration_of_burst(self, pulse_record):
        acc, dt = pulse_record
        # 5-95% of a uniform 2 s burst is 90% of it.
        assert significant_duration(acc, dt) == pytest.approx(1.8, abs=0.05)

    def test_custom_percentiles(self, pulse_record):
        acc, dt = pulse_record
        d_full = significant_duration(acc, dt, lower=0.01, upper=0.99)
        d_mid = significant_duration(acc, dt, lower=0.25, upper=0.75)
        assert d_full > d_mid

    def test_bracketed_duration(self, pulse_record):
        acc, dt = pulse_record
        assert bracketed_duration(acc, dt, threshold_gal=50.0) == pytest.approx(
            1.99, abs=0.02
        )

    def test_bracketed_never_exceeded(self, pulse_record):
        acc, dt = pulse_record
        assert bracketed_duration(acc, dt, threshold_gal=500.0) == 0.0

    def test_zero_record_durations(self):
        assert significant_duration(np.zeros(50), 0.01) == 0.0
        assert bracketed_duration(np.zeros(50), 0.01) == 0.0

    def test_rejects_bad_percentiles(self, pulse_record):
        acc, dt = pulse_record
        with pytest.raises(SignalError):
            significant_duration(acc, dt, lower=0.9, upper=0.1)


class TestCavRms:
    def test_cav_of_burst(self, pulse_record):
        acc, dt = pulse_record
        assert cumulative_absolute_velocity(acc, dt) == pytest.approx(200.0, rel=0.01)

    def test_cav_sign_invariant(self, pulse_record):
        acc, dt = pulse_record
        assert cumulative_absolute_velocity(-acc, dt) == pytest.approx(
            cumulative_absolute_velocity(acc, dt)
        )

    def test_rms_over_significant_window(self, pulse_record):
        acc, dt = pulse_record
        # Within the burst the signal is constant 100 gal.
        assert rms_acceleration(acc, dt) == pytest.approx(100.0, rel=0.02)

    def test_rms_full_record_lower(self, pulse_record):
        acc, dt = pulse_record
        full = rms_acceleration(acc, dt, significant_only=False)
        sig = rms_acceleration(acc, dt, significant_only=True)
        assert full < sig


class TestBundle:
    def test_all_measures_consistent(self, pulse_record):
        acc, dt = pulse_record
        measures = intensity_measures(acc, dt)
        assert measures.arias_cm_s == pytest.approx(arias_intensity(acc, dt))
        assert measures.cav_cm_s == pytest.approx(
            cumulative_absolute_velocity(acc, dt)
        )
        assert measures.significant_duration_s > 0
        assert measures.bracketed_duration_s > 0
        assert measures.rms_gal > 0

    def test_realistic_record(self, rng):
        dt = 0.01
        acc = rng.normal(size=6000) * np.hanning(6000) * 30.0
        measures = intensity_measures(acc, dt)
        assert 0 < measures.significant_duration_s < 60.0
        assert measures.arias_cm_s > 0
