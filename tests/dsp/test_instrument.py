"""Unit tests for instrument response simulation and removal."""

import numpy as np
import pytest

from repro.dsp.instrument import (
    AccelerometerModel,
    remove_instrument_response,
    simulate_instrument,
)
from repro.errors import SignalError


class TestModel:
    def test_unit_gain_at_low_frequency(self):
        model = AccelerometerModel(natural_freq_hz=100.0, damping=0.707)
        h = model.transfer_function(np.array([0.0, 1.0, 5.0]))
        assert np.allclose(np.abs(h), 1.0, atol=0.01)

    def test_rolloff_above_corner(self):
        model = AccelerometerModel(natural_freq_hz=50.0)
        h = model.transfer_function(np.array([200.0]))
        assert np.abs(h)[0] < 0.1

    def test_resonance_mild_at_707_damping(self):
        # 0.707 damping: maximally flat, no resonant peak above ~1.0.
        model = AccelerometerModel(natural_freq_hz=100.0, damping=0.707)
        freqs = np.linspace(1, 150, 300)
        assert np.abs(model.transfer_function(freqs)).max() < 1.05

    def test_underdamped_sensor_peaks(self):
        model = AccelerometerModel(natural_freq_hz=100.0, damping=0.2)
        freqs = np.linspace(50, 150, 300)
        assert np.abs(model.transfer_function(freqs)).max() > 2.0

    def test_sensitivity_scales(self):
        model = AccelerometerModel(sensitivity=2.5)
        h = model.transfer_function(np.array([1.0]))
        assert np.abs(h)[0] == pytest.approx(2.5, rel=0.01)

    def test_validation(self):
        with pytest.raises(SignalError):
            AccelerometerModel(natural_freq_hz=-5.0)
        with pytest.raises(SignalError):
            AccelerometerModel(damping=0.0)
        with pytest.raises(SignalError):
            AccelerometerModel(sensitivity=0.0)


class TestSimulateAndRemove:
    def test_in_band_passthrough(self, rng):
        # A 100 Hz sensor barely touches a 1 Hz signal.
        dt = 0.005
        t = np.arange(8000) * dt
        true = np.sin(2 * np.pi * 1.0 * t)
        model = AccelerometerModel(natural_freq_hz=100.0)
        recorded = simulate_instrument(true, dt, model)
        mid = slice(1000, 7000)
        assert np.allclose(recorded[mid], true[mid], atol=0.02)

    def test_roundtrip_in_band(self, rng):
        from repro.dsp.fir import BandPassSpec, hamming_bandpass

        dt = 0.005
        true = hamming_bandpass(
            rng.normal(size=8000), dt, BandPassSpec(0.2, 0.5, 20.0, 25.0)
        )
        model = AccelerometerModel(natural_freq_hz=50.0, damping=0.707)
        recorded = simulate_instrument(true, dt, model)
        corrected = remove_instrument_response(recorded, dt, model)
        mid = slice(1000, 7000)
        err = np.abs(corrected[mid] - true[mid]).max() / np.abs(true).max()
        assert err < 0.02

    def test_low_natural_freq_distorts_more(self, rng):
        dt = 0.005
        t = np.arange(8000) * dt
        true = np.sin(2 * np.pi * 10.0 * t)
        weak = simulate_instrument(true, dt, AccelerometerModel(natural_freq_hz=15.0))
        strong = simulate_instrument(true, dt, AccelerometerModel(natural_freq_hz=200.0))
        err_weak = np.abs(weak - true)[1000:7000].max()
        err_strong = np.abs(strong - true)[1000:7000].max()
        assert err_weak > err_strong

    def test_water_level_bounds_amplification(self, rng):
        # Broadband noise through a low-corner sensor, then correction:
        # without the water level, the out-of-band division would blow
        # up; the corrected trace must stay comparable to the input.
        dt = 0.002
        recorded = rng.normal(size=8000)
        model = AccelerometerModel(natural_freq_hz=20.0)
        corrected = remove_instrument_response(recorded, dt, model, water_level=0.05)
        assert np.abs(corrected).max() < 100 * np.abs(recorded).max()

    def test_invalid_water_level(self, rng):
        with pytest.raises(SignalError):
            remove_instrument_response(
                rng.normal(size=100), 0.01, AccelerometerModel(), water_level=1.5
            )

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            simulate_instrument(np.array([]), 0.01, AccelerometerModel())
        with pytest.raises(SignalError):
            remove_instrument_response(np.array([]), 0.01, AccelerometerModel())
