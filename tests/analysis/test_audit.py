"""Runtime audit machinery: classification, scopes, conflict detection."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.audit import audit_findings, classify_path, conflict_findings
from repro.analysis.model import ERROR
from repro.core import auditing
from repro.core.auditing import AUDIT_DIR, current_scope, unit_scope


STATIONS = ["ABCD", "EFGH"]


class TestClassifyPath:
    def test_simple_work_files(self):
        assert classify_path("work/flags.dat") == ("artifact", "flags")
        assert classify_path("work/filter.par") == ("artifact", "filter_params")
        assert classify_path("work/maxvals2.dat") == ("artifact", "maxvals2")

    def test_raw_input(self):
        assert classify_path("input/ABCD.v1") == ("artifact", "raw_v1")

    def test_component_suffixes(self):
        assert classify_path("work/ABCDl.v1") == ("artifact", "comp_v1")
        assert classify_path("work/ABCDt.v2") == ("artifact", "comp_v2")
        assert classify_path("work/ABCDv.f") == ("artifact", "comp_f")
        assert classify_path("work/ABCDl.r") == ("artifact", "comp_r")
        assert classify_path("work/ABCDl2A.gem") == ("artifact", "gem")

    def test_plots_disambiguated_by_station_list(self):
        assert classify_path("work/ABCD.ps", STATIONS) == ("artifact", "plot_acc")
        assert classify_path("work/ABCDf.ps", STATIONS) == ("artifact", "plot_fourier")
        assert classify_path("work/ABCDr.ps", STATIONS) == ("artifact", "plot_response")

    def test_transients(self):
        assert classify_path("work/tmp/iv_0/anything")[0] == "transient"
        assert classify_path("work/ABCDl.max")[0] == "transient"
        assert classify_path("work/tool.cfg")[0] == "transient"
        assert classify_path("work/_wf_ABCD.par")[0] == "transient"

    def test_unknown(self):
        assert classify_path("elsewhere/x") == ("unknown", None)
        assert classify_path("work/strange.bin") == ("unknown", None)


class TestUnitScope:
    def test_outermost_scope_wins(self):
        with unit_scope("P4", "ABCD"):
            with unit_scope("P3", "EFGH"):
                assert current_scope() == ("P4", "ABCD")
        assert current_scope() is None

    def test_fork_inherited_scope_counts_as_absent(self, monkeypatch):
        """A scope carried across os.fork() must not mask worker scopes."""
        with unit_scope("P3", "-"):
            assert current_scope() == ("P3", "-")
            # Simulate being a freshly forked child: same context, new pid.
            monkeypatch.setattr(auditing.os, "getpid", lambda: -1)
            assert current_scope() is None
            with unit_scope("P16", "ABCDl"):
                assert current_scope() == ("P16", "ABCDl")
            monkeypatch.undo()
            assert current_scope() == ("P3", "-")


def _write_events(root: Path, events: list[dict]) -> None:
    log_dir = root / AUDIT_DIR
    log_dir.mkdir(parents=True, exist_ok=True)
    with open(log_dir / "events-1-1.jsonl", "w") as fh:
        for event in events:
            fh.write(json.dumps({"worker": "1:1", "t": 0.0, **event}) + "\n")


class TestConflictDetection:
    def test_two_units_writing_one_file_conflict(self, tmp_path: Path):
        _write_events(tmp_path, [
            {"path": "work/ABCDl.v2", "op": "write", "process": "P4", "unit": "ABCD"},
            {"path": "work/ABCDl.v2", "op": "write", "process": "P4", "unit": "EFGH"},
        ])
        findings = conflict_findings(tmp_path)
        assert len(findings) == 1
        assert "conflicting concurrent access" in findings[0].message

    def test_driver_scope_is_barrier_ordered(self, tmp_path: Path):
        _write_events(tmp_path, [
            {"path": "work/maxvals.dat", "op": "write", "process": "P4", "unit": "ABCD"},
            {"path": "work/maxvals.dat", "op": "write", "process": "P4", "unit": "-"},
        ])
        assert conflict_findings(tmp_path) == []

    def test_same_stage_processes_conflict(self, tmp_path: Path):
        # P0 and P1 share stage I; a shared write would be a race.
        _write_events(tmp_path, [
            {"path": "work/flags.dat", "op": "write", "process": "P0", "unit": "-"},
            {"path": "work/flags.dat", "op": "read", "process": "P1", "unit": "-"},
        ])
        assert len(conflict_findings(tmp_path)) == 1

    def test_cross_stage_processes_are_ordered(self, tmp_path: Path):
        _write_events(tmp_path, [
            {"path": "work/ABCDl.v2", "op": "write", "process": "P4", "unit": "ABCD"},
            {"path": "work/ABCDl.v2", "op": "read", "process": "P7", "unit": "ABCD"},
        ])
        assert conflict_findings(tmp_path) == []

    def test_reads_never_conflict(self, tmp_path: Path):
        _write_events(tmp_path, [
            {"path": "work/filter.par", "op": "read", "process": "P4", "unit": "ABCD"},
            {"path": "work/filter.par", "op": "read", "process": "P4", "unit": "EFGH"},
        ])
        assert conflict_findings(tmp_path) == []


class TestAuditFindings:
    def test_undeclared_observed_access_is_error(self, tmp_path: Path):
        # P4 declares no gem write.
        _write_events(tmp_path, [
            {"path": "work/ABCDl2A.gem", "op": "write", "process": "P4", "unit": "ABCD"},
        ])
        findings = audit_findings(tmp_path, STATIONS)
        assert any(
            f.severity == ERROR and f.process == "P4" and "gem" in f.message
            for f in findings
        )

    def test_empty_log_is_reported(self, tmp_path: Path):
        _write_events(tmp_path, [])
        findings = audit_findings(tmp_path, STATIONS)
        assert any("no audit events" in f.message for f in findings)
