"""Static conformance: process code vs registry declarations."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis import analyze_processes, conformance_findings, main_lint
from repro.analysis.model import ERROR
from repro.analysis.static_conformance import default_processes_dir
from repro.core.registry import PROCESSES


class TestCleanTree:
    def test_no_findings_on_repo(self):
        assert conformance_findings() == []

    def test_every_process_analyzed(self):
        summaries = analyze_processes()
        assert sorted(summaries) == sorted(PROCESSES)

    def test_extraction_matches_declarations_exactly(self):
        for pid, summary in analyze_processes().items():
            spec = PROCESSES[pid]
            assert summary.reads == {ref.identity for ref in spec.reads}, spec.label
            assert summary.writes == {ref.identity for ref in spec.writes}, spec.label
            assert not summary.unknowns, spec.label


@pytest.fixture()
def seeded_violation_dir(tmp_path: Path) -> Path:
    """A copy of the process modules with an undeclared write in P2."""
    target = tmp_path / "processes"
    target.mkdir()
    for src in sorted(default_processes_dir().glob("*.py")):
        shutil.copy2(src, target / src.name)
    p02 = target / "p02_params.py"
    p02.write_text(
        p02.read_text()
        + "\n\n"
        + "def run_p02(ctx, _original=run_p02):\n"
        + "    _original(ctx)\n"
        + '    ctx.workspace.work("maxvals.dat").write_text("boom")\n'
    )
    return target


class TestSeededViolation:
    def test_undeclared_write_is_error(self, seeded_violation_dir: Path):
        findings = conformance_findings(seeded_violation_dir)
        errors = [f for f in findings if f.severity == ERROR]
        assert any(
            f.process == "P2" and "maxvals" in f.message and "write" in f.message
            for f in errors
        ), [f.render() for f in findings]

    def test_cli_exit_codes(self, seeded_violation_dir: Path, capsys):
        assert main_lint(["--strict"]) == 0
        capsys.readouterr()
        assert main_lint(["--strict", "--processes-dir", str(seeded_violation_dir)]) == 1
        out = capsys.readouterr().out
        assert "maxvals" in out

    def test_cli_json_output(self, seeded_violation_dir: Path, capsys):
        import json

        assert main_lint(["--json", "--processes-dir", str(seeded_violation_dir)]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert any(f["severity"] == "error" for f in findings)
