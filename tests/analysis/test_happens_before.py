"""Happens-before cross-check: recorded runs agree with the static proof.

An audited engine run records its region plan alongside the access
logs.  The auditor reconstructs a vector-clock ordering from that plan
(one epoch per region) and must find **zero** recorded access pairs
the static race proof claimed impossible — on both the thread and the
process backend, for the DAG policy and the fused policy.  Synthetic
``.audit`` fixtures then pin down the violation and degraded paths.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import audit_findings, happens_before_findings
from repro.analysis.model import ERROR, INFO, WARNING

from tests.conftest import make_context

POLICIES = ("dag-parallel", "full-parallel-fused")


def _run_audited(policy_name: str, backend: str, root: Path, dataset: Path):
    from repro.core.context import ParallelSettings
    from repro.engine import EnginePipeline
    from repro.engine.policy import resolve_policy

    ctx = make_context(
        root, parallel=ParallelSettings.uniform(backend, num_workers=2)
    )
    for src in dataset.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    ctx.audit = True
    EnginePipeline(resolve_policy(policy_name)).run(ctx)
    return ctx


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("policy_name", POLICIES)
def test_audited_engine_run_is_happens_before_clean(
    policy_name: str, backend: str, tmp_path: Path, tiny_dataset_dir: Path
):
    ctx = _run_audited(policy_name, backend, tmp_path / "ws", tiny_dataset_dir)
    root = ctx.workspace.root

    findings = happens_before_findings(root)
    violations = [f for f in findings if f.severity in (ERROR, WARNING)]
    assert violations == [], [f.render() for f in violations]
    assert any(
        f.severity == INFO and "happens-before clean" in f.message
        for f in findings
    )

    # The classic audit (undeclared accesses, conflict pairs) must stay
    # clean too now that it orders events by the recorded plan.
    stations = sorted(p.stem for p in ctx.workspace.input_dir.glob("*.v1"))
    problems = [
        f
        for f in audit_findings(root, stations)
        if f.severity in (ERROR, WARNING)
    ]
    assert problems == [], [f.render() for f in problems]


def test_recorded_plan_round_trips(tmp_path: Path, tiny_dataset_dir: Path):
    from repro.core.auditing import load_plan

    ctx = _run_audited("dag-parallel", "thread", tmp_path / "ws", tiny_dataset_dir)
    plan = load_plan(ctx.workspace.root)
    assert plan is not None and plan["policy"] == "dag-parallel"
    planned = [task for region in plan["regions"] for task in region["tasks"]]
    assert "P0" in planned and len(planned) == len(set(planned))


# -- synthetic fixtures ------------------------------------------------------


def _synthetic_audit(
    root: Path, plan: dict | None, events: list[dict]
) -> Path:
    audit_dir = root / ".audit"
    audit_dir.mkdir(parents=True)
    if plan is not None:
        (audit_dir / "plan.json").write_text(json.dumps(plan))
    lines = "".join(json.dumps(event) + "\n" for event in events)
    (audit_dir / "events-0.jsonl").write_text(lines)
    return root


def _event(process: str, op: str, path: str, t: float, unit: str = "-") -> dict:
    return {
        "path": path,
        "op": op,
        "process": process,
        "unit": unit,
        "worker": "w0",
        "t": t,
    }


def test_same_epoch_write_write_is_a_violation(tmp_path: Path):
    root = _synthetic_audit(
        tmp_path / "ws",
        {"policy": "synthetic", "regions": [{"label": "I", "tasks": ["a", "b"]}]},
        [
            _event("a", "write", "work/flags.dat", 1.0),
            _event("b", "write", "work/flags.dat", 2.0),
        ],
    )
    findings = happens_before_findings(root)
    errors = [f for f in findings if f.severity == ERROR]
    assert len(errors) == 1
    message = errors[0].message
    assert "happens-before violation" in message
    assert "work/flags.dat" in message
    assert "a[-] write" in message and "b[-] write" in message


def test_cross_epoch_accesses_are_ordered(tmp_path: Path):
    root = _synthetic_audit(
        tmp_path / "ws",
        {
            "policy": "synthetic",
            "regions": [
                {"label": "I", "tasks": ["a"]},
                {"label": "II", "tasks": ["b"]},
            ],
        },
        [
            _event("a", "write", "work/flags.dat", 1.0),
            _event("b", "write", "work/flags.dat", 2.0),
        ],
    )
    findings = happens_before_findings(root)
    assert [f.severity for f in findings] == [INFO]


def test_same_epoch_reads_do_not_conflict(tmp_path: Path):
    root = _synthetic_audit(
        tmp_path / "ws",
        {"policy": "synthetic", "regions": [{"label": "I", "tasks": ["a", "b"]}]},
        [
            _event("a", "read", "work/flags.dat", 1.0),
            _event("b", "read", "work/flags.dat", 2.0),
        ],
    )
    findings = happens_before_findings(root)
    assert [f.severity for f in findings] == [INFO]


def test_same_task_distinct_units_still_conflict(tmp_path: Path):
    # Two keyed units of one loop task touching the same path is a real
    # intra-task race; only same-unit or driver accesses commute.
    root = _synthetic_audit(
        tmp_path / "ws",
        {"policy": "synthetic", "regions": [{"label": "I", "tasks": ["a"]}]},
        [
            _event("a", "write", "work/out.dat", 1.0, unit="S1"),
            _event("a", "write", "work/out.dat", 2.0, unit="S2"),
        ],
    )
    findings = happens_before_findings(root)
    assert [f.severity for f in findings] == [ERROR]


def test_missing_plan_degrades_to_warning(tmp_path: Path):
    root = _synthetic_audit(
        tmp_path / "ws",
        None,
        [_event("a", "write", "work/flags.dat", 1.0)],
    )
    findings = happens_before_findings(root)
    assert [f.severity for f in findings] == [WARNING]
    assert "no recorded plan" in findings[0].message


def test_events_outside_the_plan_are_ignored(tmp_path: Path):
    root = _synthetic_audit(
        tmp_path / "ws",
        {"policy": "synthetic", "regions": [{"label": "I", "tasks": ["a"]}]},
        [
            _event("a", "write", "work/flags.dat", 1.0),
            _event("P99", "write", "work/flags.dat", 2.0),
        ],
    )
    findings = happens_before_findings(root)
    assert [f.severity for f in findings] == [INFO]
