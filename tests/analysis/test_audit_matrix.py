"""The ISSUE acceptance matrix: every implementation audits clean.

Each of the five pipeline implementations runs an audited end-to-end
pass over the tiny dataset under both the thread and the process
backend; the recorded access logs must show zero undeclared accesses
and zero conflicting concurrent accesses, and every observed per-
process access set must be a subset of the registry declarations.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis import audit_findings, observed_access
from repro.analysis.model import ERROR, WARNING
from repro.core import implementation_by_name
from repro.core.registry import PROCESSES

from tests.conftest import make_context

IMPLEMENTATIONS = (
    "seq-original",
    "seq-optimized",
    "partial-parallel",
    "full-parallel",
    "wavefront-parallel",
)


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("impl_name", IMPLEMENTATIONS)
def test_audited_run_is_clean(
    impl_name: str, backend: str, tmp_path: Path, tiny_dataset_dir: Path
):
    from repro.core.context import ParallelSettings

    ctx = make_context(
        tmp_path / "ws",
        parallel=ParallelSettings.uniform(backend, num_workers=2),
    )
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    ctx.audit = True
    implementation_by_name(impl_name)().run(ctx)

    root = ctx.workspace.root
    stations = sorted(p.stem for p in ctx.workspace.input_dir.glob("*.v1"))
    findings = audit_findings(root, stations)
    problems = [f for f in findings if f.severity in (ERROR, WARNING)]
    assert problems == [], [f.render() for f in problems]

    observed = observed_access(root, stations)
    assert observed, "the run recorded no attributed accesses"
    for label, access in observed.items():
        spec = PROCESSES[int(label[1:])]
        assert access.reads <= {ref.identity for ref in spec.reads}, label
        assert access.writes <= {ref.identity for ref in spec.writes}, label
