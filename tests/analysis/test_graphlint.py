"""Graph verifier: effect inference, race/ordering proofs, reports.

The verifier must (a) pass every registered policy clean — including
under ``--strict`` — and (b) reject seeded racy, cyclic, mis-declared
and unordered builder graphs with task-pair counterexamples.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.effects import infer_effects
from repro.analysis.graphlint import (
    task_effects,
    verify_builder,
    verify_graph,
    verify_policy,
)
from repro.analysis.lint import main_lint
from repro.analysis.model import ERROR, INFO, WARNING
from repro.engine.graph import PipelineBuilder
from repro.engine.policy import policy_names
from repro.errors import VerificationError


def _noop(ctx, result):
    pass


def _writes_maxvals(ctx, result):
    from repro.core.artifacts import MAXVALS
    from repro.core.processes.common import merge_max_files

    merge_max_files(ctx.workspace.work_dir, MAXVALS)


def _reads_params_writes_corrected(ctx, result):
    from repro.core.artifacts import FILTER_CORRECTED, FILTER_PARAMS
    from repro.formats.params import read_filter_params, write_filter_params

    params = read_filter_params(ctx.workspace.work(FILTER_PARAMS))
    write_filter_params(ctx.workspace.work(FILTER_CORRECTED), params)


def _leaks_workspace(ctx, result):
    import os

    os.listdir(ctx.workspace.root)


# -- effect inference --------------------------------------------------------


class TestInferEffects:
    def test_io_helpers_resolve_to_identities(self):
        effects = infer_effects(_reads_params_writes_corrected)
        assert effects.reads == {"filter_params"}
        assert effects.writes == {"filter_corrected"}
        assert effects.complete

    def test_merge_helper_write_argument(self):
        effects = infer_effects(_writes_maxvals)
        assert effects.writes == {"maxvals"}
        assert effects.complete

    def test_run_process_calls_charge_registry_effects(self):
        from repro.engine.policy import ClusterPolicy

        effects = infer_effects(ClusterPolicy._prologue)
        # The prologue runs P0,P1,P2,P5,P8,P17,P11; the union of their
        # registry declarations is what the walk must recover.
        assert effects.reads == {"raw_v1", "v1_list"}
        assert "flags" in effects.writes and "flags2" in effects.writes
        assert "v1_list" in effects.writes
        assert effects.complete

    def test_partial_and_bound_methods_unwrap(self):
        from functools import partial

        from repro.engine.policy import ClusterPolicy

        effects = infer_effects(partial(ClusterPolicy._epilogue, {}))
        assert effects.writes == {"filter_corrected", "maxvals", "maxvals2"}
        assert effects.complete

    def test_workspace_escape_is_reported_not_guessed(self):
        effects = infer_effects(_leaks_workspace)
        assert not effects.complete
        assert any("workspace" in why for why in effects.unknowns)

    def test_unanalyzable_source_degrades_to_unknown(self):
        effects = infer_effects(len)
        assert not effects.complete


# -- per-task conformance ----------------------------------------------------


class TestTaskEffects:
    def test_opaque_task_is_trusted_with_info(self):
        builder = PipelineBuilder()
        task = builder.add_task(
            "black-box", _noop, reads=("comp_v1",), writes=("comp_v2",), opaque=True
        )
        effects, findings = task_effects(task)
        assert effects.reads == {"comp_v1"} and effects.writes == {"comp_v2"}
        assert [f.severity for f in findings] == [INFO]

    def test_undeclared_inferred_write_is_an_error(self):
        builder = PipelineBuilder()
        task = builder.add_task("sneaky", _writes_maxvals, reads=("comp_v2",))
        _, findings = task_effects(task)
        errors = [f for f in findings if f.severity == ERROR]
        assert any("writes 'maxvals'" in f.message for f in errors)

    def test_declared_but_never_performed_is_a_warning(self):
        builder = PipelineBuilder()
        task = builder.add_task(
            "overdeclared", _writes_maxvals, writes=("maxvals", "maxvals2")
        )
        _, findings = task_effects(task)
        warnings = [f for f in findings if f.severity == WARNING]
        assert any("'maxvals2'" in f.message for f in warnings)


# -- the registered policies all verify clean --------------------------------


@pytest.mark.parametrize("name", policy_names())
def test_registered_policy_verifies_strict_clean(name):
    findings = verify_policy(name)
    problems = [f for f in findings if f.severity in (ERROR, WARNING)]
    assert problems == [], [f.render() for f in problems]


def test_seq_original_rediscovers_the_redundant_processes():
    findings = verify_policy("seq-original")
    redundant = {f.process for f in findings if "redundant" in f.message}
    assert redundant == {"P6", "P12", "P14"}


def test_fused_policy_gets_fusion_certificates():
    findings = verify_policy("full-parallel-fused")
    certified = {
        f.message.split()[1] for f in findings if f.message.startswith("fusion")
    }
    assert certified == {"II+III", "VI+VII", "X+XI"}
    assert all(f.severity == INFO for f in findings if "fusion" in f.message)


# -- seeded unsafe graphs are rejected with counterexamples ------------------


def _racy_builder() -> PipelineBuilder:
    builder = PipelineBuilder(name="racy")
    builder.add_processes([0, 1, 2], strategy="seq")
    builder.add_process(3, strategy="loop")
    builder.add_task("clobber", _noop, after=["P1"], writes=("comp_v1",), opaque=True)
    return builder


def test_racy_graph_rejected_with_task_pair_counterexample():
    findings = verify_builder(_racy_builder())
    errors = [f for f in findings if f.severity == ERROR]
    assert errors, "the clobber/P3 write-write race must be found"
    message = errors[0].message
    assert "'clobber'" in message and "P3" in message
    assert "write/write" in message and ".v1" in message


def test_cycle_reported_as_finding_not_exception():
    builder = PipelineBuilder(name="cyclic")
    builder.add_task("a", _noop)
    builder.add_task("b", _noop, after=["a"])
    builder.after("b", "a")
    findings = verify_builder(builder)
    assert [f.severity for f in findings] == [ERROR]
    assert "cycle" in findings[0].message


def test_unordered_producer_consumer_is_an_error():
    builder = PipelineBuilder(name="unordered")
    builder.add_task("makeparams", _noop, writes=("filter_params",), opaque=True)
    builder.add_task("useparams", _noop, reads=("filter_params",), opaque=True)
    findings = verify_builder(builder)
    errors = [f for f in findings if f.severity == ERROR]
    assert any(
        f.process == "useparams" and "every producer runs no earlier" in f.message
        for f in errors
    )


def test_unknown_artifact_identity_is_an_error():
    builder = PipelineBuilder()
    builder.add_task("typo", _noop, writes=("comp_v9",), opaque=True)
    findings = verify_builder(builder)
    assert any(
        f.severity == ERROR and "unknown artifact identity 'comp_v9'" in f.message
        for f in findings
    )


def test_missing_producer_is_a_warning_only():
    builder = PipelineBuilder(name="tail-only")
    builder.add_task("plotter", _noop, reads=("comp_f",), opaque=True)
    findings = verify_builder(builder)
    assert [f.severity for f in findings if "no task in this graph" in f.message] == [
        WARNING
    ]


def test_custom_dead_write_screen():
    builder = PipelineBuilder(name="dead-write")
    builder.add_task("scribble", _writes_maxvals)
    builder.add_task("rewrite", _writes_maxvals, after=["scribble"])
    findings = verify_builder(builder)
    assert any(
        f.process == "scribble" and "appears redundant" in f.message
        for f in findings
    )


# -- build-time and run-time gates -------------------------------------------


def test_build_verify_raises_on_racy_graph():
    with pytest.raises(VerificationError, match="write/write"):
        _racy_builder().build(verify=True)


def test_build_verify_passes_clean_graph():
    builder = PipelineBuilder(name="clean")
    builder.add_processes([0, 1, 2, 3], strategy="seq")
    graph = builder.build(verify=True)
    assert len(graph) == 4


def test_engine_verify_refuses_before_execution(workspace_with_input):
    from repro.engine.executor import run_graph

    ctx = workspace_with_input
    with pytest.raises(VerificationError):
        run_graph(_racy_builder(), ctx, verify=True)
    # Nothing ran: the workspace work dir stays empty.
    assert not any(ctx.workspace.work_dir.iterdir())


def test_verify_graph_accepts_derived_layering_by_default():
    graph = _racy_builder().build()
    findings = verify_graph(graph)
    assert any(f.severity == ERROR for f in findings)


# -- the CLI -----------------------------------------------------------------


def test_cli_graph_all_policies_strict_clean(capsys):
    assert main_lint(["graph", "--all-policies", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "[dag-parallel] clean" in out
    assert "0 error(s)" in out


def test_cli_graph_single_policy_json(capsys):
    assert main_lint(["graph", "--policy", "full-parallel-fused", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert all(entry["policy"] == "full-parallel-fused" for entry in payload)
    assert any("fusion" in entry["message"] for entry in payload)


def test_cli_graph_audit_without_plan_warns(tmp_path, capsys):
    (tmp_path / ".audit").mkdir()
    code = main_lint(["graph", "--policy", "dag-parallel", "--audit", str(tmp_path),
                      "--strict"])
    assert code == 1  # the missing plan is a warning; --strict fails it
    assert "no recorded plan" in capsys.readouterr().out


def test_cli_classic_lint_still_works(capsys):
    assert main_lint([]) == 0
    assert "error(s)" in capsys.readouterr().out
