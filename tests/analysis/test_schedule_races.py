"""Schedule re-derivation and the symbolic race proof."""

from __future__ import annotations

from repro.analysis import derive_redundant, race_findings, schedule_findings
from repro.analysis.model import ERROR, INFO
from repro.analysis.races import atoms_may_collide, lit, stage_units, tpl
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER, REDUNDANT_PROCESSES
from repro.core.stages import STAGES, SEQ


class TestScheduleDerivation:
    def test_redundant_processes_rederived(self):
        assert sorted(derive_redundant()) == sorted(REDUNDANT_PROCESSES) == [6, 12, 14]

    def test_optimized_order_is_original_minus_redundant(self):
        derived = derive_redundant()
        assert OPTIMIZED_ORDER == tuple(
            p for p in ORIGINAL_ORDER if p not in derived
        )

    def test_no_errors_and_advisories_present(self):
        findings = schedule_findings()
        assert [f for f in findings if f.severity == ERROR] == []
        # The Fig. 9 plan keeps 11 stages where layering needs 8.
        assert any(f.severity == INFO and "8 barrier layers" in f.message
                   for f in findings)


class TestRaceProof:
    def test_all_stages_race_free(self):
        assert race_findings() == []

    def test_every_parallel_stage_modeled(self):
        for stage in STAGES:
            units = stage_units(stage)
            if stage.full_strategy == SEQ:
                assert units == []
            else:
                assert units, stage.name


class TestAtomAlgebra:
    def test_equal_literals_collide(self):
        assert atoms_may_collide(lit("work/a"), lit("work/a"), True)
        assert not atoms_may_collide(lit("work/a"), lit("work/b"), True)

    def test_same_template_distinct_keys_safe(self):
        a, b = tpl(".v2"), tpl(".v2")
        assert not atoms_may_collide(a, b, same_unit_keys_distinct=True)
        # Same template with possibly-equal keys does collide.
        assert atoms_may_collide(a, b, same_unit_keys_distinct=False)

    def test_lowercase_marker_refutes_absorption(self):
        # {u}l.v2 vs {u}.v2: the absorbed 'l' is lowercase, outside the
        # station-key alphabet, so no key can produce a collision.
        assert not atoms_may_collide(tpl("l.v2"), tpl(".v2"), True)
        # {u}f.ps vs {u}.ps — the Fourier-plot marker, same argument.
        assert not atoms_may_collide(tpl("f.ps"), tpl(".ps"), True)

    def test_uppercase_digit_segment_is_a_real_collision(self):
        # {u}2A.gem vs {u}A.gem: '2' is a legal key character, so key
        # "X" of one unit and "X2" of another name the same file.
        assert atoms_may_collide(tpl("2A.gem"), tpl("A.gem"), True)

    def test_equal_length_different_suffixes_safe(self):
        assert not atoms_may_collide(tpl("l.v1"), tpl("t.v1"), True)

    def test_literal_vs_template(self):
        # work/filter.par vs work/{u}.par: the stem ends in lowercase
        # 'r', which no station key contains.
        assert not atoms_may_collide(lit("work/filter.par"), tpl(".par"), True)
        # work/X2.gem vs work/{u}.gem could be unit key "X2".
        assert atoms_may_collide(lit("work/X2.gem"), tpl(".gem"), True)

    def test_distinct_directories_never_collide(self):
        assert not atoms_may_collide(
            tpl(".v1", prefix="input/"), tpl(".v1", prefix="work/"), True
        )
