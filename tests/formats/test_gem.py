"""Round-trip tests for the GEM format."""

import numpy as np
import pytest

from repro.errors import DataBlockError, HeaderError, MissingArtifactError
from repro.formats.gem import (
    GEM_QUANTITIES,
    GEM_SOURCES,
    GemSeries,
    gem_name,
    read_gem,
    write_gem,
)


def make_series(rng, n=20, source="2", quantity="A") -> GemSeries:
    return GemSeries(
        station="ST03",
        component="l",
        source=source,
        quantity=quantity,
        abscissa=np.arange(n) * 0.01,
        values=rng.normal(size=n),
    )


class TestGemSeries:
    def test_roundtrip(self, tmp_path, rng):
        series = make_series(rng)
        path = tmp_path / gem_name("ST03", "l", "2", "A")
        write_gem(path, series)
        back = read_gem(path)
        assert back.station == "ST03"
        assert back.component == "l"
        assert back.source == "2"
        assert back.quantity == "A"
        assert np.allclose(back.abscissa, series.abscissa, rtol=1e-6)
        assert np.allclose(back.values, series.values, rtol=1e-6)

    @pytest.mark.parametrize("source", GEM_SOURCES)
    @pytest.mark.parametrize("quantity", GEM_QUANTITIES)
    def test_all_codes_roundtrip(self, tmp_path, rng, source, quantity):
        series = make_series(rng, source=source, quantity=quantity)
        path = tmp_path / gem_name("ST03", "l", source, quantity)
        write_gem(path, series)
        back = read_gem(path)
        assert back.source == source
        assert back.quantity == quantity

    def test_name_helper(self):
        assert gem_name("ST03", "l", "R", "D") == "ST03lRD.gem"
        assert gem_name("ST03", "t", "2", "V") == "ST03t2V.gem"

    def test_rejects_bad_source(self, rng):
        with pytest.raises(HeaderError):
            make_series(rng, source="X")

    def test_rejects_bad_quantity(self, rng):
        with pytest.raises(HeaderError):
            make_series(rng, quantity="Z")

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataBlockError):
            GemSeries("S", "l", "2", "A", abscissa=np.ones(3), values=np.ones(4))

    def test_missing_file(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            read_gem(tmp_path / "nope.gem", process="P19")

    def test_not_a_gem_file(self, tmp_path):
        path = tmp_path / "x.gem"
        path.write_text("NOT A GEM FILE\n")
        with pytest.raises(HeaderError):
            read_gem(path)

    def test_malformed_banner(self, tmp_path):
        path = tmp_path / "x.gem"
        path.write_text("GEM only three fields\nABSCISSA VALUE\n")
        with pytest.raises(HeaderError):
            read_gem(path)

    def test_empty_series(self, tmp_path):
        series = GemSeries("S", "l", "2", "A", abscissa=np.array([]), values=np.array([]))
        path = tmp_path / "empty.gem"
        write_gem(path, series)
        back = read_gem(path)
        assert back.values.size == 0
