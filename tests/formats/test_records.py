"""Round-trip tests for the V1/V2 record formats."""

import numpy as np
import pytest

from repro.dsp.peak import PeakValues
from repro.errors import DataBlockError, HeaderError, MissingArtifactError
from repro.formats.common import COMPONENTS, Header
from repro.formats.v1 import (
    ComponentRecord,
    RawRecord,
    component_v1_name,
    read_component_v1,
    read_v1,
    write_component_v1,
    write_v1,
)
from repro.formats.v2 import CorrectedRecord, component_v2_name, read_v2, write_v2


def make_header(**kwargs) -> Header:
    base = dict(
        station="ST01",
        event_id="EV-T",
        origin_time="2020-05-01",
        magnitude=5.1,
        dt=0.01,
        npts=0,
        units="GAL",
    )
    base.update(kwargs)
    return Header(**base)


def make_raw(rng, npts=50) -> RawRecord:
    comps = {c: rng.normal(size=npts) for c in COMPONENTS}
    return RawRecord(header=make_header(), components=comps)


class TestRawRecord:
    def test_roundtrip(self, tmp_path, rng):
        record = make_raw(rng)
        path = tmp_path / "ST01.v1"
        write_v1(path, record)
        back = read_v1(path)
        assert back.header.station == "ST01"
        assert back.header.magnitude == pytest.approx(5.1)
        for comp in COMPONENTS:
            assert np.allclose(back.components[comp], record.components[comp], rtol=1e-6)

    def test_total_points(self, rng):
        record = make_raw(rng, npts=40)
        assert record.npts == 40
        assert record.total_points == 120

    def test_missing_component_rejected(self, rng):
        with pytest.raises(HeaderError):
            RawRecord(header=make_header(), components={"l": np.ones(5), "t": np.ones(5)})

    def test_unequal_lengths_rejected(self, rng):
        comps = {"l": np.ones(5), "t": np.ones(5), "v": np.ones(6)}
        with pytest.raises(DataBlockError):
            RawRecord(header=make_header(), components=comps)

    def test_component_record_extraction(self, rng):
        record = make_raw(rng)
        comp = record.component_record("t")
        assert comp.header.component == "t"
        assert np.array_equal(comp.acceleration, record.components["t"])

    def test_unknown_component_extraction(self, rng):
        with pytest.raises(HeaderError):
            make_raw(rng).component_record("x")

    def test_missing_file(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            read_v1(tmp_path / "nope.v1")

    def test_corrupt_block_header(self, tmp_path, rng):
        path = tmp_path / "ST01.v1"
        write_v1(path, make_raw(rng))
        text = path.read_text().replace("COMPONENT-BLOCK: l", "JUNK-LINE:")
        path.write_text(text)
        with pytest.raises(DataBlockError):
            read_v1(path)


class TestComponentRecord:
    def test_roundtrip(self, tmp_path, rng):
        record = ComponentRecord(
            header=make_header(component="v"), acceleration=rng.normal(size=33)
        )
        path = tmp_path / component_v1_name("ST01", "v")
        write_component_v1(path, record)
        back = read_component_v1(path)
        assert back.header.component == "v"
        assert back.header.npts == 33
        assert np.allclose(back.acceleration, record.acceleration, rtol=1e-6)

    def test_name_helper(self):
        assert component_v1_name("ABC", "l") == "ABCl.v1"

    def test_npts_synced(self, rng):
        record = ComponentRecord(header=make_header(npts=999), acceleration=rng.normal(size=7))
        assert record.header.npts == 7


def make_corrected(rng, npts=40) -> CorrectedRecord:
    return CorrectedRecord(
        header=make_header(component="l"),
        acceleration=rng.normal(size=npts),
        velocity=rng.normal(size=npts),
        displacement=rng.normal(size=npts),
        peaks=PeakValues(-12.5, 0.4, 3.3, 0.5, 0.8, 0.7),
        f_stop_low=0.05,
        f_pass_low=0.1,
        f_pass_high=25.0,
        f_stop_high=30.0,
    )


class TestCorrectedRecord:
    def test_roundtrip(self, tmp_path, rng):
        record = make_corrected(rng)
        path = tmp_path / component_v2_name("ST01", "l")
        write_v2(path, record)
        back = read_v2(path)
        assert np.allclose(back.acceleration, record.acceleration, rtol=1e-6)
        assert np.allclose(back.velocity, record.velocity, rtol=1e-6)
        assert np.allclose(back.displacement, record.displacement, rtol=1e-6)
        assert back.peaks.pga == pytest.approx(-12.5, rel=1e-6)
        assert back.peaks.pgd_time == pytest.approx(0.7)
        assert back.f_pass_low == pytest.approx(0.1)

    def test_name_helper(self):
        assert component_v2_name("X", "t") == "Xt.v2"

    def test_unequal_series_rejected(self, rng):
        with pytest.raises(DataBlockError):
            CorrectedRecord(
                header=make_header(component="l"),
                acceleration=np.ones(10),
                velocity=np.ones(9),
                displacement=np.ones(10),
                peaks=PeakValues(0, 0, 0, 0, 0, 0),
                f_stop_low=0.05,
                f_pass_low=0.1,
                f_pass_high=25.0,
                f_stop_high=30.0,
            )

    def test_missing_peaks_line_rejected(self, tmp_path, rng):
        path = tmp_path / "x.v2"
        write_v2(path, make_corrected(rng))
        lines = [l for l in path.read_text().splitlines() if not l.startswith("PEAKS:")]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataBlockError):
            read_v2(path)

    def test_missing_series_rejected(self, tmp_path, rng):
        path = tmp_path / "x.v2"
        write_v2(path, make_corrected(rng))
        text = path.read_text().replace("SERIES-BLOCK: VELOCITY", "SERIES-BLOCK: SOMETHING")
        path.write_text(text)
        with pytest.raises(DataBlockError):
            read_v2(path)

    def test_series_property(self, rng):
        record = make_corrected(rng)
        assert set(record.series) == {"ACCELERATION", "VELOCITY", "DISPLACEMENT"}
