"""Tests for filter-parameter, filelist and metadata formats."""

import pytest

from repro.dsp.fir import DEFAULT_BANDPASS, BandPassSpec
from repro.errors import FormatError, MissingArtifactError
from repro.formats.filelist import (
    MetadataFile,
    read_filelist,
    read_metadata,
    write_filelist,
    write_metadata,
)
from repro.formats.params import FilterParams, read_filter_params, write_filter_params


class TestFilterParams:
    def test_roundtrip_default_only(self, tmp_path):
        path = tmp_path / "filter.par"
        write_filter_params(path, FilterParams(default=DEFAULT_BANDPASS))
        back = read_filter_params(path)
        assert back.default.f_stop_low == pytest.approx(DEFAULT_BANDPASS.f_stop_low)
        assert back.default.f_pass_low == pytest.approx(DEFAULT_BANDPASS.f_pass_low)
        assert back.default.f_pass_high == pytest.approx(DEFAULT_BANDPASS.f_pass_high)
        assert back.default.f_stop_high == pytest.approx(DEFAULT_BANDPASS.f_stop_high)
        assert back.overrides == {}

    def test_roundtrip_with_overrides(self, tmp_path):
        params = FilterParams(default=DEFAULT_BANDPASS)
        spec = BandPassSpec(0.2, 0.4, 25.0, 30.0)
        params.set_override("ST01", "l", spec)
        params.set_override("ST01", "t", BandPassSpec(0.1, 0.3, 25.0, 30.0))
        path = tmp_path / "filter_corrected.par"
        write_filter_params(path, params)
        back = read_filter_params(path)
        assert back.spec_for("ST01", "l").f_pass_low == pytest.approx(0.4)
        assert back.spec_for("ST01", "t").f_stop_low == pytest.approx(0.1)
        # Unknown traces fall back to the default.
        assert back.spec_for("ST99", "v").f_pass_low == pytest.approx(
            DEFAULT_BANDPASS.f_pass_low
        )

    def test_deterministic_override_order(self, tmp_path):
        a = FilterParams(default=DEFAULT_BANDPASS)
        b = FilterParams(default=DEFAULT_BANDPASS)
        spec = BandPassSpec(0.2, 0.4, 25.0, 30.0)
        a.set_override("ST02", "t", spec)
        a.set_override("ST01", "l", spec)
        b.set_override("ST01", "l", spec)
        b.set_override("ST02", "t", spec)
        pa, pb = tmp_path / "a.par", tmp_path / "b.par"
        write_filter_params(pa, a)
        write_filter_params(pb, b)
        assert pa.read_bytes() == pb.read_bytes()

    def test_missing_file(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            read_filter_params(tmp_path / "nope.par", process="P4")

    def test_not_a_params_file(self, tmp_path):
        path = tmp_path / "x.par"
        path.write_text("garbage\n")
        with pytest.raises(FormatError):
            read_filter_params(path)

    def test_missing_default_rejected(self, tmp_path):
        path = tmp_path / "x.par"
        path.write_text("OANT FILTER PARAMETERS\nTRACE S l 0.1 0.2 10 12\n")
        with pytest.raises(FormatError):
            read_filter_params(path)

    def test_malformed_trace_rejected(self, tmp_path):
        path = tmp_path / "x.par"
        path.write_text("OANT FILTER PARAMETERS\nDEFAULT 0.05 0.1 25 30\nTRACE S l 0.1\n")
        with pytest.raises(FormatError):
            read_filter_params(path)


class TestFileList:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "v1files.lst"
        names = ["ST01.v1", "ST02.v1", "ST03.v1"]
        write_filelist(path, names)
        assert read_filelist(path) == names

    def test_empty_list(self, tmp_path):
        path = tmp_path / "empty.lst"
        write_filelist(path, [])
        assert read_filelist(path) == []

    def test_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.lst"
        path.write_text("OANT FILE LIST\nCOUNT 2\nonly-one.v1\n")
        with pytest.raises(FormatError):
            read_filelist(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            read_filelist(tmp_path / "nope.lst")

    def test_wrong_banner(self, tmp_path):
        path = tmp_path / "bad.lst"
        path.write_text("WRONG\nCOUNT 0\n")
        with pytest.raises(FormatError):
            read_filelist(path)


class TestMetadata:
    def test_roundtrip(self, tmp_path):
        meta = MetadataFile(
            purpose="FOURIER",
            entries=[("ST01", "ST01l.v2", "ST01t.v2"), ("ST02", "ST02l.v2", "ST02t.v2")],
        )
        path = tmp_path / "fourier.meta"
        write_metadata(path, meta)
        back = read_metadata(path)
        assert back.purpose == "FOURIER"
        assert back.entries == meta.entries

    def test_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.meta"
        path.write_text("OANT STAGE METADATA\nPURPOSE X\nCOUNT 3\na b\n")
        with pytest.raises(FormatError):
            read_metadata(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.meta"
        path.write_text("OANT STAGE METADATA\n")
        with pytest.raises(FormatError):
            read_metadata(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            read_metadata(tmp_path / "nope.meta", process="P9")
