"""Unit tests for repro.formats.common."""

import numpy as np
import pytest

from repro.errors import DataBlockError, HeaderError, MissingArtifactError
from repro.formats.common import (
    Header,
    block_line_count,
    format_fixed_block,
    parse_fixed_block,
    parse_header,
    read_lines,
)


class TestFixedBlocks:
    def test_roundtrip(self, rng):
        values = rng.normal(size=37) * 1e3
        text = format_fixed_block(values)
        parsed = parse_fixed_block(text.splitlines(), 37)
        assert np.allclose(parsed, values, rtol=1e-6)

    def test_five_per_line(self):
        text = format_fixed_block(np.arange(12.0))
        lines = text.splitlines()
        assert len(lines) == 3
        assert len(lines[0]) == 75  # 5 fields x 15 chars

    def test_empty(self):
        assert format_fixed_block(np.array([])) == ""

    def test_line_count_helper(self):
        assert block_line_count(1) == 1
        assert block_line_count(5) == 1
        assert block_line_count(6) == 2
        assert block_line_count(12) == 3

    def test_count_mismatch_raises(self):
        text = format_fixed_block(np.arange(10.0))
        with pytest.raises(DataBlockError):
            parse_fixed_block(text.splitlines(), 11)

    def test_bad_field_raises(self):
        with pytest.raises(DataBlockError):
            parse_fixed_block(["   garbage_data"], 1)

    def test_negative_and_tiny_values(self):
        values = np.array([-1.234567e-30, 9.87e20, 0.0])
        parsed = parse_fixed_block(format_fixed_block(values).splitlines(), 3)
        assert np.allclose(parsed, values, rtol=1e-6)


class TestHeader:
    def make(self):
        return Header(
            station="ST01",
            component="l",
            event_id="EV-X",
            origin_time="2020-01-01",
            magnitude=5.5,
            dt=0.01,
            npts=100,
            units="GAL",
            extra={"DIST-KM": "12.50"},
        )

    def test_roundtrip(self):
        header = self.make()
        lines = header.lines("V1 COMPONENT") + ["DATA"]
        parsed, idx = parse_header(lines, "V1 COMPONENT")
        assert parsed.station == "ST01"
        assert parsed.component == "l"
        assert parsed.magnitude == pytest.approx(5.5)
        assert parsed.dt == pytest.approx(0.01)
        assert parsed.npts == 100
        assert parsed.extra == {"DIST-KM": "12.50"}
        assert idx == len(lines)

    def test_wrong_banner(self):
        lines = self.make().lines("V1 COMPONENT") + ["DATA"]
        with pytest.raises(HeaderError):
            parse_header(lines, "V2 CORRECTED")

    def test_missing_data_terminator(self):
        lines = self.make().lines("V1 COMPONENT")
        with pytest.raises(HeaderError):
            parse_header(lines, "V1 COMPONENT")

    def test_missing_required_field(self):
        lines = ["OANT STRONG-MOTION V1 COMPONENT", "STATION: X", "DATA"]
        with pytest.raises(HeaderError):
            parse_header(lines, "V1 COMPONENT")

    def test_bad_numeric_field(self):
        lines = [
            "OANT STRONG-MOTION V1 COMPONENT",
            "STATION: X",
            "DT: not-a-number",
            "NPTS: 5",
            "DATA",
        ]
        with pytest.raises(HeaderError):
            parse_header(lines, "V1 COMPONENT")

    def test_malformed_line(self):
        lines = ["OANT STRONG-MOTION V1 COMPONENT", "NO COLON HERE", "DATA"]
        with pytest.raises(HeaderError):
            parse_header(lines, "V1 COMPONENT")

    def test_empty_file(self):
        with pytest.raises(HeaderError):
            parse_header([], "V1 COMPONENT")

    def test_copy_for(self):
        header = self.make()
        clone = header.copy_for(component="t", npts=42)
        assert clone.component == "t"
        assert clone.npts == 42
        assert clone.station == header.station
        clone.extra["NEW"] = "1"
        assert "NEW" not in header.extra  # deep-enough copy


class TestReadLines:
    def test_missing_file(self, tmp_path):
        with pytest.raises(MissingArtifactError) as err:
            read_lines(tmp_path / "nope.v1", process="P3")
        assert "P3" in str(err.value)

    def test_reads_lines(self, tmp_path):
        p = tmp_path / "x.txt"
        p.write_text("a\nb\n")
        assert read_lines(p) == ["a", "b"]
