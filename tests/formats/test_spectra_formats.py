"""Round-trip tests for the F and R spectra formats."""

import numpy as np
import pytest

from repro.errors import DataBlockError
from repro.formats.common import Header
from repro.formats.fourier import (
    FourierRecord,
    component_f_name,
    read_fourier,
    write_fourier,
)
from repro.formats.response import (
    ResponseRecord,
    component_r_name,
    read_response,
    write_response,
)


def make_header(**kwargs) -> Header:
    base = dict(station="ST02", component="t", dt=0.005, npts=0, magnitude=5.0)
    base.update(kwargs)
    return Header(**base)


def make_fourier(rng, n=25) -> FourierRecord:
    periods = np.geomspace(0.02, 20.0, n)
    return FourierRecord(
        header=make_header(),
        periods=periods,
        acceleration=np.abs(rng.normal(size=n)) + 0.1,
        velocity=np.abs(rng.normal(size=n)) + 0.1,
        displacement=np.abs(rng.normal(size=n)) + 0.1,
    )


class TestFourierFormat:
    def test_roundtrip(self, tmp_path, rng):
        record = make_fourier(rng)
        path = tmp_path / component_f_name("ST02", "t")
        write_fourier(path, record)
        back = read_fourier(path)
        assert np.allclose(back.periods, record.periods, rtol=1e-6)
        assert np.allclose(back.velocity, record.velocity, rtol=1e-6)
        assert back.header.station == "ST02"

    def test_name_helper(self):
        assert component_f_name("ST02", "t") == "ST02t.f"

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(DataBlockError):
            FourierRecord(
                header=make_header(),
                periods=np.ones(5),
                acceleration=np.ones(5),
                velocity=np.ones(4),
                displacement=np.ones(5),
            )

    def test_missing_block_rejected(self, tmp_path, rng):
        path = tmp_path / "x.f"
        write_fourier(path, make_fourier(rng))
        text = path.read_text().replace("SERIES-BLOCK: VELOCITY", "SERIES-BLOCK: OTHER")
        path.write_text(text)
        with pytest.raises(DataBlockError):
            read_fourier(path)

    def test_spectra_property(self, rng):
        record = make_fourier(rng)
        assert set(record.spectra) == {"ACCELERATION", "VELOCITY", "DISPLACEMENT"}


def make_response(rng, n_periods=12, n_damp=3) -> ResponseRecord:
    return ResponseRecord(
        header=make_header(component="v"),
        periods=np.geomspace(0.02, 20.0, n_periods),
        dampings=np.linspace(0.02, 0.2, n_damp),
        sa=np.abs(rng.normal(size=(n_damp, n_periods))),
        sv=np.abs(rng.normal(size=(n_damp, n_periods))),
        sd=np.abs(rng.normal(size=(n_damp, n_periods))),
    )


class TestResponseFormat:
    def test_roundtrip(self, tmp_path, rng):
        record = make_response(rng)
        path = tmp_path / component_r_name("ST02", "v")
        write_response(path, record)
        back = read_response(path)
        assert np.allclose(back.periods, record.periods, rtol=1e-6)
        assert np.allclose(back.dampings, record.dampings, rtol=1e-6)
        assert np.allclose(back.sa, record.sa, rtol=1e-6)
        assert np.allclose(back.sv, record.sv, rtol=1e-6)
        assert np.allclose(back.sd, record.sd, rtol=1e-6)

    def test_name_helper(self):
        assert component_r_name("ST02", "v") == "ST02v.r"

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DataBlockError):
            ResponseRecord(
                header=make_header(),
                periods=np.ones(5),
                dampings=np.array([0.05]),
                sa=np.ones((1, 5)),
                sv=np.ones((2, 5)),
                sd=np.ones((1, 5)),
            )

    def test_quantity_accessor(self, rng):
        record = make_response(rng)
        assert np.array_equal(record.quantity("SA"), record.sa)
        assert np.array_equal(record.quantity("sv"), record.sv)
        with pytest.raises(DataBlockError):
            record.quantity("XX")

    def test_missing_damping_block_rejected(self, tmp_path, rng):
        path = tmp_path / "x.r"
        write_response(path, make_response(rng))
        text = path.read_text().replace("SERIES-BLOCK: SA1", "SERIES-BLOCK: QQ1")
        path.write_text(text)
        with pytest.raises(DataBlockError):
            read_response(path)

    def test_single_damping(self, tmp_path, rng):
        record = make_response(rng, n_damp=1)
        path = tmp_path / "y.r"
        write_response(path, record)
        back = read_response(path)
        assert back.sa.shape == (1, 12)
