"""Tests for the combo-vectorized Nigam–Jennings solver."""

import numpy as np
import pytest

from repro.spectra.response import (
    ResponseSpectrumConfig,
    response_spectrum,
    response_spectrum_nigam_jennings,
    response_spectrum_nigam_jennings_vectorized,
)


@pytest.fixture(scope="module")
def record():
    rng = np.random.default_rng(12)
    return rng.normal(size=1500) * np.hanning(1500), 0.01


class TestVectorizedEquivalence:
    def test_matches_per_oscillator_path(self, record):
        acc, dt = record
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.1, 10.0, 20), dampings=(0.0, 0.05, 0.2)
        )
        a = response_spectrum_nigam_jennings(acc, dt, config)
        b = response_spectrum_nigam_jennings_vectorized(acc, dt, config)
        for name in ("sd", "sv", "sa"):
            ours = getattr(b, name)
            ref = getattr(a, name)
            assert np.allclose(ours, ref, rtol=1e-9), name

    def test_pseudo_mode(self, record):
        acc, dt = record
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.2, 5.0, 7), dampings=(0.05,), pseudo=True
        )
        spectrum = response_spectrum_nigam_jennings_vectorized(acc, dt, config)
        w = 2 * np.pi / config.periods
        assert np.allclose(spectrum.sv[0], w * spectrum.sd[0])
        assert np.allclose(spectrum.sa[0], w**2 * spectrum.sd[0])

    def test_dispatcher_accepts_method(self, record):
        acc, dt = record
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.2, 5.0, 5),
            dampings=(0.05,),
            method="nigam_jennings_vectorized",
        )
        spectrum = response_spectrum(acc, dt, config)
        assert spectrum.sd.shape == (1, 5)

    def test_zero_damping_supported(self, record):
        acc, dt = record
        config = ResponseSpectrumConfig(periods=np.array([0.5]), dampings=(0.0,))
        spectrum = response_spectrum_nigam_jennings_vectorized(acc, dt, config)
        assert np.all(np.isfinite(spectrum.sd))

    def test_wide_grid(self, record):
        acc, dt = record
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.05, 20.0, 200), dampings=(0.02, 0.05)
        )
        spectrum = response_spectrum_nigam_jennings_vectorized(acc[:400], dt, config)
        assert spectrum.sd.shape == (2, 200)
        assert np.all(spectrum.sd >= 0)

    def test_rejects_empty(self):
        from repro.errors import SignalError

        config = ResponseSpectrumConfig(periods=np.array([1.0]), dampings=(0.05,))
        with pytest.raises(SignalError):
            response_spectrum_nigam_jennings_vectorized(np.array([]), 0.01, config)


class TestAutoMethod:
    def test_auto_accepted_and_consistent(self, record):
        acc, dt = record
        auto = ResponseSpectrumConfig(
            periods=np.geomspace(0.2, 5.0, 6), dampings=(0.05,), method="auto"
        )
        explicit = ResponseSpectrumConfig(
            periods=np.geomspace(0.2, 5.0, 6), dampings=(0.05,)
        )
        a = response_spectrum(acc, dt, auto)
        b = response_spectrum(acc, dt, explicit)
        # Auto picks one NJ axis; both axes agree to 1e-9.
        assert np.allclose(a.sd, b.sd, rtol=1e-8)

    def test_auto_is_deterministic(self, record):
        acc, dt = record
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.2, 5.0, 6), dampings=(0.05,), method="auto"
        )
        a = response_spectrum(acc, dt, config)
        b = response_spectrum(acc, dt, config)
        assert np.array_equal(a.sd, b.sd)

    def test_wide_grid_short_record_uses_vectorized_path(self):
        # combos (400) >= samples (300): the combo-vectorized path.
        rng = np.random.default_rng(5)
        acc = rng.normal(size=300)
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.1, 10, 200), dampings=(0.02, 0.05), method="auto"
        )
        spectrum = response_spectrum(acc, 0.01, config)
        reference = response_spectrum_nigam_jennings_vectorized(
            acc, 0.01, ResponseSpectrumConfig(
                periods=np.geomspace(0.1, 10, 200), dampings=(0.02, 0.05)
            )
        )
        assert np.array_equal(spectrum.sd, reference.sd)
