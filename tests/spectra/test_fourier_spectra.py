"""Unit tests for repro.spectra.fourier."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.spectra.fourier import (
    fourier_amplitude_spectrum,
    motion_fourier_spectra,
    smooth_log,
)


class TestFourierAmplitudeSpectrum:
    def test_sinusoid_peak_location(self):
        dt = 0.01
        t = np.arange(4096) * dt
        f0 = 5.0
        x = np.sin(2 * np.pi * f0 * t)
        freqs, amp = fourier_amplitude_spectrum(x, dt, taper=0.0)
        assert freqs[np.argmax(amp)] == pytest.approx(f0, abs=freqs[1])

    def test_sinusoid_amplitude_scaling(self):
        # |X(f0)| ~ A * T / 2 for a full-length on-bin sinusoid
        # (n = 4000 puts 5.0 Hz exactly on bin 200).
        dt = 0.01
        n = 4000
        t = np.arange(n) * dt
        a0 = 3.0
        x = a0 * np.sin(2 * np.pi * 5.0 * t)
        _, amp = fourier_amplitude_spectrum(x, dt, taper=0.0)
        assert amp.max() == pytest.approx(a0 * n * dt / 2, rel=0.01)

    def test_taper_reduces_leakage(self):
        dt = 0.01
        t = np.arange(4096) * dt  # 5.0123 Hz is far off-bin here
        x = np.sin(2 * np.pi * 5.0123 * t)
        freqs, amp_raw = fourier_amplitude_spectrum(x, dt, taper=0.0)
        _, amp_tapered = fourier_amplitude_spectrum(x, dt, taper=0.1)
        far = freqs > 15.0
        assert amp_tapered[far].max() < amp_raw[far].max()

    def test_pure_backend_agrees(self, rng):
        x = rng.normal(size=500)
        f1, a1 = fourier_amplitude_spectrum(x, 0.01)
        f2, a2 = fourier_amplitude_spectrum(x, 0.01, pure=True)
        assert np.allclose(f1, f2)
        assert np.allclose(a1, a2, atol=1e-8)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            fourier_amplitude_spectrum(np.array([]), 0.01)

    def test_rejects_bad_dt(self):
        with pytest.raises(SignalError):
            fourier_amplitude_spectrum(np.ones(10), -1.0)


class TestMotionSpectra:
    def test_periods_ascending_and_clipped(self, rng):
        dt = 0.01
        acc = rng.normal(size=3000)
        vel = rng.normal(size=3000)
        disp = rng.normal(size=3000)
        periods, fa, fv, fd = motion_fourier_spectra(acc, vel, disp, dt, max_period=20.0)
        assert np.all(np.diff(periods) > 0)
        assert periods[0] >= 2 * dt
        assert periods[-1] <= 20.0
        assert fa.shape == fv.shape == fd.shape == periods.shape

    def test_custom_min_period(self, rng):
        dt = 0.01
        x = rng.normal(size=2000)
        periods, *_ = motion_fourier_spectra(x, x, x, dt, min_period=0.5)
        assert periods[0] >= 0.5

    def test_no_zero_frequency(self, rng):
        dt = 0.01
        x = rng.normal(size=1000) + 100.0  # big DC offset
        periods, fa, _, _ = motion_fourier_spectra(x, x, x, dt)
        assert np.all(np.isfinite(periods))
        assert np.all(np.isfinite(fa))


class TestSmoothLog:
    def test_preserves_constant(self):
        x = np.full(50, 3.0)
        assert np.allclose(smooth_log(x, 3), 3.0)

    def test_reduces_variance(self, rng):
        x = np.exp(rng.normal(size=200))
        smoothed = smooth_log(x, 5)
        assert np.std(np.log(smoothed)) < np.std(np.log(x))

    def test_zero_half_width_is_identity(self, rng):
        x = np.abs(rng.normal(size=30)) + 0.1
        assert np.array_equal(smooth_log(x, 0), x)

    def test_handles_zeros(self):
        x = np.array([0.0, 1.0, 2.0, 0.0, 3.0])
        out = smooth_log(x, 1)
        assert np.all(np.isfinite(out))
        assert np.all(out > 0)

    def test_rejects_negative_width(self):
        with pytest.raises(SignalError):
            smooth_log(np.ones(10), -1)

    def test_preserves_length(self, rng):
        x = np.abs(rng.normal(size=77)) + 0.1
        assert smooth_log(x, 4).shape == x.shape
