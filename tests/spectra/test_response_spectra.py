"""Unit tests for the response-spectrum solvers (process P16's core)."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.spectra.response import (
    DEFAULT_DAMPINGS,
    ResponseSpectrumConfig,
    default_periods,
    paper_grid,
    response_spectrum,
    response_spectrum_duhamel,
    response_spectrum_frequency_domain,
    response_spectrum_nigam_jennings,
    sdof_coefficients,
    sdof_response_history,
)


@pytest.fixture(scope="module")
def record():
    rng = np.random.default_rng(7)
    dt = 0.01
    acc = rng.normal(size=3000)
    acc *= np.hanning(3000)
    return acc, dt


def small_config(**kwargs):
    # Periods start at 20*dt: solver agreement below ~10 samples per
    # cycle is discretization-limited (each method treats the excitation
    # between samples differently).
    defaults = dict(periods=np.geomspace(0.2, 5.0, 8), dampings=(0.05,))
    defaults.update(kwargs)
    return ResponseSpectrumConfig(**defaults)


class TestConfig:
    def test_default_periods_span(self):
        periods = default_periods()
        assert periods[0] == pytest.approx(0.02)
        assert periods[-1] == pytest.approx(20.0)
        assert np.all(np.diff(periods) > 0)

    def test_paper_grid_is_9000_oscillators(self):
        config = paper_grid()
        assert config.combos == 9000

    def test_rejects_bad_periods(self):
        with pytest.raises(SignalError):
            ResponseSpectrumConfig(periods=np.array([-1.0, 2.0]))

    def test_rejects_bad_damping(self):
        with pytest.raises(SignalError):
            ResponseSpectrumConfig(dampings=(1.5,))

    def test_rejects_unknown_method(self):
        with pytest.raises(SignalError):
            ResponseSpectrumConfig(method="magic")

    def test_rejects_bad_period_count(self):
        with pytest.raises(SignalError):
            default_periods(1)


class TestSdofCoefficients:
    def test_matrix_exponential_identity_at_zero_dt(self):
        # As dt -> 0, A -> I.
        A, B0, B1 = sdof_coefficients(1.0, 0.05, 1e-7)
        assert np.allclose(A, np.eye(2), atol=1e-5)

    def test_undamped_energy_conservation(self):
        # zeta = 0: A is a rotation, |det A| = 1.
        A, _, _ = sdof_coefficients(0.5, 0.0, 0.01)
        assert abs(np.linalg.det(A)) == pytest.approx(1.0, abs=1e-12)

    def test_damped_contraction(self):
        A, _, _ = sdof_coefficients(0.5, 0.1, 0.01)
        assert abs(np.linalg.det(A)) < 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(SignalError):
            sdof_coefficients(-1.0, 0.05, 0.01)
        with pytest.raises(SignalError):
            sdof_coefficients(1.0, 1.0, 0.01)


class TestResponseHistory:
    def test_matches_explicit_recursion(self, record):
        acc, dt = record
        A, B0, B1 = sdof_coefficients(0.7, 0.05, dt)
        p = -acc
        state = np.zeros(2)
        xs = np.zeros(len(acc))
        vs = np.zeros(len(acc))
        for k in range(len(acc) - 1):
            state = A @ state + B0 * p[k] + B1 * p[k + 1]
            xs[k + 1], vs[k + 1] = state
        x, v, _ = sdof_response_history(acc, dt, 0.7, 0.05)
        assert np.allclose(x, xs, atol=1e-10 * np.abs(xs).max())
        assert np.allclose(v, vs, atol=1e-10 * np.abs(vs).max())

    def test_starts_at_rest(self, record):
        acc, dt = record
        x, v, _ = sdof_response_history(acc, dt, 1.0, 0.05)
        assert x[0] == pytest.approx(0.0, abs=1e-15)
        assert v[0] == pytest.approx(0.0, abs=1e-15)

    def test_at_rest_even_with_nonzero_first_sample(self):
        dt = 0.01
        acc = np.full(100, 2.0)  # jumps to 2 at t=0
        x, v, _ = sdof_response_history(acc, dt, 1.0, 0.05)
        assert x[0] == pytest.approx(0.0, abs=1e-15)

    def test_static_limit(self):
        # Constant acceleration: x -> -a/w^2 as the transient damps out.
        dt = 0.01
        T, z = 0.5, 0.5
        w = 2 * np.pi / T
        acc = np.full(5000, 3.0)
        x, _, _ = sdof_response_history(acc, dt, T, z)
        assert x[-1] == pytest.approx(-3.0 / w**2, rel=1e-3)

    def test_total_acceleration_relation(self, record):
        acc, dt = record
        T, z = 0.8, 0.05
        w = 2 * np.pi / T
        x, v, ta = sdof_response_history(acc, dt, T, z)
        assert np.allclose(ta, -2 * z * w * v - w * w * x)

    def test_rejects_empty(self):
        with pytest.raises(SignalError):
            sdof_response_history(np.array([]), 0.01, 1.0, 0.05)


class TestMethodAgreement:
    def test_nj_vs_frequency_domain(self, record):
        acc, dt = record
        config = small_config()
        nj = response_spectrum_nigam_jennings(acc, dt, config)
        fd = response_spectrum_frequency_domain(acc, dt, config)
        assert np.allclose(nj.sd, fd.sd, rtol=0.05)
        assert np.allclose(nj.sv, fd.sv, rtol=0.05)
        assert np.allclose(nj.sa, fd.sa, rtol=0.05)

    def test_nj_vs_duhamel(self, record):
        acc, dt = record
        config = small_config()
        nj = response_spectrum_nigam_jennings(acc, dt, config)
        du = response_spectrum_duhamel(acc, dt, config)
        assert np.allclose(nj.sd, du.sd, rtol=0.05)

    def test_dispatcher_selects_method(self, record):
        acc, dt = record
        nj = response_spectrum(acc, dt, small_config(method="nigam_jennings"))
        du = response_spectrum(acc, dt, small_config(method="duhamel"))
        assert nj.sd.shape == du.sd.shape

    def test_default_config(self, record):
        acc, dt = record
        spectrum = response_spectrum(acc[:500], dt)
        assert spectrum.sa.shape == (len(DEFAULT_DAMPINGS), 100)


class TestSpectralPhysics:
    def test_short_period_sa_approaches_pga(self, record):
        # A very stiff oscillator rides the ground: SA(T->0) -> PGA.
        acc, dt = record
        config = ResponseSpectrumConfig(periods=np.array([0.02]), dampings=(0.05,))
        spectrum = response_spectrum_nigam_jennings(acc, dt, config)
        pga = np.max(np.abs(acc))
        assert spectrum.sa[0, 0] == pytest.approx(pga, rel=0.1)

    def test_long_period_sd_approaches_pgd(self):
        # A very soft oscillator stays put: SD(T->inf) -> peak ground
        # displacement.
        dt = 0.01
        t = np.arange(6000) * dt
        acc = np.sin(2 * np.pi * 2.0 * t) * np.hanning(6000)
        from repro.dsp.integrate import acceleration_to_motion

        _, _, disp = acceleration_to_motion(acc, dt, detrend=False)
        pgd = np.max(np.abs(disp))
        config = ResponseSpectrumConfig(periods=np.array([30.0]), dampings=(0.05,))
        spectrum = response_spectrum_nigam_jennings(acc, dt, config)
        assert spectrum.sd[0, 0] == pytest.approx(pgd, rel=0.15)

    def test_damping_reduces_response(self, record):
        acc, dt = record
        config = ResponseSpectrumConfig(
            periods=np.geomspace(0.2, 2.0, 5), dampings=(0.02, 0.05, 0.20)
        )
        spectrum = response_spectrum_nigam_jennings(acc, dt, config)
        assert np.all(spectrum.sd[0] >= spectrum.sd[1])
        assert np.all(spectrum.sd[1] >= spectrum.sd[2])

    def test_resonance_amplification(self):
        # Harmonic excitation at the oscillator's period: response grows
        # far beyond the static response.
        dt = 0.005
        T = 0.5
        t = np.arange(8000) * dt
        acc = np.sin(2 * np.pi / T * t)
        config = ResponseSpectrumConfig(periods=np.array([T]), dampings=(0.02,))
        spectrum = response_spectrum_nigam_jennings(acc, dt, config)
        w = 2 * np.pi / T
        static = 1.0 / w**2
        # Steady-state amplification at resonance = 1/(2 zeta) = 25.
        assert spectrum.sd[0, 0] > 15 * static

    def test_pseudo_quantities(self, record):
        acc, dt = record
        config = small_config(pseudo=True)
        spectrum = response_spectrum_nigam_jennings(acc, dt, config)
        w = 2 * np.pi / config.periods
        assert np.allclose(spectrum.sv[0], w * spectrum.sd[0])
        assert np.allclose(spectrum.sa[0], w**2 * spectrum.sd[0])

    def test_zero_damping_supported(self, record):
        acc, dt = record
        config = small_config(dampings=(0.0,))
        spectrum = response_spectrum_nigam_jennings(acc, dt, config)
        assert np.all(np.isfinite(spectrum.sd))

    def test_scaling_linearity(self, record):
        acc, dt = record
        config = small_config()
        s1 = response_spectrum_nigam_jennings(acc, dt, config)
        s2 = response_spectrum_nigam_jennings(3.0 * acc, dt, config)
        assert np.allclose(s2.sd, 3.0 * s1.sd, rtol=1e-10)
