"""Unit tests for Konno–Ohmachi smoothing and the H/V ratio."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.spectra.site import (
    hv_spectral_ratio,
    konno_ohmachi_smooth,
    konno_ohmachi_window,
)


class TestWindow:
    def test_unity_at_center(self):
        freqs = np.geomspace(0.1, 50, 200)
        center = float(freqs[120])  # an exact grid frequency
        w = konno_ohmachi_window(freqs, center)
        assert w[120] == pytest.approx(1.0, abs=1e-9)

    def test_decays_away_from_center(self):
        freqs = np.geomspace(0.1, 50, 200)
        w = konno_ohmachi_window(freqs, 5.0)
        assert w[np.argmin(np.abs(freqs - 0.5))] < 0.01
        assert w[np.argmin(np.abs(freqs - 50.0))] < 0.01

    def test_bandwidth_controls_width(self):
        freqs = np.geomspace(0.1, 50, 400)
        narrow = konno_ohmachi_window(freqs, 5.0, bandwidth=80.0)
        wide = konno_ohmachi_window(freqs, 5.0, bandwidth=20.0)
        assert narrow.sum() < wide.sum()

    def test_zero_frequency_weightless(self):
        freqs = np.array([0.0, 1.0, 5.0])
        w = konno_ohmachi_window(freqs, 5.0)
        assert w[0] == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(SignalError):
            konno_ohmachi_window(np.array([1.0]), -1.0)
        with pytest.raises(SignalError):
            konno_ohmachi_window(np.array([1.0]), 1.0, bandwidth=0.0)


class TestSmooth:
    def test_constant_preserved(self):
        freqs = np.geomspace(0.1, 50, 100)
        amp = np.full(100, 3.0)
        assert np.allclose(konno_ohmachi_smooth(freqs, amp), 3.0, rtol=1e-6)

    def test_reduces_jaggedness(self, rng):
        freqs = np.geomspace(0.1, 50, 300)
        amp = np.exp(rng.normal(size=300) * 0.5) * freqs**-1
        smoothed = konno_ohmachi_smooth(freqs, amp)
        assert np.std(np.diff(np.log(smoothed))) < np.std(np.diff(np.log(amp)))

    def test_peak_survives_smoothing(self):
        freqs = np.geomspace(0.1, 50, 300)
        amp = np.ones(300)
        peak_idx = np.argmin(np.abs(freqs - 3.0))
        amp[peak_idx - 8 : peak_idx + 8] = 5.0
        smoothed = konno_ohmachi_smooth(freqs, amp)
        assert freqs[np.argmax(smoothed)] == pytest.approx(3.0, rel=0.2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SignalError):
            konno_ohmachi_smooth(np.ones(5), np.ones(4))

    def test_too_long_rejected(self):
        n = 5000
        with pytest.raises(SignalError):
            konno_ohmachi_smooth(np.geomspace(0.1, 50, n), np.ones(n))


class TestHv:
    def make_spectra(self, site_freq=2.0, amplification=4.0):
        freqs = np.geomspace(0.1, 30, 300)
        base = freqs**-0.5
        # Horizontal components amplified around the site frequency.
        bump = 1.0 + (amplification - 1.0) * np.exp(
            -((np.log(freqs / site_freq)) ** 2) / 0.08
        )
        h1 = base * bump
        h2 = base * bump * 1.1
        v = base
        return freqs, h1, h2, v

    def test_recovers_site_frequency(self):
        freqs, h1, h2, v = self.make_spectra(site_freq=2.0)
        result = hv_spectral_ratio(freqs, h1, h2, v)
        assert result.peak_frequency == pytest.approx(2.0, rel=0.2)
        assert result.peak_amplitude > 2.0

    def test_flat_site_has_no_strong_peak(self):
        freqs = np.geomspace(0.1, 30, 300)
        base = freqs**-0.5
        result = hv_spectral_ratio(freqs, base, base, base)
        assert result.peak_amplitude == pytest.approx(1.0, rel=0.1)

    def test_band_respected(self):
        freqs, h1, h2, v = self.make_spectra(site_freq=0.15)  # below the band
        result = hv_spectral_ratio(freqs, h1, h2, v, band=(0.5, 20.0))
        assert result.peak_frequency >= 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SignalError):
            hv_spectral_ratio(np.ones(5), np.ones(5), np.ones(4), np.ones(5))

    def test_negative_amplitudes_rejected(self):
        freqs = np.geomspace(0.1, 30, 50)
        with pytest.raises(SignalError):
            hv_spectral_ratio(freqs, -np.ones(50), np.ones(50), np.ones(50))

    def test_empty_band_rejected(self):
        freqs, h1, h2, v = self.make_spectra()
        with pytest.raises(SignalError):
            hv_spectral_ratio(freqs, h1, h2, v, band=(100.0, 200.0))

    def test_works_on_pipeline_spectra(self, rng):
        """End-to-end: synthetic record -> Fourier spectra -> H/V."""
        from repro.dsp.integrate import acceleration_to_motion
        from repro.spectra.fourier import fourier_amplitude_spectrum
        from repro.synth.source import BruneSource
        from repro.synth.stochastic import StochasticSimulator

        dt = 0.01
        sim = StochasticSimulator(source=BruneSource(magnitude=5.5))
        comps = {}
        for i, comp in enumerate(("l", "t", "v")):
            acc = sim.simulate(4096, dt, 20.0, np.random.default_rng(100 + i))
            comps[comp] = acc * (0.6 if comp == "v" else 1.0)
        freqs, fl = fourier_amplitude_spectrum(comps["l"], dt)
        _, ft = fourier_amplitude_spectrum(comps["t"], dt)
        _, fv = fourier_amplitude_spectrum(comps["v"], dt)
        keep = (freqs > 0.1) & (freqs < 30.0)
        # Thin the grid so the O(n^2) smoother stays fast in tests.
        idx = np.nonzero(keep)[0][::4]
        result = hv_spectral_ratio(freqs[idx], fl[idx], ft[idx], fv[idx])
        assert np.all(np.isfinite(result.ratio))
        assert result.peak_amplitude > 1.0
