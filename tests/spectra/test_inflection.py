"""Unit tests for the FPL/FSL inflection search (process P10's core)."""

import numpy as np
import pytest

from repro.dsp.fir import DEFAULT_BANDPASS
from repro.errors import SignalError
from repro.spectra.inflection import (
    InflectionResult,
    corners_from_inflection,
    find_inflection_point,
)


def spectrum_with_corner(corner_period: float, n: int = 300) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic velocity spectrum decaying until corner_period, then
    rising into a noise floor — the Fig. 3 shape."""
    periods = np.geomspace(0.05, 30.0, n)
    amp = np.where(
        periods < corner_period,
        (periods / corner_period) ** -1.5,  # decays toward long periods
        (periods / corner_period) ** 2.0,  # noise rises past the corner
    )
    return periods, amp


class TestFindInflection:
    def test_finds_known_corner(self):
        periods, amp = spectrum_with_corner(4.0)
        result = find_inflection_point(periods, amp, smoothing_half_width=2)
        assert result.found
        assert result.period == pytest.approx(4.0, rel=0.25)

    def test_fpl_fsl_relationship(self):
        periods, amp = spectrum_with_corner(5.0)
        result = find_inflection_point(periods, amp, fsl_ratio=0.5, smoothing_half_width=2)
        assert result.fpl == pytest.approx(1.0 / result.period)
        assert result.fsl == pytest.approx(0.5 * result.fpl)

    def test_respects_min_period(self):
        # Corner below min_period must be ignored.
        periods, amp = spectrum_with_corner(0.5)
        result = find_inflection_point(periods, amp, min_period=1.0, smoothing_half_width=2)
        assert result.period >= 1.0

    def test_early_termination_scans_few_points(self):
        periods, amp = spectrum_with_corner(1.5)
        result = find_inflection_point(periods, amp, smoothing_half_width=2)
        # Early termination: far fewer points visited than exist beyond 1 s.
        beyond = int(np.sum(periods > 1.0))
        assert result.scanned < beyond

    def test_monotone_decay_uses_fallback(self):
        periods = np.geomspace(0.05, 30.0, 200)
        amp = periods**-2.0  # never stops decaying
        result = find_inflection_point(periods, amp, fallback_period=10.0,
                                       smoothing_half_width=2)
        assert not result.found
        assert result.period == pytest.approx(10.0)

    def test_fallback_clipped_to_range(self):
        periods = np.geomspace(0.05, 5.0, 100)
        amp = periods**-2.0
        result = find_inflection_point(periods, amp, fallback_period=10.0,
                                       smoothing_half_width=2)
        assert result.period <= 5.0

    def test_frequency_property(self):
        result = InflectionResult(period=2.0, fpl=0.5, fsl=0.25, found=True, scanned=3)
        assert result.frequency == pytest.approx(0.5)

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(SignalError):
            find_inflection_point(np.ones(5), np.ones(4))

    def test_rejects_unsorted_periods(self):
        with pytest.raises(SignalError):
            find_inflection_point(np.array([2.0, 1.0, 3.0]), np.ones(3))

    def test_rejects_bad_persistence(self):
        periods, amp = spectrum_with_corner(4.0)
        with pytest.raises(SignalError):
            find_inflection_point(periods, amp, persistence=0)

    def test_persistence_skips_single_blips(self):
        periods = np.geomspace(0.05, 30.0, 400)
        amp = periods**-1.5
        # One isolated upward blip at ~2 s must not trigger with
        # persistence=3 and no smoothing.
        blip = int(np.searchsorted(periods, 2.0))
        amp[blip] *= 1.5
        result = find_inflection_point(
            periods, amp, smoothing_half_width=0, persistence=3, fallback_period=10.0
        )
        assert not result.found


class TestCornersFromInflection:
    def test_corners_are_ordered(self):
        result = InflectionResult(period=2.0, fpl=0.5, fsl=0.25, found=True, scanned=3)
        spec = corners_from_inflection(result, DEFAULT_BANDPASS)
        spec.validate(nyquist=50.0)
        assert spec.f_pass_low == pytest.approx(0.5)
        assert spec.f_stop_low == pytest.approx(0.25)
        assert spec.f_pass_high == DEFAULT_BANDPASS.f_pass_high

    def test_degenerate_corner_clamped(self):
        # An absurd corner (FPL above the pass-band) gets clamped to a
        # valid spec rather than exploding downstream.
        result = InflectionResult(period=0.01, fpl=100.0, fsl=50.0, found=True, scanned=1)
        spec = corners_from_inflection(result, DEFAULT_BANDPASS)
        spec.validate(nyquist=1000.0)
        assert spec.f_pass_low < spec.f_pass_high
