"""Tests for the repro-process / repro-bench command-line entry points."""

import shutil

import pytest

from repro.cli import main_bench, main_process
from tests.conftest import tiny_dataset_dir  # noqa: F401  (fixture reexport)


class TestProcessCli:
    def test_run_on_existing_dataset(self, tmp_path, tiny_dataset_dir, capsys):
        ws = tmp_path / "ws"
        (ws / "input").mkdir(parents=True)
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ws / "input" / src.name)
        rc = main_process(
            [str(ws), "-i", "seq-optimized", "--periods", "10", "--workers", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "seq-optimized" in out
        assert (ws / "work" / "v1files.lst").exists()

    def test_generate_event_scaled(self, tmp_path, capsys):
        ws = tmp_path / "gen"
        rc = main_process(
            [
                str(ws),
                "-i",
                "full-parallel",
                "--generate-event",
                "EV-NOV18",
                "--scale",
                "0.01",
                "--periods",
                "8",
                "--workers",
                "2",
            ]
        )
        assert rc == 0
        assert len(list((ws / "input").glob("*.v1"))) == 5
        out = capsys.readouterr().out
        assert "full-parallel" in out

    def test_unknown_implementation_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main_process([str(tmp_path), "-i", "warp-speed"])

    def test_trace_flag_writes_chrome_trace(self, tmp_path, tiny_dataset_dir, capsys):
        import json

        ws = tmp_path / "ws"
        (ws / "input").mkdir(parents=True)
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ws / "input" / src.name)
        trace_path = tmp_path / "run.trace.json"
        rc = main_process(
            [
                str(ws), "-i", "full-parallel", "--periods", "8",
                "--workers", "2", "--trace", str(trace_path),
            ]
        )
        assert rc == 0
        assert "trace written to" in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        stage_events = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("cat") == "stage"
        ]
        assert len(stage_events) == 11

    def test_backend_choices_follow_enum(self):
        from repro.cli import _build_process_parser
        from repro.parallel.backend import Backend

        action = next(
            a for a in _build_process_parser()._actions if a.dest == "backend"
        )
        assert list(action.choices) == [b.value for b in Backend]


class TestBenchCli:
    def test_table1(self, capsys):
        assert main_bench(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SpeedUp" in out
        assert "483.70" in out  # the calibration anchor row

    def test_figure11(self, capsys):
        assert main_bench(["figure11"]) == 0
        out = capsys.readouterr().out
        assert "IX" in out and "Paper" in out

    def test_figure12(self, capsys):
        assert main_bench(["figure12"]) == 0
        assert "Fully Parallelized" in capsys.readouterr().out

    def test_figure13(self, capsys):
        assert main_bench(["figure13"]) == 0
        assert "pts/s" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main_bench(["ablation"]) == 0
        out = capsys.readouterr().out
        assert "workers" in out
        assert "Critical-path" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main_bench(["figure99"])

    def test_figure_render_flag(self, tmp_path, capsys):
        out = tmp_path / "f11.ps"
        assert main_bench(["figure11", "--render", str(out)]) == 0
        assert out.read_text().startswith("%!PS")
        assert "rendered" in capsys.readouterr().out

    def test_schedule_render(self, tmp_path, capsys):
        out = tmp_path / "sched.ps"
        rc = main_bench(
            ["schedule", "--render", str(out), "--implementation", "wavefront-parallel"]
        )
        assert rc == 0
        assert out.exists()

    def test_measured_single_event(self, capsys):
        assert main_bench(["measured", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "seq-original" in out
        assert "speedup on this machine" in out

    def test_incremental_via_process_cli(self, tmp_path, tiny_dataset_dir, capsys):
        from repro.cli import main_process

        ws = tmp_path / "ws"
        (ws / "input").mkdir(parents=True)
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ws / "input" / src.name)
        args = [str(ws), "-i", "incremental", "--periods", "8", "--workers", "2"]
        assert main_process(args) == 0
        # Second invocation: warm, near-instant, still exits cleanly.
        assert main_process(args) == 0
        out = capsys.readouterr().out
        assert "incremental" in out
