"""Backend equivalence: the fully-parallel implementation produces the
same bytes on every execution backend (serial / thread / process),
worker count notwithstanding."""

import shutil

import pytest

from repro.core import FullyParallel, PartiallyParallel
from repro.core.context import ParallelSettings
from tests.conftest import SINGLE_EVENT, hash_tree, make_context, tiny_response_config


def run_with(tmp_path_factory, dataset_dir, settings: ParallelSettings, impl_cls=FullyParallel):
    root = tmp_path_factory.mktemp("backend") / "ws"
    ctx = make_context(root, parallel=settings)
    for src in dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    impl_cls().run(ctx)
    return hash_tree(ctx.workspace.work_dir)


@pytest.fixture(scope="module")
def single_dataset_dir(tmp_path_factory):
    from repro.synth.dataset import generate_event_dataset

    directory = tmp_path_factory.mktemp("single-dataset")
    generate_event_dataset(SINGLE_EVENT, directory)
    return directory


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory, single_dataset_dir):
    return run_with(
        tmp_path_factory,
        single_dataset_dir,
        ParallelSettings(
            loop_backend="serial", task_backend="serial", tool_backend="serial",
            num_workers=1,
        ),
    )


class TestBackendEquivalence:
    def test_thread_backend_matches_serial(
        self, tmp_path_factory, single_dataset_dir, serial_reference
    ):
        threaded = run_with(
            tmp_path_factory,
            single_dataset_dir,
            ParallelSettings(num_workers=3),
        )
        assert threaded == serial_reference

    @pytest.mark.slow
    def test_process_backend_matches_serial(
        self, tmp_path_factory, single_dataset_dir, serial_reference
    ):
        multiproc = run_with(
            tmp_path_factory,
            single_dataset_dir,
            ParallelSettings(
                loop_backend="process",
                task_backend="thread",
                tool_backend="process",
                num_workers=2,
            ),
        )
        assert multiproc == serial_reference

    def test_worker_count_does_not_change_output(
        self, tmp_path_factory, single_dataset_dir, serial_reference
    ):
        many = run_with(
            tmp_path_factory,
            single_dataset_dir,
            ParallelSettings(num_workers=7),
        )
        assert many == serial_reference

    def test_partial_on_threads_matches(self, tmp_path_factory, single_dataset_dir, serial_reference):
        partial = run_with(
            tmp_path_factory,
            single_dataset_dir,
            ParallelSettings(num_workers=3),
            impl_cls=PartiallyParallel,
        )
        assert partial == serial_reference
