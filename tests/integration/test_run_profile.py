"""Validates the cost hierarchy the paper's analysis rests on, in
*real* runs of our pipeline — not just in the calibrated model."""

import pytest

from repro.core import SequentialOriginal
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from tests.conftest import make_context


@pytest.fixture(scope="module")
def profiled_run(tmp_path_factory, tiny_dataset_dir):
    import shutil

    ctx = make_context(
        tmp_path_factory.mktemp("profile") / "ws",
        # A realistic oscillator grid so stage IX carries real weight.
        response_config=ResponseSpectrumConfig(
            periods=default_periods(120), dampings=(0.02, 0.05, 0.1)
        ),
    )
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    return SequentialOriginal().run(ctx)


class TestRealCostHierarchy:
    def test_response_spectrum_dominates(self, profiled_run):
        # The paper's central observation: P16 is the most expensive
        # process.  True of our real pipeline too.
        durations = {p.pid: profiled_run.process_duration(p.pid)
                     for p in profiled_run.processes}
        assert max(durations, key=durations.get) == 16

    def test_metadata_processes_are_cheap(self, profiled_run):
        p16 = profiled_run.process_duration(16)
        for pid in (0, 2, 5, 8, 11, 17):
            assert profiled_run.process_duration(pid) < 0.1 * p16

    def test_redundant_processes_cost_real_time(self, profiled_run):
        # The optimization's benefit exists: P6+P12+P14 together take
        # a measurable slice of the run.
        redundant = sum(profiled_run.process_duration(pid) for pid in (6, 12, 14))
        assert redundant > 0.02 * profiled_run.total_s

    def test_both_corrections_cost_similarly(self, profiled_run):
        p4 = profiled_run.process_duration(4)
        p13 = profiled_run.process_duration(13)
        assert 0.3 < p4 / p13 < 3.0

    def test_duplicate_processes_cost_similarly(self, profiled_run):
        # P12 re-does P3's work, so their costs should track.
        p3 = profiled_run.process_duration(3)
        p12 = profiled_run.process_duration(12)
        assert 0.3 < p3 / p12 < 3.0
