"""Golden numeric regression tests.

A fixed seeded event processed by the pipeline must keep producing the
same physical numbers.  These values were recorded from the current
implementation and guard against silent numeric drift anywhere in the
chain (synthesis → separation → filtering → integration → FPL/FSL →
response spectra).  Tolerances are tight (1e-5 relative): the chain is
deterministic, so only a genuine behaviour change moves them.

If a change is *intended* to alter numerics (e.g. a better filter
design), update the goldens in the same commit and say why.
"""

import numpy as np
import pytest

from repro.core import RunContext, SequentialOptimized
from repro.formats.params import read_filter_params
from repro.formats.response import read_response
from repro.formats.v2 import read_v2
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth import EventSpec, generate_event_dataset

GOLD_EVENT = EventSpec("EV-GOLD", "2021-09-09", 5.5, 2, 16_000, seed=777001)

#: (station+comp) -> (signed PGA gal, signed PGV cm/s, FPL Hz).
GOLDEN_TRACES = {
    "ST01l": (51.706199, -1.7429043, 0.988506),
    "ST01t": (-83.619116, -2.9763514, 0.988506),
    "ST01v": (35.030482, 1.6946048, 0.988506),
    "ST02l": (8.8156023, -0.49134172, 0.986301),
    "ST02t": (-7.5107777, 0.50422123, 0.986301),
    "ST02v": (-5.4006876, 0.4240409, 0.986301),
}

GOLDEN_FILE_POINTS = [8_700, 7_300]
GOLDEN_SA_NEAR_1S = 10.112891  # ST01 l, 5% damping, T = 1.1247 s
GOLDEN_SD_MAX = 0.46909195


@pytest.fixture(scope="module")
def golden_run(tmp_path_factory):
    ctx = RunContext.for_directory(
        tmp_path_factory.mktemp("golden") / "ws",
        response_config=ResponseSpectrumConfig(
            periods=default_periods(25), dampings=(0.05,)
        ),
    )
    generate_event_dataset(GOLD_EVENT, ctx.workspace.input_dir)
    SequentialOptimized().run(ctx)
    return ctx


class TestGoldenValues:
    def test_event_structure(self):
        assert GOLD_EVENT.file_points() == GOLDEN_FILE_POINTS

    def test_trace_peaks_and_corners(self, golden_run):
        for trace, (pga, pgv, fpl) in GOLDEN_TRACES.items():
            station, comp = trace[:-1], trace[-1]
            rec = read_v2(golden_run.workspace.component_v2(station, comp))
            assert rec.peaks.pga == pytest.approx(pga, rel=1e-5), trace
            assert rec.peaks.pgv == pytest.approx(pgv, rel=1e-5), trace
            assert rec.f_pass_low == pytest.approx(fpl, rel=1e-5), trace

    def test_response_spectrum_values(self, golden_run):
        rec = read_response(golden_run.workspace.component_r("ST01", "l"))
        idx = int(np.argmin(np.abs(rec.periods - 1.0)))
        assert rec.sa[0, idx] == pytest.approx(GOLDEN_SA_NEAR_1S, rel=1e-5)
        assert rec.sd[0].max() == pytest.approx(GOLDEN_SD_MAX, rel=1e-5)

    def test_corner_overrides_count(self, golden_run):
        params = read_filter_params(
            golden_run.workspace.work("filter_corrected.par")
        )
        assert len(params.overrides) == 6

    def test_horizontals_stronger_than_vertical(self, golden_run):
        # A physical sanity constraint the goldens should always obey.
        for station in ("ST01", "ST02"):
            v = abs(GOLDEN_TRACES[f"{station}v"][0])
            h = max(abs(GOLDEN_TRACES[f"{station}l"][0]), abs(GOLDEN_TRACES[f"{station}t"][0]))
            assert h > v
