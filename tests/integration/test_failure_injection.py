"""Failure injection: broken inputs must surface typed errors, not
silent corruption, in every implementation."""

import shutil

import pytest

from repro.core import FullyParallel, SequentialOptimized
from repro.errors import FormatError, PipelineError, ReproError
from tests.conftest import make_context


@pytest.fixture()
def ctx_with_data(tmp_path, tiny_dataset_dir):
    ctx = make_context(tmp_path / "ws")
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    return ctx


class TestMissingInput:
    def test_empty_workspace_rejected(self, tmp_path):
        ctx = make_context(tmp_path / "ws")
        with pytest.raises(PipelineError):
            SequentialOptimized().run(ctx)

    def test_missing_input_dir_rejected(self, tmp_path):
        from repro.core import RunContext, Workspace

        ctx = make_context(tmp_path / "ws")
        shutil.rmtree(ctx.workspace.input_dir)
        with pytest.raises(PipelineError):
            SequentialOptimized().run(ctx)


class TestCorruptInput:
    @pytest.mark.parametrize("impl_cls", [SequentialOptimized, FullyParallel])
    def test_truncated_v1_raises_format_error(self, ctx_with_data, impl_cls):
        victim = next(ctx_with_data.workspace.input_dir.glob("*.v1"))
        text = victim.read_text().splitlines()
        victim.write_text("\n".join(text[: len(text) // 2]) + "\n")
        with pytest.raises(ReproError):
            impl_cls().run(ctx_with_data)

    def test_garbage_v1_raises_header_error(self, ctx_with_data):
        victim = next(ctx_with_data.workspace.input_dir.glob("*.v1"))
        victim.write_text("this is not a strong-motion record\n")
        with pytest.raises(FormatError):
            SequentialOptimized().run(ctx_with_data)

    def test_numeric_corruption_detected(self, ctx_with_data):
        victim = next(ctx_with_data.workspace.input_dir.glob("*.v1"))
        text = victim.read_text()
        # Clobber a data line deep inside the record.
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if i > 20 and "E" in line and ":" not in line:
                lines[i] = line[:10] + "@@@@@" + line[15:]
                break
        victim.write_text("\n".join(lines) + "\n")
        with pytest.raises(FormatError):
            SequentialOptimized().run(ctx_with_data)


class TestMidPipelineDamage:
    def test_deleted_intermediate_surfaces_missing_artifact(self, ctx_with_data):
        from repro.core.processes.p01_gather import run_p01
        from repro.core.processes.p02_params import run_p02
        from repro.core.processes.p03_separate import run_p03
        from repro.core.processes.p04_correct import run_p04
        from repro.errors import MissingArtifactError

        ctx = ctx_with_data
        run_p01(ctx)
        run_p02(ctx)
        run_p03(ctx)
        # Sabotage: remove the filter parameters before P4.
        ctx.workspace.work("filter.par").unlink()
        with pytest.raises((MissingArtifactError, PipelineError)):
            run_p04(ctx)

    def test_error_message_names_the_artifact(self, tmp_path):
        from repro.core.processes.p16_response import run_p16
        from repro.errors import MissingArtifactError

        ctx = make_context(tmp_path / "ws")
        with pytest.raises(MissingArtifactError) as err:
            run_p16(ctx)
        assert "response.meta" in str(err.value)
