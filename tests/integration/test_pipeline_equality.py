"""The reproduction's central integration claim: all four
implementations produce byte-identical final artifacts (paper §IV:
the optimization "has no impact on the final output"; §V/§VI: the
parallelizations preserve it too)."""

import shutil

import pytest

from repro.core import (
    FullyParallel,
    PartiallyParallel,
    SequentialOptimized,
    SequentialOriginal,
)
from tests.conftest import hash_tree, make_context


@pytest.fixture(scope="module")
def all_runs(tmp_path_factory, tiny_dataset_dir):
    """Run every implementation once on identical inputs."""
    results = {}
    for impl_cls in (SequentialOriginal, SequentialOptimized, PartiallyParallel, FullyParallel):
        root = tmp_path_factory.mktemp(f"eq-{impl_cls.name}") / "ws"
        ctx = make_context(root)
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ctx.workspace.input_dir / src.name)
        result = impl_cls().run(ctx)
        results[impl_cls.name] = (ctx, result)
    return results


class TestOutputEquality:
    def test_inventories_match(self, all_runs):
        trees = {name: set(hash_tree(ctx.workspace.work_dir)) for name, (ctx, _) in all_runs.items()}
        base = trees["seq-original"]
        for name, tree in trees.items():
            assert tree == base, f"{name} produced a different artifact inventory"

    def test_bytes_match(self, all_runs):
        trees = {name: hash_tree(ctx.workspace.work_dir) for name, (ctx, _) in all_runs.items()}
        base = trees["seq-original"]
        for name, tree in trees.items():
            diffs = [k for k in base if tree.get(k) != base[k]]
            assert not diffs, f"{name} differs from seq-original in: {diffs[:8]}"

    def test_inventory_is_complete(self, all_runs):
        ctx, _ = all_runs["seq-original"]
        stations = ctx.stations()
        expected = set(ctx.workspace.final_artifact_names(stations))
        actual = set(hash_tree(ctx.workspace.work_dir))
        assert expected <= actual
        # Nothing unexpected beyond the declared inventory either.
        assert actual == expected

    def test_no_temp_residue(self, all_runs):
        for name, (ctx, _) in all_runs.items():
            assert not ctx.workspace.tmp_dir.exists(), f"{name} left tmp folders behind"
            assert not list(ctx.workspace.work_dir.glob("*.max")), name
            assert not list(ctx.workspace.work_dir.glob("tool.cfg")), name


class TestTimingStructure:
    def test_sequential_original_runs_twenty(self, all_runs):
        _, result = all_runs["seq-original"]
        assert [p.pid for p in result.processes] == list(range(20))

    def test_sequential_optimized_runs_seventeen(self, all_runs):
        _, result = all_runs["seq-optimized"]
        pids = [p.pid for p in result.processes]
        assert len(pids) == 17
        assert not {6, 12, 14} & set(pids)

    def test_parallel_implementations_cover_optimized_set(self, all_runs):
        for name in ("partial-parallel", "full-parallel"):
            _, result = all_runs[name]
            assert sorted({p.pid for p in result.processes}) == sorted(
                set(range(20)) - {6, 12, 14}
            )

    def test_stage_durations_recorded(self, all_runs):
        _, result = all_runs["full-parallel"]
        assert set(result.stage_durations) == {
            "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI"
        }
        assert result.total_s > 0
        assert all(d >= 0 for d in result.stage_durations.values())

    def test_total_at_least_sum_of_stages(self, all_runs):
        _, result = all_runs["full-parallel"]
        assert result.total_s >= 0.95 * sum(result.stage_durations.values())

    def test_summary_lines(self, all_runs):
        _, result = all_runs["seq-optimized"]
        lines = result.summary_lines()
        assert result.implementation in lines[0]
        assert len(lines) == 1 + len(result.stage_durations)

    def test_process_duration_lookup(self, all_runs):
        _, result = all_runs["seq-original"]
        assert result.process_duration(16) > 0
        assert result.process_duration(6) > 0
        assert result.process_duration(99) == 0.0
