"""Per-process unit tests, run against a shared tiny workspace.

Each process is exercised in pipeline order on the same context,
asserting the artifacts it must create (and their invariants) exist
before the next process depends on them.
"""

import numpy as np
import pytest

from repro.core import artifacts as art
from repro.core.processes.p00_flags import FLAG_NAMES, run_p00
from repro.core.processes.p01_gather import run_p01
from repro.core.processes.p02_params import run_p02
from repro.core.processes.p03_separate import run_p03, stations_from_list
from repro.core.processes.p04_correct import run_p04
from repro.core.processes.p05_metadata import run_p05
from repro.core.processes.p07_fourier import run_p07
from repro.core.processes.p08_fourier_meta import run_p08
from repro.core.processes.p09_plot_fourier import run_p09
from repro.core.processes.p10_corners import run_p10
from repro.core.processes.p11_flags2 import run_p11
from repro.core.processes.p13_correct2 import run_p13
from repro.core.processes.p15_plot_acc import run_p15
from repro.core.processes.p16_response import run_p16, trace_pairs
from repro.core.processes.p17_response_meta import run_p17
from repro.core.processes.p18_plot_response import run_p18
from repro.core.processes.p19_gem import interleaved_files, run_p19
from repro.errors import MissingArtifactError, PipelineError
from repro.formats.common import COMPONENTS
from repro.formats.filelist import read_filelist, read_metadata
from repro.formats.fourier import read_fourier
from repro.formats.gem import read_gem
from repro.formats.params import read_filter_params
from repro.formats.response import read_response
from repro.formats.v1 import read_component_v1, read_v1
from repro.formats.v2 import read_v2


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    """A module-scoped context the tests advance through the pipeline."""
    import shutil

    from repro.synth.dataset import generate_event_dataset
    from tests.conftest import TINY_EVENT, make_context

    root = tmp_path_factory.mktemp("proc") / "ws"
    context = make_context(root)
    generate_event_dataset(TINY_EVENT, context.workspace.input_dir)
    return context


@pytest.mark.order_dependent
class TestProcessChain:
    def test_p00_flags(self, ctx):
        run_p00(ctx)
        text = ctx.workspace.work(art.FLAGS).read_text()
        assert len(text.splitlines()) == 10
        for name in FLAG_NAMES:
            assert name in text

    def test_p01_gather(self, ctx):
        run_p01(ctx)
        names = read_filelist(ctx.workspace.work(art.V1_LIST))
        assert names == sorted(names)
        assert all(name.endswith(".v1") for name in names)
        assert len(names) == 2

    def test_p02_params(self, ctx):
        run_p02(ctx)
        params = read_filter_params(ctx.workspace.work(art.FILTER_PARAMS))
        assert params.overrides == {}
        assert params.default.f_pass_low == ctx.default_filter.f_pass_low

    def test_p03_separate(self, ctx):
        run_p03(ctx)
        stations = stations_from_list(ctx.workspace)
        for station in stations:
            raw = read_v1(ctx.workspace.raw_v1(station))
            for comp in COMPONENTS:
                record = read_component_v1(ctx.workspace.component_v1(station, comp))
                assert np.allclose(record.acceleration, raw.components[comp], rtol=1e-6)
                assert record.header.component == comp

    def test_p04_default_correction(self, ctx):
        run_p04(ctx)
        stations = stations_from_list(ctx.workspace)
        for station in stations:
            for comp in COMPONENTS:
                record = read_v2(ctx.workspace.component_v2(station, comp))
                assert record.f_pass_low == pytest.approx(ctx.default_filter.f_pass_low)
        maxvals = ctx.workspace.work(art.MAXVALS).read_text().splitlines()
        assert len(maxvals) == 3 * len(stations)
        # No scratch left behind.
        assert not list(ctx.workspace.work_dir.glob("*.max"))
        assert not (ctx.workspace.work_dir / "tool.cfg").exists()

    def test_p05_metadata(self, ctx):
        run_p05(ctx)
        for name, purpose in (
            (art.ACCGRAPH_META, "ACCGRAPH"),
            (art.FOURIER_META, "FOURIER"),
            (art.RESPONSE_META, "RESPONSE"),
        ):
            meta = read_metadata(ctx.workspace.work(name))
            assert meta.purpose == purpose
            assert len(meta.entries) == 2

    def test_p07_fourier(self, ctx):
        run_p07(ctx)
        stations = stations_from_list(ctx.workspace)
        for station in stations:
            for comp in COMPONENTS:
                record = read_fourier(ctx.workspace.component_f(station, comp))
                assert record.periods[-1] <= ctx.fourier_max_period

    def test_p08_fourier_meta(self, ctx):
        run_p08(ctx)
        meta = read_metadata(ctx.workspace.work(art.FOURIERGRAPH_META))
        assert meta.purpose == "FOURIERGRAPH"
        assert all(len(entry) == 4 for entry in meta.entries)

    def test_p09_plot_fourier(self, ctx):
        run_p09(ctx)
        for station in stations_from_list(ctx.workspace):
            doc = ctx.workspace.plot_fourier(station).read_text()
            assert doc.startswith("%!PS")

    def test_p10_corners(self, ctx):
        run_p10(ctx)
        params = read_filter_params(ctx.workspace.work(art.FILTER_CORRECTED))
        stations = stations_from_list(ctx.workspace)
        assert len(params.overrides) == 3 * len(stations)
        for spec in params.overrides.values():
            spec.validate(nyquist=0.5 / 0.004)  # generous nyquist

    def test_p10_parallel_inner_identical(self, ctx, tmp_path):
        serial_bytes = ctx.workspace.work(art.FILTER_CORRECTED).read_bytes()
        run_p10(ctx, parallel_inner=True)
        assert ctx.workspace.work(art.FILTER_CORRECTED).read_bytes() == serial_bytes

    def test_p11_flags2(self, ctx):
        run_p11(ctx)
        assert ctx.workspace.work(art.FLAGS2).exists()

    def test_p13_definitive_correction(self, ctx):
        before = read_v2(
            ctx.workspace.component_v2(stations_from_list(ctx.workspace)[0], "l")
        )
        run_p13(ctx)
        station = stations_from_list(ctx.workspace)[0]
        after = read_v2(ctx.workspace.component_v2(station, "l"))
        params = read_filter_params(ctx.workspace.work(art.FILTER_CORRECTED))
        expected = params.spec_for(station, "l")
        assert after.f_pass_low == pytest.approx(expected.f_pass_low)
        # The definitive corners differ from the defaults, so the
        # records must have been re-corrected.
        assert after.f_pass_low != pytest.approx(before.f_pass_low)
        assert ctx.workspace.work(art.MAXVALS2).exists()

    def test_p15_plot_acc(self, ctx):
        run_p15(ctx)
        for station in stations_from_list(ctx.workspace):
            assert ctx.workspace.plot_accelerograph(station).read_text().startswith("%!PS")

    def test_p16_response(self, ctx):
        run_p16(ctx)
        pairs = trace_pairs(ctx)
        assert len(pairs) == 3 * len(stations_from_list(ctx.workspace))
        for _v2_name, r_name in pairs:
            record = read_response(ctx.workspace.work(r_name))
            assert record.sa.shape == (
                len(ctx.response_config.dampings),
                ctx.response_config.periods.size,
            )
            assert np.all(record.sa >= 0)

    def test_p17_response_meta(self, ctx):
        run_p17(ctx)
        meta = read_metadata(ctx.workspace.work(art.RESPONSEGRAPH_META))
        assert meta.purpose == "RESPONSEGRAPH"

    def test_p18_plot_response(self, ctx):
        run_p18(ctx)
        for station in stations_from_list(ctx.workspace):
            assert ctx.workspace.plot_response(station).read_text().startswith("%!PS")

    def test_p19_gem(self, ctx):
        run_p19(ctx)
        stations = stations_from_list(ctx.workspace)
        files = interleaved_files(ctx)
        assert len(files) == 6 * len(stations)
        # 18 GEM files per station, with consistent content.
        for station in stations:
            for comp in COMPONENTS:
                v2 = read_v2(ctx.workspace.component_v2(station, comp))
                gem_a = read_gem(ctx.workspace.gem(station, comp, "2", "A"))
                assert np.allclose(gem_a.values, v2.acceleration, rtol=1e-6)
                r = read_response(ctx.workspace.component_r(station, comp))
                gem_ra = read_gem(ctx.workspace.gem(station, comp, "R", "A"))
                d_idx = int(np.argmin(np.abs(r.dampings - 0.05)))
                assert np.allclose(gem_ra.values, r.sa[d_idx], rtol=1e-6)
                assert np.allclose(gem_ra.abscissa, r.periods, rtol=1e-6)


class TestProcessFailures:
    def test_p01_requires_input(self, tmp_path):
        from tests.conftest import make_context

        ctx = make_context(tmp_path / "empty")
        with pytest.raises(PipelineError):
            run_p01(ctx)

    def test_p03_requires_list(self, tmp_path):
        from tests.conftest import make_context

        ctx = make_context(tmp_path / "nolist")
        (ctx.workspace.input_dir / "X.v1").write_text("stub")
        with pytest.raises(MissingArtifactError):
            run_p03(ctx)

    def test_p16_requires_metadata(self, tmp_path):
        from tests.conftest import make_context

        ctx = make_context(tmp_path / "nometa")
        with pytest.raises(MissingArtifactError):
            run_p16(ctx)
