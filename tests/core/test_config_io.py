"""Tests for run-configuration files."""

import json

import numpy as np
import pytest

from repro.core.config_io import (
    config_from_context,
    context_from_config,
    load_config,
    save_config,
)
from repro.errors import PipelineError
from tests.conftest import make_context


class TestLoadConfig:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PipelineError):
            load_config(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PipelineError):
            load_config(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PipelineError):
            load_config(path)

    def test_unknown_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"filtre": {}}))
        with pytest.raises(PipelineError, match="filtre"):
            load_config(path)

    def test_empty_config_ok(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        assert load_config(path) == {}


class TestContextFromConfig:
    def test_defaults_from_empty(self, tmp_path):
        ctx = context_from_config(tmp_path / "ws", {})
        assert ctx.default_filter.f_pass_low == pytest.approx(0.10)
        assert ctx.response_config.periods.size == 100
        assert ctx.taper_fraction == pytest.approx(0.05)

    def test_filter_overrides(self, tmp_path):
        config = {"filter": {"f_pass_low": 0.2, "f_stop_low": 0.1}}
        ctx = context_from_config(tmp_path / "ws", config)
        assert ctx.default_filter.f_pass_low == pytest.approx(0.2)
        assert ctx.default_filter.f_pass_high == pytest.approx(25.0)

    def test_period_grid_spec(self, tmp_path):
        config = {"response": {"periods": {"count": 12, "t_min": 0.1, "t_max": 5.0}}}
        ctx = context_from_config(tmp_path / "ws", config)
        assert ctx.response_config.periods.size == 12
        assert ctx.response_config.periods[0] == pytest.approx(0.1)
        assert ctx.response_config.periods[-1] == pytest.approx(5.0)

    def test_explicit_period_list(self, tmp_path):
        config = {"response": {"periods": [0.5, 1.0, 2.0], "dampings": [0.05]}}
        ctx = context_from_config(tmp_path / "ws", config)
        assert np.allclose(ctx.response_config.periods, [0.5, 1.0, 2.0])
        assert ctx.response_config.dampings == (0.05,)

    def test_parallel_section(self, tmp_path):
        config = {"parallel": {"loop_backend": "process", "num_workers": 3}}
        ctx = context_from_config(tmp_path / "ws", config)
        assert ctx.parallel.loop_backend.value == "process"
        assert ctx.parallel.workers == 3

    def test_bad_filter_rejected_at_build(self, tmp_path):
        from repro.errors import ReproError

        config = {"filter": {"f_pass_low": 0.01}}  # below f_stop_low
        ctx = context_from_config(tmp_path / "ws", config)
        # The spec validates lazily, at design time.
        from repro.dsp.fir import design_bandpass

        with pytest.raises(ReproError):
            design_bandpass(ctx.default_filter, 0.01)


class TestRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        ctx = make_context(tmp_path / "ws")
        path = tmp_path / "config.json"
        save_config(path, ctx)
        rebuilt = context_from_config(tmp_path / "ws2", load_config(path))
        assert np.allclose(rebuilt.response_config.periods, ctx.response_config.periods)
        assert rebuilt.response_config.dampings == tuple(ctx.response_config.dampings)
        assert rebuilt.default_filter == ctx.default_filter
        assert rebuilt.inflection == ctx.inflection
        assert rebuilt.taper_fraction == ctx.taper_fraction

    def test_config_dict_is_json_serializable(self, tmp_path):
        ctx = make_context(tmp_path / "ws")
        json.dumps(config_from_context(ctx))


class TestCliIntegration:
    def test_process_with_config(self, tmp_path, tiny_dataset_dir, capsys):
        import shutil

        from repro.cli import main_process

        ws = tmp_path / "ws"
        (ws / "input").mkdir(parents=True)
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ws / "input" / src.name)
        config = {
            "response": {"periods": {"count": 8}, "dampings": [0.05]},
            "parallel": {"num_workers": 2},
        }
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(json.dumps(config))
        rc = main_process([str(ws), "-i", "seq-optimized", "--config", str(cfg_path)])
        assert rc == 0
        from repro.formats.response import read_response
        from repro.core import Workspace

        r_file = next(Workspace(ws).work_dir.glob("*.r"))
        assert read_response(r_file).periods.size == 8
