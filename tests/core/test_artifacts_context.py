"""Unit tests for workspace layout and run configuration."""

import pytest

from repro.core.artifacts import Workspace
from repro.core.context import ParallelSettings, RunContext
from repro.errors import PipelineError
from repro.parallel.backend import Backend


class TestWorkspace:
    def test_create_builds_skeleton(self, tmp_path):
        ws = Workspace(tmp_path / "run").create()
        assert ws.input_dir.is_dir()
        assert ws.work_dir.is_dir()

    def test_path_helpers(self, tmp_path):
        ws = Workspace(tmp_path)
        assert ws.raw_v1("ST01").name == "ST01.v1"
        assert ws.component_v1("ST01", "l").name == "ST01l.v1"
        assert ws.component_v2("ST01", "t").name == "ST01t.v2"
        assert ws.component_f("ST01", "v").name == "ST01v.f"
        assert ws.component_r("ST01", "l").name == "ST01l.r"
        assert ws.gem("ST01", "l", "R", "A").name == "ST01lRA.gem"
        assert ws.plot_accelerograph("ST01").name == "ST01.ps"
        assert ws.plot_fourier("ST01").name == "ST01f.ps"
        assert ws.plot_response("ST01").name == "ST01r.ps"
        assert ws.tmp_dir == ws.work_dir / "tmp"

    def test_require_input_missing_dir(self, tmp_path):
        ws = Workspace(tmp_path / "nothing")
        with pytest.raises(PipelineError):
            ws.require_input()

    def test_require_input_empty(self, tmp_path):
        ws = Workspace(tmp_path).create()
        with pytest.raises(PipelineError):
            ws.require_input()

    def test_input_stations_sorted(self, tmp_path):
        ws = Workspace(tmp_path).create()
        for name in ("B.v1", "A.v1", "C.v1"):
            (ws.input_dir / name).write_text("x")
        assert ws.input_stations() == ["A", "B", "C"]

    def test_final_artifact_inventory(self, tmp_path):
        ws = Workspace(tmp_path)
        names = ws.final_artifact_names(["ST01"])
        # 12 run-level + 3 plots + per-component (3 x (4 files + 6 GEM)).
        assert len(names) == 12 + 3 + 3 * 10
        assert "ST01l.v2" in names
        assert "ST01tR D.gem".replace(" ", "") in names
        assert names == sorted(names)


class TestParallelSettings:
    def test_backend_coercion(self):
        settings = ParallelSettings(loop_backend="process", task_backend="serial")
        assert settings.loop_backend is Backend.PROCESS
        assert settings.task_backend is Backend.SERIAL

    def test_workers_resolution(self):
        assert ParallelSettings(num_workers=5).workers == 5
        assert ParallelSettings().workers >= 1


class TestRunContext:
    def test_for_directory_creates_workspace(self, tmp_path):
        ctx = RunContext.for_directory(tmp_path / "run")
        assert ctx.workspace.input_dir.is_dir()

    def test_stations_reflect_input(self, tmp_path):
        ctx = RunContext.for_directory(tmp_path / "run")
        (ctx.workspace.input_dir / "Z9.v1").write_text("x")
        assert ctx.stations() == ["Z9"]

    def test_defaults_are_sane(self, tmp_path):
        ctx = RunContext.for_directory(tmp_path / "run")
        assert ctx.taper_fraction == pytest.approx(0.05)
        assert ctx.fourier_max_period == pytest.approx(20.0)
        assert ctx.response_config.combos > 0
