"""Tests for the incremental (make-style) runner."""

import shutil

import pytest

from repro.core import SequentialOptimized
from repro.core.incremental import IncrementalRunner
from repro.core.registry import OPTIMIZED_ORDER
from tests.conftest import hash_tree, make_context


@pytest.fixture()
def incr_ctx(tmp_path, tiny_dataset_dir):
    ctx = make_context(tmp_path / "ws")
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    return ctx


class TestIncrementalRunner:
    def test_first_run_executes_everything(self, incr_ctx):
        runner = IncrementalRunner()
        runner.run(incr_ctx)
        assert runner.executed == list(OPTIMIZED_ORDER)
        assert runner.skipped == []

    def test_outputs_match_sequential(self, incr_ctx, tmp_path, tiny_dataset_dir):
        IncrementalRunner().run(incr_ctx)
        ref_ctx = make_context(tmp_path / "ref")
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ref_ctx.workspace.input_dir / src.name)
        SequentialOptimized().run(ref_ctx)
        assert hash_tree(incr_ctx.workspace.work_dir) == hash_tree(
            ref_ctx.workspace.work_dir
        )

    def test_second_run_executes_nothing(self, incr_ctx):
        IncrementalRunner().run(incr_ctx)
        runner = IncrementalRunner()
        result = runner.run(incr_ctx)
        assert runner.executed == []
        # The twice-written V2 generation (P4, then P13's overwrite)
        # comes back via cheap byte restores, everything else skips.
        assert runner.restored == [4, 13]
        assert sorted(runner.skipped + runner.restored) == sorted(OPTIMIZED_ORDER)
        assert result.total_s < 5.0

    def test_changed_input_reruns(self, incr_ctx):
        IncrementalRunner().run(incr_ctx)
        victim = next(incr_ctx.workspace.input_dir.glob("*.v1"))
        text = victim.read_text()
        # Flip one data value (stays parseable).
        victim.write_text(text.replace(" 1.", " 2.", 1))
        runner = IncrementalRunner()
        runner.run(incr_ctx)
        # The gatherer's output (the list) is unchanged, but every
        # process reading raw V1 files or their descendants reruns.
        assert 3 in runner.executed
        assert 16 in runner.executed

    def test_deleted_output_restored_from_cache(self, incr_ctx):
        IncrementalRunner().run(incr_ctx)
        station = incr_ctx.stations()[0]
        incr_ctx.workspace.plot_fourier(station).unlink()
        runner = IncrementalRunner()
        runner.run(incr_ctx)
        # P9's inputs are unchanged, so the deleted plot comes back as
        # a byte restore — no recomputation anywhere.
        assert 9 in runner.restored
        assert runner.executed == []
        assert incr_ctx.workspace.plot_fourier(station).exists()

    def test_cache_miss_falls_back_to_execution(self, incr_ctx):
        import shutil as sh

        IncrementalRunner().run(incr_ctx)
        station = incr_ctx.stations()[0]
        incr_ctx.workspace.plot_fourier(station).unlink()
        sh.rmtree(incr_ctx.workspace.root / ".cache" / "p09")
        runner = IncrementalRunner()
        runner.run(incr_ctx)
        assert 9 in runner.executed
        assert incr_ctx.workspace.plot_fourier(station).exists()

    def test_rerun_after_delete_restores_identical_bytes(self, incr_ctx):
        IncrementalRunner().run(incr_ctx)
        before = hash_tree(incr_ctx.workspace.work_dir)
        station = incr_ctx.stations()[0]
        incr_ctx.workspace.component_r(station, "l").unlink()
        IncrementalRunner().run(incr_ctx)
        assert hash_tree(incr_ctx.workspace.work_dir) == before

    def test_config_change_reruns_affected(self, incr_ctx):
        from repro.spectra.response import ResponseSpectrumConfig, default_periods

        IncrementalRunner().run(incr_ctx)
        incr_ctx.response_config = ResponseSpectrumConfig(
            periods=default_periods(9), dampings=(0.05,)
        )
        runner = IncrementalRunner()
        runner.run(incr_ctx)
        # The config fingerprint changed, so everything re-executes
        # (the fingerprint is global — coarse but safe).
        assert 16 in runner.executed

    def test_corrupt_state_file_recovers(self, incr_ctx):
        IncrementalRunner().run(incr_ctx)
        (incr_ctx.workspace.root / ".pipeline_state.json").write_text("{not json")
        runner = IncrementalRunner()
        runner.run(incr_ctx)
        assert runner.executed == list(OPTIMIZED_ORDER)

    def test_state_outside_work_dir(self, incr_ctx):
        IncrementalRunner().run(incr_ctx)
        assert (incr_ctx.workspace.root / ".pipeline_state.json").exists()
        assert not (incr_ctx.workspace.work_dir / ".pipeline_state.json").exists()
