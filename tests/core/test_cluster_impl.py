"""Tests for the MPI-style cluster pipeline implementation."""

import shutil

import pytest

from repro.core import ClusterParallel, SequentialOptimized, implementation_by_name
from repro.core.context import ParallelSettings
from tests.conftest import hash_tree, make_context


@pytest.fixture(scope="module")
def cluster_and_reference(tmp_path_factory, tiny_dataset_dir):
    runs = {}
    for name, impl in (
        ("reference", SequentialOptimized()),
        ("cluster", ClusterParallel(n_ranks=2)),
    ):
        root = tmp_path_factory.mktemp(f"cl-{name}") / "ws"
        ctx = make_context(root, parallel=ParallelSettings(num_workers=2))
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ctx.workspace.input_dir / src.name)
        result = impl.run(ctx)
        runs[name] = (ctx, result)
    return runs


@pytest.mark.slow
class TestClusterImplementation:
    def test_byte_identical_to_sequential(self, cluster_and_reference):
        ref_ctx, _ = cluster_and_reference["reference"]
        cl_ctx, _ = cluster_and_reference["cluster"]
        ref = hash_tree(ref_ctx.workspace.work_dir)
        cl = hash_tree(cl_ctx.workspace.work_dir)
        assert set(ref) == set(cl)
        assert not [k for k in ref if ref[k] != cl[k]]

    def test_phase_timings(self, cluster_and_reference):
        _, result = cluster_and_reference["cluster"]
        assert set(result.stage_durations) == {"prologue", "ranks", "epilogue"}
        assert result.stage_durations["ranks"] > 0

    def test_registered_by_name(self):
        assert implementation_by_name("cluster-parallel") is ClusterParallel

    def test_single_rank_inline(self, tmp_path, tiny_dataset_dir):
        ctx = make_context(tmp_path / "one")
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ctx.workspace.input_dir / src.name)
        result = ClusterParallel(n_ranks=1).run(ctx)
        assert result.total_s > 0
        from repro.core.verify import verify_inventory

        assert verify_inventory(ctx.workspace).ok

    def test_ranks_clamped_to_stations(self, tmp_path, tiny_dataset_dir):
        ctx = make_context(tmp_path / "many")
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ctx.workspace.input_dir / src.name)
        # More ranks than stations must not deadlock or fail.
        result = ClusterParallel(n_ranks=16).run(ctx)
        assert result.total_s > 0
