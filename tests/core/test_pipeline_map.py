"""Tests for the textual Fig. 5 / Fig. 9 rendering."""

from repro.core.pipeline_map import (
    render_pipeline_map,
    render_process_table,
    render_stage_plan,
)


class TestProcessTable:
    def test_all_twenty_listed(self):
        text = render_process_table()
        for pid in range(20):
            assert f"P{pid} " in text or f"P{pid}  " in text

    def test_redundant_flagged(self):
        lines = render_process_table().splitlines()
        flagged = [line for line in lines if line.rstrip().endswith("yes")]
        assert len(flagged) == 3
        assert any(" P6 " in f" {line} " or line.lstrip().startswith("P6") for line in flagged)

    def test_io_declarations_shown(self):
        text = render_process_table()
        assert "comp_v2#1" in text
        assert "comp_v2#2" in text
        assert "filter_corrected#1" in text


class TestStagePlan:
    def test_eleven_stages(self):
        text = render_stage_plan()
        for stage in ("I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI"):
            assert f"\n{stage:>5}  " in text or text.startswith(f"{stage:>5}  ")

    def test_war_edge_listed(self):
        # The critical anti-dependency: P7 before P13's overwrite.
        text = render_stage_plan()
        assert "P7 -> P13" in text
        assert "WAR" in text

    def test_antichain_layers_listed(self):
        text = render_stage_plan()
        assert "layer 0: P0, P1, P2, P11" in text

    def test_strategies_shown(self):
        text = render_stage_plan()
        assert "temp_folders" in text
        assert "tasks" in text


class TestCli:
    def test_pipeline_map_command(self, capsys):
        from repro.cli import main_bench

        assert main_bench(["pipeline-map"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "Fig. 9" in out


def test_full_map_contains_both():
    text = render_pipeline_map()
    assert "Process inventory" in text
    assert "Stage plan" in text
