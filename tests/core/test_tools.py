"""Tests for the legacy-tool emulations (directory-driven programs)."""

import numpy as np
import pytest

from repro.core.tools import (
    correct_component,
    correction_tool,
    fourier_tool,
    max_line,
    read_tool_config,
    write_tool_config,
)
from repro.dsp.fir import DEFAULT_BANDPASS, BandPassSpec
from repro.errors import MissingArtifactError, PipelineError
from repro.formats.common import Header
from repro.formats.fourier import read_fourier
from repro.formats.params import FilterParams, write_filter_params
from repro.formats.v1 import ComponentRecord, write_component_v1
from repro.formats.v2 import read_v2


def make_component(rng, station="ST01", comp="l", n=2000, dt=0.01) -> ComponentRecord:
    header = Header(station=station, component=comp, dt=dt, npts=n, magnitude=5.0)
    acc = rng.normal(size=n) * np.hanning(n) * 20.0 + 1.5  # offset + shaking
    return ComponentRecord(header=header, acceleration=acc)


class TestToolConfig:
    def test_roundtrip(self, tmp_path):
        write_tool_config(tmp_path, params="filter.par", taper=0.05)
        settings = read_tool_config(tmp_path)
        assert settings == {"PARAMS": "filter.par", "TAPER": "0.05"}

    def test_missing_config_is_a_missing_artifact(self, tmp_path):
        with pytest.raises(MissingArtifactError):
            read_tool_config(tmp_path)
        # Still a PipelineError: existing catch-all handlers keep working.
        with pytest.raises(PipelineError):
            read_tool_config(tmp_path)


class TestCorrectComponent:
    def test_output_structure(self, rng):
        record = make_component(rng)
        corrected = correct_component(record, DEFAULT_BANDPASS)
        n = record.acceleration.shape[0]
        assert corrected.acceleration.shape == (n,)
        assert corrected.velocity.shape == (n,)
        assert corrected.displacement.shape == (n,)
        assert corrected.f_pass_low == DEFAULT_BANDPASS.f_pass_low

    def test_offset_removed(self, rng):
        record = make_component(rng)
        corrected = correct_component(record, DEFAULT_BANDPASS)
        assert abs(corrected.acceleration.mean()) < abs(record.acceleration.mean())

    def test_peaks_consistent_with_series(self, rng):
        corrected = correct_component(make_component(rng), DEFAULT_BANDPASS)
        assert abs(corrected.peaks.pga) == pytest.approx(
            np.abs(corrected.acceleration).max()
        )
        assert abs(corrected.peaks.pgv) == pytest.approx(np.abs(corrected.velocity).max())

    def test_narrower_band_reduces_energy(self, rng):
        record = make_component(rng)
        wide = correct_component(record, DEFAULT_BANDPASS)
        narrow = correct_component(
            record, BandPassSpec(0.5, 1.0, 3.0, 4.0)
        )
        assert np.sum(narrow.acceleration**2) < np.sum(wide.acceleration**2)

    def test_max_line_format(self, rng):
        corrected = correct_component(make_component(rng), DEFAULT_BANDPASS)
        line = max_line(corrected)
        tokens = line.split()
        assert tokens[0] == "ST01"
        assert tokens[1] == "l"
        assert len(tokens) == 8
        float(tokens[2])  # parses


class TestCorrectionTool:
    def prepare(self, tmp_path, rng, n_traces=2):
        write_filter_params(tmp_path / "filter.par", FilterParams(default=DEFAULT_BANDPASS))
        write_tool_config(tmp_path, params="filter.par")
        comps = ["l", "t"]
        for comp in comps[:n_traces]:
            record = make_component(rng, comp=comp)
            write_component_v1(tmp_path / f"ST01{comp}.v1", record)
        return comps[:n_traces]

    def test_processes_all_v1_files(self, tmp_path, rng):
        comps = self.prepare(tmp_path, rng)
        processed = correction_tool(tmp_path)
        assert processed == [f"ST01{c}" for c in sorted(comps)]
        for comp in comps:
            assert (tmp_path / f"ST01{comp}.v2").exists()
            assert (tmp_path / f"ST01{comp}.max").exists()

    def test_v2_content_valid(self, tmp_path, rng):
        self.prepare(tmp_path, rng, n_traces=1)
        correction_tool(tmp_path)
        record = read_v2(tmp_path / "ST01l.v2")
        assert record.header.station == "ST01"
        assert np.all(np.isfinite(record.displacement))

    def test_respects_params_override(self, tmp_path, rng):
        params = FilterParams(default=DEFAULT_BANDPASS)
        params.set_override("ST01", "l", BandPassSpec(0.5, 1.0, 3.0, 4.0))
        write_filter_params(tmp_path / "custom.par", params)
        write_component_v1(tmp_path / "ST01l.v1", make_component(rng))
        write_tool_config(tmp_path, params="custom.par")
        correction_tool(tmp_path)
        record = read_v2(tmp_path / "ST01l.v2")
        assert record.f_pass_low == pytest.approx(1.0)

    def test_missing_params_rejected(self, tmp_path, rng):
        write_component_v1(tmp_path / "ST01l.v1", make_component(rng))
        with pytest.raises(PipelineError):
            correction_tool(tmp_path)

    def test_empty_folder_is_noop(self, tmp_path):
        write_filter_params(tmp_path / "filter.par", FilterParams(default=DEFAULT_BANDPASS))
        write_tool_config(tmp_path, params="filter.par")
        assert correction_tool(tmp_path) == []

    def test_deterministic(self, tmp_path, rng):
        self.prepare(tmp_path, rng, n_traces=1)
        correction_tool(tmp_path)
        first = (tmp_path / "ST01l.v2").read_bytes()
        correction_tool(tmp_path)
        assert (tmp_path / "ST01l.v2").read_bytes() == first


class TestFourierTool:
    def prepare(self, tmp_path, rng):
        write_filter_params(tmp_path / "filter.par", FilterParams(default=DEFAULT_BANDPASS))
        write_tool_config(tmp_path, params="filter.par")
        write_component_v1(tmp_path / "ST01l.v1", make_component(rng))
        correction_tool(tmp_path)

    def test_produces_f_files(self, tmp_path, rng):
        self.prepare(tmp_path, rng)
        processed = fourier_tool(tmp_path)
        assert processed == ["ST01l"]
        record = read_fourier(tmp_path / "ST01l.f")
        assert np.all(np.diff(record.periods) > 0)
        assert np.all(record.velocity >= 0)

    def test_respects_max_period(self, tmp_path, rng):
        self.prepare(tmp_path, rng)
        write_tool_config(tmp_path, taper=0.05, maxperiod=5.0)
        fourier_tool(tmp_path)
        record = read_fourier(tmp_path / "ST01l.f")
        assert record.periods[-1] <= 5.0
