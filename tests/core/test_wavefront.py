"""Tests for the wavefront extension (paper §VIII future work)."""

import shutil

import pytest

from repro.core import SequentialOptimized, WavefrontParallel, implementation_by_name
from repro.core.context import ParallelSettings
from tests.conftest import hash_tree, make_context


@pytest.fixture(scope="module")
def wavefront_and_reference(tmp_path_factory, tiny_dataset_dir):
    runs = {}
    for impl_cls in (SequentialOptimized, WavefrontParallel):
        root = tmp_path_factory.mktemp(f"wf-{impl_cls.name}") / "ws"
        ctx = make_context(root, parallel=ParallelSettings(num_workers=3))
        for src in tiny_dataset_dir.glob("*.v1"):
            shutil.copy2(src, ctx.workspace.input_dir / src.name)
        result = impl_cls().run(ctx)
        runs[impl_cls.name] = (ctx, result)
    return runs


class TestWavefrontEquality:
    def test_byte_identical_to_sequential(self, wavefront_and_reference):
        ref_ctx, _ = wavefront_and_reference["seq-optimized"]
        wf_ctx, _ = wavefront_and_reference["wavefront-parallel"]
        ref = hash_tree(ref_ctx.workspace.work_dir)
        wf = hash_tree(wf_ctx.workspace.work_dir)
        assert set(ref) == set(wf)
        diffs = [k for k in ref if ref[k] != wf[k]]
        assert not diffs, diffs[:8]

    def test_no_private_params_left(self, wavefront_and_reference):
        wf_ctx, _ = wavefront_and_reference["wavefront-parallel"]
        assert not list(wf_ctx.workspace.work_dir.glob("_wf_*.par"))
        assert not list(wf_ctx.workspace.work_dir.glob("*.max1"))
        assert not list(wf_ctx.workspace.work_dir.glob("*.max2"))
        assert not wf_ctx.workspace.tmp_dir.exists()

    def test_phases_recorded(self, wavefront_and_reference):
        _, result = wavefront_and_reference["wavefront-parallel"]
        assert set(result.stage_durations) == {"prologue", "wavefront", "epilogue"}
        assert result.stage_durations["wavefront"] > 0

    def test_registered_by_name(self):
        assert implementation_by_name("wavefront-parallel") is WavefrontParallel


class TestWavefrontSimulation:
    def test_beats_full_parallel_in_model(self):
        from repro.bench.taskgraphs import simulate_implementation
        from repro.bench.workloads import paper_workloads

        workload = paper_workloads()[-1]
        full = simulate_implementation("full-parallel", workload).makespan_s
        wavefront = simulate_implementation("wavefront-parallel", workload).makespan_s
        assert wavefront < full

    def test_speedup_band_in_model(self):
        from repro.bench.taskgraphs import simulate_implementation
        from repro.bench.workloads import paper_workloads

        workload = paper_workloads()[-1]
        seq = simulate_implementation("seq-original", workload).makespan_s
        wavefront = simulate_implementation("wavefront-parallel", workload).makespan_s
        # Removing the stage barriers roughly doubles the paper's 2.88x.
        assert 4.0 < seq / wavefront < 7.0

    def test_graph_structure(self):
        from repro.bench.taskgraphs import build_sim_tasks
        from repro.bench.workloads import EventWorkload

        workload = EventWorkload("W", "w", (10_000, 12_000))
        tasks = build_sim_tasks("wavefront-parallel", workload)
        names = {t.name for t in tasks}
        # Per-station chains with three concurrent response traces.
        assert "wf.0.p3" in names and "wf.1.p3" in names
        assert {"wf.0.p16.0", "wf.0.p16.1", "wf.0.p16.2"} <= names
        # Exactly one driver charge (the epilogue).
        assert sum(1 for t in tasks if t.stage == "driver") == 1
