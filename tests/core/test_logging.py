"""Tests for the pipeline's logging instrumentation."""

import logging

import pytest

from repro.core import SequentialOptimized
from repro.core.incremental import IncrementalRunner
from repro.errors import PipelineError
from tests.conftest import make_context


class TestRunLogging:
    def test_start_and_finish_logged(self, workspace_with_input, caplog):
        with caplog.at_level(logging.INFO, logger="repro.core"):
            SequentialOptimized().run(workspace_with_input)
        messages = [r.message for r in caplog.records if r.name == "repro.core"]
        assert any("starting run" in m for m in messages)
        assert any("finished in" in m for m in messages)

    def test_per_process_debug_logging(self, workspace_with_input, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.core"):
            SequentialOptimized().run(workspace_with_input)
        messages = [r.message for r in caplog.records]
        assert any(m.startswith("P16 ") for m in messages)

    def test_failure_logged_with_traceback(self, tmp_path, caplog):
        ctx = make_context(tmp_path / "empty")
        (ctx.workspace.input_dir / "BAD.v1").write_text("garbage\n")
        with caplog.at_level(logging.ERROR, logger="repro.core"):
            with pytest.raises(Exception):
                SequentialOptimized().run(ctx)
        assert any("run failed" in r.message for r in caplog.records)

    def test_incremental_skip_logging(self, workspace_with_input, caplog):
        IncrementalRunner().run(workspace_with_input)
        with caplog.at_level(logging.DEBUG, logger="repro.core"):
            IncrementalRunner().run(workspace_with_input)
        messages = [r.message for r in caplog.records]
        assert any("up to date, skipped" in m for m in messages)
        assert any("restored from the output cache" in m for m in messages)
