"""Tests for workspace verification and the batch/bulletin subsystem."""

import pytest

from repro.core import FullyParallel, SequentialOptimized, Workspace
from repro.core.batch import BatchRunner, Bulletin, summarize_event_run
from repro.core.context import ParallelSettings
from repro.core.verify import (
    VerificationReport,
    compare_workspaces,
    verify_inventory,
    workspace_digests,
)
from repro.errors import PipelineError
from repro.synth.events import EventSpec
from tests.conftest import TINY_EVENT, tiny_response_config


class TestVerifyInventory:
    def test_completed_run_verifies(self, completed_run):
        report = verify_inventory(completed_run.workspace)
        assert report.ok, report.render()
        assert report.checked > 0

    def test_missing_artifact_detected(self, completed_run, tmp_path):
        import shutil

        clone = tmp_path / "clone"
        shutil.copytree(completed_run.workspace.root, clone)
        ws = Workspace(clone)
        victim = ws.work_dir / "ST01l.r"
        if not victim.exists():
            victim = next(ws.work_dir.glob("*.r"))
        victim.unlink()
        report = verify_inventory(ws)
        assert not report.ok
        assert any(name.endswith(".r") for name in report.missing)

    def test_unexpected_artifact_detected(self, completed_run, tmp_path):
        import shutil

        clone = tmp_path / "clone"
        shutil.copytree(completed_run.workspace.root, clone)
        ws = Workspace(clone)
        (ws.work_dir / "stray.tmp").write_text("x")
        report = verify_inventory(ws)
        assert not report.ok
        assert "stray.tmp" in report.unexpected

    def test_render_shapes(self):
        ok = VerificationReport(ok=True, checked=10)
        assert "OK" in ok.render()
        bad = VerificationReport(ok=False, missing=["a"], differing=["b"], checked=2)
        text = bad.render()
        assert "missing" in text and "differing" in text

    def test_empty_workspace_rejected(self, tmp_path):
        ws = Workspace(tmp_path / "empty").create()
        with pytest.raises(PipelineError):
            verify_inventory(ws)


class TestCompareWorkspaces:
    def test_identical_runs_compare_equal(self, completed_run, tmp_path):
        import shutil

        clone = tmp_path / "clone"
        shutil.copytree(completed_run.workspace.root, clone)
        report = compare_workspaces(completed_run.workspace, Workspace(clone))
        assert report.ok

    def test_difference_detected(self, completed_run, tmp_path):
        import shutil

        clone = tmp_path / "clone"
        shutil.copytree(completed_run.workspace.root, clone)
        ws = Workspace(clone)
        victim = next(ws.work_dir.glob("*.v2"))
        victim.write_text(victim.read_text().replace("E+", "E-", 1))
        report = compare_workspaces(completed_run.workspace, ws)
        assert not report.ok
        assert victim.name in report.differing

    def test_digests_stable(self, completed_run):
        a = workspace_digests(completed_run.workspace)
        b = workspace_digests(completed_run.workspace)
        assert a == b


class TestBatchRunner:
    @pytest.fixture(scope="class")
    def bulletin(self, tmp_path_factory) -> Bulletin:
        events = [
            EventSpec("EV-B1", "2024-01-05", 4.8, 1, 8_000, seed=101),
            EventSpec("EV-B2", "2024-01-19", 5.6, 2, 16_000, seed=102),
        ]
        runner = BatchRunner(
            implementation=FullyParallel(),
            root=tmp_path_factory.mktemp("batch"),
            scale=0.2,
            response_config=tiny_response_config(),
            parallel=ParallelSettings(num_workers=2),
        )
        return runner.run(events, title="January 2024 bulletin")

    def test_one_row_per_event(self, bulletin):
        assert [e.event_id for e in bulletin.events] == ["EV-B1", "EV-B2"]

    def test_rows_carry_physics(self, bulletin):
        for ev in bulletin.events:
            assert ev.max_pga_gal > 0
            assert ev.max_sa02_gal > 0
            assert ev.max_arias_cm_s > 0
            assert ev.max_significant_duration_s > 0
            assert ev.processing_time_s > 0
            assert ev.implementation == "full-parallel"

    def test_bigger_event_shakes_harder(self, bulletin):
        by_id = {e.event_id: e for e in bulletin.events}
        assert by_id["EV-B2"].max_pga_gal != by_id["EV-B1"].max_pga_gal

    def test_render_and_write(self, bulletin, tmp_path):
        text = bulletin.render()
        assert "January 2024 bulletin" in text
        assert "EV-B1" in text and "EV-B2" in text
        assert "data points/s" in text
        out = tmp_path / "bulletin.txt"
        bulletin.write(out)
        assert out.read_text().startswith("January 2024 bulletin")

    def test_empty_catalog_rejected(self, tmp_path):
        runner = BatchRunner(implementation=SequentialOptimized(), root=tmp_path)
        with pytest.raises(PipelineError):
            runner.run([])

    def test_summarize_requires_finished_run(self, tmp_path):
        from repro.core import RunContext
        from repro.core.runner import PipelineResult
        from repro.errors import MissingArtifactError

        ctx = RunContext.for_directory(tmp_path / "unrun")
        (ctx.workspace.input_dir / "ST01.v1").write_text("stub")
        with pytest.raises(MissingArtifactError):
            summarize_event_run(
                ctx, TINY_EVENT, PipelineResult(implementation="x", total_s=1.0)
            )
