"""Tests for the process registry and stage definitions."""

import pytest

from repro.core.registry import (
    OPTIMIZED_ORDER,
    ORIGINAL_ORDER,
    PROCESSES,
    REDUNDANT_PROCESSES,
)
from repro.core.stages import (
    FULL_PARALLEL_STAGES,
    LOOP,
    PARTIAL_PARALLEL_STAGES,
    SEQ,
    STAGES,
    TASKS,
    TEMP_FOLDERS,
    stage_of_process,
)


class TestRegistry:
    def test_twenty_processes(self):
        assert sorted(PROCESSES) == list(range(20))

    def test_orders(self):
        assert ORIGINAL_ORDER == tuple(range(20))
        assert len(OPTIMIZED_ORDER) == 17
        assert REDUNDANT_PROCESSES == (6, 12, 14)
        assert not set(OPTIMIZED_ORDER) & set(REDUNDANT_PROCESSES)

    def test_labels(self):
        assert PROCESSES[16].label == "P16"

    def test_languages_match_paper(self):
        # §V.1: processes 0, 1, 10, 19 are exclusively C++.
        cpp = {pid for pid, spec in PROCESSES.items() if spec.lang == "cpp"}
        assert {0, 1, 10, 19} <= cpp

    def test_every_process_runnable(self):
        for spec in PROCESSES.values():
            assert callable(spec.run)

    def test_cost_tags(self):
        assert PROCESSES[16].cost == "heavy_flops"
        assert PROCESSES[9].cost == "plotting"
        assert PROCESSES[11].cost == "light"

    def test_declared_writes_unique_per_version(self):
        seen = set()
        for spec in PROCESSES.values():
            for ref in spec.writes:
                key = (ref.identity, ref.version)
                assert key not in seen, key
                seen.add(key)


class TestStages:
    def test_eleven_stages_in_order(self):
        names = [stage.name for stage in STAGES]
        assert names == ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI"]

    def test_membership_matches_paper(self):
        by_name = {s.name: s.processes for s in STAGES}
        assert by_name["I"] == (0, 1)
        assert by_name["II"] == (2, 5, 8, 17)
        assert by_name["IX"] == (16,)
        assert by_name["XI"] == (9, 15, 18)

    def test_partial_parallel_count(self):
        # Paper: 5 of 11 stages parallel in the partial implementation.
        assert len(PARTIAL_PARALLEL_STAGES) == 5

    def test_full_parallel_count(self):
        # Paper: all stages except VII (10 of 11).
        assert len(FULL_PARALLEL_STAGES) == 10
        assert "VII" not in FULL_PARALLEL_STAGES

    def test_strategies_match_paper(self):
        by_name = {s.name: s for s in STAGES}
        assert by_name["I"].full_strategy == TASKS
        assert by_name["III"].partial_strategy == SEQ
        assert by_name["III"].full_strategy == LOOP
        assert by_name["IV"].full_strategy == TEMP_FOLDERS
        assert by_name["V"].full_strategy == TEMP_FOLDERS
        assert by_name["VIII"].full_strategy == TEMP_FOLDERS
        assert by_name["VI"].partial_strategy == LOOP
        assert by_name["VII"].full_strategy == SEQ
        assert by_name["X"].partial_strategy == LOOP

    def test_stage_lookup(self):
        assert stage_of_process(16).name == "IX"
        with pytest.raises(KeyError):
            stage_of_process(6)  # removed process has no stage
