"""Regression tests for merge_max_files and _resolve_reads edge cases."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.dependencies import build_process_graph
from repro.core.processes.common import merge_max_files
from repro.errors import DependencyError


class TestMergeMaxFiles:
    def test_no_parts_writes_nothing(self, tmp_path: Path):
        merge_max_files(tmp_path, "maxvals.dat")
        assert not (tmp_path / "maxvals.dat").exists()

    def test_parts_merge_sorted_with_trailing_newline(self, tmp_path: Path):
        (tmp_path / "Bt.max").write_text("b-line\n")
        (tmp_path / "Al.max").write_text("a-line")
        merge_max_files(tmp_path, "maxvals.dat")
        assert (tmp_path / "maxvals.dat").read_text() == "a-line\nb-line\n"
        assert list(tmp_path.glob("*.max")) == []

    def test_merge_is_idempotent_on_result(self, tmp_path: Path):
        (tmp_path / "Al.max").write_text("x")
        merge_max_files(tmp_path, "maxvals.dat")
        before = (tmp_path / "maxvals.dat").read_text()
        # A second merge with no parts must not clobber the result.
        merge_max_files(tmp_path, "maxvals.dat")
        assert (tmp_path / "maxvals.dat").read_text() == before


class TestResolveReads:
    def test_unproducible_version_raises(self):
        # P6 reads acc_meta#1 but this subset only writes acc_meta#2:
        # the read can be neither satisfied nor treated as external.
        with pytest.raises(DependencyError, match="acc_meta"):
            build_process_graph([14, 6])

    def test_external_inputs_still_resolve(self):
        # A subset that never writes an identity reads it externally.
        graph = build_process_graph([16])
        assert set(graph.nodes) == {16}
