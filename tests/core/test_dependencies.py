"""Tests for the dependency analysis — the paper's §IV/§V groundwork."""

import pytest

from repro.core.dependencies import (
    build_process_graph,
    critical_path,
    parallelizable_sets,
    validate_sequential_order,
    validate_stage_plan,
)
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER, REDUNDANT_PROCESSES
from repro.core.stages import STAGES, stage_plan
from repro.errors import DependencyError, StageOrderError


class TestGraphConstruction:
    def test_original_graph_is_dag(self):
        graph = build_process_graph(ORIGINAL_ORDER)
        assert graph.number_of_nodes() == 20

    def test_optimized_graph_is_dag(self):
        graph = build_process_graph(OPTIMIZED_ORDER)
        assert graph.number_of_nodes() == 17

    def test_raw_edges_exist(self):
        graph = build_process_graph(OPTIMIZED_ORDER)
        # P16 reads the V2 files P13 writes.
        assert graph.has_edge(13, 16)
        # P10 reads the F files P7 writes.
        assert graph.has_edge(7, 10)

    def test_war_edge_protects_overwrite(self):
        # P7 reads the first-generation V2 records; P13 overwrites
        # them, so P7 must complete first (anti-dependency).
        graph = build_process_graph(OPTIMIZED_ORDER)
        assert graph.has_edge(7, 13)
        kinds = {graph.edges[e]["kind"] for e in graph.edges if e == (7, 13)}
        assert "war" in kinds or graph.edges[7, 13]["kind"] == "war"

    def test_waw_edge_orders_versions(self):
        graph = build_process_graph(ORIGINAL_ORDER)
        # P4 then P13 write the V2 generations.
        assert graph.has_edge(4, 13)
        # P6 then P15 write the accelerograph plots.
        assert graph.has_edge(6, 15)

    def test_unknown_pid_rejected(self):
        with pytest.raises(DependencyError):
            build_process_graph([0, 1, 99])

    def test_duplicate_pid_rejected(self):
        with pytest.raises(DependencyError):
            build_process_graph([0, 0, 1])


class TestOrderValidation:
    def test_original_numeric_order_is_valid(self):
        validate_sequential_order(ORIGINAL_ORDER)

    def test_optimized_order_is_valid(self):
        validate_sequential_order(OPTIMIZED_ORDER)

    def test_reversed_order_rejected(self):
        with pytest.raises(StageOrderError):
            validate_sequential_order(tuple(reversed(ORIGINAL_ORDER)))

    def test_swapping_dependent_pair_rejected(self):
        order = list(OPTIMIZED_ORDER)
        i16, i13 = order.index(16), order.index(13)
        order[i16], order[i13] = order[i13], order[i16]
        with pytest.raises(StageOrderError):
            validate_sequential_order(order)


class TestStagePlanValidation:
    def test_paper_stage_plan_is_valid(self):
        validate_stage_plan(stage_plan())

    def test_plan_covers_optimized_processes(self):
        members = [pid for stage in STAGES for pid in stage.processes]
        assert sorted(members) == sorted(OPTIMIZED_ORDER)
        assert not set(members) & set(REDUNDANT_PROCESSES)

    def test_dependent_processes_in_one_stage_rejected(self):
        bad = [("A", (0, 1, 2)), ("B", (3, 4, 5, 7, 8, 17)), ("C", (10, 11, 13)),
               ("D", (16, 19, 9, 15, 18))]
        with pytest.raises(StageOrderError):
            validate_stage_plan(bad)

    def test_backwards_stage_rejected(self):
        plan = stage_plan()
        plan[2], plan[8] = plan[8], plan[2]  # stage IX before its inputs
        with pytest.raises(StageOrderError):
            validate_stage_plan(plan)

    def test_duplicate_membership_rejected(self):
        plan = stage_plan()
        plan.append(("DUP", (16,)))
        with pytest.raises(StageOrderError):
            validate_stage_plan(plan)


class TestDiscovery:
    def test_antichain_layers_partition(self):
        layers = parallelizable_sets(OPTIMIZED_ORDER)
        flat = [pid for layer in layers for pid in layer]
        assert sorted(flat) == sorted(OPTIMIZED_ORDER)

    def test_independent_processes_share_a_layer(self):
        layers = parallelizable_sets(OPTIMIZED_ORDER)
        first = layers[0]
        # The no-input processes are all immediately available.
        assert 0 in first and 2 in first and 11 in first

    def test_layers_respect_dependencies(self):
        layers = parallelizable_sets(OPTIMIZED_ORDER)
        level = {pid: i for i, layer in enumerate(layers) for pid in layer}
        graph = build_process_graph(OPTIMIZED_ORDER)
        for a, b in graph.edges:
            assert level[a] < level[b]

    def test_critical_path(self):
        weights = {pid: 1.0 for pid in OPTIMIZED_ORDER}
        path, cost = critical_path(OPTIMIZED_ORDER, weights)
        assert cost == len(path)
        graph = build_process_graph(OPTIMIZED_ORDER)
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b)

    def test_critical_path_requires_weights(self):
        with pytest.raises(DependencyError):
            critical_path(OPTIMIZED_ORDER, {0: 1.0})
