"""Tests for the temp-folder staging engine (stages IV/V/VIII)."""

import pytest

from repro.core.processes.p01_gather import run_p01
from repro.core.processes.p02_params import run_p02
from repro.core.processes.p03_separate import run_p03, stations_from_list
from repro.core.staged import correction_instance, fourier_instance
from repro.core.tempfolders import StagedInstance, run_staged_instance
from repro.errors import MissingArtifactError, PipelineError


@pytest.fixture()
def prepared(workspace_with_input):
    """A workspace advanced to the point where stage IV can run."""
    ctx = workspace_with_input
    run_p01(ctx)
    run_p02(ctx)
    run_p03(ctx)
    return ctx


class TestStagedInstance:
    def test_folder_name(self):
        inst = StagedInstance("IV", 3, "correction", (), ())
        assert inst.folder_name == "iv_0003"

    def test_correction_instance_layout(self):
        inst = correction_instance("IV", 0, "ST01", "filter.par")
        assert "filter.par" in inst.inputs
        assert "ST01l.v1" in inst.inputs
        assert "ST01t.v2" in inst.outputs
        assert "ST01v.max" in inst.outputs
        assert dict(inst.config)["params"] == "filter.par"


class TestRunStagedInstance:
    def test_correction_roundtrip(self, prepared):
        ctx = prepared
        station = stations_from_list(ctx.workspace)[0]
        inst = correction_instance("IV", 0, station, "filter.par")
        run_staged_instance(str(ctx.workspace.root), inst)
        for comp in "ltv":
            assert ctx.workspace.component_v2(station, comp).exists()
            assert (ctx.workspace.work_dir / f"{station}{comp}.max").exists()

    def test_folder_cleaned_up(self, prepared):
        ctx = prepared
        station = stations_from_list(ctx.workspace)[0]
        inst = correction_instance("IV", 0, station, "filter.par")
        run_staged_instance(str(ctx.workspace.root), inst)
        assert not (ctx.workspace.tmp_dir / inst.folder_name).exists()

    def test_matches_in_place_tool_output(self, prepared, tmp_path):
        # Staged execution must produce byte-identical results to
        # running the tool directly in the work directory.
        import shutil

        ctx = prepared
        station = stations_from_list(ctx.workspace)[0]

        # In-place reference in a scratch copy.
        ref = tmp_path / "ref"
        shutil.copytree(ctx.workspace.root, ref)
        from repro.core.tools import TOOL_CONFIG, correction_tool, write_tool_config

        ref_work = ref / "work"
        write_tool_config(ref_work, params="filter.par")
        correction_tool(ref_work)

        inst = correction_instance("IV", 0, station, "filter.par")
        run_staged_instance(str(ctx.workspace.root), inst)
        for comp in "ltv":
            ours = ctx.workspace.component_v2(station, comp).read_bytes()
            theirs = (ref_work / f"{station}{comp}.v2").read_bytes()
            assert ours == theirs

    def test_fourier_instance(self, prepared):
        ctx = prepared
        station = stations_from_list(ctx.workspace)[0]
        run_staged_instance(
            str(ctx.workspace.root), correction_instance("IV", 0, station, "filter.par")
        )
        inst = fourier_instance("V", 0, station, ctx)
        run_staged_instance(str(ctx.workspace.root), inst)
        for comp in "ltv":
            assert ctx.workspace.component_f(station, comp).exists()

    def test_missing_input_raises_and_cleans(self, prepared):
        ctx = prepared
        inst = StagedInstance(
            stage="IV",
            index=9,
            tool="correction",
            inputs=("does-not-exist.v1",),
            outputs=(),
        )
        with pytest.raises(MissingArtifactError):
            run_staged_instance(str(ctx.workspace.root), inst)
        assert not (ctx.workspace.tmp_dir / inst.folder_name).exists()

    def test_unknown_tool_rejected(self, prepared):
        inst = StagedInstance("IV", 0, "mystery", (), ())
        with pytest.raises(PipelineError):
            run_staged_instance(str(prepared.workspace.root), inst)

    def test_missing_output_detected(self, prepared):
        ctx = prepared
        station = stations_from_list(ctx.workspace)[0]
        inst = StagedInstance(
            stage="IV",
            index=1,
            tool="correction",
            inputs=("filter.par", f"{station}l.v1"),
            outputs=("never-produced.v2",),
            config=(("params", "filter.par"),),
        )
        with pytest.raises(PipelineError, match="did not produce"):
            run_staged_instance(str(ctx.workspace.root), inst)
