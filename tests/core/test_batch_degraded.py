"""Degraded-mode bulletins from the batch layer.

One faulty event among healthy ones must not take the bulletin down:
healthy events render exactly as always, the degraded event's row
covers its survivors, and the appended degraded-mode section carries
backend-invariant failure lines — identical across the implementation
x backend matrix (mirroring tests/observability/test_metrics_matrix.py).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import implementation_by_name
from repro.core.batch import BatchRunner, Bulletin, EventSummary
from repro.core.context import ParallelSettings
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy
from repro.synth.events import EventSpec

from tests.conftest import tiny_response_config

IMPLEMENTATIONS = (
    "seq-original", "seq-optimized", "partial-parallel", "full-parallel",
)

OK_EVENT = EventSpec("EV-OK", "2023-05-01", 5.0, 2, 16_000, seed=21)
BAD_EVENT = EventSpec("EV-BAD", "2023-05-02", 5.4, 2, 16_000, seed=22)

QUARANTINE_PLAN = FaultPlan(
    seed=9,
    faults=(FaultSpec(kind="truncate-v1", target="ST01l.v1"),),
    policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
)

FATAL_PLAN = FaultPlan(
    seed=9,
    faults=(FaultSpec(kind="drop-config", target="P4"),),
    policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
)


def run_batch(root: Path, impl_name: str, backend: str, plans: dict) -> Bulletin:
    runner = BatchRunner(
        implementation=implementation_by_name(impl_name)(),
        root=root,
        response_config=tiny_response_config(),
        parallel=ParallelSettings.uniform(backend, num_workers=2),
        resilience_plans=plans,
    )
    return runner.run([OK_EVENT, BAD_EVENT], title="Degraded-mode test bulletin")


class TestDegradedBulletinMatrix:
    @pytest.mark.parametrize("impl_name", IMPLEMENTATIONS)
    @pytest.mark.parametrize(
        "backend",
        ["thread", pytest.param("process", marks=pytest.mark.slow)],
    )
    def test_one_faulty_event_degrades_gracefully(
        self, tmp_path: Path, impl_name: str, backend: str
    ) -> None:
        bulletin = run_batch(
            tmp_path, impl_name, backend, {"EV-BAD": QUARANTINE_PLAN}
        )
        ok, bad = bulletin.events
        assert ok.event_id == "EV-OK"
        assert ok.status == "ok"
        assert ok.quarantined == ()
        assert ok.n_stations == 2
        assert bad.event_id == "EV-BAD"
        assert bad.status == "degraded"
        assert bad.n_stations == 1  # survivors only
        assert len(bad.quarantined) == 1
        assert bad.quarantined[0].startswith("ST01")
        text = bulletin.render()
        assert "degraded events" in text
        assert "EV-BAD" in text
        assert "1 record quarantined" in text

    def test_degraded_text_converges_across_matrix(self, tmp_path: Path) -> None:
        texts = {
            impl_name: run_batch(
                tmp_path / impl_name, impl_name, "thread", {"EV-BAD": QUARANTINE_PLAN}
            ).degraded_text()
            for impl_name in IMPLEMENTATIONS
        }
        assert len(set(texts.values())) == 1, texts


class TestFailedEvent:
    def test_fatal_fault_downgrades_only_that_event(self, tmp_path: Path) -> None:
        bulletin = run_batch(tmp_path, "seq-optimized", "thread", {"EV-BAD": FATAL_PLAN})
        ok, bad = bulletin.events
        assert ok.status == "ok"
        assert bad.status == "failed"
        assert bad.failure == "MissingArtifactError"
        text = bulletin.render()
        # The failed event stays out of the published table and totals.
        assert "failed: MissingArtifactError" in text
        assert "1 events" in text

    def test_clean_event_failure_still_aborts_the_batch(self, tmp_path: Path) -> None:
        # Events without a plan keep all-or-nothing semantics: soft-fail
        # is a privilege of fault-injected events only.
        from repro.errors import PipelineError

        class Exploding:
            name = "exploding"

            def run(self, ctx):
                raise PipelineError("genuine pipeline bug")

        runner = BatchRunner(
            implementation=Exploding(),  # type: ignore[arg-type]
            root=tmp_path,
            response_config=tiny_response_config(),
        )
        with pytest.raises(PipelineError):
            runner.run([OK_EVENT])


class TestHealthyRenderUnchanged:
    def test_all_ok_bulletin_has_no_degraded_section(self, tmp_path: Path) -> None:
        bulletin = run_batch(tmp_path, "seq-optimized", "thread", {})
        assert bulletin.degraded_lines() == []
        assert "degraded" not in bulletin.render()

    def test_legacy_rows_default_to_ok(self) -> None:
        # Pre-resilience EventSummary construction (no status fields)
        # must keep rendering identically.
        row = EventSummary(
            event_id="EV-X", date="2023-01-01", magnitude=5.0, n_stations=2,
            total_points=100, max_pga_gal=1.0, max_pga_station="ST01",
            max_sa02_gal=1.0, max_sa10_gal=1.0, max_arias_cm_s=0.1,
            max_significant_duration_s=3.0, processing_time_s=0.5,
            implementation="seq-original",
        )
        assert row.status == "ok"
        bulletin = Bulletin(title="t", events=[row])
        assert "degraded" not in bulletin.render()
