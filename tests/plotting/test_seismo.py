"""Unit tests for the seismological plot layouts."""

import numpy as np
import pytest

from repro.dsp.peak import PeakValues
from repro.formats.common import COMPONENTS, Header
from repro.formats.fourier import FourierRecord
from repro.formats.response import ResponseRecord
from repro.formats.v2 import CorrectedRecord
from repro.plotting.seismo import (
    plot_accelerograph,
    plot_fourier_spectrum,
    plot_response_spectrum,
)


def header(comp):
    return Header(station="ST01", component=comp, dt=0.01, npts=0, magnitude=5.0)


@pytest.fixture()
def v2_records(rng):
    out = {}
    for comp in COMPONENTS:
        n = 500
        out[comp] = CorrectedRecord(
            header=header(comp),
            acceleration=rng.normal(size=n),
            velocity=rng.normal(size=n),
            displacement=rng.normal(size=n),
            peaks=PeakValues(1, 0.1, 2, 0.2, 3, 0.3),
            f_stop_low=0.05,
            f_pass_low=0.1,
            f_pass_high=25.0,
            f_stop_high=30.0,
        )
    return out


@pytest.fixture()
def f_records(rng):
    out = {}
    periods = np.geomspace(0.02, 20, 60)
    for comp in COMPONENTS:
        out[comp] = FourierRecord(
            header=header(comp),
            periods=periods,
            acceleration=np.abs(rng.normal(size=60)) + 0.01,
            velocity=np.abs(rng.normal(size=60)) + 0.01,
            displacement=np.abs(rng.normal(size=60)) + 0.01,
        )
    return out


@pytest.fixture()
def r_records(rng):
    out = {}
    periods = np.geomspace(0.02, 20, 30)
    dampings = np.array([0.02, 0.05, 0.1])
    for comp in COMPONENTS:
        out[comp] = ResponseRecord(
            header=header(comp),
            periods=periods,
            dampings=dampings,
            sa=np.abs(rng.normal(size=(3, 30))) + 0.01,
            sv=np.abs(rng.normal(size=(3, 30))) + 0.01,
            sd=np.abs(rng.normal(size=(3, 30))) + 0.01,
        )
    return out


class TestPlots:
    def test_accelerograph_plot(self, tmp_path, v2_records):
        path = tmp_path / "ST01.ps"
        plot_accelerograph(path, v2_records)
        doc = path.read_text()
        assert doc.startswith("%!PS")
        assert "(ST01 acceleration)" in doc
        assert "(ST01 velocity)" in doc
        assert "(ST01 displacement)" in doc

    def test_fourier_plot(self, tmp_path, f_records):
        path = tmp_path / "ST01f.ps"
        plot_fourier_spectrum(path, f_records)
        doc = path.read_text()
        assert "(ST01 component l)" in doc
        assert "(acc)" in doc and "(vel)" in doc and "(disp)" in doc

    def test_response_plot_selects_damping(self, tmp_path, r_records):
        path = tmp_path / "ST01r.ps"
        plot_response_spectrum(path, r_records, damping=0.05)
        doc = path.read_text()
        assert "5% damping" in doc
        assert "(SA)" in doc and "(SV)" in doc and "(SD)" in doc

    def test_response_plot_nearest_damping(self, tmp_path, r_records):
        path = tmp_path / "x.ps"
        plot_response_spectrum(path, r_records, damping=0.04)
        assert "5% damping" in path.read_text()

    def test_plots_are_deterministic(self, tmp_path, v2_records):
        p1, p2 = tmp_path / "a.ps", tmp_path / "b.ps"
        plot_accelerograph(p1, v2_records)
        plot_accelerograph(p2, v2_records)
        assert p1.read_bytes() == p2.read_bytes()

    def test_long_record_is_decimated(self, tmp_path, rng):
        n = 60_000
        records = {
            "l": CorrectedRecord(
                header=header("l"),
                acceleration=rng.normal(size=n),
                velocity=rng.normal(size=n),
                displacement=rng.normal(size=n),
                peaks=PeakValues(1, 0.1, 2, 0.2, 3, 0.3),
                f_stop_low=0.05,
                f_pass_low=0.1,
                f_pass_high=25.0,
                f_stop_high=30.0,
            )
        }
        path = tmp_path / "big.ps"
        plot_accelerograph(path, records)
        # Decimation keeps the document bounded.
        assert path.stat().st_size < 2_000_000
