"""Tests for bar charts, Gantt rendering and the figure renderers."""

import pytest

from repro.bench.render import (
    render_figure11_ps,
    render_figure12_ps,
    render_figure13_ps,
    render_schedule_ps,
)
from repro.errors import ReproError
from repro.parallel.simulate import SimTask, SimulatedMachine, simulate_task_graph
from repro.plotting.bars import BarChart, BarSeries
from repro.plotting.gantt import plot_schedule_gantt
from repro.plotting.ps import PostScriptCanvas


class TestBarChart:
    def make(self):
        chart = BarChart(
            title="demo",
            categories=["A", "B", "C"],
            y_label="seconds",
        )
        chart.add(BarSeries("first", [1.0, 2.0, 3.0], gray=0.3))
        chart.add(BarSeries("second", [0.5, 1.5, 2.5], gray=0.7))
        return chart

    def draw(self, chart):
        canvas = PostScriptCanvas()
        chart.draw(canvas, x0=60, y0=60, width=400, height=300)
        return canvas.render()

    def test_draws_bars_and_legend(self):
        doc = self.draw(self.make())
        assert "closepath fill" in doc
        assert "(first)" in doc and "(second)" in doc
        assert "(A)" in doc and "(C)" in doc

    def test_length_mismatch_rejected(self):
        chart = BarChart(categories=["A", "B"])
        with pytest.raises(ReproError):
            chart.add(BarSeries("bad", [1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            self.draw(BarChart(categories=["A"]))

    def test_zero_values_allowed(self):
        chart = BarChart(categories=["A", "B"])
        chart.add(BarSeries("zeros", [0.0, 0.0]))
        doc = self.draw(chart)
        assert "nan" not in doc

    def test_deterministic(self):
        assert self.draw(self.make()) == self.draw(self.make())


class TestGantt:
    def make_result(self):
        machine = SimulatedMachine(speeds=(1.0, 1.0), io_capacity=10.0, mem_capacity=10.0)
        tasks = [
            SimTask("a", 2.0, stage="S1"),
            SimTask("b", 3.0, stage="S1"),
            SimTask("c", 1.0, deps=("a", "b"), stage="S2"),
        ]
        return simulate_task_graph(tasks, machine)

    def test_renders_rows_and_legend(self, tmp_path):
        path = tmp_path / "gantt.ps"
        plot_schedule_gantt(path, self.make_result(), title="test schedule")
        doc = path.read_text()
        assert doc.startswith("%!PS")
        assert "(LP0)" in doc and "(LP1)" in doc
        assert "(S1)" in doc and "(S2)" in doc
        assert "(test schedule)" in doc

    def test_empty_schedule_rejected(self, tmp_path):
        from repro.parallel.simulate import SimulationResult

        with pytest.raises(ReproError):
            plot_schedule_gantt(tmp_path / "x.ps", SimulationResult(makespan_s=0.0))


class TestFigureRenderers:
    def test_figure11(self, tmp_path):
        path = tmp_path / "f11.ps"
        render_figure11_ps(path)
        doc = path.read_text()
        assert "(IX)" in doc
        assert "(Sequential Original)" in doc

    def test_figure12(self, tmp_path):
        path = tmp_path / "f12.ps"
        render_figure12_ps(path)
        assert "(Fully Parallelized)" in path.read_text()

    def test_figure13(self, tmp_path):
        path = tmp_path / "f13.ps"
        render_figure13_ps(path)
        doc = path.read_text()
        assert "(Overall speedup vs problem size)" in doc
        assert "(parallel)" in doc and "(sequential)" in doc

    def test_schedule_renders_all_implementations(self, tmp_path):
        for impl in ("full-parallel", "partial-parallel", "wavefront-parallel"):
            path = tmp_path / f"{impl}.ps"
            render_schedule_ps(path, implementation=impl, event_index=0)
            assert path.read_text().startswith("%!PS")
