"""Unit tests for the PostScript writer."""

import pytest

from repro.errors import ReproError
from repro.plotting.ps import PAGE_HEIGHT, PAGE_WIDTH, PostScriptCanvas


class TestCanvas:
    def test_valid_document_structure(self):
        canvas = PostScriptCanvas(title="test plot")
        canvas.line(10, 10, 100, 100)
        doc = canvas.render()
        assert doc.startswith("%!PS-Adobe-3.0\n")
        assert "%%Title: test plot" in doc
        assert doc.rstrip().endswith("%%EOF")
        assert "showpage" in doc
        assert f"%%BoundingBox: 0 0 {int(PAGE_WIDTH)} {int(PAGE_HEIGHT)}" in doc

    def test_polyline_commands(self):
        canvas = PostScriptCanvas()
        canvas.polyline([(0, 0), (10, 20), (30, 40)])
        doc = canvas.render()
        assert "0.00 0.00 moveto" in doc
        assert "10.00 20.00 lineto" in doc
        assert "30.00 40.00 lineto" in doc
        assert "stroke" in doc

    def test_single_point_polyline_is_noop(self):
        canvas = PostScriptCanvas()
        canvas.polyline([(1, 1)])
        assert "moveto" not in canvas.render()

    def test_text_escaping(self):
        canvas = PostScriptCanvas()
        canvas.text(10, 10, "a(b)c\\d")
        doc = canvas.render()
        assert r"(a\(b\)c\\d)" in doc

    def test_text_alignment_variants(self):
        canvas = PostScriptCanvas()
        canvas.text(5, 5, "L", align="left")
        canvas.text(5, 5, "C", align="center")
        canvas.text(5, 5, "R", align="right")
        doc = canvas.render()
        assert doc.count("show") >= 3

    def test_bad_alignment_rejected(self):
        canvas = PostScriptCanvas()
        with pytest.raises(ReproError):
            canvas.text(0, 0, "x", align="diagonal")

    def test_rect_fill_and_stroke(self):
        canvas = PostScriptCanvas()
        canvas.rect(0, 0, 10, 10)
        canvas.rect(0, 0, 10, 10, fill=True)
        doc = canvas.render()
        assert "closepath stroke" in doc
        assert "closepath fill" in doc

    def test_color_and_dash_commands(self):
        canvas = PostScriptCanvas()
        canvas.set_gray(0.5)
        canvas.set_rgb(1, 0, 0)
        canvas.set_dash((3, 2))
        canvas.set_dash(())
        doc = canvas.render()
        assert "0.500 setgray" in doc
        assert "1.000 0.000 0.000 setrgbcolor" in doc
        assert "[3.00 2.00] 0 setdash" in doc
        assert "[] 0 setdash" in doc

    def test_save_writes_and_finishes(self, tmp_path):
        canvas = PostScriptCanvas()
        canvas.line(0, 0, 1, 1)
        path = tmp_path / "plot.ps"
        canvas.save(path)
        assert path.read_text().startswith("%!PS")
        with pytest.raises(ReproError):
            canvas.line(0, 0, 2, 2)
