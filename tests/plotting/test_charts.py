"""Unit tests for the charting layer."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.plotting.charts import Axis, LineChart, Series, _decimate_for_plot
from repro.plotting.ps import PostScriptCanvas


class TestAxis:
    def test_autoscale_linear(self):
        axis = Axis()
        lo, hi = axis.resolved(np.array([2.0, 8.0, 5.0]))
        assert lo == 2.0 and hi == 8.0

    def test_fixed_bounds_win(self):
        axis = Axis(lo=0.0, hi=10.0)
        lo, hi = axis.resolved(np.array([2.0, 8.0]))
        assert (lo, hi) == (0.0, 10.0)

    def test_log_ignores_non_positive(self):
        axis = Axis(log=True)
        lo, hi = axis.resolved(np.array([-1.0, 0.0, 0.1, 10.0]))
        assert lo == pytest.approx(0.1)
        assert hi == pytest.approx(10.0)

    def test_degenerate_range_widened(self):
        axis = Axis()
        lo, hi = axis.resolved(np.array([5.0, 5.0]))
        assert hi > lo

    def test_no_finite_data_rejected(self):
        axis = Axis(label="y")
        with pytest.raises(ReproError):
            axis.resolved(np.array([np.nan, np.inf]))

    def test_log_ticks_are_decades(self):
        axis = Axis(log=True)
        ticks = axis.ticks(0.05, 500.0)
        assert ticks == [0.1, 1.0, 10.0, 100.0]

    def test_linear_ticks_round_steps(self):
        axis = Axis()
        ticks = axis.ticks(0.0, 10.0)
        steps = np.diff(ticks)
        assert np.allclose(steps, steps[0])
        assert len(ticks) <= 7


class TestDecimation:
    def test_short_series_untouched(self, rng):
        x = np.arange(100.0)
        y = rng.normal(size=100)
        dx, dy = _decimate_for_plot(x, y, max_points=2000)
        assert np.array_equal(dx, x)

    def test_long_series_reduced(self, rng):
        x = np.arange(100_000.0)
        y = rng.normal(size=100_000)
        dx, dy = _decimate_for_plot(x, y, max_points=2000)
        assert len(dx) <= 2000

    def test_envelope_preserved(self, rng):
        x = np.arange(50_000.0)
        y = rng.normal(size=50_000)
        y[31_234] = 100.0  # a spike the plot must keep
        _, dy = _decimate_for_plot(x, y, max_points=1000)
        assert dy.max() == 100.0


class TestSeries:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            Series(x=np.ones(3), y=np.ones(4))


class TestLineChart:
    def draw(self, chart: LineChart) -> str:
        canvas = PostScriptCanvas()
        chart.draw(canvas, x0=50, y0=50, width=400, height=300)
        return canvas.render()

    def test_draws_series_and_frame(self, rng):
        chart = LineChart(title="demo", x_axis=Axis(label="t"), y_axis=Axis(label="v"))
        chart.add(Series(x=np.arange(100.0), y=rng.normal(size=100), label="s1"))
        doc = self.draw(chart)
        assert "lineto" in doc
        assert "(demo)" in doc
        assert "(s1)" in doc

    def test_log_log_chart(self, rng):
        chart = LineChart(x_axis=Axis(log=True), y_axis=Axis(log=True))
        x = np.geomspace(0.01, 10.0, 50)
        chart.add(Series(x=x, y=x**-1.5))
        doc = self.draw(chart)
        assert "lineto" in doc

    def test_empty_chart_rejected(self):
        with pytest.raises(ReproError):
            self.draw(LineChart(title="empty"))

    def test_non_finite_points_dropped(self):
        chart = LineChart()
        y = np.array([1.0, np.nan, 3.0, np.inf, 5.0, 6.0])
        chart.add(Series(x=np.arange(6.0), y=y))
        doc = self.draw(chart)  # must not raise nor emit nan
        assert "nan" not in doc

    def test_log_axis_drops_non_positive(self):
        chart = LineChart(y_axis=Axis(log=True))
        chart.add(Series(x=np.arange(5.0), y=np.array([0.0, -1.0, 1.0, 2.0, 3.0])))
        doc = self.draw(chart)
        assert "nan" not in doc and "inf" not in doc

    def test_deterministic_output(self, rng):
        y = rng.normal(size=64)

        def render():
            chart = LineChart(title="d")
            chart.add(Series(x=np.arange(64.0), y=y.copy()))
            return self.draw(chart)

        assert render() == render()
