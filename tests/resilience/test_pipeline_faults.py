"""End-to-end fault injection through the real pipeline.

The acceptance bars of the resilience subsystem:

- with no fault plan, runs stay byte-identical to plan-less runs (the
  machinery must be invisible when idle);
- an injected transient recovers via retry without quarantining — and
  without changing a single artifact byte;
- a permanent format fault quarantines exactly the affected station
  while every survivor completes;
- the same plan converges to the same quarantine set, retry counts and
  degraded text on every implementation and backend.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.core import implementation_by_name
from repro.core.context import ParallelSettings
from repro.core.verify import compare_workspaces, verify_inventory
from repro.errors import PipelineError
from repro.observability.metrics import MetricsRegistry
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy

from tests.conftest import make_context

POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.0)

IMPLEMENTATIONS = (
    "seq-original", "seq-optimized", "partial-parallel", "full-parallel",
)


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory: pytest.TempPathFactory) -> Path:
    from repro.synth.dataset import generate_event_dataset
    from repro.synth.events import EventSpec

    directory = tmp_path_factory.mktemp("faults-dataset")
    generate_event_dataset(EventSpec("EV-FLT", "2022-03-04", 5.2, 3, 24_000, seed=77), directory)
    return directory


def run_with(tmp_path, dataset_dir, impl_name, plan, backend="thread"):
    ctx = make_context(
        tmp_path / "ws",
        parallel=ParallelSettings.uniform(backend, num_workers=2),
    )
    for src in dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    ctx.metrics = MetricsRegistry()
    ctx.resilience = plan
    result = implementation_by_name(impl_name)().run(ctx)
    return ctx, result


class TestCleanPath:
    def test_empty_plan_changes_nothing(self, tmp_path, dataset_dir):
        """Resilience enabled but fault-free == resilience absent."""
        ctx_plain, result_plain = run_with(
            tmp_path / "plain", dataset_dir, "seq-optimized", None
        )
        ctx_armed, result_armed = run_with(
            tmp_path / "armed", dataset_dir, "seq-optimized",
            FaultPlan(seed=3, policy=POLICY),
        )
        assert result_plain.quarantine == []
        assert result_armed.quarantine == []
        report = compare_workspaces(ctx_plain.workspace, ctx_armed.workspace)
        assert report.ok, report.render()
        # The marker directory is torn down with the run.
        assert not (ctx_armed.workspace.root / "resilience").exists()

    def test_no_plan_leaves_no_resilience_metrics(self, tmp_path, dataset_dir):
        ctx, _ = run_with(tmp_path, dataset_dir, "full-parallel", None)
        assert ctx.metrics.total("repro_faults_injected_total") == 0
        assert ctx.metrics.total("repro_retries_total") == 0
        assert ctx.metrics.total("repro_quarantined_records_total") == 0


class TestTransientRecovery:
    def test_recovers_without_quarantine_or_artifact_change(self, tmp_path, dataset_dir):
        plan = FaultPlan(
            seed=5,
            faults=(FaultSpec(kind="transient", target="P4:ST01l", count=2),),
            policy=POLICY,
        )
        ctx_clean, _ = run_with(tmp_path / "clean", dataset_dir, "seq-optimized", None)
        ctx_faulty, result = run_with(tmp_path / "faulty", dataset_dir, "seq-optimized", plan)
        assert result.quarantine == []
        assert ctx_faulty.metrics.total("repro_faults_injected_total") == 2
        assert ctx_faulty.metrics.total("repro_retries_total") == 2
        # Recovery must leave no trace in the artifacts.
        report = compare_workspaces(ctx_clean.workspace, ctx_faulty.workspace)
        assert report.ok, report.render()


class TestPermanentFault:
    def test_format_fault_quarantines_exactly_the_station(self, tmp_path, dataset_dir):
        plan = FaultPlan(
            seed=5,
            faults=(FaultSpec(kind="truncate-v1", target="ST02l.v1"),),
            policy=POLICY,
        )
        ctx, result = run_with(tmp_path, dataset_dir, "seq-optimized", plan)
        assert [r.record for r in result.quarantine] == ["ST02"]
        assert result.quarantine[0].kind == "format"
        # Survivors completed their full inventory; the victim left nothing.
        survivors = [s for s in ctx.stations() if s != "ST02"]
        report = verify_inventory(ctx.workspace, stations=survivors)
        assert report.ok, report.render()
        leftovers = [p.name for p in ctx.workspace.work_dir.glob("ST02*")]
        assert leftovers == []
        assert ctx.metrics.total("repro_quarantined_records_total") == 1

    def test_exhausted_transient_quarantines(self, tmp_path, dataset_dir):
        plan = FaultPlan(
            seed=5,
            faults=(FaultSpec(kind="transient", target="P7:ST03l", count=5),),
            policy=POLICY,
        )
        _, result = run_with(tmp_path, dataset_dir, "seq-optimized", plan)
        (report,) = result.quarantine
        assert report.record == "ST03"
        assert report.kind == "exhausted-retries"
        assert report.attempts == POLICY.max_attempts

    def test_config_fault_is_event_fatal(self, tmp_path, dataset_dir):
        plan = FaultPlan(
            seed=5,
            faults=(FaultSpec(kind="drop-config", target="P4"),),
            policy=POLICY,
        )
        with pytest.raises(PipelineError):
            run_with(tmp_path, dataset_dir, "seq-optimized", plan)


CONVERGENCE_PLAN = FaultPlan(
    seed=17,
    faults=(
        FaultSpec(kind="truncate-v1", target="ST01l.v1"),
        FaultSpec(kind="transient", target="P7:ST02t", count=1),
        FaultSpec(kind="crash", target="P3:ST03", count=5),
    ),
    policy=POLICY,
)


class TestMatrixConvergence:
    def outcome(self, tmp_path, dataset_dir, impl_name, backend):
        ctx, result = run_with(tmp_path, dataset_dir, impl_name, CONVERGENCE_PLAN, backend)
        reports = sorted(result.quarantine, key=lambda r: r.record)
        return (
            tuple((r.record, r.process, r.kind, r.error, r.attempts) for r in reports),
            ctx.metrics.total("repro_retries_total"),
            ctx.metrics.total("repro_faults_injected_total"),
            "\n".join(r.describe() for r in reports),
        )

    @pytest.mark.parametrize("impl_name", IMPLEMENTATIONS)
    @pytest.mark.parametrize(
        "backend",
        ["thread", pytest.param("process", marks=pytest.mark.slow)],
    )
    def test_same_plan_same_outcome(self, tmp_path, dataset_dir, impl_name, backend):
        got = self.outcome(tmp_path / "got", dataset_dir, impl_name, backend)
        signature, retries, faults, degraded = got
        # ST01: format-quarantined at P4.  ST02: transient recovered.
        # ST03: crash fired 3x (attempt-capped), exhausted at P3.
        assert signature == (
            ("ST01", "P4", "format", "HeaderError", 1),
            ("ST03", "P3", "worker-crash", "WorkerCrashError", 3),
        )
        assert retries == 3  # 1 transient + 2 crash resubmissions
        assert faults == 5  # 1 file + 1 transient + 3 crash firings
        assert "ST01" in degraded and "ST03" in degraded and "ST02" not in degraded
