"""Tests for the marker-activated resilience runtime."""

from __future__ import annotations

import pytest

from repro.core.artifacts import Workspace
from repro.errors import HeaderError, TransientToolError
from repro.resilience.faults import FaultPlan, FaultSpec, WorkerCrashError
from repro.resilience.quarantine import CRASH, EXHAUSTED, FORMAT, FailureReport
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import (
    PLAN_FILE,
    QUARANTINE_FILE,
    active_runtime,
    disable_resilience,
    enable_resilience,
    runtime_for,
    surviving_entries,
    surviving_stations,
)


@pytest.fixture()
def workspace(tmp_path):
    return Workspace(tmp_path / "ws").create()


@pytest.fixture()
def runtime(workspace):
    plan = FaultPlan(seed=1, policy=RetryPolicy(max_attempts=3, base_delay_s=0.0))
    rt = enable_resilience(workspace.root, plan)
    yield rt
    disable_resilience(workspace.root)


class TestActivation:
    def test_enable_writes_marker_and_registers(self, workspace):
        plan = FaultPlan(seed=7)
        rt = enable_resilience(workspace.root, plan)
        try:
            assert (rt.marker_dir / PLAN_FILE).exists()
            assert active_runtime(workspace.root) is rt
            assert FaultPlan.load(rt.marker_dir / PLAN_FILE) == plan
        finally:
            disable_resilience(workspace.root)
        assert active_runtime(workspace.root) is None
        assert not rt.marker_dir.exists()

    def test_runtime_for_finds_by_subpath(self, runtime, workspace):
        assert runtime_for(workspace.work_dir) is runtime
        assert runtime_for(workspace.work_dir / "ST01l.v1") is runtime

    def test_runtime_for_none_when_inactive(self, tmp_path):
        assert runtime_for(tmp_path / "nowhere") is None


class TestRunRecord:
    def test_clean_body_runs_once(self, runtime):
        calls = []
        assert runtime.run_record("P4", "ST01l", lambda: calls.append(1)) is True
        assert calls == [1]
        assert runtime.drain_pending() == []

    def test_transient_retries_then_succeeds(self, workspace):
        plan = FaultPlan(
            seed=1,
            faults=(FaultSpec(kind="transient", target="P4:ST01l", count=2),),
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        rt = enable_resilience(workspace.root, plan)
        try:
            calls = []
            assert rt.run_record("P4", "ST01l", lambda: calls.append(1)) is True
            # The fault fired on attempts 1 and 2; only attempt 3 ran the body.
            assert calls == [1]
            assert rt.drain_pending() == []
        finally:
            disable_resilience(workspace.root)

    def test_transient_exhausts_into_pending_report(self, workspace):
        plan = FaultPlan(
            seed=1,
            faults=(FaultSpec(kind="transient", target="P4:ST01l", count=5),),
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        rt = enable_resilience(workspace.root, plan)
        try:
            assert rt.run_record("P4", "ST01l", lambda: None) is False
            (report,) = rt.drain_pending()
            assert report.record == "ST01"
            assert report.kind == EXHAUSTED
            assert report.attempts == 3
        finally:
            disable_resilience(workspace.root)

    def test_format_error_is_permanent(self, runtime):
        def body():
            raise HeaderError("truncated")

        assert runtime.run_record("P4", "ST02l", body) is False
        (report,) = runtime.drain_pending()
        assert report.kind == FORMAT
        assert report.attempts == 1
        assert report.error == "HeaderError"

    def test_pending_record_skips_siblings(self, runtime):
        def body():
            raise HeaderError("truncated")

        assert runtime.run_record("P4", "ST02l", body) is False
        # The sibling component of the same station must not run.
        calls = []
        assert runtime.run_record("P4", "ST02t", lambda: calls.append(1)) is False
        assert calls == []


class TestRunUnit:
    def test_crash_retries_then_succeeds(self, workspace):
        plan = FaultPlan(
            seed=1,
            faults=(FaultSpec(kind="crash", target="P3:ST01", count=2),),
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        rt = enable_resilience(workspace.root, plan)
        try:
            def unit():
                rt.check_crash("P3", "ST01")

            assert rt.run_unit("P3", "ST01", unit) is None
        finally:
            disable_resilience(workspace.root)

    def test_crash_exhausts_into_report(self, workspace):
        plan = FaultPlan(
            seed=1,
            faults=(FaultSpec(kind="crash", target="P3:ST01", count=9),),
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
        )
        rt = enable_resilience(workspace.root, plan)
        try:
            def unit():
                rt.check_crash("P3", "ST01")

            report = rt.run_unit("P3", "ST01", unit)
            assert report is not None
            assert report.kind == CRASH
            assert report.attempts == 2
            assert report.error == "WorkerCrashError"
        finally:
            disable_resilience(workspace.root)


class TestQuarantine:
    def station_artifacts(self, workspace, station):
        paths = [
            workspace.component_v1(station, "l"),
            workspace.component_v2(station, "t"),
            workspace.component_f(station, "v"),
            workspace.plot_fourier(station),
            workspace.gem(station, "l", "2", "A"),
        ]
        for path in paths:
            path.write_text("artifact\n")
        return paths

    def test_quarantine_purges_and_persists(self, runtime, workspace):
        victims = self.station_artifacts(workspace, "ST01")
        keepers = self.station_artifacts(workspace, "ST10")  # ST1* glob trap
        report = FailureReport(record="ST01", process="P4", kind=FORMAT,
                               error="HeaderError", attempts=1)
        fresh = runtime.quarantine_reports([report, None])
        assert fresh == [report]
        assert all(not p.exists() for p in victims)
        assert all(p.exists() for p in keepers)
        assert (runtime.marker_dir / QUARANTINE_FILE).exists()

    def test_duplicate_reports_fold_once(self, runtime):
        a = FailureReport(record="ST01", process="P4", kind=FORMAT,
                          error="HeaderError", attempts=1)
        b = FailureReport(record="ST01", process="P7", kind=EXHAUSTED,
                          error="TransientToolError", attempts=3)
        assert runtime.quarantine_reports([a]) == [a]
        assert runtime.quarantine_reports([b]) == []
        assert runtime.quarantine.signature() == (
            ("ST01", "P4", FORMAT, "HeaderError", 1),
        )

    def test_surviving_filters(self, runtime, workspace):
        report = FailureReport(record="ST02", process="P4", kind=FORMAT,
                               error="HeaderError", attempts=1)
        runtime.quarantine_reports([report])
        assert runtime.surviving(["ST01", "ST02", "ST03"]) == ["ST01", "ST03"]
        assert surviving_stations(workspace, ["ST01", "ST02"]) == ["ST01"]
        entries = [("ST01", "a"), ("ST02", "b")]
        assert surviving_entries(workspace, entries) == [("ST01", "a")]

    def test_surviving_is_identity_when_inactive(self, tmp_path):
        ws = Workspace(tmp_path / "plain").create()
        stations = ["ST01", "ST02"]
        assert surviving_stations(ws, stations) == stations


class TestIsolationFactory:
    def test_isolation_carries_policy(self, runtime):
        isolate = runtime.isolation("P3")
        assert isolate.max_attempts == runtime.policy.max_attempts
        assert isolate.retryable == (WorkerCrashError,)
        report = isolate.on_exhausted("ST01", WorkerCrashError("boom"), 3)
        assert report.record == "ST01"
        assert report.kind == CRASH
