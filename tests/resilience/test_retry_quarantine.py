"""Tests for the retry policy and the quarantine bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import (
    HeaderError,
    MissingArtifactError,
    PipelineError,
    RetryExhaustedError,
    TransientToolError,
)
from repro.resilience.faults import WorkerCrashError
from repro.resilience.quarantine import (
    CRASH,
    EXHAUSTED,
    FATAL,
    FORMAT,
    FailureReport,
    QuarantineSet,
    classify,
)
from repro.resilience.retry import RetryPolicy


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.01)
        assert policy.delay_s(7, "P4:ST01l", 2) == policy.delay_s(7, "P4:ST01l", 2)

    def test_delay_varies_with_seed_and_key(self):
        policy = RetryPolicy(base_delay_s=0.01)
        delays = {
            policy.delay_s(7, "P4:ST01l", 1),
            policy.delay_s(8, "P4:ST01l", 1),
            policy.delay_s(7, "P4:ST02l", 1),
        }
        assert len(delays) == 3

    def test_delay_backs_off_exponentially_within_bounds(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.1, max_delay_s=1.0)
        for attempt, base in ((1, 0.01), (2, 0.02), (3, 0.04)):
            delay = policy.delay_s(1, "k", attempt)
            assert base <= delay <= base * 1.1

    def test_delay_caps_at_max(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=10.0, max_delay_s=0.25, jitter=0.0)
        assert policy.delay_s(1, "k", 5) == pytest.approx(0.25)

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(base_delay_s=0.0)
        assert policy.delay_s(1, "k", 3) == 0.0

    def test_gives_up_on_attempts_or_deadline(self):
        policy = RetryPolicy(max_attempts=3, deadline_s=10.0)
        assert not policy.gives_up(2, 1.0)
        assert policy.gives_up(3, 1.0)
        assert policy.gives_up(2, 10.0)

    def test_dict_roundtrip(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.5, deadline_s=7.0)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


class TestClassify:
    @pytest.mark.parametrize(
        "error, kind",
        [
            (HeaderError("bad header"), FORMAT),
            (MissingArtifactError("x.cfg"), FORMAT),
            (TransientToolError("flaky"), EXHAUSTED),
            (RetryExhaustedError("ST01l", 3), EXHAUSTED),
            (WorkerCrashError("boom"), CRASH),
            (PipelineError("other"), FATAL),
        ],
    )
    def test_kinds(self, error, kind):
        assert classify(error) == kind


class TestFailureReport:
    def test_from_exception_uses_type_name_only(self):
        report = FailureReport.from_exception(
            "ST01", "P4", HeaderError("/some/host/specific/path broke"), attempts=1
        )
        # Workspace paths differ between runs; the report must not leak
        # them or degraded bulletins stop converging across backends.
        assert report.error == "HeaderError"
        assert "path" not in report.describe()

    def test_describe_is_stable(self):
        report = FailureReport(record="ST01", process="P4", kind=FORMAT,
                               error="HeaderError", attempts=1)
        assert report.describe() == FailureReport.from_dict(report.to_dict()).describe()
        assert "ST01" in report.describe()
        assert "attempt" in report.describe()

    def test_dict_roundtrip(self):
        report = FailureReport(record="ST02", process="P3", kind=CRASH,
                               error="WorkerCrashError", attempts=3)
        assert FailureReport.from_dict(report.to_dict()) == report


class TestQuarantineSet:
    def make_report(self, record="ST01", kind=FORMAT, attempts=1):
        return FailureReport(record=record, process="P4", kind=kind,
                             error="HeaderError", attempts=attempts)

    def test_first_report_wins(self):
        qs = QuarantineSet()
        assert qs.add(self.make_report()) is True
        assert qs.add(self.make_report(kind=CRASH)) is False
        assert len(qs) == 1
        assert qs.reports()[0].kind == FORMAT

    def test_membership_and_records(self):
        qs = QuarantineSet()
        qs.add(self.make_report("ST03"))
        assert "ST03" in qs
        assert "ST01" not in qs
        assert qs.records() == {"ST03"}

    def test_signature_is_order_independent(self):
        a, b = QuarantineSet(), QuarantineSet()
        a.add(self.make_report("ST01"))
        a.add(self.make_report("ST02", kind=CRASH))
        b.add(self.make_report("ST02", kind=CRASH))
        b.add(self.make_report("ST01"))
        assert a.signature() == b.signature()

    def test_save_load_roundtrip(self, tmp_path):
        qs = QuarantineSet()
        qs.add(self.make_report("ST01"))
        qs.add(self.make_report("ST05", kind=EXHAUSTED, attempts=3))
        path = tmp_path / "quarantine.json"
        qs.save(path)
        assert QuarantineSet.load(path).signature() == qs.signature()
