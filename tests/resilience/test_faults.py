"""Tests for the seeded fault plan and its corruption primitives."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError, ReproError, TransientToolError
from repro.resilience.faults import (
    GARBLE_LINE,
    FaultPlan,
    FaultSpec,
    WorkerCrashError,
    attempt_scope,
    current_attempt,
    garble_line,
    truncate_lines,
)
from repro.resilience.retry import RetryPolicy


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PipelineError):
            FaultSpec(kind="set-on-fire", target="ST01")

    def test_zero_count_rejected(self):
        with pytest.raises(PipelineError):
            FaultSpec(kind="transient", target="P4:ST01l", count=0)


class TestAttemptScope:
    def test_defaults_to_first_attempt(self):
        assert current_attempt() == 1

    def test_scope_sets_and_restores(self):
        with attempt_scope(3):
            assert current_attempt() == 3
            with attempt_scope(7):
                assert current_attempt() == 7
            assert current_attempt() == 3
        assert current_attempt() == 1


class TestFiringSemantics:
    plan = FaultPlan(
        seed=5,
        faults=(
            FaultSpec(kind="transient", target="P4:ST01l", count=2),
            FaultSpec(kind="crash", target="P3:ST02", count=1),
        ),
    )

    def test_fires_on_attempts_up_to_count(self):
        assert self.plan.should_fire("transient", "P4", "ST01l", attempt=1)
        assert self.plan.should_fire("transient", "P4", "ST01l", attempt=2)
        assert not self.plan.should_fire("transient", "P4", "ST01l", attempt=3)

    def test_untargeted_never_fires(self):
        assert not self.plan.should_fire("transient", "P4", "ST09l", attempt=1)
        assert not self.plan.should_fire("transient", "P7", "ST01l", attempt=1)

    def test_raise_transient_uses_current_attempt(self):
        with attempt_scope(1), pytest.raises(TransientToolError):
            self.plan.raise_transient("P4", "ST01l")
        with attempt_scope(3):
            # Spent: a matching spec exists but no longer fires.
            assert self.plan.raise_transient("P4", "ST01l") is True
        assert self.plan.raise_transient("P4", "ST05l") is False

    def test_raise_crash(self):
        with attempt_scope(1), pytest.raises(WorkerCrashError):
            self.plan.raise_crash("P3", "ST02")
        with attempt_scope(2):
            assert self.plan.raise_crash("P3", "ST02") is True

    def test_worker_crash_is_not_a_repro_error(self):
        # Pipeline-boundary `except ReproError` handlers must never
        # absorb an injected worker death; only chunk isolation may.
        assert not issubclass(WorkerCrashError, ReproError)
        assert issubclass(WorkerCrashError, RuntimeError)


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            faults=(
                FaultSpec(kind="truncate-v1", target="ST01l.v1"),
                FaultSpec(kind="transient", target="P7:ST02t", count=3),
            ),
            policy=RetryPolicy(max_attempts=4, base_delay_s=0.001),
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_from_dict_defaults(self):
        plan = FaultPlan.from_dict({})
        assert plan.seed == 0
        assert plan.faults == ()
        assert plan.policy == RetryPolicy()


class TestCorruption:
    def make_v1(self, path, n_lines=30):
        path.write_text("\n".join(f"line {i}" for i in range(n_lines)) + "\n")

    def test_truncate_is_idempotent(self, tmp_path):
        path = tmp_path / "ST01l.v1"
        self.make_v1(path)
        plan = FaultPlan(seed=3, faults=(FaultSpec(kind="truncate-v1", target="ST01l.v1"),))
        assert plan.corrupt_file(path) is True
        first = path.read_bytes()
        assert plan.corrupt_file(path) is False
        assert path.read_bytes() == first
        assert len(first.splitlines()) < 30

    def test_garble_is_idempotent(self, tmp_path):
        path = tmp_path / "ST01l.v2"
        self.make_v1(path)
        plan = FaultPlan(seed=3, faults=(FaultSpec(kind="garble-v1", target="ST01l.v2"),))
        assert plan.corrupt_file(path) is True
        assert GARBLE_LINE in path.read_text()
        assert plan.corrupt_file(path) is False

    def test_corruption_is_seeded(self, tmp_path):
        a, b = tmp_path / "a.v1", tmp_path / "b.v1"
        self.make_v1(a)
        self.make_v1(b)
        truncate_lines(a, 12345)
        truncate_lines(b, 12345)
        assert a.read_bytes() == b.read_bytes()

    def test_untargeted_file_untouched(self, tmp_path):
        path = tmp_path / "ST02l.v1"
        self.make_v1(path)
        plan = FaultPlan(seed=3, faults=(FaultSpec(kind="truncate-v1", target="ST01l.v1"),))
        before = path.read_bytes()
        assert plan.corrupt_file(path) is False
        assert path.read_bytes() == before

    def test_garble_missing_file_is_noop(self, tmp_path):
        assert garble_line(tmp_path / "absent.v1", 7) is False

    def test_drop_config(self, tmp_path):
        from repro.core.tools import TOOL_CONFIG

        (tmp_path / TOOL_CONFIG).write_text("PARAMS filter.par\n")
        plan = FaultPlan(seed=1, faults=(FaultSpec(kind="drop-config", target="P4"),))
        assert plan.corrupt_config(tmp_path, "P4") == "drop-config"
        assert not (tmp_path / TOOL_CONFIG).exists()
        assert plan.corrupt_config(tmp_path, "P7") is None

    def test_garble_config(self, tmp_path):
        from repro.core.tools import TOOL_CONFIG

        (tmp_path / TOOL_CONFIG).write_text("PARAMS filter.par\n")
        plan = FaultPlan(seed=1, faults=(FaultSpec(kind="garble-config", target="P7"),))
        assert plan.corrupt_config(tmp_path, "P7") == "garble-config"
        assert GARBLE_LINE in (tmp_path / TOOL_CONFIG).read_text()


class TestRandomized:
    def test_same_seed_same_plan(self):
        stations = ["ST01", "ST02", "ST03"]
        assert FaultPlan.randomized(9, stations) == FaultPlan.randomized(9, stations)

    def test_draws_only_record_level_kinds(self):
        plan = FaultPlan.randomized(11, ["ST01", "ST02"], n_faults=8)
        assert len(plan.faults) == 8
        for fault in plan.faults:
            assert fault.kind in ("truncate-v1", "garble-v1", "transient", "crash")

    def test_counts_stay_within_policy(self):
        policy = RetryPolicy(max_attempts=3)
        plan = FaultPlan.randomized(13, ["ST01"], n_faults=20, policy=policy)
        for fault in plan.faults:
            assert fault.count <= policy.max_attempts
