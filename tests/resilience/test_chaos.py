"""Smoke tests of the chaos soak harness and its CLI."""

from __future__ import annotations

import pytest

from repro.resilience.chaos import ChaosReport, ChaosRun, ChaosSeedResult
from repro.resilience.faults import FaultPlan


def make_run(label="a", quarantine=(), retries=0.0, degraded=""):
    impl, _, backend = label.partition("/")
    return ChaosRun(
        implementation=impl or "impl", backend=backend or "thread",
        quarantine=tuple(quarantine), retries=retries, faults=0.0,
        degraded=degraded,
    )


class TestVerdicts:
    def test_converged_seed(self):
        seed = ChaosSeedResult(seed=1, plan=FaultPlan(), runs=[
            make_run("a/thread"), make_run("b/process"),
        ])
        assert seed.converged
        assert seed.problems() == []

    def test_divergent_quarantine_flagged(self):
        seed = ChaosSeedResult(seed=1, plan=FaultPlan(), runs=[
            make_run("a/thread", quarantine=(("ST01",),)),
            make_run("b/thread"),
        ])
        assert not seed.converged
        assert any("quarantine" in p for p in seed.problems())

    def test_divergent_retries_flagged(self):
        seed = ChaosSeedResult(seed=1, plan=FaultPlan(), runs=[
            make_run("a/thread", retries=2.0), make_run("b/thread", retries=3.0),
        ])
        assert any("retry count" in p for p in seed.problems())

    def test_report_render_and_ok(self):
        report = ChaosReport(clean_identical=True, seeds=[
            ChaosSeedResult(seed=4, plan=FaultPlan(), runs=[make_run()]),
        ])
        assert report.ok
        text = report.render()
        assert "RESULT: ok" in text
        assert "seed 4: converged" in text
        report.clean_identical = False
        assert not report.ok
        assert "RESULT: FAILED" in report.render()


@pytest.mark.slow
class TestSoak:
    def test_small_soak_converges(self, tmp_path):
        from repro.resilience.chaos import chaos_soak

        report = chaos_soak(
            tmp_path,
            seeds=[3],
            scale=0.02,
            implementations=["seq-optimized", "full-parallel"],
            backends=("thread",),
            workers=2,
        )
        assert report.ok, report.render()
        assert report.clean_identical
        assert len(report.seeds) == 1
        assert len(report.seeds[0].runs) == 2
