"""Shared fixtures for the test suite.

The expensive fixtures (synthetic datasets, full pipeline runs) are
session-scoped and reused by many tests; everything is deterministic,
so sharing is safe.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.core import RunContext, SequentialOptimized
from repro.core.context import ParallelSettings
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.dataset import generate_event_dataset
from repro.synth.events import EventSpec


TINY_EVENT = EventSpec("EV-TEST", "2020-06-15", 5.3, 2, 16_000, seed=4242)
SINGLE_EVENT = EventSpec("EV-ONE", "2021-02-03", 5.0, 1, 8_000, seed=99)


def tiny_response_config() -> ResponseSpectrumConfig:
    """A small oscillator grid that keeps pipeline tests fast."""
    return ResponseSpectrumConfig(periods=default_periods(12), dampings=(0.05, 0.1))


def make_context(root: Path, **kwargs) -> RunContext:
    """A pipeline context with test-sized numerical settings."""
    kwargs.setdefault("response_config", tiny_response_config())
    kwargs.setdefault("parallel", ParallelSettings(num_workers=2))
    return RunContext.for_directory(root, **kwargs)


@pytest.fixture(scope="session")
def tiny_dataset_dir(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """A generated two-station dataset, shared across the session."""
    directory = tmp_path_factory.mktemp("tiny-dataset")
    generate_event_dataset(TINY_EVENT, directory)
    return directory


@pytest.fixture()
def workspace_with_input(tmp_path: Path, tiny_dataset_dir: Path) -> RunContext:
    """A fresh context whose input/ holds the tiny dataset."""
    ctx = make_context(tmp_path / "ws")
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    return ctx


@pytest.fixture(scope="session")
def completed_run(tmp_path_factory: pytest.TempPathFactory, tiny_dataset_dir: Path) -> RunContext:
    """A finished sequential-optimized run, shared read-only."""
    root = tmp_path_factory.mktemp("completed") / "ws"
    ctx = make_context(root)
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    SequentialOptimized().run(ctx)
    return ctx


@pytest.fixture()
def rng() -> np.random.Generator:
    """A per-test deterministic RNG."""
    return np.random.default_rng(20240701)


def hash_tree(work_dir: Path) -> dict[str, str]:
    """Map of relative file path -> md5, for output-equality checks."""
    import hashlib

    out = {}
    for p in sorted(work_dir.rglob("*")):
        if p.is_file():
            out[p.relative_to(work_dir).as_posix()] = hashlib.md5(p.read_bytes()).hexdigest()
    return out
