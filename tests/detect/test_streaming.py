"""Tests for the streaming detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.streaming import StreamingDetector
from repro.errors import SignalError
from repro.synth.source import BruneSource
from repro.synth.stochastic import StochasticSimulator


def make_stream(rng, n=24_000, events_at=(8_000,)):
    dt = 0.01
    stream = rng.normal(size=n) * 0.05
    sim = StochasticSimulator(source=BruneSource(magnitude=5.4))
    for at in events_at:
        burst = sim.simulate(1500, dt, 18.0, rng, pre_event_fraction=0.0)
        stream[at : at + burst.size] += burst
    return stream, dt


def run_streaming(stream, dt, chunk_size, **kwargs):
    detector = StreamingDetector(dt=dt, **kwargs)
    windows = []
    for start in range(0, len(stream), chunk_size):
        windows.extend(detector.push(stream[start : start + chunk_size]))
    windows.extend(detector.finish())
    return windows, detector


class TestStreamingDetector:
    def test_detects_embedded_event(self, rng):
        stream, dt = make_stream(rng)
        windows, _ = run_streaming(stream, dt, chunk_size=1000)
        assert len(windows) == 1
        assert abs(windows[0].trigger_on - 8_000) * dt < 2.0

    def test_quiet_stream_silent(self, rng):
        stream = rng.normal(size=20_000) * 0.05
        windows, _ = run_streaming(stream, 0.01, chunk_size=512)
        assert windows == []

    def test_two_events(self, rng):
        stream, dt = make_stream(rng, n=40_000, events_at=(8_000, 28_000))
        windows, _ = run_streaming(stream, dt, chunk_size=700)
        assert len(windows) == 2

    def test_chunking_invariance(self, rng):
        stream, dt = make_stream(rng)
        reference, _ = run_streaming(stream, dt, chunk_size=len(stream))
        for chunk_size in (1, 97, 1000, 7777):
            windows, _ = run_streaming(stream, dt, chunk_size=chunk_size)
            assert [(w.trigger_on, w.start) for w in windows] == [
                (w.trigger_on, w.start) for w in reference
            ], f"chunk_size={chunk_size}"

    @given(chunk_size=st.integers(1, 5000))
    @settings(max_examples=12, deadline=None)
    def test_chunking_invariance_property(self, chunk_size):
        rng = np.random.default_rng(123)
        stream, dt = make_stream(rng, n=16_000, events_at=(6_000,))
        reference, _ = run_streaming(stream, dt, chunk_size=len(stream))
        windows, _ = run_streaming(stream, dt, chunk_size=chunk_size)
        assert [(w.trigger_on, w.start, w.stop) for w in windows] == [
            (w.trigger_on, w.start, w.stop) for w in reference
        ]

    def test_window_samples_retrievable(self, rng):
        stream, dt = make_stream(rng)
        detector = StreamingDetector(dt=dt)
        windows = []
        for start in range(0, len(stream), 800):
            for window in detector.push(stream[start : start + 800]):
                samples = detector.window_samples(window)
                windows.append((window, samples))
        for window, samples in windows:
            assert samples.size == window.n_samples
            expected = stream[window.start : window.stop]
            assert np.allclose(samples, expected)

    def test_retrigger_merging(self, rng):
        dt = 0.01
        stream = rng.normal(size=40_000) * 0.05
        sim = StochasticSimulator(source=BruneSource(magnitude=5.0))
        burst = sim.simulate(800, dt, 15.0, rng, pre_event_fraction=0.0)
        stream[10_000:10_800] += burst
        stream[11_200:12_000] += burst  # inside the merge gap
        windows, _ = run_streaming(stream, dt, chunk_size=900, min_gap_s=10.0)
        assert len(windows) == 1

    def test_finish_closes_open_trigger(self, rng):
        dt = 0.01
        stream = rng.normal(size=6_000) * 0.05
        sim = StochasticSimulator(source=BruneSource(magnitude=5.5))
        burst = sim.simulate(1500, dt, 15.0, rng, pre_event_fraction=0.0)
        stream[4_400:5_900] += burst  # event still ringing at stream end
        detector = StreamingDetector(dt=dt)
        windows = detector.push(stream)
        windows += detector.finish()
        assert len(windows) == 1

    def test_empty_push(self):
        detector = StreamingDetector(dt=0.01)
        assert detector.push(np.array([])) == []

    def test_validation(self):
        with pytest.raises(SignalError):
            StreamingDetector(dt=0.0)
        with pytest.raises(SignalError):
            StreamingDetector(dt=0.01, on_threshold=1.0, off_threshold=2.0)
        with pytest.raises(SignalError):
            StreamingDetector(dt=0.01, sta_s=30.0, lta_s=20.0)
        with pytest.raises(SignalError):
            StreamingDetector(dt=0.01).push(np.zeros((2, 2)))
