"""Unit tests for the STA/LTA detector."""

import numpy as np
import pytest

from repro.detect.stalta import (
    TriggerOnset,
    classic_sta_lta,
    recursive_sta_lta,
    trigger_onsets,
)
from repro.errors import SignalError


def noisy_trace_with_event(rng, n=8000, event_at=4000, event_len=800, amp=20.0):
    """Background noise with a strong burst at a known position."""
    trace = rng.normal(size=n) * 0.5
    trace[event_at : event_at + event_len] += rng.normal(size=event_len) * amp
    return trace


class TestCharacteristicFunctions:
    @pytest.mark.parametrize("func", [classic_sta_lta, recursive_sta_lta])
    def test_quiet_trace_near_unity(self, rng, func):
        trace = rng.normal(size=5000)
        ratio = func(trace, 50, 1000)
        settled = ratio[2000:]
        assert 0.5 < np.median(settled) < 2.0

    @pytest.mark.parametrize("func", [classic_sta_lta, recursive_sta_lta])
    def test_event_spikes_ratio(self, rng, func):
        trace = noisy_trace_with_event(rng)
        ratio = func(trace, 50, 2000)
        assert ratio[4000:4400].max() > 10.0

    @pytest.mark.parametrize("func", [classic_sta_lta, recursive_sta_lta])
    def test_warmup_suppressed(self, rng, func):
        trace = rng.normal(size=4000)
        ratio = func(trace, 50, 1000)
        assert np.all(ratio[: 999 if func is classic_sta_lta else 1000] == 0.0)

    def test_classic_exact_on_constant(self):
        trace = np.ones(3000)
        ratio = classic_sta_lta(trace, 10, 100)
        assert np.allclose(ratio[200:], 1.0)

    @pytest.mark.parametrize("func", [classic_sta_lta, recursive_sta_lta])
    def test_rejects_bad_windows(self, rng, func):
        trace = rng.normal(size=1000)
        with pytest.raises(SignalError):
            func(trace, 100, 50)
        with pytest.raises(SignalError):
            func(trace, 0, 50)
        with pytest.raises(SignalError):
            func(rng.normal(size=10), 2, 50)

    def test_same_length_as_input(self, rng):
        trace = rng.normal(size=3333)
        assert classic_sta_lta(trace, 20, 300).shape == trace.shape
        assert recursive_sta_lta(trace, 20, 300).shape == trace.shape


class TestTriggerOnsets:
    def test_single_pulse(self):
        ratio = np.zeros(100)
        ratio[40:60] = 5.0
        onsets = trigger_onsets(ratio, 4.0, 1.0)
        assert len(onsets) == 1
        assert onsets[0].on == 40
        assert onsets[0].off == 60

    def test_hysteresis_keeps_trigger_alive(self):
        ratio = np.zeros(100)
        ratio[40:44] = 5.0
        ratio[44:56] = 2.0  # below on, above off: still triggered
        ratio[56:60] = 5.0
        onsets = trigger_onsets(ratio, 4.0, 1.0)
        assert len(onsets) == 1
        assert onsets[0].off == 60

    def test_min_duration_filters_blips(self):
        ratio = np.zeros(100)
        ratio[10] = 9.0
        ratio[50:70] = 9.0
        onsets = trigger_onsets(ratio, 4.0, 1.0, min_duration=5)
        assert len(onsets) == 1
        assert onsets[0].on == 50

    def test_open_trigger_closes_at_end(self):
        ratio = np.zeros(50)
        ratio[40:] = 9.0
        onsets = trigger_onsets(ratio, 4.0, 1.0)
        assert onsets == [TriggerOnset(on=40, off=49)]

    def test_multiple_events(self):
        ratio = np.zeros(200)
        ratio[20:40] = 5.0
        ratio[120:150] = 5.0
        onsets = trigger_onsets(ratio, 4.0, 1.0)
        assert [o.on for o in onsets] == [20, 120]

    def test_rejects_bad_thresholds(self):
        with pytest.raises(SignalError):
            trigger_onsets(np.zeros(10), 2.0, 3.0)
        with pytest.raises(SignalError):
            trigger_onsets(np.zeros(10), 3.0, 1.0, min_duration=0)

    def test_duration_helper(self):
        assert TriggerOnset(on=5, off=25).duration_samples() == 20
