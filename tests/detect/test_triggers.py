"""Unit tests for trigger association and event-window extraction."""

import numpy as np
import pytest

from repro.detect.stalta import TriggerOnset
from repro.detect.triggers import detect_events, extract_event_window
from repro.errors import SignalError
from repro.synth.source import BruneSource
from repro.synth.stochastic import StochasticSimulator


def continuous_stream(rng, dt=0.01, quiet_s=120.0, event_at_s=60.0):
    """Two minutes of background with one synthetic event embedded."""
    n = int(quiet_s / dt)
    stream = rng.normal(size=n) * 0.05
    sim = StochasticSimulator(source=BruneSource(magnitude=5.5))
    event = sim.simulate(3000, dt, distance_km=20.0, rng=rng, pre_event_fraction=0.0)
    at = int(event_at_s / dt)
    stream[at : at + event.size] += event
    return stream, dt, at


class TestExtractWindow:
    def test_window_includes_pre_and_post(self):
        signal = np.zeros(10_000)
        onset = TriggerOnset(on=5000, off=6000)
        window = extract_event_window(signal, onset, 0.01, pre_event_s=5.0, post_event_s=10.0)
        assert window.start == 5000 - 500
        assert window.stop == 6000 + 1000
        assert window.trigger_on == 5000

    def test_clipping_at_edges(self):
        signal = np.zeros(1000)
        onset = TriggerOnset(on=10, off=990)
        window = extract_event_window(signal, onset, 0.01)
        assert window.start == 0
        assert window.stop == 1000

    def test_peak_ratio_recorded(self):
        signal = np.zeros(1000)
        ratio = np.zeros(1000)
        ratio[500:510] = 7.5
        onset = TriggerOnset(on=500, off=510)
        window = extract_event_window(signal, onset, 0.01, ratio=ratio)
        assert window.peak_ratio == pytest.approx(7.5)

    def test_rejects_bad_dt(self):
        with pytest.raises(SignalError):
            extract_event_window(np.zeros(100), TriggerOnset(10, 20), 0.0)


class TestDetectEvents:
    def test_finds_the_embedded_event(self, rng):
        stream, dt, at = continuous_stream(rng)
        windows = detect_events(stream, dt)
        assert len(windows) == 1
        window = windows[0]
        # Trigger within two seconds of the true onset.
        assert abs(window.trigger_on - at) * dt < 2.0
        # The saved window starts before the event and covers its
        # strong-shaking portion (the Saragoni-Hart envelope decays, so
        # the trigger releases during the coda).
        assert window.start <= at
        assert window.stop >= at + 1000

    def test_quiet_stream_no_events(self, rng):
        stream = rng.normal(size=20_000) * 0.05
        assert detect_events(stream, 0.01) == []

    def test_retrigger_merging(self, rng):
        dt = 0.01
        stream = rng.normal(size=30_000) * 0.05
        sim = StochasticSimulator(source=BruneSource(magnitude=5.0))
        burst = sim.simulate(1000, dt, 15.0, rng, pre_event_fraction=0.0)
        # Two bursts whose trigger gap (~13 s) sits inside the 15 s
        # merge window.
        stream[10_000:11_000] += burst
        stream[11_500:12_500] += burst
        windows = detect_events(stream, dt, min_gap_s=15.0)
        assert len(windows) == 1

    def test_separate_events_stay_separate(self, rng):
        dt = 0.01
        stream = rng.normal(size=60_000) * 0.05
        sim = StochasticSimulator(source=BruneSource(magnitude=5.0))
        burst = sim.simulate(1000, dt, 15.0, rng, pre_event_fraction=0.0)
        stream[10_000:11_000] += burst
        stream[40_000:41_000] += burst
        windows = detect_events(stream, dt, min_gap_s=10.0)
        assert len(windows) == 2

    def test_window_peak_ratio_above_threshold(self, rng):
        stream, dt, _ = continuous_stream(rng)
        (window,) = detect_events(stream, dt, on_threshold=4.0)
        assert window.peak_ratio >= 4.0

    def test_rejects_bad_dt(self, rng):
        with pytest.raises(SignalError):
            detect_events(rng.normal(size=1000), -0.01)
