"""Engine-vs-legacy equivalence matrix.

Four policies on both executor backends must produce byte-identical
final artifacts from the same inputs, and — under one injected
:class:`FaultPlan` — converge to the same quarantine signature and
retry totals.  This is the paper's equivalence claim restated for the
engine: the schedule may change, the outputs may not.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.core.context import ParallelSettings
from repro.engine import pipeline_factory
from repro.observability.metrics import MetricsRegistry
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy

from tests.conftest import hash_tree, make_context

POLICIES = ("seq-optimized", "partial-parallel", "full-parallel", "dag-parallel")
BACKENDS = ("thread", "process")
LEGS = [(policy, backend) for policy in POLICIES for backend in BACKENDS]

FAULT_SEED = 1234


def _run_leg(
    root: Path,
    policy: str,
    backend: str,
    tiny_dataset_dir: Path,
    plan: FaultPlan | None = None,
):
    registry = MetricsRegistry()
    ctx = make_context(
        root,
        parallel=ParallelSettings.uniform(backend, num_workers=2),
        metrics=registry,
        resilience=plan,
    )
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    result = pipeline_factory(policy)().run(ctx)
    return ctx, result, registry


def _signature(result) -> tuple:
    reports = sorted(result.quarantine, key=lambda r: r.record)
    return tuple((r.record, r.process, r.kind, r.error, r.attempts) for r in reports)


@pytest.fixture(scope="module")
def clean_matrix(tmp_path_factory: pytest.TempPathFactory, tiny_dataset_dir: Path):
    """One clean run per (policy, backend) leg, shared read-only."""
    base = tmp_path_factory.mktemp("engine-matrix")
    runs = {}
    for policy, backend in LEGS:
        root = base / f"{policy}-{backend}"
        runs[(policy, backend)] = _run_leg(root, policy, backend, tiny_dataset_dir)
    return runs


def test_clean_matrix_is_byte_identical(clean_matrix) -> None:
    trees = {
        leg: hash_tree(ctx.workspace.work_dir)
        for leg, (ctx, _, _) in clean_matrix.items()
    }
    baseline_leg = ("seq-optimized", "thread")
    baseline = trees[baseline_leg]
    assert baseline  # the run actually produced artifacts
    for leg, tree in trees.items():
        assert tree == baseline, f"{leg} diverges from {baseline_leg}"


def test_clean_matrix_reports_no_faults(clean_matrix) -> None:
    for leg, (_, result, registry) in clean_matrix.items():
        assert not result.quarantine, f"{leg} quarantined records on a clean run"
        assert registry.total("repro_faults_injected_total") == 0


def test_clean_matrix_times_every_scheduled_process(clean_matrix) -> None:
    from repro.core.registry import OPTIMIZED_ORDER

    for leg, (_, result, _) in clean_matrix.items():
        assert sorted(t.pid for t in result.processes) == sorted(OPTIMIZED_ORDER), leg


def test_faulty_matrix_converges(
    tmp_path_factory: pytest.TempPathFactory, tiny_dataset_dir: Path
) -> None:
    stations = sorted(p.stem for p in tiny_dataset_dir.glob("*.v1"))
    plan = FaultPlan.randomized(
        FAULT_SEED,
        stations,
        n_faults=2,
        policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
    )
    base = tmp_path_factory.mktemp("engine-chaos")
    outcomes = {}
    for policy, backend in LEGS:
        root = base / f"{policy}-{backend}"
        _, result, registry = _run_leg(root, policy, backend, tiny_dataset_dir, plan)
        outcomes[(policy, backend)] = (
            _signature(result),
            registry.total("repro_retries_total"),
            registry.total("repro_faults_injected_total"),
        )
    baseline_leg = ("seq-optimized", "thread")
    signature, retries, faults = outcomes[baseline_leg]
    assert faults > 0  # the plan actually injected something
    for leg, outcome in outcomes.items():
        assert outcome == (signature, retries, faults), (
            f"{leg} diverges from {baseline_leg}: {outcome} != "
            f"{(signature, retries, faults)}"
        )
