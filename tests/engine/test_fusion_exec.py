"""Fused execution: the lint advisories actually run as single barriers."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.core import RunContext
from repro.engine import pipeline_factory

from tests.conftest import hash_tree, make_context

FUSED_LABELS = ["I", "II+III", "IV", "V", "VI+VII", "VIII", "IX", "X+XI"]


def _run(policy: str, root: Path, tiny_dataset_dir: Path, **kwargs) -> RunContext:
    ctx = make_context(root, **kwargs)
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    pipeline_factory(policy)().run(ctx)
    return ctx


@pytest.fixture(scope="module")
def fused_run(
    tmp_path_factory: pytest.TempPathFactory, tiny_dataset_dir: Path
) -> tuple[RunContext, object]:
    root = tmp_path_factory.mktemp("fused") / "ws"
    ctx = make_context(root)
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    from repro.observability.tracer import Tracer

    ctx.tracer = Tracer()
    result = pipeline_factory("full-parallel-fused")().run(ctx)
    return ctx, result


def test_fused_run_matches_sequential_artifacts(
    fused_run, tmp_path: Path, tiny_dataset_dir: Path
) -> None:
    fused_ctx, _ = fused_run
    seq_ctx = _run("seq-optimized", tmp_path / "seq", tiny_dataset_dir)
    assert hash_tree(fused_ctx.workspace.work_dir) == hash_tree(
        seq_ctx.workspace.work_dir
    )


def test_fused_stage_durations_use_fused_labels(fused_run) -> None:
    _, result = fused_run
    assert list(result.stage_durations) == FUSED_LABELS


def test_fused_stage_spans_cover_merged_members(fused_run) -> None:
    _, result = fused_run
    trace = result.trace
    assert trace is not None
    stage_spans = {s.name: s for s in trace.spans if s.kind == "stage"}
    assert set(stage_spans) == set(FUSED_LABELS)
    fused = stage_spans["II+III"]
    assert fused.attributes.get("strategy") == "fused"
    # Process spans of both merged stages nest under the one barrier.
    process_stages = {
        s.attributes.get("stage") for s in trace.spans if s.kind == "process"
    }
    assert "II+III" in process_stages
    assert "II" not in process_stages and "III" not in process_stages


def test_fused_process_timings_cover_optimized_order(fused_run) -> None:
    from repro.core.registry import OPTIMIZED_ORDER

    _, result = fused_run
    timed = sorted(t.pid for t in result.processes)
    assert timed == sorted(OPTIMIZED_ORDER)
