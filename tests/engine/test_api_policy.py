"""The redesigned composition API: policies and builders end-to-end."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

import repro
from repro.core.registry import OPTIMIZED_ORDER
from repro.engine import PipelineBuilder, run_graph
from repro.engine.policy import SequentialPolicy

from tests.conftest import make_context


@pytest.fixture()
def seeded_root(tmp_path: Path, tiny_dataset_dir: Path) -> Path:
    root = tmp_path / "ws"
    (root / "input").mkdir(parents=True)
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, root / "input" / src.name)
    return root


def test_top_level_exports() -> None:
    import repro.engine as engine

    assert repro.PipelineBuilder is engine.PipelineBuilder
    assert repro.SchedulingPolicy is engine.SchedulingPolicy
    assert repro.TaskGraph is engine.TaskGraph
    assert repro.policy_by_name is engine.policy_by_name
    assert repro.policy_names is engine.policy_names


def test_run_accepts_policy_instance(seeded_root: Path) -> None:
    policy = SequentialPolicy(OPTIMIZED_ORDER, name="my-order")
    result = repro.run(seeded_root, policy=policy, response_periods=12)
    assert result.implementation == "my-order"
    assert sorted(t.pid for t in result.processes) == sorted(OPTIMIZED_ORDER)


def test_run_accepts_builder_with_custom_task(seeded_root: Path) -> None:
    marker = seeded_root / "qc-marker.txt"

    def write_marker(ctx, result) -> None:
        marker.write_text("checked\n", encoding="utf-8")

    builder = PipelineBuilder(name="qc-only")
    builder.add_processes([0, 1, 2, 3])
    builder.add_task("qc", write_marker, after=["P3"])
    result = repro.run(seeded_root, policy=builder, response_periods=12)
    assert result.implementation == "qc-only"
    assert marker.read_text() == "checked\n"
    # The custom task ran after P3, in its own derived barrier region.
    assert "qc" not in result.stage_durations  # custom tasks have no pid...
    assert any(label.startswith("G") for label in result.stage_durations)


def test_run_graph_convenience(tmp_path: Path, tiny_dataset_dir: Path) -> None:
    ctx = make_context(tmp_path / "ws")
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    builder = PipelineBuilder(name="subset")
    builder.add_processes([0, 1, 2, 3])
    result = run_graph(builder, ctx)
    assert result.implementation == "subset"
    assert sorted(t.pid for t in result.processes) == [0, 1, 2, 3]
    # P3's separated per-component files exist; later stages never ran.
    assert any(ctx.workspace.work_dir.rglob("*.v1"))
    assert not any(ctx.workspace.work_dir.rglob("*.v2"))


def test_run_graph_names_override(tmp_path: Path, tiny_dataset_dir: Path) -> None:
    ctx = make_context(tmp_path / "ws")
    for src in tiny_dataset_dir.glob("*.v1"):
        shutil.copy2(src, ctx.workspace.input_dir / src.name)
    builder = PipelineBuilder(name="ignored")
    builder.add_process(0)
    result = run_graph(builder, ctx, name="renamed")
    assert result.implementation == "renamed"
