"""PipelineBuilder / TaskGraph wiring unit tests."""

from __future__ import annotations

import pytest

from repro.core.dependencies import build_process_graph
from repro.core.registry import OPTIMIZED_ORDER
from repro.core.stages import STAGES
from repro.engine import (
    CUSTOM,
    LOOP,
    SEQ,
    TASK,
    PipelineBuilder,
    Region,
    Task,
    TaskGraph,
)
from repro.errors import DependencyError, StageOrderError


def _noop(ctx, result) -> None:
    pass


class TestBuilderWiring:
    def test_process_edges_come_from_registry(self):
        builder = PipelineBuilder()
        builder.add_processes(OPTIMIZED_ORDER)
        graph = builder.build()
        derived = build_process_graph(list(OPTIMIZED_ORDER))
        expected = {(f"P{a}", f"P{b}") for a, b in derived.edges}
        assert set(graph.edges) == expected

    def test_unknown_pid_rejected(self):
        builder = PipelineBuilder()
        with pytest.raises(DependencyError, match="unknown process id 99"):
            builder.add_process(99)

    def test_custom_strategy_rejected_for_processes(self):
        builder = PipelineBuilder()
        with pytest.raises(DependencyError, match="invalid process strategy"):
            builder.add_process(0, strategy=CUSTOM)

    def test_duplicate_task_name_rejected(self):
        builder = PipelineBuilder()
        builder.add_process(0)
        with pytest.raises(DependencyError, match="duplicate task name"):
            builder.add_process(0)

    def test_custom_task_edges_are_explicit_only(self):
        builder = PipelineBuilder()
        builder.add_processes([0, 1])
        check = builder.add_task("qc", _noop, after=["P1"])
        graph = builder.build()
        assert graph.has_edge("P1", "qc")
        assert not graph.has_edge("P0", "qc")
        assert graph.task("qc") is check

    def test_after_accepts_task_str_and_int(self):
        builder = PipelineBuilder()
        p0 = builder.add_process(0)
        builder.add_process(1)
        t = builder.add_task("t", _noop)
        builder.after(p0, t)
        builder.after(1, "t")
        graph = builder.build()
        assert graph.has_edge("P0", "t") and graph.has_edge("P1", "t")

    def test_wiring_unknown_task_rejected(self):
        builder = PipelineBuilder()
        builder.add_process(0)
        with pytest.raises(DependencyError, match="unknown task 'ghost'"):
            builder.after("ghost", "P0")

    def test_self_dependency_rejected(self):
        builder = PipelineBuilder()
        builder.add_process(0)
        with pytest.raises(DependencyError, match="cannot depend on itself"):
            builder.after("P0", 0)

    def test_cycle_detected_at_build(self):
        builder = PipelineBuilder()
        builder.add_task("a", _noop)
        builder.add_task("b", _noop, after=["a"])
        builder.after("b", "a")
        with pytest.raises(DependencyError, match="cycle"):
            builder.build()


class TestGraphLayering:
    def test_layers_match_dependency_generations(self):
        from repro.core.dependencies import parallelizable_sets

        builder = PipelineBuilder()
        builder.add_processes(OPTIMIZED_ORDER)
        graph = builder.build()
        layered = [[t.pid for t in layer] for layer in graph.layers()]
        assert layered == parallelizable_sets(OPTIMIZED_ORDER)

    def test_derive_regions_labels_and_coverage(self):
        builder = PipelineBuilder()
        builder.add_processes(OPTIMIZED_ORDER)
        graph = builder.build()
        regions = graph.derive_regions()
        assert [r.label for r in regions] == [
            f"G{i + 1}" for i in range(len(regions))
        ]
        scheduled = sorted(pid for r in regions for pid in r.process_ids)
        assert scheduled == sorted(OPTIMIZED_ORDER)
        graph.validate_regions(regions)

    def test_region_strategy_inference(self):
        seq = Task("a", strategy=SEQ)
        task = Task("b", strategy=TASK)
        loop = Task("c", strategy=LOOP)
        from repro.engine.graph import _region_strategy

        assert _region_strategy([seq]) == SEQ
        assert _region_strategy([task, task]) == "tasks"
        assert _region_strategy([seq, task]) == "tasks"
        assert _region_strategy([loop]) == LOOP
        assert _region_strategy([loop, task]) == "fused"


class TestValidateRegions:
    def _graph(self) -> TaskGraph:
        builder = PipelineBuilder()
        builder.add_task("a", _noop)
        builder.add_task("b", _noop, after=["a"])
        return builder.build()

    def test_missing_task_rejected(self):
        graph = self._graph()
        plan = [Region("only-a", (graph.task("a"),), SEQ)]
        with pytest.raises(StageOrderError, match="does not schedule"):
            graph.validate_regions(plan)

    def test_duplicate_task_rejected(self):
        graph = self._graph()
        a = graph.task("a")
        plan = [
            Region("one", (a,), SEQ),
            Region("two", (a, graph.task("b")), SEQ),
        ]
        with pytest.raises(StageOrderError, match="more than one region"):
            graph.validate_regions(plan)

    def test_backward_edge_rejected(self):
        graph = self._graph()
        plan = [
            Region("late", (graph.task("b"),), SEQ),
            Region("early", (graph.task("a"),), SEQ),
        ]
        with pytest.raises(StageOrderError, match="before its dependency"):
            graph.validate_regions(plan)

    def test_dependent_region_members_rejected(self):
        graph = self._graph()
        plan = [Region("both", (graph.task("a"), graph.task("b")), SEQ)]
        with pytest.raises(StageOrderError, match="must be independent"):
            graph.validate_regions(plan)

    def test_unknown_task_rejected(self):
        graph = self._graph()
        plan = [
            Region("one", (graph.task("a"),), SEQ),
            Region("two", (graph.task("b"), Task("ghost")), SEQ),
        ]
        with pytest.raises(StageOrderError, match="unknown task 'ghost'"):
            graph.validate_regions(plan)


class TestFusion:
    def _stage_regions(self) -> tuple[TaskGraph, list[Region]]:
        builder = PipelineBuilder()
        regions = []
        for stage in STAGES:
            members = tuple(builder.add_process(pid) for pid in stage.processes)
            regions.append(Region(stage.name, members, SEQ))
        return builder.build(), regions

    def test_fusible_matches_lint_advisories(self):
        # The repro-lint schedule check flags adjacent Fig. 9 stages
        # with no crossing dependency edge; fusible() is the same test.
        graph, regions = self._stage_regions()
        process_graph = build_process_graph(list(OPTIMIZED_ORDER))
        for earlier, later in zip(regions, regions[1:]):
            crossing = any(
                process_graph.has_edge(a, b)
                for a in earlier.process_ids
                for b in later.process_ids
            )
            assert graph.fusible(earlier, later) == (not crossing)

    def test_greedy_fusion_of_fig9_stages(self):
        graph, regions = self._stage_regions()
        fused = graph.fuse_regions(regions)
        assert [r.label for r in fused] == [
            "I", "II+III", "IV", "V", "VI+VII", "VIII", "IX", "X+XI",
        ]
        # A fused plan is still a valid barrier plan.
        graph.validate_regions(fused)

    def test_fusion_preserves_membership(self):
        graph, regions = self._stage_regions()
        fused = graph.fuse_regions(regions)
        before = sorted(pid for r in regions for pid in r.process_ids)
        after = sorted(pid for r in fused for pid in r.process_ids)
        assert before == after
