"""Scheduling-policy registry and plan-derivation tests.

The plans must match the derivation ``repro-lint``'s schedule check
trusts: the Fig. 9 stage layout, the declaration-derived layering of
:func:`parallelizable_sets`, and the stage-merge advisories.
"""

from __future__ import annotations

import pytest

from repro.core import implementation_by_name
from repro.core.dependencies import parallelizable_sets
from repro.core.registry import OPTIMIZED_ORDER, ORIGINAL_ORDER
from repro.core.stages import FULL_PARALLEL_STAGES, PARTIAL_PARALLEL_STAGES, STAGES
from repro.engine import (
    PipelineBuilder,
    SchedulingPolicy,
    TaskGraph,
    pipeline_factory,
    policy_by_name,
    policy_names,
    register_policy,
    resolve_policy,
)
from repro.engine.policy import POLICIES, SequentialPolicy
from repro.errors import PipelineError


class TestRegistry:
    def test_paper_schemes_are_registered(self):
        names = policy_names()
        for name in (
            "seq-original",
            "seq-optimized",
            "partial-parallel",
            "full-parallel",
            "full-parallel-fused",
            "dag-parallel",
            "cluster-parallel",
            "wavefront-parallel",
            "incremental",
        ):
            assert name in names

    def test_unknown_policy_lists_names_and_suggests(self):
        with pytest.raises(ValueError) as excinfo:
            policy_by_name("full-paralel")
        message = str(excinfo.value)
        assert "unknown policy 'full-paralel'" in message
        assert "seq-optimized" in message
        assert "did you mean 'full-parallel'?" in message

    def test_unknown_implementation_lists_names_and_suggests(self):
        with pytest.raises(ValueError) as excinfo:
            implementation_by_name("ful-parallel")
        message = str(excinfo.value)
        assert "known" in message
        assert "did you mean 'full-parallel'?" in message

    def test_pipeline_factory_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown policy"):
            pipeline_factory("bogus")
        factory = pipeline_factory("seq-optimized")
        impl = factory()
        assert impl.name == "seq-optimized"
        assert factory() is not impl  # fresh instance per call

    def test_register_policy_extends_the_registry(self):
        name = "test-registered-policy"
        try:
            register_policy(
                name, lambda: SequentialPolicy(OPTIMIZED_ORDER, name=name)
            )
            assert name in policy_names()
            assert policy_by_name(name).name == name
        finally:
            POLICIES.pop(name, None)

    def test_resolve_policy_coercions(self):
        assert resolve_policy("seq-optimized").name == "seq-optimized"
        policy = SequentialPolicy(OPTIMIZED_ORDER, name="mine")
        assert resolve_policy(policy) is policy
        builder = PipelineBuilder(name="built")
        builder.add_process(0)
        assert resolve_policy(builder).name == "built"
        assert resolve_policy(builder.build()).name == "custom"
        with pytest.raises(ValueError, match="policy must be"):
            resolve_policy(42)


def _plan(name: str):
    policy = policy_by_name(name)
    graph, regions = policy.plan(ctx=None)
    return graph, regions


class TestPlans:
    @pytest.mark.parametrize(
        "name",
        [
            "seq-original",
            "seq-optimized",
            "partial-parallel",
            "full-parallel",
            "full-parallel-fused",
            "dag-parallel",
            "cluster-parallel",
        ],
    )
    def test_every_static_plan_validates(self, name: str):
        graph, regions = _plan(name)
        graph.validate_regions(regions)

    def test_sequential_plans_follow_their_orders(self):
        for name, order in (
            ("seq-original", ORIGINAL_ORDER),
            ("seq-optimized", OPTIMIZED_ORDER),
        ):
            _, regions = _plan(name)
            assert [r.label for r in regions] == [f"P{pid}" for pid in order]
            assert all(len(r.tasks) == 1 for r in regions)

    def test_staged_plans_follow_fig9(self):
        for name in ("partial-parallel", "full-parallel"):
            _, regions = _plan(name)
            assert [r.label for r in regions] == [s.name for s in STAGES]
            for region, stage in zip(regions, STAGES):
                assert region.process_ids == stage.processes

    def test_partial_parallel_strategies_match_stage_table(self):
        _, regions = _plan("partial-parallel")
        for region, stage in zip(regions, STAGES):
            if stage.name in PARTIAL_PARALLEL_STAGES and stage.partial_strategy in (
                "tasks",
                "loop",
            ):
                assert region.strategy == stage.partial_strategy
            else:
                assert region.strategy == "seq"

    def test_full_parallel_strategies_match_stage_table(self):
        _, regions = _plan("full-parallel")
        for region, stage in zip(regions, STAGES):
            if stage.name in FULL_PARALLEL_STAGES:
                assert region.strategy == stage.full_strategy
            else:
                assert region.strategy == "seq"

    def test_fused_plan_executes_the_lint_advisories(self):
        _, regions = _plan("full-parallel-fused")
        assert [r.label for r in regions] == [
            "I", "II+III", "IV", "V", "VI+VII", "VIII", "IX", "X+XI",
        ]
        scheduled = sorted(pid for r in regions for pid in r.process_ids)
        assert scheduled == sorted(OPTIMIZED_ORDER)

    def test_derived_plan_matches_parallelizable_sets(self):
        graph, regions = _plan("dag-parallel")
        layers = parallelizable_sets(OPTIMIZED_ORDER)
        assert len(regions) == len(layers)
        for region, layer in zip(regions, layers):
            assert sorted(region.process_ids) == sorted(layer)
        # The derivation needs fewer barriers than the Fig. 9 plan —
        # the same observation the lint advisory reports.
        assert len(regions) < len(STAGES)

    def test_cluster_plan_is_a_three_task_chain(self):
        graph, regions = _plan("cluster-parallel")
        assert [r.label for r in regions] == ["prologue", "ranks", "epilogue"]
        assert graph.has_edge("prologue", "ranks")
        assert graph.has_edge("ranks", "epilogue")

    @pytest.mark.parametrize("name", ["wavefront-parallel", "incremental"])
    def test_dynamic_policies_refuse_static_plans(self, name: str):
        policy = policy_by_name(name)
        with pytest.raises(PipelineError, match="schedules dynamically"):
            policy.plan(ctx=None)
        # ...but still resolve to a runnable implementation.
        assert policy.pipeline().name == name

    def test_plan_types(self):
        graph, regions = _plan("full-parallel")
        assert isinstance(graph, TaskGraph)
        assert isinstance(policy_by_name("full-parallel"), SchedulingPolicy)
