"""Error-path ergonomics: did-you-mean lookups, the ``implementation=``
deprecation shim, duplicate-registration diagnostics, fuse labels."""

from __future__ import annotations

import pytest

from repro.core.runner import PipelineImplementation
from repro.engine.graph import PipelineBuilder
from repro.engine.policy import policy_by_name, resolve_policy
from repro.errors import DependencyError


class TestDidYouMean:
    def test_policy_by_name_suggests_closest(self):
        with pytest.raises(ValueError) as err:
            policy_by_name("seq-orignal")
        message = str(err.value)
        assert "unknown policy 'seq-orignal'" in message
        assert "did you mean 'seq-original'?" in message

    def test_policy_by_name_lists_known_without_a_match(self):
        with pytest.raises(ValueError) as err:
            policy_by_name("zzz")
        message = str(err.value)
        assert "known:" in message and "dag-parallel" in message
        assert "did you mean" not in message

    def test_resolve_policy_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="got int"):
            resolve_policy(7)


class TestImplementationShim:
    def test_implementation_string_warns_and_resolves(self):
        from repro.api import _resolve_pipeline

        with pytest.warns(DeprecationWarning, match="policy='seq-optimized'"):
            pipeline = _resolve_pipeline("seq-optimized", None)
        assert isinstance(pipeline, PipelineImplementation)

    def test_both_set_is_an_error(self):
        from repro.api import _resolve_pipeline

        with pytest.raises(ValueError, match="not both"):
            _resolve_pipeline("seq-optimized", "dag-parallel")

    def test_bad_implementation_type_is_an_error(self):
        from repro.api import _resolve_pipeline

        with pytest.raises(ValueError, match="got int"):
            _resolve_pipeline(7, None)

    def test_policy_path_does_not_warn(self):
        import warnings

        from repro.api import _resolve_pipeline

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipeline = _resolve_pipeline(None, "seq-optimized")
        assert isinstance(pipeline, PipelineImplementation)


class TestDuplicateRegistrationSites:
    def test_error_names_both_sites(self):
        builder = PipelineBuilder()
        builder.add_task("dup", lambda ctx, result: None)  # first site
        with pytest.raises(DependencyError) as err:
            builder.add_task("dup", lambda ctx, result: None)  # second site
        message = str(err.value)
        assert "duplicate task name 'dup'" in message
        assert "first registered at" in message
        assert "registered again at" in message
        # Both sites point at this file with real line numbers.
        assert message.count("test_policy_errors.py:") == 2
        first = builder.registration_site("dup")
        assert first is not None and first in message


class TestFuseLabelDeterminism:
    def test_fused_labels_sorted_by_layer_then_name(self):
        from repro.engine.policy import policy_by_name

        graph, regions = policy_by_name("full-parallel-fused").plan(None)
        labels = [r.label for r in regions if "+" in r.label]
        assert labels == ["II+III", "VI+VII", "X+XI"]

    def test_fuse_is_deterministic_across_rebuilds(self):
        from repro.engine.policy import policy_by_name

        plans = [policy_by_name("full-parallel-fused").plan(None) for _ in range(3)]
        label_seqs = [[r.label for r in regions] for _, regions in plans]
        assert label_seqs[0] == label_seqs[1] == label_seqs[2]
