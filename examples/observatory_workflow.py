#!/usr/bin/env python
"""Observatory workflow: from a fresh event to engineering products.

The scenario motivating the paper's introduction: a seismic event has
just been recorded by the network and the observatory must turn the
raw accelerograms into hazard products — peak-motion tables for the
situation report, response spectra for structural engineers, GEM
exports for risk modeling, and the three plot sets.

Run:  python examples/observatory_workflow.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro import EventSpec, FullyParallel, RunContext, generate_event_dataset
from repro.core.context import ParallelSettings
from repro.formats.gem import read_gem
from repro.formats.params import read_filter_params
from repro.formats.response import read_response
from repro.formats.v2 import read_v2
from repro.units import gal_to_g


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-obs-")

    # A moderately strong local event, eight triggered stations.
    event = EventSpec("EV-LOCAL", "2024-06-01", 6.1, 8, 120_000, seed=2024_06_01)
    ctx = RunContext.for_directory(
        out_dir, parallel=ParallelSettings(num_workers=4)
    )
    manifest = generate_event_dataset(event, ctx.workspace.input_dir)
    print(
        f"Event {event.event_id} (M{event.magnitude}): {manifest.n_files} stations, "
        f"{manifest.total_points:,} data points"
    )

    result = FullyParallel().run(ctx)
    print(f"Processed in {result.total_s:.1f} s (fully-parallelized pipeline)\n")

    # --- situation report: PGA per station --------------------------------
    print("Situation report — peak horizontal acceleration:")
    print(f"{'station':>8} {'dist km':>8} {'PGA gal':>9} {'PGA %g':>7}")
    for station in manifest.stations:
        pga = 0.0
        for comp in ("l", "t"):
            rec = read_v2(ctx.workspace.component_v2(station.code, comp))
            pga = max(pga, abs(rec.peaks.pga))
        print(
            f"{station.code:>8} {station.distance_km:8.1f} {pga:9.2f} "
            f"{100 * gal_to_g(pga):7.2f}"
        )

    # --- engineer's view: worst-case design spectrum ------------------------
    print("\nEnvelope 5%-damped SA across the network (gal):")
    periods = None
    envelope = None
    for station in manifest.stations:
        for comp in ("l", "t"):
            rec = read_response(ctx.workspace.component_r(station.code, comp))
            d_idx = int(np.argmin(np.abs(rec.dampings - 0.05)))
            if envelope is None:
                periods = rec.periods
                envelope = rec.sa[d_idx].copy()
            else:
                envelope = np.maximum(envelope, rec.sa[d_idx])
    for t in (0.1, 0.3, 0.5, 1.0, 3.0):
        idx = int(np.argmin(np.abs(periods - t)))
        print(f"  T = {t:4.1f} s : SA = {envelope[idx]:8.2f} gal")

    # --- record quality: the per-trace filter corners P10 chose -------------
    params = read_filter_params(ctx.workspace.work("filter_corrected.par"))
    fpls = [spec.f_pass_low for spec in params.overrides.values()]
    print(
        f"\nDefinitive low-frequency corners (FPL): "
        f"min {min(fpls):.3f} Hz, median {sorted(fpls)[len(fpls)//2]:.3f} Hz, "
        f"max {max(fpls):.3f} Hz across {len(fpls)} traces"
    )

    # --- downstream exports ---------------------------------------------------
    gem = read_gem(ctx.workspace.gem(manifest.stations[0].code, "l", "R", "A"))
    n_gem = len(list(ctx.workspace.work_dir.glob("*.gem")))
    print(f"\n{n_gem} GEM files exported (18 per station); e.g. "
          f"{manifest.stations[0].code}lRA.gem holds {gem.values.size} SA samples")
    n_ps = len(list(ctx.workspace.work_dir.glob("*.ps")))
    print(f"{n_ps} PostScript plot sets rendered under {ctx.workspace.work_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
