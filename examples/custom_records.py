#!/usr/bin/env python
"""Using the library as a toolkit, without the pipeline.

Processes a single accelerogram "by hand" through the same kernels the
pipeline uses: baseline correction, the Hamming band-pass, integration
to velocity/displacement, Fourier spectra, the FPL/FSL corner search,
and a response spectrum by all three solvers — useful when working
with records that do not come from a V1 dataset.

Run:  python examples/custom_records.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.dsp import (
    BandPassSpec,
    acceleration_to_motion,
    baseline_correct,
    hamming_bandpass,
    peak_ground_motion,
)
from repro.spectra import (
    ResponseSpectrumConfig,
    corners_from_inflection,
    find_inflection_point,
    motion_fourier_spectra,
    response_spectrum,
)
from repro.spectra.response import default_periods
from repro.synth import BruneSource, StochasticSimulator


def main() -> int:
    # Simulate a raw record (stand-in for reading your own data).
    dt = 0.01
    simulator = StochasticSimulator(source=BruneSource(magnitude=5.8))
    raw = simulator.simulate(12_000, dt, distance_km=25.0, rng=np.random.default_rng(42))
    raw += 2.0  # pretend the instrument has a DC offset
    print(f"Raw record: {raw.size} samples at {1/dt:.0f} Hz, "
          f"|peak| = {np.abs(raw).max():.1f} gal, mean = {raw.mean():+.2f} gal")

    # First-pass correction with default corners.
    corrected = baseline_correct(raw)
    corrected = hamming_bandpass(corrected, dt)
    acc, vel, disp = acceleration_to_motion(corrected, dt)
    peaks = peak_ground_motion(acc, vel, disp, dt)
    print(f"After default correction: PGA {abs(peaks.pga):.1f} gal at "
          f"{peaks.pga_time:.2f} s, PGV {abs(peaks.pgv):.2f} cm/s, "
          f"PGD {abs(peaks.pgd):.3f} cm")

    # Find the record-specific FPL/FSL from the velocity spectrum.
    periods, _, fas_vel, _ = motion_fourier_spectra(acc, vel, disp, dt)
    inflection = find_inflection_point(periods, fas_vel)
    tag = "found" if inflection.found else "fallback"
    print(f"Velocity-spectrum inflection ({tag}): T = {inflection.period:.2f} s "
          f"-> FPL = {inflection.fpl:.3f} Hz, FSL = {inflection.fsl:.3f} Hz")

    # Definitive correction with the recovered corners.
    spec = corners_from_inflection(inflection, BandPassSpec(0.05, 0.1, 25.0, 30.0))
    definitive = hamming_bandpass(baseline_correct(raw), dt, spec)
    acc2, vel2, disp2 = acceleration_to_motion(definitive, dt)

    # Response spectrum by all three solvers (cross-check).
    config_periods = default_periods(30, 0.05, 10.0)
    print("\n5%-damped SD (cm) at selected periods, by solver:")
    print(f"{'T (s)':>7} {'NigamJennings':>14} {'Duhamel':>10} {'FreqDomain':>11}")
    results = {}
    for method in ("nigam_jennings", "duhamel", "frequency_domain"):
        config = ResponseSpectrumConfig(
            periods=config_periods, dampings=(0.05,), method=method
        )
        results[method] = response_spectrum(acc2, dt, config)
    for t in (0.1, 0.5, 1.0, 5.0):
        idx = int(np.argmin(np.abs(config_periods - t)))
        row = [results[m].sd[0, idx] for m in ("nigam_jennings", "duhamel", "frequency_domain")]
        print(f"{config_periods[idx]:7.2f} {row[0]:14.4f} {row[1]:10.4f} {row[2]:11.4f}")

    spread = max(
        abs(results["nigam_jennings"].sd - results["frequency_domain"].sd).max()
        / results["nigam_jennings"].sd.max(),
        abs(results["nigam_jennings"].sd - results["duhamel"].sd).max()
        / results["nigam_jennings"].sd.max(),
    )
    print(f"\nWorst cross-solver spread: {100 * spread:.2f}% of peak SD")
    return 0


if __name__ == "__main__":
    sys.exit(main())
