#!/usr/bin/env python
"""Scaling study on the simulated evaluation platform.

Uses the calibrated cost model plus the machine simulator to explore
questions the paper's testbed could not: speedup versus worker count,
versus disk capacity, and versus problem size well beyond the six
catalog events — the "scaling our approach to larger experimental
datasets" direction of §VIII.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import sys

from repro.bench.ablation import amdahl_bound, sweep_io_capacity, sweep_workers
from repro.bench.taskgraphs import simulate_implementation
from repro.bench.workloads import EventWorkload, paper_workloads
from repro.synth.events import distribute_points


def bar(value: float, scale: float = 8.0) -> str:
    return "#" * max(1, int(round(value * scale)))


def main() -> int:
    largest = paper_workloads()[-1]

    print("Speedup vs logical processors (largest catalog event):")
    for point in sweep_workers(counts=(1, 2, 4, 6, 8, 12, 16, 24)):
        print(f"  {int(point.value):>3} LPs: {point.speedup:5.2f}x  {bar(point.speedup)}")
    print(f"  critical-path bound (infinite LPs): {amdahl_bound():.2f}x")

    print("\nSpeedup vs disk concurrent-stream capacity:")
    for point in sweep_io_capacity():
        print(f"  C_io={point.value:4.1f}: {point.speedup:5.2f}x  {bar(point.speedup)}")

    print("\nSpeedup vs problem size (synthetic mega-events, 12 LPs):")
    for n_files, total in ((10, 200_000), (25, 500_000), (50, 1_000_000),
                           (100, 2_000_000), (200, 4_000_000)):
        points = distribute_points(total, n_files, 7_300, 35_000, seed=total)
        workload = EventWorkload(f"MEGA-{total}", f"{total:,} pts", tuple(points))
        seq = simulate_implementation("seq-original", workload).makespan_s
        full = simulate_implementation("full-parallel", workload).makespan_s
        print(
            f"  {n_files:>4} files / {total:>9,} pts: seq {seq:8.0f} s, "
            f"par {full:7.0f} s -> {seq / full:4.2f}x"
        )

    print(
        "\nReading: the pipeline saturates near its I/O-bound stages; past"
        " ~12 LPs extra workers buy almost nothing, and growth in problem"
        " size asymptotes toward the quasi-logarithmic trend of Fig. 13."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
