#!/usr/bin/env python
"""Event study: the paper's four implementations on one catalog event.

Reproduces, at laptop scale, the methodology behind Table I: the same
event is processed by Sequential Original, Sequential Optimized,
Partially Parallelized and Fully Parallelized; wall-clock times are
compared and the outputs verified byte-identical.

Run:  python examples/event_study.py [event_id] [scale]
      e.g.  python examples/event_study.py EV-NOV18 0.05
"""

from __future__ import annotations

import hashlib
import sys
import tempfile
from pathlib import Path

from repro import IMPLEMENTATIONS, RunContext
from repro.bench.workloads import materialize, scaled_workload
from repro.core.context import ParallelSettings
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.events import paper_event


def tree_digest(work_dir: Path) -> str:
    """One digest over every artifact the run produced."""
    h = hashlib.sha256()
    for p in sorted(work_dir.rglob("*")):
        if p.is_file():
            h.update(p.name.encode())
            h.update(p.read_bytes())
    return h.hexdigest()[:16]


def main() -> int:
    event_id = sys.argv[1] if len(sys.argv) > 1 else "EV-NOV18"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05

    event = paper_event(event_id)
    workload = scaled_workload(event, scale)
    print(
        f"Event {event_id} at scale {scale:g}: {workload.n_files} files, "
        f"{workload.total_points:,} data points\n"
    )

    base = Path(tempfile.mkdtemp(prefix="repro-event-study-"))
    times: dict[str, float] = {}
    digests: dict[str, str] = {}
    for impl_cls in IMPLEMENTATIONS:
        ctx = RunContext.for_directory(
            base / impl_cls.name,
            response_config=ResponseSpectrumConfig(
                periods=default_periods(40), dampings=(0.05,)
            ),
            parallel=ParallelSettings(num_workers=4),
        )
        materialize(event, workload, ctx.workspace.input_dir)
        result = impl_cls().run(ctx)
        times[impl_cls.name] = result.total_s
        digests[impl_cls.name] = tree_digest(ctx.workspace.work_dir)
        print(f"{impl_cls.name:>18}: {result.total_s:7.2f} s   digest {digests[impl_cls.name]}")

    base_time = times["seq-original"]
    print("\nRelative to Sequential Original:")
    for name, t in times.items():
        print(f"{name:>18}: {base_time / t:5.2f}x")

    unique = set(digests.values())
    if len(unique) == 1:
        print("\nAll four implementations produced byte-identical outputs. [OK]")
        return 0
    print(f"\nOutputs differ between implementations: {digests}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
