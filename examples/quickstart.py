#!/usr/bin/env python
"""Quickstart: generate a synthetic event and process it end-to-end.

Creates a three-station event, runs the fully-parallelized pipeline on
it through the one-call :func:`repro.run` facade (recording a span
trace on the way), and prints the headline engineering quantities:
per-station peak ground motion and the 5%-damped spectral acceleration
at a few building periods.

Run:  python examples/quickstart.py [output_dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import EventSpec
from repro.formats.response import read_response
from repro.formats.v2 import read_v2


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-quickstart-")

    # 1+2. A synthetic M5.6 event recorded by three stations (~30k
    # points), processed by the fully-parallelized pipeline — one call.
    event = EventSpec("QUICKSTART", "2024-03-15", 5.6, 3, 30_000, seed=20240315)
    trace_path = Path(out_dir) / "quickstart.trace.json"
    result = repro.run(event, "full-parallel", workspace=out_dir, trace=trace_path)
    ctx = repro.RunContext.for_directory(out_dir)
    print(f"Workspace: {out_dir}\n")
    print(f"Pipeline finished in {result.total_s:.2f} s")
    for line in result.summary_lines()[1:]:
        print(line)
    n_spans = len(result.trace.spans) if result.trace else 0
    print(f"\nSpan trace ({n_spans} spans) written to {trace_path}")
    print("  -> open it in chrome://tracing or https://ui.perfetto.dev")

    # 3. Read back the engineering products.
    print("\nPeak ground motion (definitive corrected records):")
    print(f"{'station':>8} {'comp':>4} {'PGA gal':>10} {'PGV cm/s':>10} {'PGD cm':>8}")
    for station in ctx.stations():
        for comp in ("l", "t", "v"):
            rec = read_v2(ctx.workspace.component_v2(station, comp))
            p = rec.peaks
            print(
                f"{station:>8} {comp:>4} {abs(p.pga):10.2f} {abs(p.pgv):10.3f} "
                f"{abs(p.pgd):8.4f}"
            )

    print("\n5%-damped spectral acceleration (gal) at common building periods:")
    building_periods = [0.2, 0.5, 1.0, 2.0]
    header = " ".join(f"T={t:.1f}s" for t in building_periods)
    print(f"{'station':>8} {'comp':>4}  {header}")
    for station in ctx.stations():
        for comp in ("l", "t"):
            rec = read_response(ctx.workspace.component_r(station, comp))
            d_idx = int(np.argmin(np.abs(rec.dampings - 0.05)))
            values = [
                rec.sa[d_idx, int(np.argmin(np.abs(rec.periods - t)))]
                for t in building_periods
            ]
            cells = " ".join(f"{v:6.1f}" for v in values)
            print(f"{station:>8} {comp:>4}  {cells}")

    print(f"\nAll artifacts (V2/F/R/GEM/plots) are under {ctx.workspace.work_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
