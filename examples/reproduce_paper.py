#!/usr/bin/env python
"""Reproduce every evaluation artifact of the paper, in one run.

Regenerates Table I and Figures 11-13 in model mode (compared against
the published values), renders the figures and two schedule Gantts as
PostScript, and prints the reproduction verdict.  This is the script
version of EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.figure11 import figure11_model, render_figure11, stage_ix_share
from repro.bench.figure12 import figure12_model, render_figure12
from repro.bench.figure13 import figure13_model, render_figure13
from repro.bench.paper_data import PAPER_STAGE_SPEEDUPS
from repro.bench.render import (
    render_figure11_ps,
    render_figure12_ps,
    render_figure13_ps,
    render_schedule_ps,
)
from repro.bench.table1 import max_relative_error, render_table1, table1_model


def main() -> int:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "paper-artifacts")
    out.mkdir(parents=True, exist_ok=True)

    print("=" * 72)
    print("Table I — per-event execution times (model mode vs published)")
    print("=" * 72)
    rows = table1_model()
    print(render_table1(rows))
    worst = max_relative_error(rows)
    print(f"\nworst cell deviation from the paper: {100 * worst:.1f}%")

    print()
    print("=" * 72)
    print("Figure 11 — per-stage times and speedups (largest event)")
    print("=" * 72)
    f11 = figure11_model()
    print(render_figure11(f11))
    seq_total = next(r for r in rows if r.event_id == "EV-JUL19B").seq_original_s
    print(f"\nstage IX share of sequential-original: "
          f"{100 * stage_ix_share(f11, seq_total):.1f}% (paper: 57.2%)")
    worst_stage = max(
        (abs(r.speedup / PAPER_STAGE_SPEEDUPS[r.stage] - 1.0), r.stage)
        for r in f11
        if r.stage in PAPER_STAGE_SPEEDUPS
    )
    print(f"worst per-stage speedup deviation: {100 * worst_stage[0]:.0f}% "
          f"(stage {worst_stage[1]})")

    print()
    print("=" * 72)
    print("Figure 12 — grouped per-event times")
    print("=" * 72)
    f12 = figure12_model()
    print(render_figure12(f12))

    print()
    print("=" * 72)
    print("Figure 13 — speedup and throughput vs problem size")
    print("=" * 72)
    f13 = figure13_model()
    print(render_figure13(f13))

    # Render everything as PostScript with the library's own plotting.
    render_figure11_ps(out / "figure11.ps", f11)
    render_figure12_ps(out / "figure12.ps", f12)
    render_figure13_ps(out / "figure13.ps", f13)
    render_schedule_ps(out / "schedule_full.ps", "full-parallel")
    render_schedule_ps(out / "schedule_wavefront.ps", "wavefront-parallel")
    print(f"\nRendered figure11/12/13.ps and two schedule Gantts into {out}/")

    print()
    verdict = "PASS" if worst < 0.12 else "FAIL"
    print(f"Reproduction verdict: {verdict} "
          f"(all Table I cells within {100 * worst:.1f}% of the paper; "
          f"calibrated on one event, predicted on five)")
    return 0 if worst < 0.12 else 1


if __name__ == "__main__":
    sys.exit(main())
