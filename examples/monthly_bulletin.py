#!/usr/bin/env python
"""Monthly bulletin: batch-process a catalog of events.

The observatory's recurring workload (paper ref. [21]: hundreds of
events per month): every event in a catalog is processed through the
pipeline and summarized into the monthly seismic-activity bulletin —
peak motions, spectral highlights, intensity measures and processing
statistics.

Run:  python examples/monthly_bulletin.py [scale]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core import WavefrontParallel
from repro.core.batch import BatchRunner
from repro.core.context import ParallelSettings
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.events import EventSpec

#: A synthetic month of notable events.
JUNE_2024 = [
    EventSpec("EV-0601", "2024-06-01", 4.6, 2, 18_000, seed=240601),
    EventSpec("EV-0608", "2024-06-08", 5.2, 4, 52_000, seed=240608),
    EventSpec("EV-0613", "2024-06-13", 4.9, 3, 33_000, seed=240613),
    EventSpec("EV-0621", "2024-06-21", 5.8, 6, 96_000, seed=240621),
    EventSpec("EV-0629", "2024-06-29", 4.4, 2, 15_000, seed=240629),
]


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    root = Path(tempfile.mkdtemp(prefix="repro-bulletin-"))
    runner = BatchRunner(
        implementation=WavefrontParallel(),
        root=root,
        scale=scale,
        response_config=ResponseSpectrumConfig(
            periods=default_periods(40), dampings=(0.05,)
        ),
        parallel=ParallelSettings(num_workers=4),
    )
    bulletin = runner.run(
        JUNE_2024, title=f"Seismic activity bulletin — June 2024 (scale {scale:g})"
    )
    print(bulletin.render())
    out = root / "bulletin.txt"
    bulletin.write(out)
    print(f"\nBulletin written to {out}")
    print(f"Per-event workspaces under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
