#!/usr/bin/env python
"""Continuous monitoring: from a raw stream to processed products.

The step *before* the paper's pipeline: a station records continuously;
an STA/LTA detector finds the event, the triggered window becomes a V1
record, and the pipeline processes it.  This example simulates an hour
of three-component data with two embedded events, detects them, writes
the V1 files and runs the wavefront pipeline over the result.

Run:  python examples/continuous_monitoring.py
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro import RunContext, WavefrontParallel
from repro.detect import detect_events
from repro.formats.common import COMPONENTS, Header
from repro.formats.v1 import RawRecord, write_v1
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.source import BruneSource
from repro.synth.stochastic import StochasticSimulator


def simulate_continuous(rng, dt=0.01, hours=0.25):
    """Three components of continuous data with two embedded events."""
    n = int(hours * 3600 / dt)
    streams = {c: rng.normal(size=n) * 0.05 for c in COMPONENTS}
    truth = []
    for magnitude, at_s in ((5.4, 300.0), (4.9, 620.0)):
        sim = StochasticSimulator(source=BruneSource(magnitude=magnitude))
        at = int(at_s / dt)
        for comp in COMPONENTS:
            event = sim.simulate(4000, dt, distance_km=18.0, rng=rng,
                                 pre_event_fraction=0.0)
            scale = 0.6 if comp == "v" else 1.0
            streams[comp][at : at + event.size] += scale * event
        truth.append(at_s)
    return streams, dt, truth


def main() -> int:
    rng = np.random.default_rng(77)
    streams, dt, truth = simulate_continuous(rng)
    n = streams["l"].size
    print(f"Simulated {n * dt / 60:.0f} minutes of continuous data "
          f"with events at {truth} s\n")

    # Detect on the vertical (the usual trigger component).
    windows = detect_events(streams["v"], dt, on_threshold=4.0)
    print(f"STA/LTA found {len(windows)} event window(s):")
    for w in windows:
        print(
            f"  trigger at {w.trigger_on * dt:7.1f} s, window "
            f"[{w.start * dt:7.1f}, {w.stop * dt:7.1f}] s, "
            f"peak ratio {w.peak_ratio:.1f}"
        )

    # Cut each window into a V1 record and process the batch.
    out = tempfile.mkdtemp(prefix="repro-monitor-")
    ctx = RunContext.for_directory(
        out,
        response_config=ResponseSpectrumConfig(periods=default_periods(40),
                                               dampings=(0.05,)),
    )
    for i, w in enumerate(windows):
        station = f"TRG{i + 1:02d}"
        header = Header(
            station=station,
            event_id=f"DET-{i + 1}",
            origin_time="2024-06-01",
            magnitude=0.0,  # unknown until located
            dt=dt,
            npts=w.n_samples,
            units="GAL",
        )
        record = RawRecord(
            header=header,
            components={c: streams[c][w.start : w.stop].copy() for c in COMPONENTS},
        )
        write_v1(ctx.workspace.raw_v1(station), record)
    print(f"\nWrote {len(windows)} triggered V1 record(s) to {ctx.workspace.input_dir}")

    result = WavefrontParallel().run(ctx)
    print(f"Pipeline processed the detections in {result.total_s:.2f} s")
    from repro.formats.v2 import read_v2

    for station in ctx.stations():
        rec = read_v2(ctx.workspace.component_v2(station, "l"))
        print(f"  {station}: PGA {abs(rec.peaks.pga):6.1f} gal, "
              f"FPL {rec.f_pass_low:.3f} Hz")
    return 0


if __name__ == "__main__":
    sys.exit(main())
