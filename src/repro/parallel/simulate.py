"""Deterministic machine simulation for scheduling studies.

This container has a single CPU core, so the paper's 12-logical-
processor speedups cannot be observed as wall-clock here.  The
simulator replays a pipeline implementation's *task graph* on a model
machine and reports the makespan the schedule would achieve:

- **Heterogeneous workers** — the paper's i5-12450H is modeled as 4
  P-cores (speed 1.0), their 4 hyper-thread siblings (0.35: an HT
  sibling only adds a fraction of a core) and 4 E-cores (0.55).
- **I/O contention** — each task declares an I/O fraction; when the
  combined I/O demand of running tasks exceeds the disk's capacity,
  the I/O part of their work slows proportionally.  This is what caps
  the paper's Heavy-I/O stages near 2x while FLOPS stages reach 5x.
- **Fluid scheduling** — a dependency-aware list scheduler (longest
  work first, fastest worker first) advances a continuous-time event
  loop; rates are recomputed whenever the running set changes.

Everything is deterministic: ties break on task name, so a given graph
always yields the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError


@dataclass(frozen=True)
class SimTask:
    """One schedulable unit of work.

    ``work_s`` is the task's duration on a speed-1.0 worker with
    uncontended resources.  ``io_fraction`` and ``mem_fraction`` (both
    in [0, 1], summing to at most 1) split that work into a disk-bound
    part, a memory-bandwidth-bound part and a pure-compute remainder;
    the bound parts stretch when the running set oversubscribes the
    machine's shared capacities.  ``deps`` are names of tasks that must
    finish first.  ``stage`` tags the task for per-stage aggregation.
    """

    name: str
    work_s: float
    io_fraction: float = 0.0
    mem_fraction: float = 0.0
    deps: tuple[str, ...] = ()
    stage: str = ""

    def __post_init__(self) -> None:
        if self.work_s < 0:
            raise SchedulerError(f"task {self.name}: work must be >= 0")
        if not 0.0 <= self.io_fraction <= 1.0:
            raise SchedulerError(f"task {self.name}: io_fraction must be in [0, 1]")
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise SchedulerError(f"task {self.name}: mem_fraction must be in [0, 1]")
        if self.io_fraction + self.mem_fraction > 1.0 + 1e-12:
            raise SchedulerError(
                f"task {self.name}: io_fraction + mem_fraction must be <= 1"
            )


@dataclass(frozen=True)
class SimulatedMachine:
    """A machine model: per-worker speeds and shared-resource capacities.

    ``io_capacity`` is how many full-rate I/O streams the storage
    sustains concurrently; ``mem_capacity`` is the analogous number of
    full-rate memory-bandwidth streams.  Beyond either capacity, the
    corresponding part of each task's work stretches linearly.
    """

    speeds: tuple[float, ...]
    io_capacity: float = 2.0
    mem_capacity: float = 4.0

    def __post_init__(self) -> None:
        if not self.speeds or any(s <= 0 for s in self.speeds):
            raise SchedulerError("machine needs at least one worker with positive speed")
        if self.io_capacity <= 0:
            raise SchedulerError("io_capacity must be positive")
        if self.mem_capacity <= 0:
            raise SchedulerError("mem_capacity must be positive")

    @property
    def num_workers(self) -> int:
        """Number of logical processors."""
        return len(self.speeds)

    def restricted(self, workers: int) -> "SimulatedMachine":
        """The same machine limited to its ``workers`` fastest LPs."""
        if workers < 1:
            raise SchedulerError(f"workers must be >= 1, got {workers}")
        ordered = sorted(self.speeds, reverse=True)
        return SimulatedMachine(
            speeds=tuple(ordered[:workers]),
            io_capacity=self.io_capacity,
            mem_capacity=self.mem_capacity,
        )


def paper_machine() -> SimulatedMachine:
    """The evaluation platform: i5-12450H, 8 cores / 12 LPs.

    4 P-cores at speed 1.0, their hyper-thread siblings contributing
    0.35 each, 4 E-cores at 0.55.  Disk sustains about two full-rate
    streams (a consumer NVMe saturates quickly under the pipeline's
    many small-file accesses).
    """
    return SimulatedMachine(
        speeds=(1.0, 1.0, 1.0, 1.0, 0.55, 0.55, 0.55, 0.55, 0.35, 0.35, 0.35, 0.35),
        io_capacity=2.0,
        mem_capacity=4.0,
    )


#: Shared instance of the evaluation platform model.
PAPER_MACHINE = paper_machine()


#: Named machine models for cross-hardware prediction (§VIII: "performance
#: may be further improved on a higher-performance machine").  Speeds are
#: relative to one of the i5-12450H's P-cores.
MACHINE_PRESETS: dict[str, SimulatedMachine] = {
    # The paper's platform: 4P + 4HT + 4E, consumer NVMe.
    "paper-i5": PAPER_MACHINE,
    # A dual-core office desktop with a SATA SSD.
    "office-desktop": SimulatedMachine(
        speeds=(0.8, 0.8, 0.3, 0.3), io_capacity=1.2, mem_capacity=2.5
    ),
    # A 16-core workstation with a fast NVMe and wide memory.
    "workstation-16c": SimulatedMachine(
        speeds=(1.1,) * 16, io_capacity=4.0, mem_capacity=8.0
    ),
    # A 32-core server node: slightly lower per-core clocks, server
    # storage and many memory channels.
    "server-32c": SimulatedMachine(
        speeds=(0.9,) * 32, io_capacity=8.0, mem_capacity=16.0
    ),
}


@dataclass(frozen=True)
class TaskPlacement:
    """Where and when one task ran in a simulated schedule."""

    name: str
    worker: int
    start_s: float
    finish_s: float
    stage: str


@dataclass
class SimulationResult:
    """Outcome of one simulated schedule."""

    makespan_s: float
    placements: list[TaskPlacement] = field(default_factory=list)

    def stage_spans(self) -> dict[str, tuple[float, float]]:
        """Per-stage (first start, last finish) intervals."""
        spans: dict[str, tuple[float, float]] = {}
        for p in self.placements:
            if p.stage not in spans:
                spans[p.stage] = (p.start_s, p.finish_s)
            else:
                lo, hi = spans[p.stage]
                spans[p.stage] = (min(lo, p.start_s), max(hi, p.finish_s))
        return spans

    def stage_durations(self) -> dict[str, float]:
        """Per-stage elapsed time (last finish - first start)."""
        return {stage: hi - lo for stage, (lo, hi) in self.stage_spans().items()}


def _validate_graph(tasks: list[SimTask]) -> dict[str, SimTask]:
    by_name: dict[str, SimTask] = {}
    for task in tasks:
        if task.name in by_name:
            raise SchedulerError(f"duplicate task name {task.name!r}")
        by_name[task.name] = task
    for task in tasks:
        for dep in task.deps:
            if dep not in by_name:
                raise SchedulerError(f"task {task.name!r} depends on unknown {dep!r}")
    # Kahn's algorithm detects cycles.
    indegree = {t.name: len(t.deps) for t in tasks}
    children: dict[str, list[str]] = {t.name: [] for t in tasks}
    for t in tasks:
        for dep in t.deps:
            children[dep].append(t.name)
    queue = sorted(name for name, deg in indegree.items() if deg == 0)
    seen = 0
    while queue:
        name = queue.pop()
        seen += 1
        for child in children[name]:
            indegree[child] -= 1
            if indegree[child] == 0:
                queue.append(child)
    if seen != len(tasks):
        raise SchedulerError("task graph contains a cycle")
    return by_name


def simulate_task_graph(
    tasks: list[SimTask], machine: SimulatedMachine = PAPER_MACHINE
) -> SimulationResult:
    """Simulate the task graph on the machine; returns the schedule.

    The scheduler is a fluid-rate event loop: ready tasks (longest
    first) are placed on idle workers (fastest first); whenever the
    running set changes, per-task rates are recomputed from worker
    speed and I/O contention, and time advances to the next completion.
    """
    by_name = _validate_graph(tasks)
    if not tasks:
        return SimulationResult(makespan_s=0.0)

    remaining = {t.name: t.work_s for t in tasks}
    unmet = {t.name: set(t.deps) for t in tasks}
    children: dict[str, list[str]] = {t.name: [] for t in tasks}
    for t in tasks:
        for dep in t.deps:
            children[dep].append(t.name)

    # Ready queue: (−work, name) so heapq-like sorting puts longest first.
    ready = sorted(
        (name for name, deps in unmet.items() if not deps),
        key=lambda n: (-by_name[n].work_s, n),
    )
    running: dict[str, int] = {}  # task name -> worker index
    started: dict[str, float] = {}
    placements: list[TaskPlacement] = []
    # Workers sorted fastest-first for deterministic placement.
    worker_order = sorted(range(machine.num_workers), key=lambda w: (-machine.speeds[w], w))
    idle = list(worker_order)
    now = 0.0

    def rates() -> dict[str, float]:
        io_load = sum(by_name[name].io_fraction for name in running)
        mem_load = sum(by_name[name].mem_fraction for name in running)
        io_stretch = max(1.0, io_load / machine.io_capacity)
        mem_stretch = max(1.0, mem_load / machine.mem_capacity)
        out: dict[str, float] = {}
        for name, worker in running.items():
            task = by_name[name]
            cpu = 1.0 - task.io_fraction - task.mem_fraction
            denom = cpu + task.io_fraction * io_stretch + task.mem_fraction * mem_stretch
            out[name] = machine.speeds[worker] / denom
        return out

    guard = 0
    while ready or running:
        guard += 1
        if guard > 10 * len(tasks) + 100:
            raise SchedulerError("scheduler failed to converge (internal error)")
        # Place ready tasks on idle workers.
        while ready and idle:
            name = ready.pop(0)
            worker = idle.pop(0)
            running[name] = worker
            started[name] = now
            if remaining[name] == 0.0:
                # Zero-work tasks complete instantly; handled below.
                pass
        if not running:
            break
        rate = rates()
        # Earliest completion among running tasks.
        dt = min(
            (remaining[name] / rate[name] if rate[name] > 0 else 0.0)
            for name in running
        )
        dt = max(dt, 0.0)
        now += dt
        finished: list[str] = []
        for name in list(running):
            remaining[name] -= rate[name] * dt
            if remaining[name] <= 1e-12:
                remaining[name] = 0.0
                finished.append(name)
        for name in sorted(finished):
            worker = running.pop(name)
            idle.append(worker)
            placements.append(
                TaskPlacement(
                    name=name,
                    worker=worker,
                    start_s=started[name],
                    finish_s=now,
                    stage=by_name[name].stage,
                )
            )
            for child in children[name]:
                unmet[child].discard(name)
                if not unmet[child]:
                    ready.append(child)
        if finished:
            idle.sort(key=lambda w: (-machine.speeds[w], w))
            ready.sort(key=lambda n: (-by_name[n].work_s, n))

    if any(v > 0 for v in remaining.values()):
        raise SchedulerError("unscheduled work remains (dependency deadlock)")
    return SimulationResult(makespan_s=now, placements=placements)
