"""Timing instrumentation shared by the runtime and the pipeline.

Every pipeline run produces per-process :class:`TaskRecord` entries and
per-stage :class:`StageTiming` aggregates; the benchmark harness reads
these to build the paper's tables.  A traced run carries the same
information — and more — as spans; :func:`stage_timings_from_trace`
projects a :class:`~repro.observability.tracer.Trace` back onto these
flat aggregates so both representations stay interchangeable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.tracer import Trace


class Timer:
    """Context manager measuring wall-clock time via ``perf_counter``."""

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass(frozen=True)
class TaskRecord:
    """One timed unit of work (a pipeline process or loop body)."""

    name: str
    duration_s: float


@dataclass
class StageTiming:
    """Aggregated timing of one pipeline stage."""

    stage: str
    duration_s: float = 0.0
    tasks: list[TaskRecord] = field(default_factory=list)

    def add(self, record: TaskRecord) -> None:
        """Attach one task's timing to the stage."""
        self.tasks.append(record)

    @property
    def task_total_s(self) -> float:
        """Sum of member task durations (>= duration when parallel)."""
        return sum(t.duration_s for t in self.tasks)


def stage_timings_from_trace(trace: "Trace") -> list[StageTiming]:
    """Rebuild per-stage aggregates from a finished trace.

    Every ``stage`` span becomes one :class:`StageTiming` (duplicates,
    e.g. from a batch trace, accumulate); the work spans below it —
    ``process``, ``chunk``, ``task`` and ``rank`` — become its member
    :class:`TaskRecord` entries, attributed via their nearest enclosing
    stage span.
    """
    by_id = {span.span_id: span for span in trace.spans}

    def enclosing_stage(span) -> str | None:
        cursor = by_id.get(span.parent_id) if span.parent_id else None
        while cursor is not None:
            if cursor.kind == "stage":
                return cursor.name
            cursor = by_id.get(cursor.parent_id) if cursor.parent_id else None
        return None

    timings: dict[str, StageTiming] = {}
    for span in sorted(trace.spans, key=lambda s: s.start_s):
        if span.kind != "stage":
            continue
        timing = timings.setdefault(span.name, StageTiming(stage=span.name))
        timing.duration_s += span.duration_s
    for span in sorted(trace.spans, key=lambda s: s.start_s):
        if span.kind not in ("process", "chunk", "task", "rank"):
            continue
        stage = enclosing_stage(span)
        if stage is None:
            stage = str(span.attributes.get("stage", "")) or None
        if stage in timings:
            timings[stage].add(TaskRecord(name=span.name, duration_s=span.duration_s))
    return list(timings.values())
