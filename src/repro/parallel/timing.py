"""Timing instrumentation shared by the runtime and the pipeline.

Every pipeline run produces per-process :class:`TaskRecord` entries and
per-stage :class:`StageTiming` aggregates; the benchmark harness reads
these to build the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """Context manager measuring wall-clock time via ``perf_counter``."""

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass(frozen=True)
class TaskRecord:
    """One timed unit of work (a pipeline process or loop body)."""

    name: str
    duration_s: float


@dataclass
class StageTiming:
    """Aggregated timing of one pipeline stage."""

    stage: str
    duration_s: float = 0.0
    tasks: list[TaskRecord] = field(default_factory=list)

    def add(self, record: TaskRecord) -> None:
        """Attach one task's timing to the stage."""
        self.tasks.append(record)

    @property
    def task_total_s(self) -> float:
        """Sum of member task durations (>= duration when parallel)."""
        return sum(t.duration_s for t in self.tasks)
