"""Parallel runtime.

Two halves:

1. **Real execution** — OpenMP-shaped primitives (:func:`parallel_for`
   with static/dynamic/guided schedules, :class:`TaskGroup` with
   task/taskwait semantics) over pluggable backends: ``serial``,
   ``thread`` (GIL-bound but fine for I/O-heavy stages) and
   ``process`` (GIL-free, used for FLOPS-heavy stages).

2. **Simulated execution** — a deterministic machine model
   (:class:`SimulatedMachine`) with heterogeneous worker speeds and an
   I/O-contention term, plus a dependency-aware fluid scheduler.  The
   benchmark harness replays each pipeline implementation's task graph
   on a model of the paper's i5-12450H (8 cores / 12 logical
   processors) to reproduce the published speedups on hardware this
   container does not have.
"""

from repro.parallel.backend import Backend, available_backends, resolve_workers
from repro.parallel.chunks import Schedule, chunk_indices
from repro.parallel.omp import TaskGroup, parallel_for, parallel_for_chunked
from repro.parallel.timing import StageTiming, TaskRecord, Timer
from repro.parallel.simulate import (
    SimTask,
    SimulatedMachine,
    SimulationResult,
    PAPER_MACHINE,
    simulate_task_graph,
)

__all__ = [
    "Backend",
    "available_backends",
    "resolve_workers",
    "Schedule",
    "chunk_indices",
    "TaskGroup",
    "parallel_for",
    "parallel_for_chunked",
    "StageTiming",
    "TaskRecord",
    "Timer",
    "SimTask",
    "SimulatedMachine",
    "SimulationResult",
    "PAPER_MACHINE",
    "simulate_task_graph",
]
