"""Execution backends for the real (non-simulated) parallel runtime."""

from __future__ import annotations

import os
from enum import Enum

from repro.errors import BackendError


class Backend(str, Enum):
    """How :func:`repro.parallel.parallel_for` actually runs its body."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"

    @classmethod
    def coerce(cls, value: "Backend | str") -> "Backend":
        """Accept enum members or their string names."""
        if isinstance(value, Backend):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            raise BackendError(
                f"unknown backend {value!r}; expected one of {[b.value for b in cls]}"
            ) from exc


def available_backends() -> list[Backend]:
    """Backends usable on this host (all three are always available)."""
    return [Backend.SERIAL, Backend.THREAD, Backend.PROCESS]


def resolve_workers(num_workers: int | None) -> int:
    """Resolve a worker count: None means all visible CPUs, floor 1.

    Mirrors OpenMP's default of one thread per logical processor.
    """
    if num_workers is not None:
        if num_workers < 1:
            raise BackendError(f"num_workers must be >= 1, got {num_workers}")
        return num_workers
    return max(1, os.cpu_count() or 1)
