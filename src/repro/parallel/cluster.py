"""MPI-style message passing over local processes.

The paper's closest relative ([9], Cornejo-Suárez et al.) distributes
strong-motion processing with Python + MPI; the paper itself notes its
temp-folder array management "resembl[es] principles seen in MPI"
(§VIII).  This module provides that programming model without an MPI
installation: SPMD workers with ranks, point-to-point ``send``/``recv``
and the classic collectives (``bcast``, ``scatter``, ``gather``,
``allgather``, ``barrier``), running over ``multiprocessing`` queues —
one mailbox per rank, matched by (source, tag) like MPI envelopes.

High-level entry points:

- :func:`run_cluster` — launch an SPMD function on N ranks and collect
  every rank's return value;
- :func:`cluster_map` — the common pattern: scatter items round-robin,
  map, gather in order (used by the cluster pipeline implementation).

This is a shared-filesystem model, like an MPI job on a workstation:
ranks exchange *control* data through messages while bulk artifacts go
through the workspace, exactly as the pipeline's processes already do.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import ParallelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.tracer import Tracer

#: Default tag, mirroring MPI's wildcard-free common case.
DEFAULT_TAG = 0

_SENTINEL_ERROR = "__cluster_rank_error__"


@dataclass
class Communicator:
    """One rank's endpoint: a mailbox per rank, addressed by index."""

    rank: int
    size: int
    mailboxes: Sequence[Any]  # mp.Queue per rank
    _stash: list[tuple[int, int, Any]] | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.rank < self.size:
            raise ParallelError(f"rank {self.rank} outside communicator of size {self.size}")
        if len(self.mailboxes) != self.size:
            raise ParallelError("communicator needs one mailbox per rank")
        self._stash = []

    # -- point to point -------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = DEFAULT_TAG) -> None:
        """Send a picklable object to ``dest`` (non-blocking enqueue)."""
        if not 0 <= dest < self.size:
            raise ParallelError(f"send to invalid rank {dest}")
        self.mailboxes[dest].put((self.rank, tag, obj))

    def recv(self, source: int, tag: int = DEFAULT_TAG, timeout: float = 60.0) -> Any:
        """Receive the next message matching (source, tag).

        Non-matching messages are stashed and re-examined first on the
        next call (MPI envelope matching).
        """
        stash = self._stash
        for i, (src, t, obj) in enumerate(stash):
            if src == source and t == tag:
                del stash[i]
                return obj
        while True:
            try:
                src, t, obj = self.mailboxes[self.rank].get(timeout=timeout)
            except queue_mod.Empty as exc:
                raise ParallelError(
                    f"rank {self.rank}: timed out waiting for (source={source}, tag={tag})"
                ) from exc
            if src == source and t == tag:
                return obj
            stash.append((src, t, obj))

    # -- collectives -----------------------------------------------------

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from root to every rank; returns it everywhere."""
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=-1)
            return obj
        return self.recv(root, tag=-1)

    def scatter(self, chunks: Sequence[Any] | None = None, root: int = 0) -> Any:
        """Scatter one chunk per rank from root; returns this rank's chunk."""
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ParallelError(f"scatter needs exactly {self.size} chunks at the root")
            for dest in range(self.size):
                if dest != root:
                    self.send(chunks[dest], dest, tag=-2)
            return chunks[root]
        return self.recv(root, tag=-2)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather every rank's object at root (rank order); None elsewhere."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag=-3)
            return out
        self.send(obj, root, tag=-3)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather at rank 0 then broadcast: every rank gets the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def barrier(self) -> None:
        """Synchronize all ranks (gather + broadcast of a token)."""
        self.allgather(None)


def _rank_record(rank: int, epoch: float, start_wall: float, t0: float) -> dict[str, Any]:
    """Self-measured span record of one rank's lifetime."""
    return {
        "start_s": start_wall - epoch,
        "duration_s": time.perf_counter() - t0,
        "worker": f"{os.getpid()}:rank-{rank}:{threading.current_thread().name}",
    }


def _rank_main(
    fn: Callable[..., Any],
    rank: int,
    size: int,
    mailboxes: Sequence[Any],
    result_queue: Any,
    args: tuple,
    epoch: float,
) -> None:
    comm = Communicator(rank=rank, size=size, mailboxes=mailboxes)
    start_wall = time.time()
    t0 = time.perf_counter()
    try:
        result = fn(comm, *args)
        result_queue.put((rank, result, _rank_record(rank, epoch, start_wall, t0)))
    except BaseException as exc:  # surface worker failures to the launcher
        result_queue.put((rank, (_SENTINEL_ERROR, repr(exc)), None))


def run_cluster(
    fn: Callable[..., Any],
    size: int,
    *args: Any,
    timeout: float = 300.0,
    tracer: "Tracer | None" = None,
) -> list[Any]:
    """Run ``fn(comm, *args)`` as an SPMD program on ``size`` ranks.

    ``fn`` must be a module-level (picklable) function taking the
    communicator as its first argument.  Returns the per-rank return
    values in rank order.  ``size == 1`` runs inline (no subprocess),
    like an MPI job with one rank.

    With a ``tracer``, each rank's lifetime becomes a ``rank`` span
    (self-measured inside the rank process, ingested at the barrier).
    """
    if size < 1:
        raise ParallelError(f"cluster size must be >= 1, got {size}")
    if tracer is not None and not tracer.enabled:
        tracer = None
    parent = tracer.current() if tracer is not None else None
    epoch = tracer.epoch if tracer is not None else time.time()
    if size == 1:
        comm = Communicator(rank=0, size=1, mailboxes=[mp.Queue()])
        start_wall = time.time()
        t0 = time.perf_counter()
        value = fn(comm, *args)
        if tracer is not None:
            tracer.record(
                "rank 0", kind="rank", parent=parent, rank=0, size=1,
                **_rank_record(0, epoch, start_wall, t0),
            )
        return [value]

    ctx = mp.get_context()
    mailboxes = [ctx.Queue() for _ in range(size)]
    result_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_rank_main,
            args=(fn, rank, size, mailboxes, result_queue, args, epoch),
        )
        for rank in range(size)
    ]
    for worker in workers:
        worker.start()
    results: list[Any] = [None] * size
    failures: list[str] = []
    try:
        for _ in range(size):
            try:
                rank, value, record = result_queue.get(timeout=timeout)
            except queue_mod.Empty as exc:
                raise ParallelError("cluster ranks did not all report back") from exc
            if isinstance(value, tuple) and len(value) == 2 and value[0] == _SENTINEL_ERROR:
                failures.append(f"rank {rank}: {value[1]}")
            else:
                results[rank] = value
                if tracer is not None and record is not None:
                    tracer.record(
                        f"rank {rank}", kind="rank", parent=parent,
                        rank=rank, size=size, **record,
                    )
    finally:
        for worker in workers:
            worker.join(timeout=10.0)
            if worker.is_alive():
                worker.terminate()
    if failures:
        raise ParallelError("cluster ranks failed: " + "; ".join(failures))
    return results


def _map_worker(comm: Communicator, fn: Callable[[Any], Any], items: list[Any]) -> list[tuple[int, Any]]:
    """SPMD body of :func:`cluster_map`: round-robin ownership."""
    mine = list(range(comm.rank, len(items), comm.size))
    return [(i, fn(items[i])) for i in mine]


def cluster_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    size: int,
    *,
    timeout: float = 300.0,
    tracer: "Tracer | None" = None,
) -> list[Any]:
    """Map ``fn`` over ``items`` across ``size`` ranks, order-preserving.

    Items are assigned round-robin (rank r owns items r, r+size, ...),
    the natural static schedule for similar-cost items; results come
    back in item order regardless of rank completion order.
    """
    items = list(items)
    if not items:
        return []
    size = min(size, len(items))
    per_rank = run_cluster(_map_worker, size, fn, items, timeout=timeout, tracer=tracer)
    out: list[Any] = [None] * len(items)
    for rank_results in per_rank:
        for index, value in rank_results:
            out[index] = value
    return out
