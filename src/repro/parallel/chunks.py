"""Loop scheduling policies, mirroring OpenMP's schedule clause.

``chunk_indices(n, workers, schedule, chunk_size)`` produces the chunk
decomposition a ``#pragma omp for schedule(...)`` would use:

- ``static``  — equal contiguous blocks, one per worker;
- ``dynamic`` — fixed-size chunks handed out on demand;
- ``guided``  — exponentially shrinking chunks (remaining / workers),
  floored at ``chunk_size``.

The real backends use these to batch work (amortizing per-task
overhead) and the simulator uses the same decomposition so both agree
on what a schedule means.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ParallelError


class Schedule(str, Enum):
    """OpenMP-style loop schedule kinds."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"

    @classmethod
    def coerce(cls, value: "Schedule | str") -> "Schedule":
        """Accept enum members or their string names."""
        if isinstance(value, Schedule):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            raise ParallelError(
                f"unknown schedule {value!r}; expected one of {[s.value for s in cls]}"
            ) from exc


def chunk_indices(
    n: int,
    workers: int,
    schedule: Schedule | str = Schedule.STATIC,
    chunk_size: int | None = None,
) -> list[range]:
    """Decompose ``range(n)`` into chunks per the schedule policy.

    Chunks are returned in dispatch order; every index appears exactly
    once (asserted by property tests).
    """
    if n < 0:
        raise ParallelError(f"iteration count must be >= 0, got {n}")
    if workers < 1:
        raise ParallelError(f"workers must be >= 1, got {workers}")
    schedule = Schedule.coerce(schedule)
    if n == 0:
        return []

    if schedule is Schedule.STATIC:
        if chunk_size is not None:
            if chunk_size < 1:
                raise ParallelError(f"chunk_size must be >= 1, got {chunk_size}")
            return [range(s, min(s + chunk_size, n)) for s in range(0, n, chunk_size)]
        base, extra = divmod(n, workers)
        chunks = []
        start = 0
        for w in range(min(workers, n)):
            size = base + (1 if w < extra else 0)
            if size == 0:
                continue
            chunks.append(range(start, start + size))
            start += size
        return chunks

    if schedule is Schedule.DYNAMIC:
        size = chunk_size if chunk_size is not None else 1
        if size < 1:
            raise ParallelError(f"chunk_size must be >= 1, got {size}")
        return [range(s, min(s + size, n)) for s in range(0, n, size)]

    # Guided: chunk = ceil(remaining / workers), floored at chunk_size.
    floor = chunk_size if chunk_size is not None else 1
    if floor < 1:
        raise ParallelError(f"chunk_size must be >= 1, got {floor}")
    chunks = []
    start = 0
    while start < n:
        remaining = n - start
        size = max(floor, -(-remaining // workers))
        size = min(size, remaining)
        chunks.append(range(start, start + size))
        start += size
    return chunks
