"""OpenMP-shaped primitives over real Python backends.

``parallel_for`` is the library's ``#pragma omp parallel for``: it maps
a function over an index range, preserving result order, with the
schedule policies of :mod:`repro.parallel.chunks`.  ``TaskGroup`` is
``parallel`` + ``single`` + ``task``/``taskwait``: tasks submitted
inside the ``with`` block run concurrently and the block exit is the
taskwait barrier.

Backend notes (GIL): the ``thread`` backend suits the pipeline's
I/O-heavy and plotting stages (file reads/writes release the GIL); the
``process`` backend suits FLOPS-heavy stages and requires picklable
functions and arguments — the pipeline's process bodies are module-
level functions operating on paths, which pickle fine.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    FIRST_EXCEPTION,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.errors import ParallelError
from repro.parallel.backend import Backend, resolve_workers
from repro.parallel.chunks import Schedule, chunk_indices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracer import Span, Tracer


def _worker_label() -> str:
    """Executing worker's identity (duplicated from the tracer module
    so worker shims stay importable without the observability layer)."""
    return f"{os.getpid()}:{threading.current_thread().name}"


def _profile_channel(name: str, backend: Backend) -> tuple | None:
    """``(hz, labels)`` when a sampling profiler is installed here.

    The labels — the driver thread's span attribution at loop start,
    plus the loop's span name and backend — are computed once and
    handed to every worker shim, so samples taken in pool processes
    come home fully attributed.  ``None`` (one pid-guarded global read)
    when no profiler is installed.
    """
    from repro.observability.profiling import installed_profiler

    profiler = installed_profiler()
    if profiler is None:
        return None
    labels = profiler.labels_here()
    labels["span"] = name
    labels["backend"] = backend.value
    return (profiler.hz, labels)


def _events_channel(name: str) -> tuple | None:
    """``(root, stage, span)`` when a live event log is being written.

    Computed once on the driver (the enclosing stage label comes from
    the engine's stage scope) and handed to every worker shim, which
    emits ``unit_finished``/``task_finished`` events straight into its
    own shard — live even on the process backend, where results only
    come home at the barrier.  ``None`` (one pid-guarded global read)
    when no event-logged run is executing.
    """
    from repro.observability.events import channel

    return channel(name)


@contextmanager
def shared_executor(
    backend: Backend | str, num_workers: int | None = None
) -> Iterator[Executor | None]:
    """A pool reusable across many :func:`parallel_for` calls.

    Creating a pool per loop costs milliseconds (and a fork per worker
    for the process backend); a staged pipeline runs ten-plus loops, so
    the implementations open one pool per run and pass it through the
    ``executor`` parameter.  Yields ``None`` for the serial backend
    (callers pass it straight through).
    """
    backend = Backend.coerce(backend)
    workers = resolve_workers(num_workers)
    if backend is Backend.SERIAL or workers == 1:
        yield None
        return
    pool_cls = ThreadPoolExecutor if backend is Backend.THREAD else ProcessPoolExecutor
    pool = pool_cls(max_workers=workers)
    try:
        yield pool
    finally:
        pool.shutdown(wait=True)


def _run_chunk(func: Callable[[Any], Any], items: Sequence[Any], indices: range) -> list[Any]:
    """Apply ``func`` to one chunk of items (runs inside a worker)."""
    return [func(items[i]) for i in indices]


def _run_chunk_traced(
    func: Callable[[Any], Any], items: Sequence[Any], indices: range, epoch: float,
    collect_shard: bool = False, profile: tuple | None = None,
    events: tuple | None = None,
) -> tuple[list[Any], dict[str, Any], dict[str, Any] | None]:
    """:func:`_run_chunk` plus a self-measured span record.

    Runs inside the worker — possibly in another process, where the
    tracer object does not exist — so the measurement travels back with
    the results and the caller ingests it via ``Tracer.record``.  With
    ``collect_shard``, a metrics window brackets the body and the
    drained shard rides along for ``MetricsRegistry.merge`` (empty on
    the thread backend, where the body wrote to the driver's registry
    directly).  With ``profile`` (``(hz, labels)``), a profiling window
    brackets the body the same way; the drained profile shard rides
    home inside the record under the ``"profile"`` key.
    """
    shard = None
    token = None
    if profile is not None:
        from repro.observability.profiling import begin_worker_profile

        token = begin_worker_profile(*profile)
    if collect_shard:
        from repro.observability.metrics import begin_worker_window, drain_worker_shard

        begin_worker_window()
    start_wall = time.time()
    t0 = time.perf_counter()
    prof_shard = None
    try:
        values = [func(items[i]) for i in indices]
    finally:
        if collect_shard:
            shard = drain_worker_shard()
        if token is not None:
            from repro.observability.profiling import drain_worker_profile

            prof_shard = drain_worker_profile(token)
    record = {
        "start_s": start_wall - epoch,
        "duration_s": time.perf_counter() - t0,
        "worker": _worker_label(),
    }
    if prof_shard:
        record["profile"] = prof_shard
    if events is not None:
        from repro.observability.events import emit_channel

        emit_channel(events, "unit_finished", count=len(values),
                     duration_s=record["duration_s"], worker=record["worker"])
    return values, record, shard


def _run_task_traced(
    func: Callable[..., Any], epoch: float, args: tuple, kwargs: dict,
    collect_shard: bool = False, profile: tuple | None = None,
    events: tuple | None = None,
) -> tuple[Any, dict[str, Any], dict[str, Any] | None]:
    """Run one task in a worker, returning its self-measured span record."""
    shard = None
    token = None
    if profile is not None:
        from repro.observability.profiling import begin_worker_profile

        token = begin_worker_profile(*profile)
    if collect_shard:
        from repro.observability.metrics import begin_worker_window, drain_worker_shard

        begin_worker_window()
    start_wall = time.time()
    t0 = time.perf_counter()
    prof_shard = None
    try:
        value = func(*args, **kwargs)
    finally:
        if collect_shard:
            shard = drain_worker_shard()
        if token is not None:
            from repro.observability.profiling import drain_worker_profile

            prof_shard = drain_worker_profile(token)
    record = {
        "start_s": start_wall - epoch,
        "duration_s": time.perf_counter() - t0,
        "worker": _worker_label(),
    }
    if prof_shard:
        record["profile"] = prof_shard
    if events is not None:
        from repro.observability.events import emit_channel

        emit_channel(events, "task_finished",
                     duration_s=record["duration_s"], worker=record["worker"])
    return value, record, shard


def _record_chunk_metrics(
    metrics: tuple, record: dict[str, Any], shard: dict[str, Any] | None, size: int
) -> None:
    """Fold one chunk's measurement (and worker shard) into the registry."""
    registry, name, backend, schedule = metrics
    registry.counter(
        "repro_parallel_chunks_total",
        help="Chunks scheduled by parallel_for, per loop span.",
        span=name, backend=backend, schedule=schedule,
    ).inc(1)
    registry.counter(
        "repro_parallel_items_total",
        help="Loop items executed by parallel_for, per loop span.",
        span=name,
    ).inc(size)
    registry.histogram(
        "repro_parallel_chunk_duration_seconds",
        help="Wall-clock per scheduled chunk.",
        span=name,
    ).observe(record["duration_s"])
    registry.counter(
        "repro_parallel_worker_busy_seconds_total",
        help="Summed chunk/task wall-clock per worker.",
        worker=record["worker"],
    ).inc(record["duration_s"])
    if shard:
        registry.merge(shard)


def _fold_chunk(
    trace: tuple | None, metrics: tuple | None, chunk: range,
    record: dict[str, Any], shard: dict[str, Any] | None, size: int | None = None,
) -> None:
    """Ingest one chunk's span record, metrics shard and profile shard."""
    prof_shard = record.pop("profile", None)
    if prof_shard:
        from repro.observability.profiling import merge_profile_shard

        merge_profile_shard(prof_shard)
    if trace is not None:
        tracer, span_name, parent, _ = trace
        tracer.record(
            span_name,
            kind="chunk",
            parent=parent,
            chunk_start=chunk.start,
            size=len(chunk),
            **record,
        )
    if metrics is not None:
        _record_chunk_metrics(metrics, record, shard, size if size is not None else len(chunk))


def _drain(pool: Executor, func: Callable, items: Sequence[Any], chunks: list[range],
           results: list[Any], trace: tuple | None = None,
           metrics: tuple | None = None, profile: tuple | None = None,
           events: tuple | None = None) -> None:
    """Submit all chunks, wait, propagate the first failure.

    ``trace`` is ``(tracer, span_name, parent_span, epoch)`` when chunk
    spans should be collected; ``metrics`` is ``(registry, span_name,
    backend, schedule)`` when chunk counters and worker shards should
    be; ``profile`` is ``(hz, labels)`` when worker profile shards
    should be.  Any of them switches to the instrumented shim, whose
    ``(values, record, shard)`` triples are folded in after the barrier.

    On failure, chunks not yet started are cancelled and chunks already
    running are *waited for* before the exception propagates — a shared
    executor must come back quiescent, not with orphaned chunks still
    mutating the workspace under the caller's error handling.  Span
    records and metrics shards of every chunk that did complete are
    folded in first, so observability stays accurate for partial runs.
    """
    instrumented = (
        trace is not None or metrics is not None or profile is not None
        or events is not None
    )
    if not instrumented:
        futures = {pool.submit(_run_chunk, func, items, chunk): chunk for chunk in chunks}
    else:
        epoch = trace[3] if trace is not None else time.time()
        futures = {
            pool.submit(
                _run_chunk_traced, func, items, chunk, epoch, metrics is not None,
                profile, events,
            ): chunk
            for chunk in chunks
        }
    done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
    failed = next((f for f in done if f.exception() is not None), None)
    if failed is not None:
        for f in not_done:
            f.cancel()
        if not_done:
            wait(not_done)
        for future, chunk in futures.items():
            if future.cancelled() or future.exception() is not None:
                continue
            values = future.result()
            if instrumented:
                _, record, shard = values
                _fold_chunk(trace, metrics, chunk, record, shard)
        raise failed.exception()
    for future, chunk in futures.items():
        values = future.result()
        if instrumented:
            values, record, shard = values
            _fold_chunk(trace, metrics, chunk, record, shard)
        for i, value in zip(chunk, values):
            results[i] = value


@dataclass
class Isolation:
    """Chunk-isolation policy for :func:`parallel_for`.

    Without isolation, one failing item aborts its whole chunk (and the
    loop).  With it, exceptions of the ``retryable`` classes stop only
    the failing item: the driver resubmits it (up to ``max_attempts``,
    sleeping ``delay`` between tries) and runs the chunk's unstarted
    tail as a fresh chunk, so one poisoned item never takes its chunk
    mates down with it.  An item that exhausts its attempts yields
    ``None`` in the results and an ``on_exhausted`` report in
    :attr:`reports`.

    Only ``retryable`` and ``attempt_scope`` cross into workers (both
    must be picklable for the process backend: exception classes and a
    module-level context-manager factory).  The callbacks run on the
    driver thread, so they may close over unpicklable state.
    """

    max_attempts: int = 3
    retryable: tuple = ()
    describe: Callable[[Any], str] = str
    #: Context manager factory wrapping each item body with its 1-based
    #: attempt number (e.g. ``repro.resilience.faults.attempt_scope``).
    attempt_scope: Callable[[int], Any] | None = None
    #: Seconds to sleep before retrying ``record`` after attempt N.
    delay: Callable[[str, int], float] | None = None
    #: Called once per caught retryable failure (before retry/exhaust).
    on_caught: Callable[[str, int], None] | None = None
    #: Called when attempt N's failure leads to a resubmission.
    on_retry: Callable[[str, int], None] | None = None
    #: Builds the report appended to :attr:`reports` on give-up.
    on_exhausted: Callable[[str, BaseException, int], Any] | None = None
    #: Reports of items that exhausted their attempts (driver-side).
    reports: list = field(default_factory=list)

    def handle_failure(self, record: str, error: BaseException, attempt: int) -> int | None:
        """Process one caught failure; next attempt number or ``None``."""
        if self.on_caught is not None:
            self.on_caught(record, attempt)
        if attempt >= self.max_attempts:
            report = error if self.on_exhausted is None else self.on_exhausted(
                record, error, attempt
            )
            self.reports.append(report)
            return None
        if self.on_retry is not None:
            self.on_retry(record, attempt)
        if self.delay is not None:
            pause = self.delay(record, attempt)
            if pause > 0:
                time.sleep(pause)
        return attempt + 1


def _run_chunk_isolated(
    func: Callable[[Any], Any], items: Sequence[Any], indices: range, attempt: int,
    retryable: tuple, scope: Callable[[int], Any] | None, epoch: float,
    collect_shard: bool = False, profile: tuple | None = None,
    events: tuple | None = None,
) -> tuple[list[Any], int | None, BaseException | None, dict[str, Any], dict[str, Any] | None]:
    """Run one chunk, stopping at the first *retryable* failure.

    Returns ``(values, failed_offset, error, record, shard)``: on a
    retryable failure ``values`` holds the results up to the failing
    item, ``failed_offset`` is its position within ``indices``, and the
    chunk's unstarted tail never ran (the driver resubmits both).
    ``attempt`` is uniform across the chunk — initial chunks run at 1,
    resubmissions are single-item chunks at the bumped number.  Other
    exceptions propagate exactly like :func:`_run_chunk_traced`.
    """
    shard = None
    token = None
    if profile is not None:
        from repro.observability.profiling import begin_worker_profile

        token = begin_worker_profile(*profile)
    if collect_shard:
        from repro.observability.metrics import begin_worker_window, drain_worker_shard

        begin_worker_window()
    start_wall = time.time()
    t0 = time.perf_counter()
    values: list[Any] = []
    failed: int | None = None
    error: BaseException | None = None
    prof_shard = None
    try:
        for offset, i in enumerate(indices):
            try:
                if scope is not None:
                    with scope(attempt):
                        values.append(func(items[i]))
                else:
                    values.append(func(items[i]))
            except retryable as exc:
                failed, error = offset, exc
                break
    finally:
        if collect_shard:
            shard = drain_worker_shard()
        if token is not None:
            from repro.observability.profiling import drain_worker_profile

            prof_shard = drain_worker_profile(token)
    record = {
        "start_s": start_wall - epoch,
        "duration_s": time.perf_counter() - t0,
        "worker": _worker_label(),
    }
    if prof_shard:
        record["profile"] = prof_shard
    if events is not None:
        from repro.observability.events import emit_channel

        # The failing item counts as executed: the monitor's progress
        # matches the work actually attempted, and the retry events the
        # resilience runtime emits account for the resubmission.
        emit_channel(events, "unit_finished",
                     count=len(values) + (0 if failed is None else 1),
                     duration_s=record["duration_s"], worker=record["worker"])
    return values, failed, error, record, shard


def _drain_isolated(
    pool: Executor, func: Callable, items: Sequence[Any], chunks: list[range],
    results: list[Any], isolation: Isolation,
    trace: tuple | None = None, metrics: tuple | None = None,
    profile: tuple | None = None, events: tuple | None = None,
) -> None:
    """:func:`_drain` with per-item failure isolation and resubmission.

    Completion-driven rather than a single barrier: each finished chunk
    is folded as it lands, a retryable casualty is resubmitted alone
    (attempt N+1) alongside the chunk's unstarted tail (attempt 1), and
    the loop ends when no futures remain.  Non-retryable exceptions
    keep :func:`_drain`'s contract: cancel, settle, fold, raise.
    """
    epoch = trace[3] if trace is not None else time.time()
    collect = metrics is not None
    pending: dict[Any, tuple[range, int]] = {}

    def submit(indices: range, attempt: int) -> None:
        if len(indices) == 0:
            return
        future = pool.submit(
            _run_chunk_isolated, func, items, indices, attempt,
            isolation.retryable, isolation.attempt_scope, epoch, collect, profile,
            events,
        )
        pending[future] = (indices, attempt)

    for chunk in chunks:
        submit(chunk, 1)
    while pending:
        done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
        for future in done:
            indices, attempt = pending.pop(future)
            if future.exception() is not None:
                for f in pending:
                    f.cancel()
                if pending:
                    wait(list(pending))
                for f, (ind, _att) in pending.items():
                    if f.cancelled() or f.exception() is not None:
                        continue
                    values, failed, _err, record, shard = f.result()
                    executed = len(values) + (0 if failed is None else 1)
                    _fold_chunk(trace, metrics, ind, record, shard, size=executed)
                raise future.exception()
            values, failed, error, record, shard = future.result()
            executed = len(values) + (0 if failed is None else 1)
            _fold_chunk(trace, metrics, indices, record, shard, size=executed)
            for i, value in zip(indices, values):
                results[i] = value
            if failed is not None:
                poisoned = indices[failed]
                name = isolation.describe(items[poisoned])
                next_attempt = isolation.handle_failure(name, error, attempt)
                if next_attempt is not None:
                    submit(indices[failed:failed + 1], next_attempt)
                else:
                    results[poisoned] = None
                submit(indices[failed + 1:], 1)


def _serial_chunk_isolated(
    func: Callable[[Any], Any], items: Sequence[Any], indices: range,
    isolation: Isolation,
) -> list[Any]:
    """The serial-backend equivalent of isolated execution.

    Retries happen in place (no resubmission machinery), with the same
    attempt numbering and callbacks, so retry counts and exhaustion
    reports match the pool backends exactly.
    """
    scope = isolation.attempt_scope
    values: list[Any] = []
    for i in indices:
        attempt = 1
        while True:
            try:
                if scope is not None:
                    with scope(attempt):
                        values.append(func(items[i]))
                else:
                    values.append(func(items[i]))
                break
            except isolation.retryable as exc:
                name = isolation.describe(items[i])
                next_attempt = isolation.handle_failure(name, exc, attempt)
                if next_attempt is None:
                    values.append(None)
                    break
                attempt = next_attempt
    return values


def parallel_for(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    backend: Backend | str = Backend.THREAD,
    num_workers: int | None = None,
    schedule: Schedule | str = Schedule.DYNAMIC,
    chunk_size: int | None = None,
    executor: Executor | None = None,
    tracer: "Tracer | None" = None,
    span: str | None = None,
    metrics: "MetricsRegistry | None" = None,
    isolate: Isolation | None = None,
) -> list[Any]:
    """Map ``func`` over ``items`` in parallel, preserving order.

    The worker pool size defaults to the machine's logical processor
    count (OpenMP's default).  Exceptions raised by any body propagate
    to the caller after outstanding chunks are cancelled.  Pass an
    ``executor`` (see :func:`shared_executor`) to reuse a pool across
    loops; it is left open for the caller to manage.

    With a ``tracer``, every chunk becomes a ``chunk`` span named
    ``span`` (default: the function's name), parented to whatever span
    is open on the calling thread — workers measure themselves, so this
    works identically on the thread and process backends.

    With a ``metrics`` registry, every chunk increments the
    ``repro_parallel_*`` counter/histogram families, and metrics
    recorded *inside* the loop body (I/O bytes, points processed) find
    their way back: directly on the thread backend, via per-chunk
    worker shards merged after the barrier on the process backend.

    With an ``isolate`` policy (see :class:`Isolation`), retryable
    failures stop only the failing item — it is retried up to the
    policy's attempts and, on give-up, yields ``None`` in the results
    plus a report in ``isolate.reports`` while its chunk mates and the
    rest of the loop complete normally, on every backend.
    """
    backend = Backend.coerce(backend)
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    workers = resolve_workers(num_workers)
    chunks = chunk_indices(n, workers, schedule, chunk_size)

    trace: tuple | None = None
    name = span or getattr(func, "__name__", "parallel_for")
    if tracer is not None and tracer.enabled:
        trace = (tracer, name, tracer.current(), tracer.epoch)
    metric: tuple | None = None
    if metrics is not None:
        metric = (metrics, name, backend.value, Schedule.coerce(schedule).value)
    profile = _profile_channel(name, backend)
    events = _events_channel(name)
    if events is not None:
        from repro.observability.events import emit_channel

        # The driver announces the loop's size up front, so a live
        # monitor can draw a bounded progress bar before any chunk
        # lands.
        emit_channel(events, "units_total", total=n, chunks=len(chunks),
                     backend=backend.value)

    if executor is not None:
        results: list[Any] = [None] * n
        if isolate is not None:
            _drain_isolated(executor, func, items, chunks, results, isolate,
                            trace=trace, metrics=metric, profile=profile,
                            events=events)
        else:
            _drain(executor, func, items, chunks, results, trace=trace,
                   metrics=metric, profile=profile, events=events)
        return results

    if backend is Backend.SERIAL or workers == 1 or n == 1:
        from repro.observability.profiling import labeled_thread

        results = [None] * n
        # Serial chunks run on the driver thread; register the loop's
        # labels so the sampler attributes them like pool workers.
        with labeled_thread(profile[1]) if profile is not None else nullcontext():
            for chunk in chunks:
                t0 = time.perf_counter()
                if isolate is not None:
                    if trace is not None:
                        tracer_, name_, parent, _ = trace
                        with tracer_.span(
                            name_, kind="chunk", parent=parent,
                            chunk_start=chunk.start, size=len(chunk),
                        ):
                            values = _serial_chunk_isolated(func, items, chunk, isolate)
                    else:
                        values = _serial_chunk_isolated(func, items, chunk, isolate)
                elif trace is not None:
                    tracer_, name_, parent, _ = trace
                    with tracer_.span(
                        name_, kind="chunk", parent=parent,
                        chunk_start=chunk.start, size=len(chunk),
                    ):
                        values = _run_chunk(func, items, chunk)
                else:
                    values = _run_chunk(func, items, chunk)
                if metric is not None:
                    # Serial chunks run on the driver thread: body metrics
                    # went straight to the registry; count the chunk here.
                    record = {
                        "duration_s": time.perf_counter() - t0,
                        "worker": _worker_label(),
                    }
                    _record_chunk_metrics(metric, record, None, len(chunk))
                if events is not None:
                    emit_channel(events, "unit_finished", count=len(chunk),
                                 duration_s=time.perf_counter() - t0,
                                 worker=_worker_label())
                for i, value in zip(chunk, values):
                    results[i] = value
        return results

    pool_cls = ThreadPoolExecutor if backend is Backend.THREAD else ProcessPoolExecutor
    results = [None] * n
    with pool_cls(max_workers=min(workers, len(chunks))) as pool:
        if isolate is not None:
            _drain_isolated(pool, func, items, chunks, results, isolate,
                            trace=trace, metrics=metric, profile=profile,
                            events=events)
        else:
            _drain(pool, func, items, chunks, results, trace=trace,
                   metrics=metric, profile=profile, events=events)
    return results


def parallel_for_chunked(
    func: Callable[[Sequence[Any]], list[Any]],
    items: Sequence[Any],
    *,
    backend: Backend | str = Backend.THREAD,
    num_workers: int | None = None,
    schedule: Schedule | str = Schedule.STATIC,
    chunk_size: int | None = None,
) -> list[Any]:
    """Like :func:`parallel_for` but ``func`` receives whole chunks.

    For bodies with per-call setup worth amortizing (opening shared
    files, building filter taps); ``func`` must return one result per
    input item, in order — violations raise :class:`ParallelError`.
    """
    backend = Backend.coerce(backend)
    items = list(items)
    n = len(items)
    if n == 0:
        return []
    workers = resolve_workers(num_workers)
    chunks = chunk_indices(n, workers, schedule, chunk_size)

    def run(indices: range) -> list[Any]:
        out = func([items[i] for i in indices])
        if len(out) != len(indices):
            raise ParallelError(
                f"chunked body returned {len(out)} results for {len(indices)} items"
            )
        return out

    results: list[Any] = [None] * n
    if backend is Backend.SERIAL or workers == 1:
        for chunk in chunks:
            for i, value in zip(chunk, run(chunk)):
                results[i] = value
        return results

    pool_cls = ThreadPoolExecutor if backend is Backend.THREAD else ProcessPoolExecutor
    with pool_cls(max_workers=min(workers, len(chunks))) as pool:
        futures = {pool.submit(run, chunk): chunk for chunk in chunks}
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        failed = next((f for f in done if f.exception() is not None), None)
        if failed is not None:
            for f in not_done:
                f.cancel()
            raise failed.exception()
        for future, chunk in futures.items():
            for i, value in zip(chunk, future.result()):
                results[i] = value
    return results


class TaskGroup:
    """``#pragma omp parallel`` / ``single`` / ``task`` / ``taskwait``.

    Usage::

        with TaskGroup(backend="thread", num_workers=4) as tg:
            tg.task(initialize_flags)
            tg.task(gather_input_files, workspace)
        # <- implicit taskwait: all tasks have completed here
        results = tg.results  # in submission order

    A failing task propagates its exception at the barrier (and on
    :meth:`taskwait`).

    With a ``tracer``, every task becomes a ``task`` span (named by the
    ``span_name=`` keyword of :meth:`task`, default the function name)
    parented to whatever span was open when the group was created.
    """

    def __init__(
        self,
        *,
        backend: Backend | str = Backend.THREAD,
        num_workers: int | None = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.backend = Backend.coerce(backend)
        self.num_workers = resolve_workers(num_workers)
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        #: ``(future, span_name, instrumented)`` per submitted task;
        #: ``instrumented`` marks futures resolving to the shim's
        #: ``(value, record, shard)`` triple rather than a bare value.
        self._futures: list[tuple[Any, str | None, bool]] = []
        self._serial_results: list[Any] = []
        self.results: list[Any] = []
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._parent: "Span | None" = (
            self._tracer.current() if self._tracer is not None else None
        )
        self._metrics = metrics

    def _count_task(self, record: dict[str, Any], shard: dict[str, Any] | None) -> None:
        registry = self._metrics
        if registry is None:
            return
        registry.counter(
            "repro_parallel_tasks_total",
            help="Tasks run through TaskGroup.",
            backend=self.backend.value,
        ).inc(1)
        registry.histogram(
            "repro_parallel_task_duration_seconds",
            help="Wall-clock per TaskGroup task.",
            backend=self.backend.value,
        ).observe(record["duration_s"])
        registry.counter(
            "repro_parallel_worker_busy_seconds_total",
            help="Summed chunk/task wall-clock per worker.",
            worker=record["worker"],
        ).inc(record["duration_s"])
        if shard:
            registry.merge(shard)

    def _fold_task(
        self, name: str | None, record: dict[str, Any], shard: dict[str, Any] | None
    ) -> None:
        """Ingest one task's span record and metrics/profile shards."""
        prof_shard = record.pop("profile", None)
        if prof_shard:
            from repro.observability.profiling import merge_profile_shard

            merge_profile_shard(prof_shard)
        if self._tracer is not None:
            self._tracer.record(
                name or "task", kind="task", parent=self._parent, **record
            )
        self._count_task(record, shard)

    def __enter__(self) -> "TaskGroup":
        if self.backend is not Backend.SERIAL and self.num_workers > 1:
            pool_cls = ThreadPoolExecutor if self.backend is Backend.THREAD else ProcessPoolExecutor
            self._pool = pool_cls(max_workers=self.num_workers)
        return self

    def task(
        self,
        func: Callable[..., Any],
        *args: Any,
        span_name: str | None = None,
        **kwargs: Any,
    ) -> None:
        """Submit one task (``#pragma omp task``)."""
        name = span_name or getattr(func, "__name__", "task")
        profile = _profile_channel(name, self.backend)
        events = _events_channel(name)
        if self._pool is None:
            from repro.observability.profiling import labeled_thread

            t0 = time.perf_counter()
            with labeled_thread(profile[1]) if profile is not None else nullcontext():
                if self._tracer is not None:
                    with self._tracer.span(name, kind="task", parent=self._parent):
                        self._serial_results.append(func(*args, **kwargs))
                else:
                    self._serial_results.append(func(*args, **kwargs))
            self._count_task(
                {"duration_s": time.perf_counter() - t0, "worker": _worker_label()},
                None,
            )
            if events is not None:
                from repro.observability.events import emit_channel

                emit_channel(events, "task_finished",
                             duration_s=time.perf_counter() - t0,
                             worker=_worker_label())
        elif (self._tracer is not None or self._metrics is not None
              or profile is not None or events is not None):
            epoch = self._tracer.epoch if self._tracer is not None else time.time()
            future = self._pool.submit(
                _run_task_traced, func, epoch, args, kwargs,
                self._metrics is not None, profile, events,
            )
            self._futures.append((future, name, True))
            if self._metrics is not None:
                outstanding = sum(1 for f, _, _ in self._futures if not f.done())
                self._metrics.gauge(
                    "repro_parallel_task_queue_depth",
                    help="High-water mark of tasks outstanding in a TaskGroup.",
                ).set_max(outstanding)
        else:
            self._futures.append((self._pool.submit(func, *args, **kwargs), None, False))

    def taskwait(self) -> list[Any]:
        """Barrier: wait for all submitted tasks, collect their results."""
        if self._pool is None:
            batch = self._serial_results
            self._serial_results = []
        else:
            futures = [f for f, _, _ in self._futures]
            done, _ = wait(futures)
            failed = next((f for f in futures if f.exception() is not None), None)
            if failed is not None:
                # Tasks that did finish still carry span records and
                # worker metrics/profile shards — fold them in before
                # raising so a partial group is observable.
                for future, name, instrumented in self._futures:
                    if future.cancelled() or future.exception() is not None:
                        continue
                    value = future.result()
                    if instrumented:
                        _, record, shard = value
                        self._fold_task(name, record, shard)
                self._futures = []
                raise failed.exception()
            batch = []
            for future, name, instrumented in self._futures:
                value = future.result()
                if instrumented:
                    value, record, shard = value
                    self._fold_task(name, record, shard)
                batch.append(value)
            self._futures = []
        self.results.extend(batch)
        return batch

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        try:
            if exc_type is None:
                self.taskwait()
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
