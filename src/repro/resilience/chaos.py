"""Seeded chaos soak: fault-convergence checks across the matrix.

The resilience claim mirrors the paper's equivalence claim: just as a
clean run must produce byte-identical artifacts on every implementation
and backend, a *faulty* run under one :class:`FaultPlan` must converge
— same quarantine set, same retry counts, identical degraded-report
text — no matter which implementation or backend executed it.  This
module is the soak harness behind ``repro-chaos``:

- one **clean** pass proving all legs are still byte-identical with the
  resilience machinery installed but no plan;
- per seed, one **faulty** pass of every (implementation, backend) leg
  under the same randomized plan, cross-checked for convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core import IMPLEMENTATIONS
from repro.core.context import ParallelSettings, RunContext
from repro.core.verify import workspace_digests
from repro.observability.metrics import MetricsRegistry
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.spectra.response import ResponseSpectrumConfig, default_periods
from repro.synth.events import EventSpec

#: The two executor backends every leg is soaked on.
BACKENDS: tuple[str, ...] = ("thread", "process")

#: Period-grid size of the soak runs (small: the soak checks fault
#: semantics, not spectra resolution).
SOAK_PERIODS: int = 20


@dataclass(frozen=True)
class ChaosRun:
    """One (implementation, backend) leg of a chaos seed."""

    implementation: str
    backend: str
    #: :meth:`QuarantineSet.signature`-shaped tuple of the leg's reports.
    quarantine: tuple
    retries: float
    faults: float
    #: Backend-invariant degraded text (the bulletin's report lines).
    degraded: str

    @property
    def label(self) -> str:
        return f"{self.implementation}/{self.backend}"


@dataclass
class ChaosSeedResult:
    """Convergence verdict of one seed across every leg."""

    seed: int
    plan: FaultPlan
    runs: list[ChaosRun] = field(default_factory=list)

    def problems(self) -> list[str]:
        """Human-readable divergences (empty means the seed converged)."""
        if not self.runs:
            return [f"seed {self.seed}: no legs ran"]
        first = self.runs[0]
        out: list[str] = []
        for run in self.runs[1:]:
            if run.quarantine != first.quarantine:
                out.append(
                    f"seed {self.seed}: quarantine set of {run.label} "
                    f"diverges from {first.label}"
                )
            if run.retries != first.retries:
                out.append(
                    f"seed {self.seed}: retry count of {run.label} "
                    f"({run.retries:g}) diverges from {first.label} ({first.retries:g})"
                )
            if run.degraded != first.degraded:
                out.append(
                    f"seed {self.seed}: degraded text of {run.label} "
                    f"diverges from {first.label}"
                )
        return out

    @property
    def converged(self) -> bool:
        return not self.problems()


@dataclass
class ChaosReport:
    """Outcome of a whole soak."""

    clean_identical: bool
    clean_problems: list[str] = field(default_factory=list)
    seeds: list[ChaosSeedResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.clean_identical and all(s.converged for s in self.seeds)

    def render(self) -> str:
        lines = ["chaos soak", "----------"]
        lines.append(
            "clean pass: "
            + ("byte-identical across all legs" if self.clean_identical else "DIVERGED")
        )
        lines.extend(f"  {p}" for p in self.clean_problems)
        for seed_result in self.seeds:
            verdict = "converged" if seed_result.converged else "DIVERGED"
            quarantined = len(seed_result.runs[0].quarantine) if seed_result.runs else 0
            lines.append(
                f"seed {seed_result.seed}: {verdict} "
                f"({len(seed_result.runs)} legs, {quarantined} quarantined)"
            )
            lines.extend(f"  {p}" for p in seed_result.problems())
        lines.append("RESULT: " + ("ok" if self.ok else "FAILED"))
        return "\n".join(lines)


def _generate_inputs(event: EventSpec, scale: float, input_dir: Path) -> None:
    from repro.bench.workloads import materialize, scaled_workload
    from repro.synth.dataset import generate_event_dataset

    if scale < 1.0:
        materialize(event, scaled_workload(event, scale), input_dir)
    else:
        generate_event_dataset(event, input_dir)


def _run_leg(
    directory: Path,
    impl_name: str,
    backend: str,
    event: EventSpec,
    scale: float,
    plan: FaultPlan | None,
    workers: int | None,
) -> tuple[ChaosRun, Path]:
    """Run one leg in its own workspace; returns the outcome + root."""
    registry = MetricsRegistry()
    ctx = RunContext.for_directory(
        directory,
        response_config=ResponseSpectrumConfig(periods=default_periods(SOAK_PERIODS)),
        parallel=ParallelSettings.uniform(backend, num_workers=workers),
        metrics=registry,
        resilience=plan,
    )
    _generate_inputs(event, scale, ctx.workspace.input_dir)
    from repro.engine import pipeline_factory

    result = pipeline_factory(impl_name)().run(ctx)
    reports = sorted(result.quarantine, key=lambda r: r.record)
    run = ChaosRun(
        implementation=impl_name,
        backend=backend,
        quarantine=tuple(
            (r.record, r.process, r.kind, r.error, r.attempts) for r in reports
        ),
        retries=registry.total("repro_retries_total"),
        faults=registry.total("repro_faults_injected_total"),
        degraded="\n".join(r.describe() for r in reports),
    )
    return run, ctx.workspace.root


def chaos_soak(
    root: Path | str,
    seeds: list[int],
    *,
    event: EventSpec | None = None,
    scale: float = 0.02,
    n_faults: int = 2,
    implementations: list[str] | None = None,
    backends: tuple[str, ...] = BACKENDS,
    workers: int | None = 2,
    policy: RetryPolicy | None = None,
) -> ChaosReport:
    """Soak every (implementation, backend) leg clean and per seed."""
    from repro.synth.events import PAPER_EVENTS

    if event is None:
        event = PAPER_EVENTS[0]
    if implementations is None:
        implementations = [impl.name for impl in IMPLEMENTATIONS]
    root = Path(root)
    legs = [(impl, backend) for impl in implementations for backend in backends]

    # Clean pass: no plan anywhere; every leg must stay byte-identical.
    from repro.core.artifacts import Workspace

    report = ChaosReport(clean_identical=True)
    digests: dict[str, dict[str, str]] = {}
    baseline: str | None = None
    first_root: Path | None = None
    for impl_name, backend in legs:
        leg_dir = root / "clean" / f"{impl_name}-{backend}"
        run, workspace_root = _run_leg(
            leg_dir, impl_name, backend, event, scale, None, workers
        )
        if run.quarantine or run.faults:
            report.clean_identical = False
            report.clean_problems.append(
                f"clean run of {run.label} reported faults or quarantined records"
            )
        digests[run.label] = workspace_digests(Workspace(workspace_root))
        if baseline is None:
            baseline = run.label
            first_root = workspace_root
    assert baseline is not None and first_root is not None
    for label, digest in digests.items():
        if digest != digests[baseline]:
            report.clean_identical = False
            report.clean_problems.append(
                f"clean artifacts of {label} differ from {baseline}"
            )

    # Faulty passes: one shared plan per seed, convergence across legs.
    stations = Workspace(first_root).input_stations()
    for seed in seeds:
        plan = FaultPlan.randomized(seed, stations, n_faults=n_faults, policy=policy)
        seed_result = ChaosSeedResult(seed=seed, plan=plan)
        for impl_name, backend in legs:
            leg_dir = root / f"seed-{seed}" / f"{impl_name}-{backend}"
            run, _ = _run_leg(leg_dir, impl_name, backend, event, scale, plan, workers)
            seed_result.runs.append(run)
        report.seeds.append(seed_result)
    return report
