"""Deterministic fault injection: the seeded :class:`FaultPlan`.

A plan is a seed plus a list of :class:`FaultSpec` entries.  Every
fault is keyed by a *target* so the same plan replays bit-identically
on any implementation and backend:

``truncate-v1`` / ``garble-v1``
    Target: an artifact file name (``ST01l.v1``, ``ST01l.v2``).  The
    file is corrupted — truncated to a seeded line count, or one seeded
    line overwritten with garbage — the first time a legacy tool is
    about to read it.  Corruption is *idempotent*: re-applying it to an
    already-corrupted file changes nothing, so staged temp-folder
    copies and the sequential in-place work file end up equally broken
    without any shared state between workers.

``drop-config`` / ``garble-config``
    Target: a tool process label (``P4``, ``P7``, ``P13``).  The
    ``tool.cfg`` staged for that tool is deleted or overwritten with
    unparseable settings before the tool runs.  Config loss is fatal to
    the whole tool invocation (there is no per-record boundary to
    quarantine at), so it surfaces as a failed *event* in the batch
    layer rather than a quarantined record.

``transient``
    Target: ``P4:ST01l`` — a (process, trace) pair.  Raises
    :class:`~repro.errors.TransientToolError` inside the tool's
    per-record loop on attempts ``1..count``; attempt ``count + 1``
    succeeds.  With ``count >= max_attempts`` the record exhausts its
    retries and is quarantined.

``crash``
    Target: ``P3:ST01`` — a (process, record) pair.  Raises
    :class:`WorkerCrashError` (deliberately *not* a
    :class:`~repro.errors.ReproError`: it models the worker dying, not
    a pipeline-domain failure) inside the parallel-loop unit on
    attempts ``1..count``.  The runtime's chunk isolation catches it,
    resubmits the poisoned item, and continues the rest of the chunk.

Attempt numbers come from :func:`current_attempt`, set by the retry
wrappers — so "fires on attempts 1..count" is a pure function of the
plan, independent of scheduling, chunking or backend.
"""

from __future__ import annotations

import hashlib
import json
import random
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import PipelineError, TransientToolError
from repro.resilience.retry import RetryPolicy

#: Valid fault kinds.
FILE_KINDS = ("truncate-v1", "garble-v1")
CONFIG_KINDS = ("drop-config", "garble-config")
UNIT_KINDS = ("transient", "crash")
ALL_KINDS = FILE_KINDS + CONFIG_KINDS + UNIT_KINDS

#: The line written over (or appended by) a garble fault — chosen so a
#: numeric data block, a header field and a config line all fail to
#: parse, and so re-garbling is a visible no-op.
GARBLE_LINE = "##FAULT-INJECTED##"


class WorkerCrashError(RuntimeError):
    """An injected worker death (kill/except) inside a parallel unit.

    A plain :class:`RuntimeError` on purpose: pipeline code catches
    :class:`~repro.errors.ReproError` at its boundaries, and a crashed
    worker must *not* be absorbed by those handlers — only the chunk
    isolation of the parallel runtime may catch it.
    """


#: The retry attempt (1-based) the current unit of work is executing.
_ATTEMPT: ContextVar[int] = ContextVar("repro_resilience_attempt", default=1)


def current_attempt() -> int:
    """The 1-based attempt number of the unit of work in progress."""
    return _ATTEMPT.get()


@contextmanager
def attempt_scope(attempt: int) -> Iterator[None]:
    """Declare that the enclosed unit body is running attempt N."""
    token = _ATTEMPT.set(int(attempt))
    try:
        yield
    finally:
        _ATTEMPT.reset(token)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what kind, aimed at what, firing how often."""

    kind: str
    target: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise PipelineError(f"unknown fault kind {self.kind!r} (one of {ALL_KINDS})")
        if self.count < 1:
            raise PipelineError(f"fault count must be >= 1, got {self.count}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target": self.target, "count": self.count}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(
            kind=str(data["kind"]),
            target=str(data["target"]),
            count=int(data.get("count", 1)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, JSON-serializable set of faults plus the retry policy.

    The seed drives the deterministic jitter of the retry backoff and
    the shape of file corruption, so replaying one plan file reproduces
    the run bit-identically.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()
    policy: RetryPolicy = field(default_factory=RetryPolicy)

    # -- queries --------------------------------------------------------

    def unit_count(self, kind: str, process: str, record: str) -> int:
        """Total fire count of ``kind`` faults aimed at process:record."""
        target = f"{process}:{record}"
        return sum(f.count for f in self.faults if f.kind == kind and f.target == target)

    def file_specs(self, name: str) -> list[FaultSpec]:
        """File-corruption faults aimed at artifact ``name``."""
        return [f for f in self.faults if f.kind in FILE_KINDS and f.target == name]

    def config_spec(self, process: str) -> FaultSpec | None:
        """The config fault aimed at tool ``process``, if any."""
        for f in self.faults:
            if f.kind in CONFIG_KINDS and f.target == process:
                return f
        return None

    def _digest(self, *parts: str) -> int:
        payload = "|".join((str(self.seed),) + parts).encode()
        return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")

    # -- application ----------------------------------------------------

    def should_fire(self, kind: str, process: str, record: str,
                    attempt: int | None = None) -> bool:
        """Whether a transient/crash fault fires on this attempt.

        Fires on attempts ``1..count`` — a pure function of the plan,
        so every implementation and backend observes the same failures
        and performs the same number of retries.
        """
        count = self.unit_count(kind, process, record)
        if count == 0:
            return False
        return (attempt if attempt is not None else current_attempt()) <= count

    def raise_transient(self, process: str, record: str) -> bool:
        """Raise the injected transient fault if one fires now.

        Returns ``True`` when a matching spec exists but is spent (so
        callers can count the recovery), ``False`` when the record is
        untargeted.
        """
        if self.unit_count("transient", process, record) == 0:
            return False
        if self.should_fire("transient", process, record):
            raise TransientToolError(
                f"injected transient fault at {process}:{record} "
                f"(attempt {current_attempt()})"
            )
        return True

    def raise_crash(self, process: str, record: str) -> bool:
        """Raise the injected worker crash if one fires now."""
        if self.unit_count("crash", process, record) == 0:
            return False
        if self.should_fire("crash", process, record):
            raise WorkerCrashError(
                f"injected worker crash at {process}:{record} "
                f"(attempt {current_attempt()})"
            )
        return True

    def corrupt_file(self, path: Path) -> bool:
        """Apply any file fault aimed at ``path.name``.  Idempotent.

        Returns ``True`` when the file's bytes actually changed (the
        hook callers use to count each injection exactly once across
        repeated applications).
        """
        changed = False
        for spec in self.file_specs(Path(path).name):
            if spec.kind == "truncate-v1":
                changed |= truncate_lines(path, self._digest("truncate", spec.target))
            else:
                changed |= garble_line(path, self._digest("garble", spec.target))
        return changed

    def corrupt_config(self, folder: Path, process: str) -> str | None:
        """Apply the config fault aimed at tool ``process``, if any.

        Returns the fault kind applied (``None`` when untargeted).
        """
        spec = self.config_spec(process)
        if spec is None:
            return None
        from repro.core.tools import TOOL_CONFIG

        cfg = Path(folder) / TOOL_CONFIG
        if spec.kind == "drop-config":
            cfg.unlink(missing_ok=True)
        else:
            # Point every known key at garbage so both tools fail
            # loudly instead of silently falling back to defaults.
            cfg.write_text(
                f"PARAMS {GARBLE_LINE}\nTAPER {GARBLE_LINE}\nMAXPERIOD {GARBLE_LINE}\n"
            )
        return spec.kind

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [f.to_dict() for f in self.faults],
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults") or []),
            policy=RetryPolicy.from_dict(data.get("policy") or {}),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Path | str) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def save(self, path: Path | str) -> None:
        Path(path).write_text(self.to_json() + "\n")

    # -- generation -----------------------------------------------------

    @classmethod
    def randomized(
        cls,
        seed: int,
        stations: list[str],
        *,
        n_faults: int = 2,
        policy: RetryPolicy | None = None,
    ) -> "FaultPlan":
        """A seeded random plan over record-level fault kinds.

        Used by the chaos soak: only kinds with a per-record quarantine
        boundary are drawn (config faults are event-fatal by design and
        tested separately), and transient counts stay within and beyond
        ``max_attempts`` so both recovery and exhaustion are exercised.
        """
        policy = policy or RetryPolicy()
        rng = random.Random(seed)
        comps = ("l", "t", "v")
        faults: list[FaultSpec] = []
        for _ in range(max(1, n_faults)):
            station = rng.choice(sorted(stations))
            comp = rng.choice(comps)
            trace = f"{station}{comp}"
            kind = rng.choice(("truncate-v1", "garble-v1", "transient", "crash"))
            if kind in FILE_KINDS:
                ext = rng.choice((".v1", ".v2"))
                faults.append(FaultSpec(kind=kind, target=f"{trace}{ext}"))
            elif kind == "transient":
                process = rng.choice(("P4", "P7", "P13"))
                count = rng.randint(1, policy.max_attempts)
                faults.append(FaultSpec(kind=kind, target=f"{process}:{trace}", count=count))
            else:
                count = rng.randint(1, policy.max_attempts)
                faults.append(FaultSpec(kind=kind, target=f"P3:{station}", count=count))
        return cls(seed=seed, faults=tuple(faults), policy=policy)


def truncate_lines(path: Path | str, digest: int) -> bool:
    """Truncate ``path`` to a small seeded line count.  Idempotent.

    The kept count (2-7 lines) always cuts into the header or the data
    block of every record format, so the next read raises a
    :class:`~repro.errors.FormatError`.  A file already at or below the
    target length is left alone, which is what makes re-application
    (e.g. on a fresh temp-folder copy of the same artifact) stable.
    """
    path = Path(path)
    if not path.exists():
        return False
    lines = path.read_text().splitlines()
    keep = 2 + digest % 6
    if len(lines) <= keep:
        return False
    path.write_text("\n".join(lines[:keep]) + "\n")
    return True


def garble_line(path: Path | str, digest: int) -> bool:
    """Overwrite one seeded line of ``path`` with garbage.  Idempotent.

    The victim line index is derived from the seed alone (clamped to
    the file), so applying the fault twice rewrites the same line with
    the same bytes — a no-op the caller can detect.
    """
    path = Path(path)
    if not path.exists():
        return False
    lines = path.read_text().splitlines()
    if not lines:
        return False
    victim = digest % min(len(lines), 24)
    if lines[victim] == GARBLE_LINE:
        return False
    lines[victim] = GARBLE_LINE
    path.write_text("\n".join(lines) + "\n")
    return True
