"""The resilience runtime: activation, retry scopes, quarantine folding.

Activation mirrors :mod:`repro.core.auditing`: enabling resilience for
a workspace writes a ``<root>/resilience/plan.json`` marker holding the
fault plan and retry policy.  Driver threads find the runtime in the
in-process registry; pool workers — which rebuild paths from strings —
discover the marker on disk via :func:`runtime_for` and load their own
copy, so the same plan governs the serial, thread and process backends
without any argument plumbing.

Authority is split to stay deterministic:

- *Workers* check faults, retry their own records, and report failures
  back through return values (or the thread-local pending list the
  tool emulations fill).  They never write shared state.
- *The driver* folds reports into the :class:`QuarantineSet`, purges
  the quarantined station's artifacts, persists ``quarantine.json``,
  and filters quarantined records out of every later work list — which
  is why a stale fork-inherited quarantine copy in a long-lived pool
  worker can waste a little work but never change the outcome.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import FormatError, MissingArtifactError, TransientToolError
from repro.resilience.faults import FaultPlan, WorkerCrashError, attempt_scope
from repro.resilience.quarantine import (
    CRASH,
    EXHAUSTED,
    FORMAT,
    FailureReport,
    QuarantineSet,
)
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.artifacts import Workspace
    from repro.observability.tracer import Tracer

#: Marker directory (under the workspace root) that opts a run in.
RESILIENCE_DIR = "resilience"
PLAN_FILE = "plan.json"
QUARANTINE_FILE = "quarantine.json"

#: Active runtimes: str(root) -> runtime.
_ACTIVE: dict[str, "ResilienceRuntime"] = {}

#: How many ancestors :func:`runtime_for` climbs looking for a marker
#: (a tool folder sits at most work/tmp/<instance> below the root).
_WALK_UP = 6


class ResilienceRuntime:
    """One workspace's fault plan, retry policy and quarantine state."""

    def __init__(self, root: Path, plan: FaultPlan) -> None:
        self.root = Path(root)
        self.plan = plan
        self.quarantine = QuarantineSet()
        #: Only the enabling process persists quarantine.json — pool
        #: workers inherit this object across fork and must not race on
        #: the file (their driver re-derives every report anyway).
        self._owner_pid = os.getpid()
        #: Per-thread failure reports collected inside a tool run, so
        #: concurrent instances on the thread backend stay separate.
        self._pending = threading.local()

    @property
    def policy(self) -> RetryPolicy:
        return self.plan.policy

    @property
    def marker_dir(self) -> Path:
        return self.root / RESILIENCE_DIR

    # -- pending reports (worker/tool side) -----------------------------

    def _pending_lists(self) -> tuple[list[FailureReport], set[str]]:
        if not hasattr(self._pending, "reports"):
            self._pending.reports = []
            self._pending.records = set()
        return self._pending.reports, self._pending.records

    def pend(self, report: FailureReport) -> None:
        """Park one failure until the caller drains it."""
        reports, records = self._pending_lists()
        reports.append(report)
        records.add(report.record)

    def drain_pending(self) -> list[FailureReport]:
        """Take (and clear) this thread's parked failure reports."""
        reports, records = self._pending_lists()
        out = list(reports)
        reports.clear()
        records.clear()
        return out

    def is_out(self, record: str) -> bool:
        """Whether ``record`` is quarantined or pending-failed here."""
        if record in self.quarantine:
            return True
        _, records = self._pending_lists()
        return record in records

    # -- fault application (worker/tool side) ---------------------------

    def _emit(self, type_: str, **payload: object) -> None:
        """Publish one resilience event to the live bus (no-op when the
        workspace has no event log).  Works from pool workers too: each
        writes its own shard, so retries are visible as they happen."""
        from repro.observability.events import emit

        emit(self.root, type_, **payload)

    def apply_file_faults(self, path: Path) -> None:
        """Corrupt ``path`` if the plan targets it (idempotent)."""
        if self.plan.corrupt_file(path):
            _record_fault("file", Path(path).name)
            self._emit("fault", kind="file", target=Path(path).name)

    def apply_config_faults(self, folder: Path, process: str) -> None:
        """Drop/garble the staged tool.cfg if the plan targets it."""
        kind = self.plan.corrupt_config(folder, process)
        if kind is not None:
            _record_fault(kind, process)
            self._emit("fault", kind=kind, target=process, process=process)

    # -- per-record retry (inside the tool emulations) ------------------

    def run_record(self, process: str, trace: str, body: Callable[[], Any]) -> bool:
        """Run one record's tool body with faults, retry and capture.

        ``trace`` is the record file stem (``ST01l``).  Returns ``True``
        when the body completed; ``False`` when the record failed
        permanently and a :class:`FailureReport` was parked for the
        caller to drain.  Format errors are permanent (retrying a
        truncated file cannot help); transient errors retry up to the
        policy, then exhaust.
        """
        from repro.formats.v1 import station_of_trace

        station = station_of_trace(trace)
        if self.is_out(station):
            return False
        start = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            try:
                with attempt_scope(attempt):
                    self.plan.raise_transient(process, trace)
                    body()
                return True
            except (FormatError, MissingArtifactError) as exc:
                self.pend(
                    FailureReport.from_exception(station, process, exc,
                                                 attempts=attempt, kind=FORMAT)
                )
                return False
            except TransientToolError as exc:
                _record_fault("transient", process)
                self._emit("fault", kind="transient", process=process, record=trace)
                if self.policy.gives_up(attempt, time.monotonic() - start):
                    self.pend(
                        FailureReport.from_exception(station, process, exc,
                                                     attempts=attempt, kind=EXHAUSTED)
                    )
                    return False
                _record_retry(process)
                self._emit("retry", process=process, record=trace, attempt=attempt)
                time.sleep(self.policy.delay_s(self.plan.seed, f"{process}:{trace}", attempt))

    # -- per-unit retry (driver side, sequential loops) -----------------

    def check_crash(self, process: str, record: str) -> None:
        """Fire an injected worker crash if the plan targets this unit.

        Called at the top of a loop-unit body (e.g. ``separate_station``)
        so the same fault fires under :meth:`run_unit`, the serial loop,
        and the pool backends alike — the attempt number comes from the
        ambient :func:`~repro.resilience.faults.attempt_scope`.
        """
        self.plan.raise_crash(process, record)

    def run_unit(
        self, process: str, record: str, call: Callable[[], Any]
    ) -> FailureReport | None:
        """Driver-side retry wrapper around one loop unit (e.g. P3).

        Mirrors the chunk-isolation semantics of the parallel loops: a
        :class:`WorkerCrashError` raised by the body is retried with the
        same attempt numbering the pool path uses, a format error is
        permanent, and the returned report (if any) is the unit's
        failure.
        """
        start = time.monotonic()
        attempt = 0
        while True:
            attempt += 1
            try:
                with attempt_scope(attempt):
                    call()
                return None
            except FormatError as exc:
                return FailureReport.from_exception(record, process, exc,
                                                    attempts=attempt, kind=FORMAT)
            except WorkerCrashError as exc:
                _record_fault("crash", process)
                self._emit("fault", kind="crash", process=process, record=record)
                if self.policy.gives_up(attempt, time.monotonic() - start):
                    return FailureReport.from_exception(record, process, exc,
                                                        attempts=attempt, kind=CRASH)
                _record_retry(process)
                self._emit("retry", process=process, record=record, attempt=attempt)
                time.sleep(self.policy.delay_s(self.plan.seed, f"{process}:{record}", attempt))

    def isolation(self, process: str, describe: Callable[[Any], str] = str):
        """Chunk-isolation config for :func:`repro.parallel.omp.parallel_for`.

        Wires the plan's retry policy and failure classification into
        the runtime-agnostic :class:`~repro.parallel.omp.Isolation`.
        """
        from repro.parallel.omp import Isolation

        plan_seed = self.plan.seed

        def on_caught(record: str, attempt: int) -> None:
            _record_fault("crash", process)
            self._emit("fault", kind="crash", process=process, record=record)

        def on_retry(record: str, attempt: int) -> None:
            _record_retry(process)
            self._emit("retry", process=process, record=record, attempt=attempt)

        def delay(record: str, attempt: int) -> float:
            return self.policy.delay_s(plan_seed, f"{process}:{record}", attempt)

        def on_exhausted(record: str, error: BaseException, attempts: int) -> FailureReport:
            return FailureReport.from_exception(record, process, error, attempts=attempts)

        return Isolation(
            max_attempts=self.policy.max_attempts,
            retryable=(WorkerCrashError,),
            describe=describe,
            attempt_scope=attempt_scope,
            delay=delay,
            on_caught=on_caught,
            on_retry=on_retry,
            on_exhausted=on_exhausted,
        )

    # -- quarantine folding (driver side) -------------------------------

    def quarantine_reports(
        self, reports: Iterable[FailureReport | None], tracer: "Tracer | None" = None
    ) -> list[FailureReport]:
        """Fold failure reports in: dedup, purge, persist, annotate.

        Returns the reports that newly quarantined their record.
        """
        fresh: list[FailureReport] = []
        for report in reports:
            if report is None:
                continue
            if not self.quarantine.add(report):
                continue
            fresh.append(report)
            _purge_station(self.root, report.record)
            _record_quarantine(report.process, report.kind)
            self._emit(
                "quarantine", record=report.record, process=report.process,
                fault_kind=report.kind, attempts=report.attempts,
            )
            if tracer is not None and tracer.enabled:
                tracer.event(
                    "quarantine",
                    record=report.record,
                    process=report.process,
                    fault_kind=report.kind,
                    error=report.error,
                    attempts=report.attempts,
                )
        if fresh and os.getpid() == self._owner_pid and self.marker_dir.is_dir():
            self.quarantine.save(self.marker_dir / QUARANTINE_FILE)
        return fresh

    def surviving(self, records: Iterable[str]) -> list[str]:
        """Filter quarantined records out of a work list."""
        return [r for r in records if r not in self.quarantine]


# -- activation registry ------------------------------------------------


def enable_resilience(root: Path | str, plan: FaultPlan) -> ResilienceRuntime:
    """Write the plan marker and activate the runtime for ``root``."""
    root = Path(root)
    runtime = ResilienceRuntime(root, plan)
    runtime.marker_dir.mkdir(parents=True, exist_ok=True)
    plan.save(runtime.marker_dir / PLAN_FILE)
    _ACTIVE[str(root)] = runtime
    return runtime


def disable_resilience(root: Path | str) -> None:
    """Deactivate the runtime for ``root`` and remove its marker."""
    import shutil

    root = Path(root)
    _ACTIVE.pop(str(root), None)
    shutil.rmtree(root / RESILIENCE_DIR, ignore_errors=True)


def active_runtime(root: Path | str) -> ResilienceRuntime | None:
    """The in-process runtime for ``root``, if one is active."""
    return _ACTIVE.get(str(Path(root)))


def runtime_for(path: Path | str) -> ResilienceRuntime | None:
    """The runtime governing ``path``, discovering markers on disk.

    Checks the in-process registry by prefix first (drivers, and forked
    pool workers that inherited it), then climbs a few ancestors
    looking for a plan marker — the path a freshly spawned worker
    takes.  With no runtime anywhere this costs a dict scan plus a
    handful of ``stat`` calls, keeping the clean path effectively free.
    """
    text = str(path)
    for root, runtime in _ACTIVE.items():
        if text == root or text.startswith(root + os.sep):
            return runtime
    probe = Path(path)
    for candidate in (probe, *probe.parents[:_WALK_UP]):
        marker = candidate / RESILIENCE_DIR / PLAN_FILE
        if marker.is_file():
            runtime = ResilienceRuntime(candidate, FaultPlan.load(marker))
            _ACTIVE[str(candidate)] = runtime
            return runtime
    return None


# -- work-list filtering (every stage goes through these) ----------------


def surviving_stations(workspace: "Workspace", stations: list[str]) -> list[str]:
    """Drop quarantined stations from a work list (no-op when inactive)."""
    runtime = active_runtime(workspace.root) or runtime_for(workspace.root)
    if runtime is None or not len(runtime.quarantine):
        return stations
    return runtime.surviving(stations)


def surviving_entries(workspace: "Workspace", entries: list[tuple]) -> list[tuple]:
    """Drop metadata entries whose station (first field) is quarantined.

    The staged plans write the metadata files *before* the tool stages
    run, so a station quarantined at stage IV can still appear in
    ``response.meta`` — every metadata-driven loop filters through here.
    """
    runtime = active_runtime(workspace.root) or runtime_for(workspace.root)
    if runtime is None or not len(runtime.quarantine):
        return entries
    return [entry for entry in entries if entry[0] not in runtime.quarantine]


# -- purge ---------------------------------------------------------------


def _purge_station(root: Path, station: str) -> None:
    """Remove every artifact of a quarantined station from work/.

    Exact paths from the workspace helpers, not a glob — ``ST1*`` would
    also match ``ST10``.  Partial outputs (a surviving component's
    ``.max`` part written before its sibling failed) go too, keeping
    the merged maxima files survivor-only in every implementation.
    """
    from repro.core.artifacts import Workspace
    from repro.formats.common import COMPONENTS
    from repro.formats.gem import GEM_QUANTITIES, GEM_SOURCES

    ws = Workspace(root)
    victims: list[Path] = [
        ws.plot_accelerograph(station),
        ws.plot_fourier(station),
        ws.plot_response(station),
    ]
    for comp in COMPONENTS:
        victims.append(ws.component_v1(station, comp))
        victims.append(ws.component_v2(station, comp))
        victims.append(ws.component_f(station, comp))
        victims.append(ws.component_r(station, comp))
        victims.append(ws.work_dir / f"{station}{comp}.max")
        for source in GEM_SOURCES:
            for quantity in GEM_QUANTITIES:
                victims.append(ws.gem(station, comp, source, quantity))
    for victim in victims:
        try:
            victim.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - purge must never fail a run
            pass


# -- metrics hooks (no-ops without a collecting registry) ----------------


def _record_fault(kind: str, target: str) -> None:
    from repro.observability.metrics import record_fault

    record_fault(kind, target)


def _record_retry(process: str) -> None:
    from repro.observability.metrics import record_retry

    record_retry(process)


def _record_quarantine(process: str, kind: str) -> None:
    from repro.observability.metrics import record_quarantine

    record_quarantine(process, kind)
