"""Fault injection, retry, and quarantine for the pipeline.

The paper's full parallelization runs un-modifiable legacy tools
concurrently in temporary folders — exactly the setting where a
truncated V1 file, a vanished ``tool.cfg`` or a crashed worker used to
abort the whole event batch.  This package makes failure a first-class,
*deterministic* part of the runtime:

- :mod:`repro.resilience.faults` — a seeded, JSON-serializable
  :class:`FaultPlan` that injects file corruption, config loss,
  transient tool errors and worker crashes, replayable bit-identically;
- :mod:`repro.resilience.retry` — :class:`RetryPolicy` with
  exponential backoff, deterministic jitter and per-operation deadlines;
- :mod:`repro.resilience.quarantine` — classified
  :class:`FailureReport`/:class:`QuarantineSet` so one bad station
  degrades the bulletin instead of suppressing it;
- :mod:`repro.resilience.runtime` — the marker-directory activation
  machinery (mirroring :mod:`repro.core.auditing`) that makes the same
  plan visible to driver threads and pool workers alike;
- :mod:`repro.resilience.chaos` — the seeded soak behind ``repro-chaos``
  asserting convergence across implementations and backends.

The semantic contract (see docs/resilience.md): with no plan installed
the clean path is byte-identical to a build without this package; with
a plan, every implementation and backend converges to the same
quarantine set, the same retry counts and the same degraded bulletin.
"""

from __future__ import annotations

from repro.resilience.faults import FaultPlan, FaultSpec, WorkerCrashError
from repro.resilience.quarantine import FailureReport, QuarantineSet
from repro.resilience.retry import RetryPolicy
from repro.resilience.runtime import (
    ResilienceRuntime,
    active_runtime,
    disable_resilience,
    enable_resilience,
    runtime_for,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "WorkerCrashError",
    "FailureReport",
    "QuarantineSet",
    "RetryPolicy",
    "ResilienceRuntime",
    "active_runtime",
    "disable_resilience",
    "enable_resilience",
    "runtime_for",
]
