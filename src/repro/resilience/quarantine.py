"""Classified failure reports and the per-run quarantine set.

A quarantined record is a *station*: the pipeline's unit of bulletin
output.  One bad component file poisons its station (the bulletin must
not publish a station with partial spectra), but never the event — the
stage plan continues with the survivors and the bulletin renders a
degraded-mode section explaining what was dropped and why.

Reports deliberately carry no absolute paths and no timings in their
comparable fields: the acceptance bar is that the same fault plan
produces the *same* quarantine set and degraded bulletin text across
every implementation and backend, and workspace paths would break that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import (
    FormatError,
    MissingArtifactError,
    RetryExhaustedError,
    TransientToolError,
)

#: Failure classes a report may carry.
FORMAT = "format"
EXHAUSTED = "exhausted-retries"
CRASH = "worker-crash"
FATAL = "fatal"
KINDS = (FORMAT, EXHAUSTED, CRASH, FATAL)


def classify(error: BaseException) -> str:
    """Map an exception to a failure class."""
    from repro.resilience.faults import WorkerCrashError

    if isinstance(error, (FormatError, MissingArtifactError)):
        return FORMAT
    if isinstance(error, (RetryExhaustedError, TransientToolError)):
        return EXHAUSTED
    if isinstance(error, WorkerCrashError):
        return CRASH
    return FATAL


@dataclass(frozen=True)
class FailureReport:
    """Why one record (or one whole event) left the run."""

    record: str
    process: str
    kind: str
    error: str
    attempts: int = 1

    @classmethod
    def from_exception(
        cls, record: str, process: str, error: BaseException, attempts: int = 1,
        kind: str | None = None,
    ) -> "FailureReport":
        return cls(
            record=record,
            process=process,
            kind=kind or classify(error),
            error=type(error).__name__,
            attempts=attempts,
        )

    def describe(self) -> str:
        """One stable line for the degraded bulletin section."""
        noun = "attempt" if self.attempts == 1 else "attempts"
        return (
            f"{self.record:<8} {self.process:<4} {self.kind:<17} "
            f"{self.error} after {self.attempts} {noun}"
        )

    def to_dict(self) -> dict:
        return {
            "record": self.record,
            "process": self.process,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureReport":
        return cls(
            record=str(data["record"]),
            process=str(data["process"]),
            kind=str(data["kind"]),
            error=str(data["error"]),
            attempts=int(data.get("attempts", 1)),
        )


class QuarantineSet:
    """The records removed from a run, first report wins.

    Deduplication by record is what makes quarantine sets converge: a
    fault that surfaces at P4 *and* P13 in one implementation but only
    at P4 in another (because the staged plan already filtered the
    record out of stage VIII) still yields one identical entry.
    """

    def __init__(self) -> None:
        self._reports: dict[str, FailureReport] = {}

    def add(self, report: FailureReport) -> bool:
        """Record one failure; ``True`` if the record is newly quarantined."""
        if report.record in self._reports:
            return False
        self._reports[report.record] = report
        return True

    def __contains__(self, record: str) -> bool:
        return record in self._reports

    def __len__(self) -> int:
        return len(self._reports)

    def __iter__(self) -> Iterator[FailureReport]:
        return iter(self.reports())

    def records(self) -> set[str]:
        """The quarantined record ids."""
        return set(self._reports)

    def reports(self) -> list[FailureReport]:
        """All reports, sorted by record for stable rendering."""
        return [self._reports[r] for r in sorted(self._reports)]

    def signature(self) -> tuple:
        """Order-independent identity for convergence comparisons."""
        return tuple(
            (r.record, r.process, r.kind, r.error, r.attempts) for r in self.reports()
        )

    def to_dict(self) -> dict:
        return {"reports": [r.to_dict() for r in self.reports()]}

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineSet":
        qs = cls()
        for entry in data.get("reports") or []:
            qs.add(FailureReport.from_dict(entry))
        return qs

    def save(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: Path | str) -> "QuarantineSet":
        return cls.from_dict(json.loads(Path(path).read_text()))
