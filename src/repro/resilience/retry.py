"""Retry policy: exponential backoff with deterministic jitter.

Backoff jitter normally exists to de-correlate concurrent retriers; a
*random* jitter would make two replays of the same fault plan sleep
differently and time out differently.  Here the jitter is a hash of
(plan seed, unit key, attempt), so retries still spread out across
concurrent units while the whole schedule stays a pure function of the
plan — the property the convergence tests rely on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import PipelineError


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how long, and how far apart to retry a failing unit.

    ``max_attempts`` counts the first try: 3 means one try plus at most
    two retries.  ``deadline_s`` bounds the total time one unit may
    spend across attempts — a unit that would sleep past it gives up
    early (classified as exhausted, same as running out of attempts).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.1
    deadline_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PipelineError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.deadline_s <= 0:
            raise PipelineError("retry delays and deadline must be non-negative")
        if self.multiplier < 1.0:
            raise PipelineError(f"backoff multiplier must be >= 1, got {self.multiplier}")

    def delay_s(self, seed: int, key: str, attempt: int) -> float:
        """Sleep before retrying ``key`` after its N-th failed attempt.

        Exponential in the attempt, capped at ``max_delay_s``, then
        stretched by a deterministic jitter fraction in ``[0, jitter)``
        derived from (seed, key, attempt).
        """
        base = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if base <= 0.0 or self.jitter <= 0.0:
            return base
        digest = hashlib.sha256(f"{seed}|{key}|{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter * unit)

    def gives_up(self, attempt: int, elapsed_s: float) -> bool:
        """Whether a unit that just failed attempt N should stop."""
        return attempt >= self.max_attempts or elapsed_s >= self.deadline_s

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "multiplier": self.multiplier,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        defaults = cls()
        return cls(
            max_attempts=int(data.get("max_attempts", defaults.max_attempts)),
            base_delay_s=float(data.get("base_delay_s", defaults.base_delay_s)),
            multiplier=float(data.get("multiplier", defaults.multiplier)),
            max_delay_s=float(data.get("max_delay_s", defaults.max_delay_s)),
            jitter=float(data.get("jitter", defaults.jitter)),
            deadline_s=float(data.get("deadline_s", defaults.deadline_s)),
        )
