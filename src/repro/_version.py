"""Package version (single source of truth for the runtime)."""

__version__ = "1.0.0"
