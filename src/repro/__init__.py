"""repro — parallel accelerographic (strong-motion) records processing.

A production-grade Python reproduction of *"Parallelizing
Accelerographic Records Processing"* (Canizales, Mixco & McClurg,
IPPS 2024): the 20-process Salvadoran strong-motion pipeline, its
input/output dependency analysis, the 11-stage reordering, and four
implementations (sequential original/optimized, partially and fully
parallelized), together with every substrate the paper relies on —
DSP kernels, strong-motion file formats, spectra, a stochastic
ground-motion simulator, PostScript plotting, an OpenMP-shaped
parallel runtime, a scheduling simulator for the paper's 12-LP
platform, and the benchmark harness regenerating Table I and
Figures 11–13.

Quick start::

    import repro
    from repro.synth import EventSpec

    event = EventSpec("DEMO", "2024-01-01", 5.5, 3, 30_000, seed=1)
    result = repro.run(event, workspace="run", trace=True)
    print(result.summary_lines())

:func:`repro.run` is the one-call facade: it accepts a workspace
directory, a synthetic :class:`EventSpec`, or a prepared
:class:`RunContext`; picks the scheduling policy by name (``policy=``,
a :class:`SchedulingPolicy`, or a user-built :class:`PipelineBuilder`
graph); applies one backend uniformly; and (with ``trace=``) records a
span trace of the whole run, exportable as Chrome Trace Event JSON.
"""

from repro._version import __version__
from repro.api import run
from repro.engine import (
    PipelineBuilder,
    SchedulingPolicy,
    TaskGraph,
    policy_by_name,
    policy_names,
)
from repro.core import (
    ALL_IMPLEMENTATIONS,
    FullyParallel,
    IMPLEMENTATIONS,
    ParallelSettings,
    PartiallyParallel,
    PipelineResult,
    RunContext,
    SequentialOptimized,
    SequentialOriginal,
    WavefrontParallel,
    Workspace,
    implementation_by_name,
)
from repro.observability import Trace, Tracer
from repro.synth import EventSpec, PAPER_EVENTS, generate_event_dataset

__all__ = [
    "__version__",
    "run",
    "Trace",
    "Tracer",
    "RunContext",
    "ParallelSettings",
    "Workspace",
    "PipelineResult",
    "SequentialOriginal",
    "SequentialOptimized",
    "PartiallyParallel",
    "FullyParallel",
    "WavefrontParallel",
    "IMPLEMENTATIONS",
    "ALL_IMPLEMENTATIONS",
    "implementation_by_name",
    "PipelineBuilder",
    "SchedulingPolicy",
    "TaskGraph",
    "policy_by_name",
    "policy_names",
    "EventSpec",
    "PAPER_EVENTS",
    "generate_event_dataset",
]
