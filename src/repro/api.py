"""The one-call public API.

:func:`run` is the library's front door: point it at a workspace
directory (or hand it a synthetic :class:`~repro.synth.events.EventSpec`
to generate first), pick an implementation and a backend, and get a
:class:`~repro.core.runner.PipelineResult` back — optionally with the
full span trace attached and exported as Chrome Trace Event JSON.

    import repro

    result = repro.run("my-workspace")                       # existing V1 files
    result = repro.run(event, workspace="out", trace=True)   # synthetic event
    result = repro.run("ws", implementation="wavefront-parallel",
                       backend="process", workers=8,
                       trace="run.trace.json")
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import RunContext, Workspace, implementation_by_name
from repro.core.context import ParallelSettings
from repro.core.runner import PipelineImplementation, PipelineResult
from repro.observability.tracer import Tracer
from repro.parallel.backend import Backend
from repro.synth.events import EventSpec


def _resolve_implementation(
    implementation: str | PipelineImplementation | type[PipelineImplementation],
) -> PipelineImplementation:
    """Accept a short name, an implementation class, or an instance."""
    if isinstance(implementation, PipelineImplementation):
        return implementation
    if isinstance(implementation, type) and issubclass(implementation, PipelineImplementation):
        return implementation()
    return implementation_by_name(str(implementation))()


def run(
    source: str | Path | Workspace | RunContext | EventSpec,
    implementation: str | PipelineImplementation | type[PipelineImplementation] = "full-parallel",
    *,
    backend: Backend | str | None = None,
    workers: int | None = None,
    trace: bool | str | Path | None = None,
    profile: bool | str | Path | None = None,
    workspace: str | Path | None = None,
    response_periods: int | None = None,
    settings: ParallelSettings | None = None,
) -> PipelineResult:
    """Run one pipeline implementation end-to-end, in one call.

    ``source`` selects the input:

    - a directory path (or :class:`Workspace`) whose ``input/`` holds
      the V1 records to process;
    - an :class:`EventSpec` — its synthetic dataset is generated first,
      into ``workspace`` (a temporary directory by default);
    - a fully-configured :class:`RunContext`, used as-is (``backend``,
      ``workers``, ``response_periods`` and ``settings`` must then be
      left unset).

    ``backend`` applies one backend to loops, tasks and tools alike
    (``ParallelSettings.uniform``); pass ``settings`` instead for
    per-strategy control.  ``trace=True`` attaches the run's span
    :class:`~repro.observability.tracer.Trace` to the returned result;
    a path additionally writes it as Chrome Trace Event JSON.
    ``profile=True`` samples the run (driver threads and pool workers
    alike) and attaches the merged
    :class:`~repro.observability.profiling.Profile` as
    ``result.profile``; a path additionally writes it as speedscope
    JSON.

    Returns the implementation's :class:`PipelineResult` (with
    ``result.trace`` / ``result.profile`` set when requested).
    """
    impl = _resolve_implementation(implementation)

    if isinstance(source, RunContext):
        if backend is not None or workers is not None or settings is not None \
                or response_periods is not None:
            raise ValueError(
                "run(): a RunContext source carries its own settings; "
                "backend/workers/settings/response_periods must be unset"
            )
        ctx = source
    else:
        if settings is None:
            if backend is not None:
                settings = ParallelSettings.uniform(backend, num_workers=workers)
            else:
                settings = ParallelSettings(num_workers=workers)
        kwargs: dict = {"parallel": settings}
        if response_periods is not None:
            from repro.spectra.response import ResponseSpectrumConfig, default_periods

            kwargs["response_config"] = ResponseSpectrumConfig(
                periods=default_periods(response_periods)
            )
        if isinstance(source, EventSpec):
            root = Path(
                workspace
                if workspace is not None
                else tempfile.mkdtemp(prefix=f"repro-run-{source.event_id}-")
            )
            ctx = RunContext.for_directory(root, **kwargs)
            if not ctx.workspace.input_stations():
                from repro.synth.dataset import generate_event_dataset

                generate_event_dataset(source, ctx.workspace.input_dir)
        elif isinstance(source, Workspace):
            ctx = RunContext(workspace=source.create(), **kwargs)
        else:
            ctx = RunContext.for_directory(Path(source), **kwargs)

    if trace or profile:
        # Profiling needs the tracer for span attribution, so asking
        # for a profile implies a trace on the result too.
        ctx.tracer = Tracer()
    if profile:
        from repro.observability.profiling import SamplingProfiler

        ctx.profiler = SamplingProfiler()

    result = impl.run(ctx)

    if trace and not isinstance(trace, bool):
        from repro.observability.export import write_chrome_trace

        if result.trace is not None:
            write_chrome_trace(trace, result.trace, profile=result.profile)
    if profile and not isinstance(profile, bool):
        from repro.observability.profiling import write_speedscope

        if result.profile is not None:
            write_speedscope(profile, result.profile, name=impl.name)
    return result
