"""The one-call public API.

:func:`run` is the library's front door: point it at a workspace
directory (or hand it a synthetic :class:`~repro.synth.events.EventSpec`
to generate first), pick a scheduling policy and a backend, and get a
:class:`~repro.core.runner.PipelineResult` back — optionally with the
full span trace attached and exported as Chrome Trace Event JSON.

    import repro

    result = repro.run("my-workspace")                       # existing V1 files
    result = repro.run(event, workspace="out", trace=True)   # synthetic event
    result = repro.run("ws", policy="wavefront-parallel",
                       backend="process", workers=8,
                       trace="run.trace.json")

    builder = repro.PipelineBuilder(name="qc-only")          # custom graph
    builder.add_processes([0, 1, 2, 3])
    result = repro.run("ws", policy=builder)

The ``implementation=`` positional argument of earlier releases still
works but is deprecated in favour of ``policy=``.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from repro.core import RunContext, Workspace
from repro.core.context import ParallelSettings
from repro.core.runner import PipelineImplementation, PipelineResult
from repro.observability.tracer import Tracer
from repro.parallel.backend import Backend
from repro.synth.events import EventSpec


def _resolve_pipeline(implementation, policy) -> PipelineImplementation:
    """Resolve the deprecated ``implementation=`` / new ``policy=`` pair."""
    from repro.engine.policy import resolve_policy

    if implementation is not None and policy is not None:
        raise ValueError(
            "run(): pass either policy= or the deprecated implementation=, "
            "not both"
        )
    if implementation is not None:
        if isinstance(implementation, str):
            warnings.warn(
                f"run(..., implementation={implementation!r}) is deprecated; "
                f"use run(..., policy={implementation!r})",
                DeprecationWarning,
                stacklevel=3,
            )
            return resolve_policy(implementation).pipeline()
        if isinstance(implementation, PipelineImplementation):
            return implementation
        if isinstance(implementation, type) and issubclass(
            implementation, PipelineImplementation
        ):
            return implementation()
        raise ValueError(
            "run(): implementation must be a name, a PipelineImplementation "
            f"class or an instance; got {type(implementation).__name__}"
        )
    if policy is None:
        policy = "full-parallel"
    if isinstance(policy, PipelineImplementation):
        return policy
    if isinstance(policy, type) and issubclass(policy, PipelineImplementation):
        return policy()
    return resolve_policy(policy).pipeline()


def run(
    source: str | Path | Workspace | RunContext | EventSpec,
    implementation=None,
    *,
    policy=None,
    backend: Backend | str | None = None,
    workers: int | None = None,
    trace: bool | str | Path | None = None,
    profile: bool | str | Path | None = None,
    events: bool = False,
    ledger: str | Path | None = None,
    workspace: str | Path | None = None,
    response_periods: int | None = None,
    settings: ParallelSettings | None = None,
) -> PipelineResult:
    """Run the pipeline end-to-end under one scheduling policy.

    ``source`` selects the input:

    - a directory path (or :class:`Workspace`) whose ``input/`` holds
      the V1 records to process;
    - an :class:`EventSpec` — its synthetic dataset is generated first,
      into ``workspace`` (a temporary directory by default);
    - a fully-configured :class:`RunContext`, used as-is (``backend``,
      ``workers``, ``response_periods`` and ``settings`` must then be
      left unset).

    ``policy`` selects the schedule (default ``"full-parallel"``):

    - a registered policy name (``repro.engine.policy_names()`` lists
      them: the paper's four schemes plus ``full-parallel-fused``,
      ``dag-parallel``, ``cluster-parallel``, ...);
    - a :class:`~repro.engine.SchedulingPolicy` instance;
    - a user-built :class:`~repro.engine.PipelineBuilder` (or its
      :class:`~repro.engine.TaskGraph`), executed by its derived
      dependency layering.

    ``implementation`` (second positional argument) is the deprecated
    pre-engine spelling: names resolve through the policy registry and
    emit :class:`DeprecationWarning`; implementation classes and
    instances still run as-is.

    ``backend`` applies one backend to loops, tasks and tools alike
    (``ParallelSettings.uniform``); pass ``settings`` instead for
    per-strategy control.  ``trace=True`` attaches the run's span
    :class:`~repro.observability.tracer.Trace` to the returned result;
    a path additionally writes it as Chrome Trace Event JSON.
    ``profile=True`` samples the run (driver threads and pool workers
    alike) and attaches the merged
    :class:`~repro.observability.profiling.Profile` as
    ``result.profile``; a path additionally writes it as speedscope
    JSON.

    ``events=True`` streams live lifecycle/telemetry events to the
    workspace's ``.events/`` log while the run executes — tail it with
    ``repro-top`` (see :mod:`repro.observability.events`).  ``ledger``
    appends the finished run to the SQLite run ledger at that path
    (see :mod:`repro.observability.ledger`); independent of it, setting
    the ``REPRO_LEDGER`` environment variable auto-appends every run.

    Returns the policy's :class:`PipelineResult` (with ``result.trace``
    / ``result.profile`` set when requested).
    """
    impl = _resolve_pipeline(implementation, policy)

    if isinstance(source, RunContext):
        if backend is not None or workers is not None or settings is not None \
                or response_periods is not None:
            raise ValueError(
                "run(): a RunContext source carries its own settings; "
                "backend/workers/settings/response_periods must be unset"
            )
        ctx = source
    else:
        if settings is None:
            if backend is not None:
                settings = ParallelSettings.uniform(backend, num_workers=workers)
            else:
                settings = ParallelSettings(num_workers=workers)
        kwargs: dict = {"parallel": settings}
        if response_periods is not None:
            from repro.spectra.response import ResponseSpectrumConfig, default_periods

            kwargs["response_config"] = ResponseSpectrumConfig(
                periods=default_periods(response_periods)
            )
        if isinstance(source, EventSpec):
            root = Path(
                workspace
                if workspace is not None
                else tempfile.mkdtemp(prefix=f"repro-run-{source.event_id}-")
            )
            ctx = RunContext.for_directory(root, **kwargs)
            if not ctx.workspace.input_stations():
                from repro.synth.dataset import generate_event_dataset

                generate_event_dataset(source, ctx.workspace.input_dir)
        elif isinstance(source, Workspace):
            ctx = RunContext(workspace=source.create(), **kwargs)
        else:
            ctx = RunContext.for_directory(Path(source), **kwargs)

    if trace or profile:
        # Profiling needs the tracer for span attribution, so asking
        # for a profile implies a trace on the result too.
        ctx.tracer = Tracer()
    if profile:
        from repro.observability.profiling import SamplingProfiler

        ctx.profiler = SamplingProfiler()
    if events:
        ctx.events = True

    result = impl.run(ctx)

    if ledger is not None:
        from repro.observability.ledger import RunLedger, run_entry

        RunLedger(ledger).append(run_entry(ctx, result))

    if trace and not isinstance(trace, bool):
        from repro.observability.export import write_chrome_trace

        if result.trace is not None:
            write_chrome_trace(trace, result.trace, profile=result.profile)
    if profile and not isinstance(profile, bool):
        from repro.observability.profiling import write_speedscope

        if result.profile is not None:
            write_speedscope(profile, result.profile, name=impl.name)
    return result
