"""The run-metrics registry.

Where the tracer records *intervals*, this module records *aggregates*:
counters (chunks scheduled, artifact bytes written, data points
processed), gauges (task queue depth, run duration) and fixed-boundary
histograms (chunk/task durations).  One :class:`MetricsRegistry` lives
on the driver's :class:`~repro.core.context.RunContext`; every layer of
the pipeline increments into it.

Crossing process boundaries works like the tracer's span records, not
like a shared-memory store: pool workers accumulate into a private
*shard* opened by the worker shims of :mod:`repro.parallel.omp`
(:func:`begin_worker_window` / :func:`drain_worker_shard`), the shard
travels back with the chunk/task results, and the driver merges it with
:meth:`MetricsRegistry.merge`.  Merging is associative and commutative
and preserves histogram counts and sums exactly — the property suite
checks this — so the merged registry is independent of scheduling
order, chunking, and backend.

Instrumentation helpers (:func:`record_io`, :func:`record_points`,
:func:`record_process`) route through :func:`recording_registry`, which
resolves to the driver's installed registry in-process and to the open
worker shard inside pool processes; with neither present they are
no-ops, so instrumented code costs one dict lookup when metrics are
off.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import ReproError

#: Default histogram boundaries for durations (seconds).  Upper bounds
#: of the finite buckets; one +Inf bucket is always appended.
DURATION_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)

#: Default histogram boundaries for byte sizes.
SIZE_BUCKETS: tuple[float, ...] = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum.  Merge: addition."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ReproError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def payload(self) -> dict[str, Any]:
        return {"value": self.value}

    def load(self, data: dict[str, Any]) -> None:
        self.value = float(data["value"])

    def merge(self, data: dict[str, Any]) -> None:
        self.value += float(data["value"])


class Gauge:
    """A point-in-time value.  Merge: maximum (high-water semantics —
    the only order-independent combination of per-worker readings)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the reading."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the larger of the current and the new reading."""
        self.value = max(self.value, float(value))

    def payload(self) -> dict[str, Any]:
        return {"value": self.value}

    def load(self, data: dict[str, Any]) -> None:
        self.value = float(data["value"])

    def merge(self, data: dict[str, Any]) -> None:
        self.value = max(self.value, float(data["value"]))


class Histogram:
    """Fixed-boundary histogram.  Merge: bucketwise addition.

    ``boundaries`` are the upper bounds of the finite buckets; an
    implicit +Inf bucket catches the rest.  Boundaries are part of the
    identity — merging histograms with different boundaries raises.
    """

    kind = "histogram"
    __slots__ = ("boundaries", "counts", "sum")

    def __init__(self, boundaries: tuple[float, ...] = DURATION_BUCKETS) -> None:
        if list(boundaries) != sorted(boundaries) or len(set(boundaries)) != len(boundaries):
            raise ReproError(f"histogram boundaries must be strictly increasing: {boundaries}")
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.sum = 0.0

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self.counts)

    def observe(self, value: float) -> None:
        """Record one observation."""
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value

    def payload(self) -> dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.sum,
        }

    def load(self, data: dict[str, Any]) -> None:
        self.counts = [int(c) for c in data["counts"]]
        self.sum = float(data["sum"])

    def merge(self, data: dict[str, Any]) -> None:
        if tuple(float(b) for b in data["boundaries"]) != self.boundaries:
            raise ReproError(
                f"cannot merge histograms with different boundaries: "
                f"{data['boundaries']} vs {list(self.boundaries)}"
            )
        self.counts = [a + int(b) for a, b in zip(self.counts, data["counts"])]
        self.sum += float(data["sum"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A thread-safe family of named, labeled instruments.

    Instruments are get-or-create by (name, labels); a name is bound to
    one kind (and, for histograms, one boundary set) for the registry's
    lifetime.  Pickling a registry (the process backend pickles the
    :class:`~repro.core.context.RunContext` into its workers) yields an
    *empty* one: workers accumulate into their own shard and hand it
    back through the runtime, they never write here directly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._boundaries: dict[str, tuple[float, ...]] = {}

    # -- pickling: cross the process boundary empty ---------------------

    def __getstate__(self) -> dict[str, Any]:
        return {}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__()

    # -- instrument access ----------------------------------------------

    def _get(
        self, kind: str, name: str, help_text: str, labels: dict[str, Any],
        boundaries: tuple[float, ...] | None = None,
    ) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            bound_kind = self._kinds.setdefault(name, kind)
            if bound_kind != kind:
                raise ReproError(f"metric {name!r} is a {bound_kind}, not a {kind}")
            if help_text and name not in self._help:
                self._help[name] = help_text
            if kind == "histogram":
                bound = self._boundaries.setdefault(name, boundaries or DURATION_BUCKETS)
                if boundaries is not None and tuple(boundaries) != bound:
                    raise ReproError(
                        f"metric {name!r} already uses boundaries {bound}"
                    )
                boundaries = bound
            instrument = self._metrics.get(key)
            if instrument is None:
                if kind == "histogram":
                    instrument = Histogram(boundaries or DURATION_BUCKETS)
                else:
                    instrument = _KINDS[kind]()
                self._metrics[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """Get-or-create a counter."""
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """Get-or-create a gauge."""
        return self._get("gauge", name, help, labels)

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] | None = None, **labels: Any,
    ) -> Histogram:
        """Get-or-create a fixed-boundary histogram."""
        return self._get("histogram", name, help, labels, boundaries=buckets)

    # -- reading ----------------------------------------------------------

    def names(self) -> list[str]:
        """Metric family names, sorted."""
        with self._lock:
            return sorted(self._kinds)

    def samples(self, name: str) -> list[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """Every (labels, instrument) of one family, in label order."""
        with self._lock:
            found = sorted(
                (key[1], inst) for key, inst in self._metrics.items() if key[0] == name
            )
        return [(dict(labels), inst) for labels, inst in found]

    def value(self, name: str, **labels: Any) -> float | None:
        """Counter/gauge value (histogram: observation count), or None."""
        with self._lock:
            instrument = self._metrics.get((name, _label_key(labels)))
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value

    def total(self, name: str, **label_filter: Any) -> float:
        """Summed counter values across all label sets matching the filter."""
        wanted = {str(k): str(v) for k, v in label_filter.items()}
        total = 0.0
        for labels, inst in self.samples_all():
            if inst.kind != "counter":
                continue
            if labels[0] != name:
                continue
            if all(dict(labels[1]).get(k) == v for k, v in wanted.items()):
                total += inst.value
        return total

    def samples_all(self) -> list[tuple[tuple[str, LabelKey], Counter | Gauge | Histogram]]:
        """Every ((name, labels), instrument), in sorted order."""
        with self._lock:
            return sorted(self._metrics.items(), key=lambda kv: kv[0])

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- serialization / merging -----------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (also the merge wire format)."""
        with self._lock:
            metrics = [
                {
                    "name": name,
                    "kind": inst.kind,
                    "labels": [list(pair) for pair in labels],
                    **inst.payload(),
                }
                for (name, labels), inst in sorted(self._metrics.items(), key=lambda kv: kv[0])
            ]
            help_text = dict(self._help)
        return {"metrics": metrics, "help": help_text}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict`."""
        registry = cls()
        registry.merge(data)
        return registry

    def merge(self, other: "MetricsRegistry | dict[str, Any]") -> "MetricsRegistry":
        """Fold another registry (or its :meth:`to_dict` shard) into this one.

        Counters add, gauges take the max, histograms add bucketwise;
        the operation is associative and commutative, so shards may be
        merged in any order and grouping.  Returns ``self``.
        """
        shard = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for entry in shard.get("metrics", ()):
            labels = dict(tuple(pair) for pair in entry["labels"])
            instrument = self._get(
                entry["kind"], entry["name"], shard.get("help", {}).get(entry["name"], ""),
                labels,
                boundaries=tuple(entry["boundaries"]) if entry["kind"] == "histogram" else None,
            )
            instrument.merge(entry)
        return self

    # -- Prometheus text --------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus exposition-format dump of every family."""
        lines: list[str] = []
        for name in self.names():
            samples = self.samples(name)
            if not samples:
                continue
            kind = samples[0][1].kind
            if self._help.get(name):
                lines.append(f"# HELP {name} {self._help[name]}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, inst in samples:
                if isinstance(inst, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                        list(inst.boundaries) + [float("inf")], inst.counts
                    ):
                        cumulative += count
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        lines.append(
                            f"{name}_bucket{_labels_text({**labels, 'le': le})} {cumulative}"
                        )
                    lines.append(f"{name}_sum{_labels_text(labels)} {inst.sum:.6f}")
                    lines.append(f"{name}_count{_labels_text(labels)} {inst.count}")
                else:
                    lines.append(f"{name}{_labels_text(labels)} {inst.value:.6f}")
        return "\n".join(lines) + "\n" if lines else ""


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            k, str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )
        for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


# -- collection plumbing ---------------------------------------------------
#
# Driver side: ``collecting(registry)`` installs the run's registry for
# the duration; instrumented code anywhere on the driver's threads
# reaches it through ``recording_registry()``.  Worker side: the omp
# shims bracket each chunk/task with ``begin_worker_window()`` /
# ``drain_worker_shard()`` and ship the shard home.  Both slots are
# pid-guarded so state inherited across a fork (process pools fork
# lazily) is treated as absent rather than silently written to.

_installed: tuple[MetricsRegistry, int] | None = None
_window: tuple[MetricsRegistry, int] | None = None


@contextmanager
def collecting(registry: MetricsRegistry | None) -> Iterator[MetricsRegistry | None]:
    """Install ``registry`` as this process's recording target.

    Tolerates ``None`` (yields without installing) so callers can pass
    an optional registry straight through.
    """
    global _installed
    if registry is None:
        yield None
        return
    previous = _installed
    _installed = (registry, os.getpid())
    try:
        yield registry
    finally:
        _installed = previous


def installed_registry() -> MetricsRegistry | None:
    """The driver-installed registry, unless inherited across a fork."""
    if _installed is not None and _installed[1] == os.getpid():
        return _installed[0]
    return None


def begin_worker_window() -> None:
    """Open a fresh worker shard (called by the omp worker shims).

    Discards anything a previous window on this process left behind, so
    a pool worker reused across runs cannot leak stale counts into a
    later shard.
    """
    global _window
    _window = (MetricsRegistry(), os.getpid())


def drain_worker_shard() -> dict[str, Any] | None:
    """Close the worker window and return its shard (None if empty)."""
    global _window
    if _window is None or _window[1] != os.getpid():
        return None
    registry, _ = _window
    _window = None
    shard = registry.to_dict()
    return shard if shard["metrics"] else None


def recording_registry() -> MetricsRegistry | None:
    """Wherever the current process should record: the driver-installed
    registry first, else the open worker window, else nowhere."""
    registry = installed_registry()
    if registry is not None:
        return registry
    if _window is not None and _window[1] == os.getpid():
        return _window[0]
    return None


# -- instrumentation helpers ----------------------------------------------

_current_scope = None  # resolved lazily; repro.core imports this module


def _scope_process() -> str | None:
    """Process label (``P16``) of the active audit scope, if any."""
    global _current_scope
    if _current_scope is None:
        from repro.core.auditing import current_scope

        _current_scope = current_scope
    scope = _current_scope()
    return scope[0] if scope else None


def record_io(
    op: str, artifact: str, nbytes: int, process: str | None = None,
    count_access: bool = True,
) -> None:
    """Count one artifact access of ``nbytes`` (audit-hook callback).

    ``count_access=False`` adds only the bytes — used by the write-path
    hooks, where the access itself was already counted at open time but
    the size is only known once the payload has been written.
    """
    registry = recording_registry()
    if registry is None:
        return
    process = process or _scope_process() or "-"
    registry.counter(
        "repro_artifact_io_bytes_total",
        help="Bytes read/written per artifact class, attributed to the "
        "pipeline process that performed the access.",
        op=op, artifact=artifact, process=process,
    ).inc(max(0, nbytes))
    if count_access:
        registry.counter(
            "repro_artifact_io_total",
            help="Artifact accesses per artifact class.",
            op=op, artifact=artifact, process=process,
        ).inc(1)


def record_points(npts: int, process: str | None = None) -> None:
    """Count data points read by the current pipeline process."""
    registry = recording_registry()
    if registry is None:
        return
    process = process or _scope_process() or "-"
    registry.counter(
        "repro_points_processed_total",
        help="Record data points read, per pipeline process.",
        process=process,
    ).inc(max(0, npts))


def record_process(pid: int, duration_s: float) -> None:
    """Count one execution of pipeline process ``P<pid>``."""
    registry = recording_registry()
    if registry is None:
        return
    label = f"P{pid}"
    registry.counter(
        "repro_process_runs_total",
        help="Executions per pipeline process.",
        process=label,
    ).inc(1)
    registry.counter(
        "repro_process_seconds_total",
        help="Summed wall-clock per pipeline process.",
        process=label,
    ).inc(duration_s)


def record_fault(kind: str, target: str) -> None:
    """Count one injected fault actually firing (resilience runtime)."""
    registry = recording_registry()
    if registry is None:
        return
    registry.counter(
        "repro_faults_injected_total",
        help="Injected faults that fired, per fault kind and target.",
        kind=kind, target=target,
    ).inc(1)


def record_retry(process: str) -> None:
    """Count one retry of a failed unit of work."""
    registry = recording_registry()
    if registry is None:
        return
    registry.counter(
        "repro_retries_total",
        help="Unit retries performed, per pipeline process.",
        process=process,
    ).inc(1)


def record_quarantine(process: str, kind: str) -> None:
    """Count one record entering quarantine."""
    registry = recording_registry()
    if registry is None:
        return
    registry.counter(
        "repro_quarantined_records_total",
        help="Records quarantined, per originating process and failure class.",
        process=process, kind=kind,
    ).inc(1)
