"""``repro-top``: a live terminal monitor for in-flight pipeline runs.

Point it at a workspace processed with events enabled
(``repro.run(..., events=True)`` / ``repro-process --events``) and it
tails the ``.events/`` shard logs while the run executes, rendering

- per-stage progress bars (units done / planned, from the
  ``units_total``/``unit_finished`` stream),
- worker lane utilization (busy seconds per worker lane),
- retry / fault / quarantine counters from the resilience runtime,
- the latest resource heartbeat (RSS, threads, CPU utilization), and
- an ETA for the remaining work, computed through the critpath
  :class:`~repro.observability.critpath.SpeedupModel` (Brent's bound
  applied to the unfinished units plus pending stages).

Everything is split in two layers so it can be tested offline: the pure
:class:`RunView` (folds a merged event list into monitor state) and the
pure :func:`render_top` (RunView -> text frame); ``main_top`` only adds
the tail-and-redraw loop.  ``--overhead-check`` reuses the interleaved
min-of-k method of ``repro-profile --overhead-check`` to prove event
emission stays under its wall-clock budget.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Relative wall-clock budget of live event emission (bare run vs
#: events-enabled run, min-of-k).  Tighter than the profiler's 10%:
#: emission is a line-buffered append per unit, not a sampler.
EVENTS_OVERHEAD_TOLERANCE = 0.05
#: Absolute floor (seconds) under which an overhead delta is scheduler
#: noise, mirroring ``repro-profile --overhead-check``.
OVERHEAD_FLOOR_S = 0.05


@dataclass
class StageView:
    """Monitor state of one planned stage."""

    name: str
    strategy: str = ""
    tasks: int = 0
    status: str = "pending"  # pending | running | done
    started_t: float | None = None
    duration_s: float | None = None
    units_total: int = 0
    _units_done: int = 0
    unit_work_s: float = 0.0
    units_seen: int = 0
    tasks_done: int = 0

    @property
    def units_done(self) -> int:
        """Completed units, clamped to the plan.

        A retried unit is counted twice by the shards (the failing
        attempt was genuinely executed, and so was its resubmission);
        the monitor view clamps so progress never reads past 100%.
        """
        if self.units_total > 0:
            return min(self._units_done, self.units_total)
        return self._units_done

    @property
    def avg_unit_s(self) -> float | None:
        if self.units_seen <= 0:
            return None
        return self.unit_work_s / self.units_seen

    @property
    def fraction(self) -> float:
        if self.status == "done":
            return 1.0
        if self.units_total > 0:
            return self.units_done / self.units_total
        return 0.0


@dataclass
class WorkerLane:
    """Accumulated busy time of one worker lane."""

    name: str
    busy_s: float = 0.0
    units: int = 0


@dataclass
class RunView:
    """Everything one frame of the monitor needs, folded from events."""

    implementation: str = "?"
    workspace: str = ""
    workers: int = 1
    backend: str = ""
    policy: str = ""
    status: str = "waiting"  # waiting | running | ok | degraded | failed
    started_t: float | None = None
    last_t: float | None = None
    total_s: float | None = None
    stages: list[StageView] = field(default_factory=list)
    lanes: dict[str, WorkerLane] = field(default_factory=dict)
    retries: int = 0
    faults: int = 0
    quarantined: list[str] = field(default_factory=list)
    heartbeat: dict | None = None
    batch_status: str | None = None

    def _stage(self, name: str | None) -> StageView:
        for stage in self.stages:
            if stage.name == name:
                return stage
        stage = StageView(name=name or "?")
        self.stages.append(stage)
        return stage

    @classmethod
    def from_events(cls, events: list[dict]) -> "RunView":
        """Fold a merged event list (see ``read_events``) into a view."""
        view = cls()
        for e in events:
            view.last_t = e["t"]
            kind = e["type"]
            if kind == "run_started":
                view.status = "running"
                view.started_t = e["t"]
                view.implementation = e.get("implementation", "?")
                view.workspace = e.get("workspace", "")
                view.workers = int(e.get("workers") or 1)
                view.backend = e.get("loop_backend", "")
            elif kind == "plan":
                view.policy = e.get("policy", "")
                for region in e.get("regions", ()):
                    stage = view._stage(region.get("label"))
                    stage.strategy = region.get("strategy", "")
                    tasks = region.get("tasks") or 0
                    # The plan lists task names; older fixtures a count.
                    stage.tasks = len(tasks) if isinstance(tasks, list) else int(tasks)
            elif kind == "stage_started":
                stage = view._stage(e.get("stage"))
                stage.status = "running"
                stage.started_t = e["t"]
            elif kind == "stage_finished":
                stage = view._stage(e.get("stage"))
                stage.status = "done"
                stage.duration_s = float(e.get("duration_s") or 0.0)
            elif kind == "units_total":
                view._stage(e.get("stage")).units_total += int(e.get("total") or 0)
            elif kind == "unit_finished":
                stage = view._stage(e.get("stage"))
                count = int(e.get("count") or 1)
                stage._units_done += count
                stage.units_seen += count
                stage.unit_work_s += float(e.get("duration_s") or 0.0)
                view._lane(e.get("worker"), e.get("duration_s"), count)
            elif kind == "task_finished":
                stage = view._stage(e.get("stage"))
                stage.tasks_done += 1
                view._lane(e.get("worker"), e.get("duration_s"), 1)
            elif kind == "retry":
                view.retries += 1
            elif kind == "fault":
                view.faults += 1
            elif kind == "quarantine":
                view.quarantined.append(str(e.get("record")))
            elif kind == "heartbeat":
                view.heartbeat = e
            elif kind == "run_finished":
                view.status = e.get("status", "ok")
                view.total_s = float(e.get("total_s") or 0.0)
            elif kind == "batch_event_finished":
                view.batch_status = (
                    f"{e.get('event_id')}: {e.get('status')}"
                    + (f" ({e.get('quarantined')} quarantined)"
                       if e.get("quarantined") else "")
                )
        return view

    def _lane(self, worker: object, duration_s: object, units: int) -> None:
        name = str(worker or "?")
        lane = self.lanes.setdefault(name, WorkerLane(name=name))
        lane.busy_s += float(duration_s or 0.0)
        lane.units += units

    @property
    def elapsed_s(self) -> float:
        if self.total_s is not None:
            return self.total_s
        if self.started_t is None or self.last_t is None:
            return 0.0
        return max(0.0, self.last_t - self.started_t)

    def eta_s(self) -> float | None:
        """Estimated remaining seconds, via the critpath speedup model.

        The remaining work is assembled per stage — unfinished units of
        running stages at their observed mean unit cost, pending stages
        at the mean completed-stage duration — and run through
        :class:`~repro.observability.critpath.SpeedupModel`: pending
        stages count as the serial term, the unfinished units as
        parallel work, and Brent's bound ``T1/N + T_inf`` gives the
        time-to-finish at the run's worker count.
        """
        from repro.observability.critpath import SpeedupModel

        if self.status != "running":
            return 0.0 if self.status in ("ok", "degraded", "failed") else None
        done = [s.duration_s for s in self.stages
                if s.status == "done" and s.duration_s is not None]
        avg_units = [s.avg_unit_s for s in self.stages if s.avg_unit_s is not None]
        global_avg_unit = sum(avg_units) / len(avg_units) if avg_units else None

        rem_work = 0.0   # parallelizable seconds left (unfinished units)
        rem_span = 0.0   # longest single remaining unit per running stage
        for stage in self.stages:
            if stage.status != "running":
                continue
            avg = stage.avg_unit_s or global_avg_unit
            remaining_units = max(0, stage.units_total - stage.units_done)
            if avg is None or stage.units_total <= 0:
                continue
            rem_work += remaining_units * avg
            if remaining_units:
                rem_span += avg
        pending = [s for s in self.stages if s.status == "pending"]
        if pending and not done:
            return None  # nothing to extrapolate pending stages from yet
        serial_s = len(pending) * (sum(done) / len(done) if done else 0.0)

        if rem_work <= 0 and serial_s <= 0:
            return 0.0
        model = SpeedupModel(
            workers=max(1, self.workers),
            measured_s=self.elapsed_s,
            serial_s=serial_s,
            t1_s=serial_s + rem_work,
            t_inf_s=serial_s + rem_span,
        )
        model._brent_time_s = (
            serial_s + rem_work / max(1, self.workers) + rem_span
        )
        return model.brent_time_s


# -- rendering -----------------------------------------------------------


def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(eta: float | None) -> str:
    if eta is None:
        return "--"
    if eta >= 60:
        return f"{int(eta // 60)}m{int(eta % 60):02d}s"
    return f"{eta:.1f}s"


def render_top(view: RunView, *, width: int = 80) -> str:
    """One text frame of the monitor (pure: RunView -> str)."""
    lines: list[str] = []
    title = f"repro-top — {view.policy or view.implementation}"
    if view.backend:
        title += f" ({view.backend} x{view.workers})"
    lines.append(title)
    lines.append(
        f"status {view.status:<9} elapsed {view.elapsed_s:7.1f}s   "
        f"eta {_fmt_eta(view.eta_s())}"
    )
    if view.workspace:
        lines.append(f"workspace {view.workspace}")
    lines.append("")

    name_w = max((len(s.name) for s in view.stages), default=5)
    bar_w = max(10, min(40, width - name_w - 30))
    for stage in view.stages:
        marker = {"pending": " ", "running": ">", "done": "*"}[stage.status]
        if stage.units_total > 0:
            detail = f"{stage.units_done:>4}/{stage.units_total:<4} units"
        elif stage.tasks_done or stage.tasks:
            detail = f"{stage.tasks_done:>4}/{stage.tasks or '?':<4} tasks"
        else:
            detail = " " * 14
        dur = (
            f"{stage.duration_s:7.2f}s" if stage.duration_s is not None else " " * 8
        )
        lines.append(
            f"{marker} {stage.name:<{name_w}} [{_bar(stage.fraction, bar_w)}] "
            f"{detail} {dur}"
        )

    if view.lanes:
        lines.append("")
        lines.append("worker lanes")
        elapsed = max(view.elapsed_s, 1e-9)
        lane_w = max(len(name) for name in view.lanes)
        for name in sorted(view.lanes):
            lane = view.lanes[name]
            util = min(1.0, lane.busy_s / elapsed)
            lines.append(
                f"  {name:<{lane_w}} [{_bar(util, 20)}] "
                f"{lane.busy_s:7.2f}s busy  {lane.units:>4} units"
            )

    counters = (
        f"retries {view.retries}   faults {view.faults}   "
        f"quarantined {len(view.quarantined)}"
    )
    lines.append("")
    lines.append(counters)
    for record in view.quarantined[-3:]:
        lines.append(f"  quarantined: {record}")
    if view.heartbeat is not None:
        hb = view.heartbeat
        rss = float(hb.get("rss_bytes") or 0.0) / (1024 * 1024)
        extras = []
        if hb.get("threads") is not None:
            extras.append(f"{hb['threads']} threads")
        if hb.get("utilization") is not None:
            extras.append(f"{float(hb['utilization']):.0%} cpu")
        lines.append(
            f"heartbeat: rss {rss:7.1f} MiB" + ("  " + "  ".join(extras) if extras else "")
        )
    if view.batch_status:
        lines.append(f"batch: {view.batch_status}")
    return "\n".join(lines)


# -- CLI -----------------------------------------------------------------


def _overhead_check(args: argparse.Namespace) -> int:
    """Bare vs events-enabled runs, interleaved min-of-k.

    The same method ``repro-profile --overhead-check`` uses, applied to
    event emission with its tighter 5% budget.
    """
    import shutil
    import tempfile

    from repro.bench.harness import small_response_config
    from repro.bench.workloads import materialize, scaled_workload
    from repro.core import RunContext
    from repro.core.context import ParallelSettings
    from repro.engine import pipeline_factory
    from repro.synth.events import paper_event

    event = paper_event(args.event)
    workload = scaled_workload(event, args.scale)
    impl_cls = pipeline_factory(args.policy)

    def run_once(with_events: bool) -> float:
        base = Path(tempfile.mkdtemp(prefix="repro-top-overhead-"))
        try:
            ctx = RunContext.for_directory(
                base / "ws",
                response_config=small_response_config(n_periods=args.periods),
                parallel=ParallelSettings.uniform(
                    args.backend, num_workers=args.workers
                ),
            )
            ctx.events = with_events
            materialize(event, workload, ctx.workspace.input_dir)
            return impl_cls().run(ctx).total_s
        finally:
            shutil.rmtree(base, ignore_errors=True)

    # One untimed warmup pays the one-off costs (module imports, file
    # cache, allocator growth) that would otherwise land entirely on
    # whichever arm happens to run first.
    run_once(True)

    # Interleave the arms so drift (cache warmup, thermal) hits both.
    bare: list[float] = []
    live: list[float] = []
    for _ in range(max(1, args.repeats)):
        bare.append(run_once(False))
        live.append(run_once(True))
    base_s, live_s = min(bare), min(live)
    delta = live_s - base_s
    rel = delta / base_s if base_s > 0 else 0.0
    print(
        f"{args.policy} on {args.event} ({args.backend}, min of {len(bare)}):"
    )
    print(f"  bare          {base_s:.4f} s")
    print(f"  with events   {live_s:.4f} s")
    print(f"  overhead      {delta:+.4f} s ({rel:+.1%})")
    if rel > EVENTS_OVERHEAD_TOLERANCE and delta > OVERHEAD_FLOOR_S:
        print(
            f"FAIL: event emission overhead beyond "
            f"{EVENTS_OVERHEAD_TOLERANCE:.0%} (and above the "
            f"{OVERHEAD_FLOOR_S:g} s noise floor)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: within {EVENTS_OVERHEAD_TOLERANCE:.0%} tolerance")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    from repro.parallel.backend import Backend

    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live monitor for an event-logged pipeline run "
        "(run with repro-process --events or repro.run(..., events=True)).",
    )
    parser.add_argument(
        "workspace", nargs="?", default=".",
        help="workspace root whose .events/ log to tail",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5, help="refresh period in seconds"
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render a single frame from the current log and exit",
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="append frames instead of redrawing in place (no ANSI codes)",
    )
    parser.add_argument("--width", type=int, default=80, help="frame width")
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="give up after this many seconds of following",
    )
    check = parser.add_argument_group("overhead check")
    check.add_argument(
        "--overhead-check", action="store_true",
        help="measure event-emission overhead (bare vs events-enabled, "
        "interleaved min-of-k) instead of monitoring; exit 1 beyond "
        f"{EVENTS_OVERHEAD_TOLERANCE:.0%}",
    )
    check.add_argument("--event", default="EV-NOV18", help="catalog event id")
    check.add_argument("--policy", default="dag-parallel", help="scheduling policy")
    check.add_argument(
        "--backend", default=Backend.THREAD.value,
        choices=[backend.value for backend in Backend],
    )
    check.add_argument("--workers", type=int, default=None)
    check.add_argument("--scale", type=float, default=0.05, help="dataset size scale")
    check.add_argument("--periods", type=int, default=30)
    check.add_argument("--repeats", type=int, default=5, help="repetitions per arm")
    return parser


def main_top(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-top``."""
    from repro.observability.events import read_events

    args = _build_parser().parse_args(argv)
    if args.overhead_check:
        return _overhead_check(args)

    root = Path(args.workspace)
    deadline = (
        time.monotonic() + args.timeout if args.timeout is not None else None
    )
    last_frame = ""
    while True:
        events = read_events(root)
        view = RunView.from_events(events)
        frame = render_top(view, width=args.width)
        if not events:
            frame = (
                f"repro-top — waiting for events under {root}/.events "
                "(is the run started with events enabled?)"
            )
        if args.once:
            print(frame)
            return 0
        if args.plain:
            if frame != last_frame:
                print(frame)
                print("-" * 40)
        else:
            # Clear screen + home, then the frame: a cheap full redraw.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
        last_frame = frame
        if view.status in ("ok", "degraded", "failed"):
            print(f"run finished: {view.status}")
            return 0 if view.status != "failed" else 1
        if deadline is not None and time.monotonic() > deadline:
            print("repro-top: timeout while following", file=sys.stderr)
            return 2
        time.sleep(args.interval)


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_top())
