"""Structured run telemetry: span tracing across the pipeline.

Every execution layer — the implementation drivers, the OpenMP-shaped
runtime, the MPI-style cluster layer — can open :class:`Span`\\ s on a
:class:`Tracer` attached to the :class:`~repro.core.context.RunContext`.
A finished run yields a :class:`Trace`: a tree

    run -> implementation -> stage -> process -> chunk/task/rank

whose per-stage durations *are* the numbers the paper's Table I and
Figures 11-13 aggregate.  :mod:`repro.observability.export` renders a
trace as Chrome Trace Event JSON (``chrome://tracing`` / Perfetto), a
Prometheus-style metrics text dump, Gantt placements for
:func:`repro.plotting.gantt.plot_trace_gantt`, or a reconstructed
:class:`~repro.core.runner.PipelineResult` view.

:mod:`repro.observability.profiling` adds a cross-process sampling
profiler whose samples are attributed to the open spans (flamegraphs
via speedscope / collapsed-stack exports), and
:mod:`repro.observability.critpath` turns a finished trace into a
measured critical path, per-stage parallel efficiencies, and an
Amdahl / work-span speedup model (``repro-perf explain``).

The live side: :mod:`repro.observability.events` streams structured
run events from an executing pipeline (tail with ``repro-top``),
:mod:`repro.observability.ledger` keeps a persistent SQLite history of
finished runs (``repro-ledger``), and
:mod:`repro.observability.report_html` renders one self-contained HTML
report per run (``repro-report``).
"""

from repro.observability.tracer import Span, Trace, Tracer, maybe_span, worker_label
from repro.observability.export import (
    pipeline_result_view,
    to_chrome_trace,
    to_prometheus_text,
    trace_placements,
    write_chrome_trace,
    write_metrics,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
)
from repro.observability.resources import (
    ResourceLog,
    ResourceSample,
    ResourceSampler,
    resources_available,
)
from repro.observability.profiling import (
    Profile,
    SamplingProfiler,
    profiling_session,
    write_collapsed,
    write_speedscope,
)
from repro.observability.critpath import (
    critical_path,
    critical_path_length,
    explain,
    render_explain,
    speedup_model,
    stage_stats,
)
from repro.observability.events import (
    read_events,
    validate_events,
    write_events,
)
from repro.observability.ledger import RunLedger, run_entry
from repro.observability.report_html import render_html_report, write_html_report
from repro.observability.top import RunView, render_top

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "maybe_span",
    "worker_label",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus_text",
    "trace_placements",
    "pipeline_result_view",
    "write_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "collecting",
    "ResourceLog",
    "ResourceSample",
    "ResourceSampler",
    "resources_available",
    "Profile",
    "SamplingProfiler",
    "profiling_session",
    "write_collapsed",
    "write_speedscope",
    "critical_path",
    "critical_path_length",
    "explain",
    "render_explain",
    "speedup_model",
    "stage_stats",
    "read_events",
    "validate_events",
    "write_events",
    "RunLedger",
    "run_entry",
    "RunView",
    "render_top",
    "render_html_report",
    "write_html_report",
]
