"""The span tracer.

A :class:`Tracer` records nested, attributed time spans from any thread
of the run.  Spans opened in the driver process nest automatically via
a per-thread span stack; work measured inside pool workers (possibly in
other *processes*, where the tracer object does not exist) is ingested
after the fact through :meth:`Tracer.record`, carrying an explicit
parent.

Clocks: in-process spans are placed with ``perf_counter`` offsets from
the tracer's start, so sibling and parent/child relations are exact to
microseconds.  Records ingested from other processes are placed with
wall-clock offsets (``time.time() - epoch``), which may drift from the
``perf_counter`` timeline by a small amount; their *durations* are
always local ``perf_counter`` deltas and therefore exact.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Attribute values we allow on spans (JSON-representable scalars).
AttrValue = "str | int | float | bool | None"

#: Sentinel: "parent is whatever span is open on this thread".
_CURRENT = object()


def worker_label() -> str:
    """Identity of the executing worker: ``pid:thread-name``."""
    return f"{os.getpid()}:{threading.current_thread().name}"


@dataclass
class Span:
    """One named, attributed interval of the run.

    ``start_s`` is an offset from the owning trace's epoch;
    ``duration_s`` is wall-clock elapsed.  ``kind`` encodes the level:
    ``run``, ``implementation``, ``stage``, ``process``, ``chunk``,
    ``task``, ``rank`` or ``batch``.
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_s: float
    duration_s: float
    worker: str
    attributes: dict[str, Any] = field(default_factory=dict)
    #: Summed duration of direct children, filled in by
    #: :meth:`Trace.annotate_self_times`.  An annotation, not part of
    #: the span's identity or its serialized form.
    child_duration_s: float = field(default=0.0, repr=False, compare=False)

    @property
    def end_s(self) -> float:
        """Offset of the span's end from the trace epoch."""
        return self.start_s + self.duration_s

    @property
    def self_time(self) -> float:
        """Duration minus the (annotated) duration of direct children.

        Meaningful after :meth:`Trace.annotate_self_times`; before
        annotation it equals ``duration_s``.  Clamped at zero: children
        measured in pool workers can overlap, so their sum may exceed
        the parent's wall-clock.
        """
        return max(0.0, self.duration_s - self.child_duration_s)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "worker": self.worker,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            span_id=int(data["span_id"]),
            parent_id=data["parent_id"],
            name=str(data["name"]),
            kind=str(data["kind"]),
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            worker=str(data["worker"]),
            attributes=dict(data.get("attributes") or {}),
        )


@dataclass
class Trace:
    """A finished collection of spans (one run, or a whole batch)."""

    epoch: float
    spans: list[Span] = field(default_factory=list)

    def by_kind(self, kind: str) -> list[Span]:
        """Spans of one kind, in start order."""
        return sorted((s for s in self.spans if s.kind == kind), key=lambda s: s.start_s)

    def roots(self) -> list[Span]:
        """Spans whose parent is absent from this trace."""
        ids = {s.span_id for s in self.spans}
        return sorted(
            (s for s in self.spans if s.parent_id is None or s.parent_id not in ids),
            key=lambda s: s.start_s,
        )

    def children(self, span: Span | int) -> list[Span]:
        """Direct children of a span, in start order."""
        parent_id = span.span_id if isinstance(span, Span) else span
        return sorted(
            (s for s in self.spans if s.parent_id == parent_id), key=lambda s: s.start_s
        )

    def annotate_self_times(self) -> "Trace":
        """Fill in every span's :attr:`Span.child_duration_s`.

        After this, ``span.self_time`` is the span's own overhead: its
        wall-clock minus the wall-clock spent inside direct children
        (chunk dispatch, result merging, artifact bookkeeping...).
        Returns ``self`` for chaining.
        """
        ids = {s.span_id for s in self.spans}
        summed: dict[int, float] = {}
        for span in self.spans:
            span.child_duration_s = 0.0
            if span.parent_id is not None and span.parent_id in ids:
                summed[span.parent_id] = summed.get(span.parent_id, 0.0) + span.duration_s
        for span in self.spans:
            span.child_duration_s = summed.get(span.span_id, 0.0)
        return self

    def stage_self_times(self) -> dict[str, float]:
        """Summed :attr:`Span.self_time` of the ``stage`` spans.

        The part of each stage that is executor overhead rather than
        measured process/chunk/task work.  Annotates first.
        """
        self.annotate_self_times()
        out: dict[str, float] = {}
        for span in self.by_kind("stage"):
            out[span.name] = out.get(span.name, 0.0) + span.self_time
        return out

    def stage_durations(self) -> dict[str, float]:
        """Summed duration of the ``stage`` spans, keyed by stage name.

        For a single run each stage appears once, so this is exactly the
        run's :attr:`~repro.core.runner.PipelineResult.stage_durations`;
        for a batch trace, repeats accumulate.
        """
        out: dict[str, float] = {}
        for span in self.by_kind("stage"):
            out[span.name] = out.get(span.name, 0.0) + span.duration_s
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"epoch": self.epoch, "spans": [s.to_dict() for s in self.spans]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            epoch=float(data["epoch"]),
            spans=[Span.from_dict(s) for s in data.get("spans") or []],
        )


class Tracer:
    """Collects spans from every layer of a run.

    Thread-safe.  Pickling a tracer (the process backend pickles the
    :class:`~repro.core.context.RunContext` into its workers) yields a
    *disabled* tracer: workers measure their own spans and hand the
    records back through the runtime, they never write here directly.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.epoch = time.time()
        self._perf0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        #: Live per-thread span stacks, keyed by thread id.  The values
        #: ARE the thread-local stacks (same list objects), so the
        #: sampling profiler can read any thread's open spans without
        #: touching its thread-local storage.
        self._thread_stacks: dict[int, list[Span]] = {}

    # -- pickling: cross the process boundary as a no-op ----------------

    def __getstate__(self) -> dict[str, Any]:
        return {"enabled": False, "epoch": self.epoch}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(enabled=False)
        self.epoch = state.get("epoch", self.epoch)

    # -- internals -------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._thread_stacks[threading.get_ident()] = stack
        return stack

    def open_spans(self) -> dict[int, list[Span]]:
        """Snapshot of every thread's open span stack, outermost first.

        Read by the sampling profiler to attribute a sampled thread's
        stack to the spans open on it.  Thread ids may be reused by the
        OS after a thread exits; a dead thread's entry lingers with an
        empty stack, which attributes to nothing.
        """
        with self._lock:
            return {tid: list(stack) for tid, stack in self._thread_stacks.items() if stack}

    def _resolve_parent(self, parent: Any) -> int | None:
        if parent is _CURRENT:
            current = self.current()
            return current.span_id if current is not None else None
        if parent is None:
            return None
        if isinstance(parent, Span):
            return parent.span_id
        return int(parent)

    def now(self) -> float:
        """Current offset from the trace epoch (monotonic)."""
        return time.perf_counter() - self._perf0

    def current(self) -> Span | None:
        """The innermost span open on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span creation ---------------------------------------------------

    @contextmanager
    def span(
        self, name: str, *, kind: str = "span", parent: Any = _CURRENT, **attributes: Any
    ) -> Iterator[Span | None]:
        """Open a span around the ``with`` body.

        The parent defaults to the span currently open on this thread;
        pass ``parent=`` (a :class:`Span`, an id, or ``None`` for a
        root) when the lexical nesting is not the logical one — e.g.
        from a pool worker thread.  Yields the (still-open) span; its
        ``duration_s`` is final once the block exits.
        """
        if not self.enabled:
            yield None
            return
        with self._lock:
            span_id = next(self._ids)
        sp = Span(
            span_id=span_id,
            parent_id=self._resolve_parent(parent),
            name=name,
            kind=kind,
            start_s=self.now(),
            duration_s=0.0,
            worker=worker_label(),
            attributes=dict(attributes),
        )
        stack = self._stack()
        stack.append(sp)
        t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.duration_s = time.perf_counter() - t0
            stack.pop()
            with self._lock:
                self._spans.append(sp)

    def event(self, name: str, *, kind: str = "event", **attributes: Any) -> Span | None:
        """Record a zero-duration point-in-time annotation.

        Used by the resilience runtime to mark quarantine decisions in
        the trace; the parent is whatever span is open on this thread.
        """
        if not self.enabled:
            return None
        return self.record(
            name,
            kind=kind,
            start_s=self.now(),
            duration_s=0.0,
            worker=worker_label(),
            parent=_CURRENT,
            **attributes,
        )

    def record(
        self,
        name: str,
        *,
        kind: str,
        start_s: float,
        duration_s: float,
        worker: str,
        parent: Any = None,
        **attributes: Any,
    ) -> Span | None:
        """Ingest an externally measured span (e.g. from a pool worker)."""
        if not self.enabled:
            return None
        with self._lock:
            span_id = next(self._ids)
        sp = Span(
            span_id=span_id,
            parent_id=self._resolve_parent(parent) if parent is not None else None,
            name=name,
            kind=kind,
            start_s=start_s,
            duration_s=duration_s,
            worker=worker,
            attributes=dict(attributes),
        )
        with self._lock:
            self._spans.append(sp)
        return sp

    # -- harvesting ------------------------------------------------------

    def trace(self) -> Trace:
        """Snapshot of every finished span so far."""
        with self._lock:
            return Trace(epoch=self.epoch, spans=list(self._spans))

    def subtree(self, root: Span) -> Trace:
        """The trace restricted to ``root`` and its descendants."""
        with self._lock:
            spans = list(self._spans)
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)
        keep: list[Span] = []
        frontier = [root]
        seen = {root.span_id}
        while frontier:
            span = frontier.pop()
            keep.append(span)
            for child in children.get(span.span_id, ()):
                if child.span_id not in seen:
                    seen.add(child.span_id)
                    frontier.append(child)
        keep.sort(key=lambda s: (s.start_s, s.span_id))
        return Trace(epoch=self.epoch, spans=keep)


@contextmanager
def maybe_span(
    tracer: Tracer | None,
    name: str,
    *,
    kind: str = "span",
    parent: Any = _CURRENT,
    **attributes: Any,
) -> Iterator[Span | None]:
    """:meth:`Tracer.span` that tolerates ``tracer`` being ``None``."""
    if tracer is None or not tracer.enabled:
        yield None
        return
    with tracer.span(name, kind=kind, parent=parent, **attributes) as sp:
        yield sp
