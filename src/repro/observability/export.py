"""Trace exporters.

Three consumers, one substrate:

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome Trace
  Event JSON (the ``chrome://tracing`` / Perfetto format, "X" complete
  events on one row per worker);
- :func:`to_prometheus_text` — a flat Prometheus-style text dump of the
  aggregate gauges (run/stage durations, span counts, per-stage work);
- :func:`trace_placements` — the measured trace as the
  :class:`~repro.parallel.simulate.TaskPlacement` rows the Gantt
  plotter draws, making :func:`repro.plotting.gantt.plot_trace_gantt`
  work on real runs exactly as on simulated schedules;
- :func:`pipeline_result_view` — a
  :class:`~repro.core.runner.PipelineResult` reconstructed purely from
  spans, so the bench tables are a *view over the trace*.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.observability.tracer import Span, Trace
from repro.parallel.simulate import SimulationResult, TaskPlacement

#: Kinds that represent actual work placed on a worker, most granular
#: first; the Gantt/placement view picks the first non-empty level.
WORK_KINDS = (("chunk", "task", "rank"), ("process",), ("stage",))


def _worker_ids(spans: list[Span]) -> dict[str, int]:
    """Stable worker-label -> small-integer mapping (first-seen order)."""
    ids: dict[str, int] = {}
    for span in sorted(spans, key=lambda s: (s.start_s, s.span_id)):
        if span.worker not in ids:
            ids[span.worker] = len(ids)
    return ids


def _ancestor_of_kind(by_id: dict[int, Span], span: Span, kind: str) -> Span | None:
    """Nearest enclosing span of ``kind`` (the span itself excluded)."""
    cursor = by_id.get(span.parent_id) if span.parent_id else None
    while cursor is not None:
        if cursor.kind == kind:
            return cursor
        cursor = by_id.get(cursor.parent_id) if cursor.parent_id else None
    return None


def _stage_of(by_id: dict[int, Span], span: Span) -> str:
    """Stage label of a work span: enclosing stage span, else attribute."""
    stage = _ancestor_of_kind(by_id, span, "stage")
    if stage is not None:
        return stage.name
    return str(span.attributes.get("stage", ""))


def to_chrome_trace(
    trace: Trace, resources: Any = None, profile: Any = None
) -> dict[str, Any]:
    """Render a trace in the Chrome Trace Event JSON format.

    Every span becomes one ``"ph": "X"`` (complete) event; workers map
    to ``tid`` rows named via ``thread_name`` metadata events.  Load
    the written file in ``chrome://tracing`` or https://ui.perfetto.dev.

    A :class:`~repro.observability.resources.ResourceLog` adds counter
    tracks (``"ph": "C"``): per-core busy fractions, RSS, open fds,
    thread count and the context-switch rate, on the same timeline as
    the spans — the samples were timestamped with the tracer's clock,
    so the core-utilization curve lines up under the stage bars.

    A :class:`~repro.observability.profiling.Profile` annotates each
    stage span with its hottest frames (``args["top_frames"]``), so
    clicking a stage bar shows where its CPU time went.
    """
    workers = _worker_ids(trace.spans)
    events: list[dict[str, Any]] = []
    for worker, tid in workers.items():
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": worker},
            }
        )
    for span in sorted(trace.spans, key=lambda s: (s.start_s, s.span_id)):
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attributes)
        if profile is not None and span.kind == "stage":
            args["top_frames"] = [
                f"{frame} ({seconds:.3f}s, {count} samples)"
                for frame, seconds, count in profile.top_frames(5, stage=span.name)
            ]
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": workers[span.worker],
                "name": span.name,
                "cat": span.kind,
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "args": args,
            }
        )
    if resources is not None:
        prev_switches: tuple[int, int] | None = None
        for sample in resources.samples:
            ts = sample.t_s * 1e6
            events.append(
                {
                    "ph": "C", "pid": 1, "tid": 0, "name": "cores_busy",
                    "ts": ts,
                    "args": {
                        f"cpu{i}": round(u, 3) for i, u in enumerate(sample.per_core)
                    },
                }
            )
            events.append(
                {
                    "ph": "C", "pid": 1, "tid": 0, "name": "rss_mb",
                    "ts": ts, "args": {"rss": round(sample.rss_bytes / 1e6, 2)},
                }
            )
            events.append(
                {
                    "ph": "C", "pid": 1, "tid": 0, "name": "process_state",
                    "ts": ts,
                    "args": {"open_fds": sample.open_fds, "threads": sample.n_threads},
                }
            )
            # The /proc counters are cumulative; the track plots the
            # per-interval increments, so preemption bursts (the
            # oversubscription signature) show as spikes.
            switches = (sample.vol_ctx_switches, sample.invol_ctx_switches)
            if prev_switches is not None:
                events.append(
                    {
                        "ph": "C", "pid": 1, "tid": 0, "name": "ctx_switches",
                        "ts": ts,
                        "args": {
                            "voluntary": max(0, switches[0] - prev_switches[0]),
                            "involuntary": max(0, switches[1] - prev_switches[1]),
                        },
                    }
                )
            prev_switches = switches
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"epoch_unix_s": trace.epoch, "producer": "repro.observability"},
    }


def write_chrome_trace(
    path: Path | str, trace: Trace, resources: Any = None, profile: Any = None
) -> Path:
    """Write :func:`to_chrome_trace` output to ``path``; returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            to_chrome_trace(trace, resources=resources, profile=profile), indent=1
        )
        + "\n"
    )
    return path


def _label_str(value: Any) -> str:
    """One Prometheus label value, with the reserved characters escaped."""
    text = str(value)
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus_text(trace: Trace, metrics: Any = None) -> str:
    """Flat Prometheus exposition-format dump of the trace aggregates.

    With a :class:`~repro.observability.metrics.MetricsRegistry`, its
    counter/gauge/histogram families are appended after the span-derived
    gauges, giving one scrape-shaped document for the whole run.
    """
    lines: list[str] = []

    def gauge(name: str, help_text: str, samples: list[tuple[dict[str, Any], float]]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            body = ",".join(f'{k}="{_label_str(v)}"' for k, v in labels.items())
            lines.append(f"{name}{{{body}}} {value:.6f}" if body else f"{name} {value:.6f}")

    runs = trace.by_kind("run")
    gauge(
        "repro_run_duration_seconds",
        "End-to-end wall-clock of one pipeline run.",
        [
            ({"implementation": r.attributes.get("implementation", r.name)}, r.duration_s)
            for r in runs
        ],
    )
    by_id = {s.span_id: s for s in trace.spans}
    stage_samples = []
    for span in trace.by_kind("stage"):
        run = span if span.kind == "run" else _ancestor_of_kind(by_id, span, "run")
        labels = {"stage": span.name}
        if run is not None:
            labels["implementation"] = run.attributes.get("implementation", run.name)
        stage_samples.append((labels, span.duration_s))
    gauge(
        "repro_stage_duration_seconds",
        "Elapsed wall-clock of one pipeline stage.",
        stage_samples,
    )

    counts: dict[str, int] = {}
    work: dict[str, tuple[int, float]] = {}
    for span in trace.spans:
        counts[span.kind] = counts.get(span.kind, 0) + 1
        if span.kind in ("chunk", "task", "rank"):
            stage = _stage_of(by_id, span)
            n, total = work.get(stage, (0, 0.0))
            work[stage] = (n + 1, total + span.duration_s)
    gauge(
        "repro_span_count",
        "Number of spans recorded, by kind.",
        [({"kind": kind}, float(n)) for kind, n in sorted(counts.items())],
    )
    gauge(
        "repro_stage_work_seconds_total",
        "Summed worker-occupancy of a stage's chunk/task/rank spans.",
        [({"stage": stage}, total) for stage, (_, total) in sorted(work.items())],
    )
    gauge(
        "repro_stage_work_spans",
        "Number of chunk/task/rank spans attributed to a stage.",
        [({"stage": stage}, float(n)) for stage, (n, _) in sorted(work.items())],
    )
    text = "\n".join(lines) + "\n"
    if metrics is not None:
        text += metrics.to_prometheus_text()
    return text


def write_metrics(path: Path | str, metrics: Any, trace: Trace | None = None) -> tuple[Path, Path]:
    """Write a merged registry as Prometheus text plus a JSON sibling.

    ``path`` names the text file (a ``.json`` path is rewritten to
    ``.prom``); the JSON twin lands next to it with a ``.json`` suffix
    and carries :meth:`MetricsRegistry.to_dict` — the machine-readable
    form the perf harness and tests consume.  With a ``trace``, the
    text side also includes the span-derived gauges.  Returns
    ``(text_path, json_path)``.
    """
    path = Path(path)
    if path.suffix == ".json":
        path = path.with_suffix(".prom")
    path.parent.mkdir(parents=True, exist_ok=True)
    text = (
        to_prometheus_text(trace, metrics=metrics)
        if trace is not None
        else metrics.to_prometheus_text()
    )
    path.write_text(text)
    json_path = path.with_suffix(".json")
    json_path.write_text(json.dumps(metrics.to_dict(), indent=1) + "\n")
    return path, json_path


def trace_placements(
    trace: Trace, *, kinds: tuple[str, ...] | None = None
) -> list[TaskPlacement]:
    """The trace's work spans as Gantt-ready placements.

    ``kinds`` picks which span kinds become bars; by default the most
    granular non-empty level of :data:`WORK_KINDS` wins (leaf work for
    parallel runs, per-process bars for sequential ones).  Start times
    are re-zeroed at the earliest selected span.
    """
    if kinds is None:
        for level in WORK_KINDS:
            selected = [s for s in trace.spans if s.kind in level]
            if selected:
                break
        else:
            selected = []
    else:
        selected = [s for s in trace.spans if s.kind in kinds]
    if not selected:
        return []
    by_id = {s.span_id: s for s in trace.spans}
    workers = _worker_ids(selected)
    t0 = min(s.start_s for s in selected)
    return [
        TaskPlacement(
            name=span.name,
            worker=workers[span.worker],
            start_s=span.start_s - t0,
            finish_s=span.end_s - t0,
            stage=_stage_of(by_id, span) or span.name,
        )
        for span in sorted(selected, key=lambda s: (s.start_s, s.span_id))
    ]


def to_simulation_result(trace: Trace, *, kinds: tuple[str, ...] | None = None) -> SimulationResult:
    """Wrap :func:`trace_placements` as a :class:`SimulationResult`.

    This is what lets every consumer of simulated schedules — the Gantt
    plotter first of all — render a *measured* trace unchanged.
    """
    placements = trace_placements(trace, kinds=kinds)
    makespan = max((p.finish_s for p in placements), default=0.0)
    return SimulationResult(makespan_s=makespan, placements=placements)


def pipeline_result_view(trace: Trace) -> "Any":
    """Reconstruct a :class:`~repro.core.runner.PipelineResult` from spans.

    Uses the first ``run`` span (raises on a trace without one): total
    from the run span, stage durations from its ``stage`` spans,
    process rows from the ``process`` spans.  On a traced run this view
    matches the result the implementation returned to within clock
    granularity — the tables are a projection of the trace.
    """
    # Imported here: repro.core imports this package at module level.
    from repro.core.runner import PipelineResult, ProcessTiming
    from repro.errors import ReproError

    runs = trace.by_kind("run")
    if not runs:
        raise ReproError("trace contains no 'run' span")
    run = runs[0]
    result = PipelineResult(
        implementation=str(run.attributes.get("implementation", run.name)),
        total_s=run.duration_s,
    )
    for span in trace.by_kind("stage"):
        result.stage_durations[span.name] = (
            result.stage_durations.get(span.name, 0.0) + span.duration_s
        )
    for span in trace.by_kind("process"):
        result.processes.append(
            ProcessTiming(
                pid=int(span.attributes.get("pid", -1)),
                name=span.name,
                stage=str(span.attributes.get("stage", "")),
                duration_s=span.duration_s,
            )
        )
    return result
