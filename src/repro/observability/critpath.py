"""Measured critical path, parallel efficiency, and speedup models.

The tracer records what ran when; this module explains what that means
for speedup.  Three analyses over one finished :class:`Trace`:

- :func:`critical_path` — the *measured* critical path: the run span's
  wall-clock decomposed into segments, each attributed to the span that
  was the bottleneck during that interval.  Within every span the
  longest chain of non-overlapping children (by summed duration) is
  chosen and recursed into; the gaps between chosen children are the
  span's own time.  Summed segment durations equal the run's
  wall-clock, so per-stage critical-path shares are honest percentages.

- :func:`stage_stats` — per-stage parallel structure: total measured
  unit work (chunk/task/rank spans), the longest single unit, the
  number of distinct worker lanes that executed units, and the
  resulting parallel efficiency ``work / (lanes x duration)``.

- :func:`speedup_model` — Amdahl and work-span (Brent) predictions
  built from those stats: serial time is the stages that scheduled no
  parallel units, ``T1`` the total work, ``T_inf`` the span (serial
  time plus each parallel stage's longest unit), and the bound
  ``min(N, T1/T_inf)``.  ``repro-perf explain`` compares these against
  the measured speedup, reproducing the paper's Table IV discussion
  from live data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.observability.tracer import Span, Trace

#: Span kinds counted as parallel work units.
UNIT_KINDS = ("chunk", "task", "rank")

#: Share label for critical-path time outside any stage span
#: (implementation setup, batch orchestration).
OUTSIDE_STAGES = "(orchestration)"


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path, owned by one span."""

    name: str
    kind: str
    #: Enclosing stage name (the stage span itself included), or
    #: ``None`` for orchestration time outside every stage.
    stage: str | None
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _best_chain(children: list[Span], lo: float, hi: float) -> list[Span]:
    """Maximum-total-duration chain of non-overlapping children.

    Weighted interval scheduling over the children's (clamped)
    intervals: the chain that kept the parent busiest is the one the
    parent's wall-clock is decomposed along.
    """
    clamped = []
    for child in children:
        start = max(lo, child.start_s)
        end = min(hi, child.end_s)
        if end > start:
            clamped.append((start, end, child))
    if not clamped:
        return []
    clamped.sort(key=lambda item: item[1])
    n = len(clamped)
    # prev[i]: rightmost j < i whose interval ends at or before i starts.
    prev = [0] * n
    for i, (start, _end, _child) in enumerate(clamped):
        j = i - 1
        while j >= 0 and clamped[j][1] > start:
            j -= 1
        prev[i] = j
    best = [0.0] * (n + 1)
    take = [False] * n
    for i in range(n):
        start, end, _child = clamped[i]
        with_i = best[prev[i] + 1] + (end - start)
        if with_i > best[i]:
            best[i + 1] = with_i
            take[i] = True
        else:
            best[i + 1] = best[i]
    chain: list[Span] = []
    i = n - 1
    while i >= 0:
        if take[i]:
            chain.append(clamped[i][2])
            i = prev[i]
        else:
            i -= 1
    chain.reverse()
    return chain


def _decompose(
    index: dict[int | None, list[Span]],
    span: Span,
    lo: float,
    hi: float,
    stage: str | None,
    out: list[PathSegment],
) -> None:
    if span.kind == "stage":
        stage = span.name
    cursor = lo
    for child in _best_chain(index.get(span.span_id, []), lo, hi):
        start = max(cursor, child.start_s)
        end = min(hi, child.end_s)
        if end <= start:
            continue
        if start > cursor:
            out.append(PathSegment(span.name, span.kind, stage, cursor, start))
        _decompose(index, child, start, end, stage, out)
        cursor = end
    if hi > cursor:
        out.append(PathSegment(span.name, span.kind, stage, cursor, hi))


def _child_index(trace: Trace) -> dict[int | None, list[Span]]:
    index: dict[int | None, list[Span]] = {}
    for span in sorted(trace.spans, key=lambda s: s.start_s):
        index.setdefault(span.parent_id, []).append(span)
    return index


def critical_path(trace: Trace, root: Span | None = None) -> list[PathSegment]:
    """The measured critical path of ``trace``, as ordered segments.

    ``root`` defaults to the longest root span (the run span for a
    single run).  The segments partition the root's wall-clock exactly:
    ``sum(s.duration_s) == root.duration_s``.
    """
    if root is None:
        roots = trace.roots()
        if not roots:
            return []
        root = max(roots, key=lambda s: s.duration_s)
    out: list[PathSegment] = []
    _decompose(_child_index(trace), root, root.start_s, root.end_s, None, out)
    return out


def critical_path_length(segments: list[PathSegment]) -> float:
    """Total length of the path (equals the root span's wall-clock)."""
    return sum(seg.duration_s for seg in segments)


def stage_shares(segments: list[PathSegment]) -> dict[str, float]:
    """Critical-path seconds per stage (``OUTSIDE_STAGES`` for none)."""
    out: dict[str, float] = {}
    for seg in segments:
        key = seg.stage if seg.stage is not None else OUTSIDE_STAGES
        out[key] = out.get(key, 0.0) + seg.duration_s
    return out


@dataclass
class StageStats:
    """Parallel structure of one stage, measured from its subtree."""

    name: str
    duration_s: float
    #: Summed duration of unit spans (chunks/tasks/ranks) under the
    #: stage; equals ``duration_s`` for a stage that scheduled none.
    work_s: float
    #: Longest single unit — the stage's span in the work-span sense.
    max_unit_s: float
    units: int
    #: Distinct workers that executed units (1 for a serial stage).
    lanes: int
    parallel: bool

    @property
    def efficiency(self) -> float:
        """Lane utilization: work / (lanes x wall-clock), capped at 1."""
        if self.duration_s <= 0 or self.lanes <= 0:
            return 1.0
        return min(1.0, self.work_s / (self.lanes * self.duration_s))


def stage_stats(trace: Trace) -> list[StageStats]:
    """Per-stage :class:`StageStats`, in stage order of the trace."""
    index = _child_index(trace)
    stats: list[StageStats] = []
    for stage in trace.by_kind("stage"):
        units: list[Span] = []
        frontier = [stage]
        while frontier:
            span = frontier.pop()
            for child in index.get(span.span_id, ()):
                if child.kind in UNIT_KINDS:
                    units.append(child)
                frontier.append(child)
        if units:
            work = sum(u.duration_s for u in units)
            stats.append(
                StageStats(
                    name=stage.name,
                    duration_s=stage.duration_s,
                    work_s=work,
                    max_unit_s=max(u.duration_s for u in units),
                    units=len(units),
                    lanes=len({u.worker for u in units}),
                    parallel=True,
                )
            )
        else:
            stats.append(
                StageStats(
                    name=stage.name,
                    duration_s=stage.duration_s,
                    work_s=stage.duration_s,
                    max_unit_s=stage.duration_s,
                    units=0,
                    lanes=1,
                    parallel=False,
                )
            )
    return stats


@dataclass
class SpeedupModel:
    """Amdahl / work-span predictions derived from one trace."""

    workers: int
    #: Wall-clock of the stages (the measured, parallel execution).
    measured_s: float
    #: Serial fraction's absolute time: stages with no parallel units.
    serial_s: float
    #: Total work: serial stages + summed unit work of parallel stages.
    t1_s: float
    #: Span: serial stages + each parallel stage's longest unit.
    t_inf_s: float

    @property
    def parallel_fraction(self) -> float:
        """Amdahl's ``p``: the parallelizable share of ``T1``."""
        return (self.t1_s - self.serial_s) / self.t1_s if self.t1_s > 0 else 0.0

    @property
    def amdahl_speedup(self) -> float:
        """Amdahl's law at ``workers`` processors."""
        p = self.parallel_fraction
        denom = (1.0 - p) + p / max(1, self.workers)
        return 1.0 / denom if denom > 0 else float("inf")

    @property
    def brent_time_s(self) -> float:
        """Brent's bound on parallel time: ``T1/N + T_inf`` per stage
        (computed stage-wise at construction, summed here)."""
        return self._brent_time_s

    _brent_time_s: float = field(default=0.0, repr=False)

    @property
    def brent_speedup(self) -> float:
        """Work-span predicted speedup ``T1 / Tp``."""
        return self.t1_s / self._brent_time_s if self._brent_time_s > 0 else float("inf")

    @property
    def bound_speedup(self) -> float:
        """Hard ceiling ``min(N, T1 / T_inf)``."""
        if self.t_inf_s <= 0:
            return float(self.workers)
        return min(float(self.workers), self.t1_s / self.t_inf_s)

    @property
    def model_speedup_vs_self(self) -> float:
        """Predicted speedup of the measured run over its own ``T1``
        (how much faster than single-lane this execution ran)."""
        return self.t1_s / self.measured_s if self.measured_s > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "measured_s": round(self.measured_s, 6),
            "serial_s": round(self.serial_s, 6),
            "t1_s": round(self.t1_s, 6),
            "t_inf_s": round(self.t_inf_s, 6),
            "parallel_fraction": round(self.parallel_fraction, 4),
            "amdahl_speedup": round(self.amdahl_speedup, 4),
            "brent_time_s": round(self.brent_time_s, 6),
            "brent_speedup": round(self.brent_speedup, 4),
            "bound_speedup": round(self.bound_speedup, 4),
        }


def speedup_model(trace: Trace, workers: int) -> SpeedupModel:
    """Build the :class:`SpeedupModel` for one traced run."""
    stats = stage_stats(trace)
    serial_s = sum(s.duration_s for s in stats if not s.parallel)
    t1 = serial_s + sum(s.work_s for s in stats if s.parallel)
    t_inf = serial_s + sum(s.max_unit_s for s in stats if s.parallel)
    brent = serial_s + sum(
        s.work_s / max(1, workers) + s.max_unit_s for s in stats if s.parallel
    )
    model = SpeedupModel(
        workers=workers,
        measured_s=sum(s.duration_s for s in stats),
        serial_s=serial_s,
        t1_s=t1,
        t_inf_s=t_inf,
    )
    model._brent_time_s = brent
    return model


# -- the bottleneck report -------------------------------------------------


def explain(
    trace: Trace,
    workers: int,
    *,
    profile: Any = None,
    top: int = 3,
) -> dict[str, Any]:
    """The bottleneck report for one traced (optionally profiled) run.

    Per stage: wall-clock, critical-path share, parallel efficiency and
    lanes, plus the profile's hottest frames for that stage when a
    :class:`~repro.observability.profiling.Profile` is given.
    """
    segments = critical_path(trace)
    total = critical_path_length(segments)
    shares = stage_shares(segments)
    stages = []
    for s in stage_stats(trace):
        entry: dict[str, Any] = {
            "stage": s.name,
            "duration_s": round(s.duration_s, 6),
            "critical_path_s": round(shares.get(s.name, 0.0), 6),
            "critical_path_share": round(shares.get(s.name, 0.0) / total, 4)
            if total > 0
            else 0.0,
            "efficiency": round(s.efficiency, 4),
            "lanes": s.lanes,
            "units": s.units,
            "work_s": round(s.work_s, 6),
            "max_unit_s": round(s.max_unit_s, 6),
            "parallel": s.parallel,
        }
        if profile is not None:
            entry["top_frames"] = [
                {"frame": frame, "seconds": round(seconds, 4), "samples": count}
                for frame, seconds, count in profile.top_frames(top, stage=s.name)
            ]
        stages.append(entry)
    outside = shares.get(OUTSIDE_STAGES, 0.0)
    report: dict[str, Any] = {
        "critical_path_s": round(total, 6),
        "orchestration_s": round(outside, 6),
        "orchestration_share": round(outside / total, 4) if total > 0 else 0.0,
        "stages": stages,
        "model": speedup_model(trace, workers).to_dict(),
    }
    if profile is not None:
        report["profile"] = {
            "samples": profile.total_samples,
            "attributed_fraction": round(profile.attributed_fraction(), 4),
        }
    return report


def render_explain(report: dict[str, Any], *, measured_speedup: float | None = None) -> str:
    """Human-readable form of one :func:`explain` report."""
    lines: list[str] = []
    total = report["critical_path_s"]
    model = report["model"]
    lines.append(
        f"critical path: {total:.3f} s over {model['workers']} workers "
        f"(orchestration outside stages: {report['orchestration_share']:.0%})"
    )
    for entry in sorted(
        report["stages"], key=lambda e: -e["critical_path_s"]
    ):
        frames = entry.get("top_frames") or []
        frame_text = (
            "  top frames: "
            + ", ".join(f"{f['frame']} ({f['seconds']:.2f}s)" for f in frames)
            if frames
            else ""
        )
        kind = (
            f"efficiency {entry['efficiency']:.2f} over {entry['lanes']} lane(s)"
            if entry["parallel"]
            else "serial"
        )
        lines.append(
            f"stage {entry['stage']}: {entry['critical_path_share']:.0%} of "
            f"critical path ({entry['critical_path_s']:.3f} s), {kind}"
            + frame_text
        )
    lines.append(
        f"model: T1={model['t1_s']:.3f} s, T_inf={model['t_inf_s']:.3f} s, "
        f"parallel fraction {model['parallel_fraction']:.1%}"
    )
    predicted = (
        f"predicted speedup: Amdahl {model['amdahl_speedup']:.2f}x, "
        f"work-span {model['brent_speedup']:.2f}x, "
        f"bound {model['bound_speedup']:.2f}x"
    )
    if measured_speedup is not None:
        predicted += f"; measured {measured_speedup:.2f}x"
    lines.append(predicted)
    prof = report.get("profile")
    if prof:
        lines.append(
            f"profile: {prof['samples']} samples, "
            f"{prof['attributed_fraction']:.1%} span-attributed"
        )
    return "\n".join(lines)
