"""The live run event bus: an append-only JSONL telemetry stream.

Where the tracer produces a span tree *after* the run and the metrics
registry a scrape *after* the run, this module streams structured
lifecycle events **while the run executes**: run/stage/unit/task
boundaries from the engine and the parallel runtime, retry/quarantine/
fault events from the resilience runtime, and periodic resource
heartbeats.  ``repro-top`` tails the stream to render live progress and
an ETA; the HTML run report and the run ledger read it post-hoc.

The write path mirrors :mod:`repro.core.auditing` exactly: a
``<root>/.events/`` marker directory opts a workspace in, every writer
appends JSON lines to its own per-(pid, thread) shard file
(line-buffered, so a tail sees events within one write of real time),
and pool workers need no coordination — the emission channel handed to
the worker shims carries the workspace root, and the first emit in a
fresh worker re-discovers the marker on disk.  Shards are merged on
read with a deterministic total order: ``(t, pid, tid, seq)``, where
``seq`` is each writer's own monotonic counter — so two reads of a
finished log always agree, and ties cannot reorder one writer's events.

Unlike the audit log, the event log *survives* the run: ``repro-report``
and the ledger read it afterwards, so :func:`release_events` closes the
writers but keeps the files (:func:`clear_events` removes them).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

#: Marker directory (under the workspace root) that opts a run in.
EVENTS_DIR = ".events"

#: Version tag carried by every ``run_started`` event.
SCHEMA = "repro-events/1"

#: Schemas :func:`validate_events` accepts.
KNOWN_SCHEMAS = ("repro-events/1",)

#: Active event-logged roots: str(root) -> Path(root).
_ACTIVE: dict[str, Path] = {}

#: Open shard writers keyed by (root, pid, thread id).
_writers: dict[tuple[str, int, int], Any] = {}
#: Per-writer monotonic sequence numbers (same key as ``_writers``).
_seqs: dict[tuple[str, int, int], int] = {}
_writers_lock = threading.Lock()

#: The workspace root of the run currently executing on this process'
#: driver, with its origin pid — :func:`channel` reads it so the
#: parallel runtime can build worker emission channels without any
#: argument plumbing.  The pid guards against fork inheritance.
_RUN_ROOT: tuple[str, int] | None = None

#: The stage label enclosing the current driver code path (set by the
#: engine around each region), with its origin pid.
_STAGE: ContextVar[tuple[str, int] | None] = ContextVar(
    "repro_events_stage", default=None
)

#: Required payload fields per event type (the envelope fields ``type``
#: ``t``/``pid``/``tid``/``seq`` are checked separately).
REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "run_started": ("schema", "implementation", "workspace", "workers"),
    "plan": ("policy", "regions"),
    "stage_started": ("stage",),
    "stage_finished": ("stage", "duration_s"),
    "units_total": ("span", "total"),
    "unit_finished": ("span", "count", "duration_s", "worker"),
    "task_finished": ("span", "duration_s", "worker"),
    "process_finished": ("process", "stage", "duration_s"),
    "retry": ("process",),
    "fault": ("kind",),
    "quarantine": ("record", "process"),
    "heartbeat": ("rss_bytes",),
    "batch_event_finished": ("event_id", "status"),
    "run_finished": ("total_s", "status"),
}


# -- activation ----------------------------------------------------------


def enable_events(root: Path | str) -> Path:
    """Create the marker directory and activate emission for ``root``.

    Shards of a previous run in the same workspace are removed first:
    one event log describes one run.
    """
    root = Path(root)
    marker = root / EVENTS_DIR
    marker.mkdir(parents=True, exist_ok=True)
    _close_writers(str(root))
    with _writers_lock:
        for skey in [k for k in _seqs if k[0] == str(root)]:
            _seqs.pop(skey, None)
    for stale in marker.glob("events-*.jsonl"):
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - cleanup must never fail a run
            pass
    _ACTIVE[str(root)] = root
    return marker


def release_events(root: Path | str) -> None:
    """Stop emitting for ``root`` but keep the log on disk.

    The marker directory (and its shards) stay: ``repro-top`` may still
    be attached and the report/ledger read the finished log.
    """
    key = str(Path(root))
    _ACTIVE.pop(key, None)
    _close_writers(key)


def clear_events(root: Path | str) -> None:
    """Deactivate and remove the marker directory and every shard."""
    root = Path(root)
    release_events(root)
    shutil.rmtree(root / EVENTS_DIR, ignore_errors=True)


def maybe_activate(root: Path) -> bool:
    """Activate emission for ``root`` if its marker exists.

    Called from ``Workspace.__init__`` (like the auditing hook), so
    pool workers that rebuild ``Workspace(root)`` re-discover an
    event-logged run without argument plumbing.
    """
    if (root / EVENTS_DIR).is_dir():
        _ACTIVE[str(root)] = root
        return True
    return False


def is_active(root: Path | str) -> bool:
    """Whether events under ``root`` are currently emitted."""
    return str(root) in _ACTIVE


def _close_writers(key: str) -> None:
    # Sequence counters survive the close on purpose: a late event
    # (e.g. the batch layer's summary after the runner released the
    # log) reopens the same shard and must keep its seq monotonic.
    with _writers_lock:
        for wkey in [k for k in _writers if k[0] == key]:
            try:
                _writers.pop(wkey).close()
            except OSError:  # pragma: no cover - close failures are harmless
                pass


# -- the driver-run registry and stage scope -----------------------------


def install_run(root: Path | str) -> None:
    """Mark ``root`` as the run executing on this driver (pid-guarded)."""
    global _RUN_ROOT
    _RUN_ROOT = (str(root), os.getpid())


def uninstall_run(root: Path | str) -> None:
    """Clear the driver-run registration, if it is still ours."""
    global _RUN_ROOT
    if _RUN_ROOT is not None and _RUN_ROOT[0] == str(root):
        _RUN_ROOT = None


def installed_run() -> str | None:
    """The executing run's root (this process only), or ``None``."""
    if _RUN_ROOT is None or _RUN_ROOT[1] != os.getpid():
        return None
    return _RUN_ROOT[0]


@contextmanager
def stage_scope(stage: str) -> Iterator[None]:
    """Attribute events emitted inside the block to ``stage``.

    Like the audit scope, a stage inherited across a fork (lazily
    spawned pool workers copy the submitting thread's context) carries
    a foreign pid and counts as absent.
    """
    token = _STAGE.set((stage, os.getpid()))
    try:
        yield
    finally:
        _STAGE.reset(token)


def current_stage() -> str | None:
    """The enclosing stage label, if any (fork-safe)."""
    scope = _STAGE.get()
    if scope is None or scope[1] != os.getpid():
        return None
    return scope[0]


def channel(span: str) -> tuple[str, str | None, str] | None:
    """A picklable ``(root, stage, span)`` emission channel, or ``None``.

    ``None`` unless an event-logged run is executing on this process —
    the single check that keeps the disabled path free.  The tuple
    crosses into pool workers, whose first :func:`emit_channel` call
    re-activates the root from its on-disk marker.
    """
    root = installed_run()
    if root is None or root not in _ACTIVE:
        return None
    return (root, current_stage(), span)


# -- emission ------------------------------------------------------------


def _writer_entry(key: str):
    wkey = (key, os.getpid(), threading.get_ident())
    writer = _writers.get(wkey)
    if writer is None:
        with _writers_lock:
            writer = _writers.get(wkey)
            if writer is None:
                log_dir = Path(key) / EVENTS_DIR
                name = f"events-{wkey[1]}-{wkey[2]}.jsonl"
                writer = open(log_dir / name, "a", buffering=1, encoding="utf-8")
                _writers[wkey] = writer
                _seqs.setdefault(wkey, 0)
    return wkey, writer


def emit(root: Path | str, type_: str, **payload: Any) -> None:
    """Append one event to this writer's shard (no-op unless active).

    A root not in the in-process registry is probed once on disk, so a
    fresh pool worker's first emission self-activates — the same
    rediscovery the audit log gets from ``Workspace.__init__``.
    """
    key = str(root)
    if key not in _ACTIVE:
        if not (Path(root) / EVENTS_DIR).is_dir():
            return
        _ACTIVE[key] = Path(root)
    event: dict[str, Any] = {
        "type": type_,
        "t": time.time(),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
    }
    event.update(payload)
    try:
        wkey, writer = _writer_entry(key)
        _seqs[wkey] = event["seq"] = _seqs.get(wkey, 0) + 1
        writer.write(json.dumps(event) + "\n")
    except OSError:  # pragma: no cover - a dead log never fails the run
        pass


def emit_channel(chan: tuple | None, type_: str, **payload: Any) -> None:
    """Emit through a :func:`channel` tuple (worker shims call this)."""
    if chan is None:
        return
    root, stage, span = chan
    if stage is not None:
        payload.setdefault("stage", stage)
    payload.setdefault("span", span)
    emit(root, type_, **payload)


# -- the resource heartbeat ----------------------------------------------


class Heartbeat(threading.Thread):
    """Daemon thread emitting periodic ``heartbeat`` resource events.

    Reuses the /proc readers of
    :mod:`repro.observability.resources`; on platforms without /proc
    the heartbeat emits RSS-only events via ``resource.getrusage``
    fallbacks there, or nothing when even that fails — a heartbeat must
    never fail a run.
    """

    def __init__(self, root: Path | str, interval_s: float = 0.5) -> None:
        super().__init__(name="repro-events-heartbeat", daemon=True)
        self.root = Path(root)
        self.interval_s = max(0.05, float(interval_s))
        # Not named _stop: Thread has an internal method of that name.
        self._halt = threading.Event()
        self._prev_ticks: list[tuple[int, int]] | None = None

    def _sample(self) -> dict[str, Any] | None:
        try:
            from repro.observability.resources import (
                _read_core_ticks,
                _read_status,
            )

            rss, threads, vol, invol = _read_status()
            payload: dict[str, Any] = {
                "rss_bytes": rss,
                "threads": threads,
                "ctx_switches": vol + invol,
            }
            ticks = _read_core_ticks()
            if ticks and self._prev_ticks and len(ticks) == len(self._prev_ticks):
                busy = sum(b - pb for (b, _), (pb, _) in zip(ticks, self._prev_ticks))
                total = sum(t - pt for (_, t), (_, pt) in zip(ticks, self._prev_ticks))
                if total > 0:
                    payload["utilization"] = busy / total
                    payload["cores"] = len(ticks)
            self._prev_ticks = ticks or None
            return payload
        except Exception:  # pragma: no cover - heartbeat must never fail
            return None

    def run(self) -> None:  # pragma: no cover - exercised via integration
        while not self._halt.is_set():
            payload = self._sample()
            if payload is not None:
                emit(self.root, "heartbeat", **payload)
            self._halt.wait(self.interval_s)

    def stop(self) -> None:
        """Stop the thread (joining up to one interval)."""
        self._halt.set()
        self.join(timeout=self.interval_s + 1.0)


# -- reading -------------------------------------------------------------


def read_events(root: Path | str) -> list[dict[str, Any]]:
    """Every event recorded for ``root``, in deterministic total order.

    Shards are merged by ``(t, pid, tid, seq)`` — wall-clock arrival
    order with each writer's own monotonic counter breaking ties, so
    repeated reads of the same log always agree and one writer's events
    never reorder.
    """
    log_dir = Path(root) / EVENTS_DIR
    events: list[dict[str, Any]] = []
    if not log_dir.is_dir():
        return events
    for shard in sorted(log_dir.glob("events-*.jsonl")):
        try:
            text = shard.read_text(encoding="utf-8")
        except OSError:  # pragma: no cover - racing a writer's rename
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                # A live tail can catch a shard mid-write; the partial
                # final line completes by the next read.
                continue
    events.sort(
        key=lambda e: (
            float(e.get("t", 0.0)),
            int(e.get("pid", 0)),
            int(e.get("tid", 0)),
            int(e.get("seq", 0)),
        )
    )
    return events


def validate_events(events: list[dict[str, Any]]) -> list[str]:
    """Schema-check a merged event stream; returns problem strings.

    An empty list means the stream is valid: it opens with a
    ``run_started`` carrying a known schema version, every event is a
    known type carrying its required fields, and each writer's ``seq``
    numbers are strictly increasing.
    """
    problems: list[str] = []
    if not events:
        return ["empty event stream"]
    first = events[0]
    if first.get("type") != "run_started":
        problems.append(
            f"stream must open with run_started, got {first.get('type')!r}"
        )
    elif first.get("schema") not in KNOWN_SCHEMAS:
        problems.append(
            f"unknown schema {first.get('schema')!r}; known: {', '.join(KNOWN_SCHEMAS)}"
        )
    last_seq: dict[tuple[int, int], int] = {}
    for i, event in enumerate(events):
        type_ = event.get("type")
        if type_ not in REQUIRED_FIELDS:
            problems.append(f"event {i}: unknown type {type_!r}")
            continue
        for field in ("t", "pid", "tid", "seq"):
            if field not in event:
                problems.append(f"event {i} ({type_}): missing envelope field {field!r}")
        for field in REQUIRED_FIELDS[type_]:
            if field not in event:
                problems.append(f"event {i} ({type_}): missing field {field!r}")
        writer = (int(event.get("pid", 0)), int(event.get("tid", 0)))
        seq = int(event.get("seq", 0))
        if writer in last_seq and seq <= last_seq[writer]:
            problems.append(
                f"event {i} ({type_}): writer {writer} seq {seq} not increasing"
            )
        last_seq[writer] = seq
    return problems


def write_events(path: Path | str, events: list[dict[str, Any]]) -> None:
    """Write a merged stream as one JSONL file (report/test fixture aid)."""
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")


def read_events_file(path: Path | str) -> list[dict[str, Any]]:
    """Read a single merged JSONL file written by :func:`write_events`."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            events.append(json.loads(line))
    return events
