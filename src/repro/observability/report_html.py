"""``repro-report``: a self-contained HTML report for one pipeline run.

One file, no external assets: inline CSS, inline SVG.  The report
stitches together what the observability stack already measures —

- the run header (policy, backend, workers, wall-clock, status),
- an SVG Gantt of the measured task placements
  (:func:`~repro.observability.export.trace_placements`),
- per-stage wall-clock / self-time bars with parallel efficiency
  (:func:`~repro.observability.critpath.stage_stats`),
- the critical-path bottleneck report
  (:func:`~repro.observability.critpath.explain`),
- the merged metrics registry as tables,
- the degraded-mode section (quarantined records, faults, retries), and
- the live-event summary when the run streamed events.

Build it from a finished :class:`~repro.core.runner.PipelineResult`
(:func:`render_html_report`), or let the CLI run the pipeline fresh on
a synthetic catalog event and report on that (`repro-report --event
... out.html`), or report an already event-logged workspace
(`repro-report --workspace ws out.html`).
"""

from __future__ import annotations

import argparse
import html
import sys
from collections import Counter
from pathlib import Path
from typing import Any

#: Bar palette, cycled per stage (Okabe-Ito, colorblind-safe).
_PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #ddd; padding-bottom: .25rem; }
table { border-collapse: collapse; margin: .5rem 0; font-size: .85rem; }
th, td { padding: .25rem .6rem; border: 1px solid #e0e0e8; text-align: right; }
th { background: #f4f4f8; } td:first-child, th:first-child { text-align: left; }
pre { background: #f6f6fa; padding: .75rem; font-size: .8rem;
      overflow-x: auto; border-radius: 4px; }
.status-ok { color: #007a3d; font-weight: 600; }
.status-degraded { color: #b25000; font-weight: 600; }
.status-failed { color: #c0001a; font-weight: 600; }
.meta { color: #555; font-size: .85rem; }
svg text { font-family: inherit; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _stage_color(stages: list[str]) -> dict[str, str]:
    return {s: _PALETTE[i % len(_PALETTE)] for i, s in enumerate(stages)}


# -- SVG pieces ----------------------------------------------------------


def _gantt_svg(placements: list[Any], *, width: int = 960) -> str:
    """Inline SVG Gantt: one row per worker lane, one bar per placement."""
    if not placements:
        return "<p class=meta>no trace placements recorded</p>"
    makespan = max(p.finish_s for p in placements) or 1e-9
    lanes = sorted({p.worker for p in placements})
    row_h, pad_l, pad_t = 18, 70, 18
    height = pad_t + row_h * len(lanes) + 24
    colors = _stage_color(sorted({p.stage for p in placements}))
    scale = (width - pad_l - 10) / makespan
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, lane in enumerate(lanes):
        y = pad_t + i * row_h
        parts.append(
            f'<text x="4" y="{y + row_h - 6}" font-size="10" fill="#555">'
            f"W{lane}</text>"
        )
        parts.append(
            f'<line x1="{pad_l}" y1="{y + row_h - 2}" x2="{width - 10}" '
            f'y2="{y + row_h - 2}" stroke="#eee"/>'
        )
    lane_index = {lane: i for i, lane in enumerate(lanes)}
    for p in placements:
        x = pad_l + p.start_s * scale
        w = max(1.0, (p.finish_s - p.start_s) * scale)
        y = pad_t + lane_index[p.worker] * row_h + 2
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{row_h - 6}" '
            f'fill="{colors[p.stage]}" rx="1">'
            f"<title>{_esc(p.name)} [{_esc(p.stage)}] "
            f"{p.start_s:.4f}-{p.finish_s:.4f} s</title></rect>"
        )
    # Time axis: start / mid / makespan ticks.
    for frac in (0.0, 0.5, 1.0):
        x = pad_l + frac * makespan * scale
        parts.append(
            f'<text x="{x:.1f}" y="{height - 8}" font-size="10" fill="#555" '
            f'text-anchor="middle">{frac * makespan:.2f}s</text>'
        )
    # Legend.
    lx = pad_l
    for stage, color in colors.items():
        parts.append(
            f'<rect x="{lx}" y="2" width="10" height="10" fill="{color}"/>'
            f'<text x="{lx + 13}" y="11" font-size="10">{_esc(stage)}</text>'
        )
        lx += 16 + 7 * len(stage)
    parts.append("</svg>")
    return "".join(parts)


def _stage_bars_svg(rows: list[tuple[str, float, float]], *, width: int = 640) -> str:
    """Horizontal wall-clock vs self-time bars, one pair per stage."""
    if not rows:
        return ""
    row_h, pad_l = 26, 70
    longest = max(max(wall, self_s) for _, wall, self_s in rows) or 1e-9
    scale = (width - pad_l - 60) / longest
    height = len(rows) * row_h + 8
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for i, (stage, wall, self_s) in enumerate(rows):
        y = i * row_h + 4
        parts.append(
            f'<text x="4" y="{y + 13}" font-size="11">{_esc(stage)}</text>'
        )
        parts.append(
            f'<rect x="{pad_l}" y="{y}" width="{max(1.0, wall * scale):.1f}" '
            f'height="9" fill="#0072B2"><title>wall {wall:.4f} s</title></rect>'
        )
        parts.append(
            f'<rect x="{pad_l}" y="{y + 10}" '
            f'width="{max(1.0, self_s * scale):.1f}" height="9" '
            f'fill="#E69F00"><title>self {self_s:.4f} s</title></rect>'
        )
        parts.append(
            f'<text x="{pad_l + max(1.0, wall * scale) + 4:.1f}" y="{y + 13}" '
            f'font-size="10" fill="#555">{wall:.3f}s / self {self_s:.3f}s</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


# -- HTML sections -------------------------------------------------------


def _table(headers: list[str], rows: list[list[object]]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _metrics_section(metrics: Any) -> str:
    """The merged registry as per-kind tables (counters, gauges,
    histograms with their quantile summaries)."""
    rows: list[list[object]] = []
    for (name, labels), instrument in metrics.samples_all():
        label_text = ", ".join(f"{k}={v}" for k, v in labels) or "-"
        kind = instrument.kind
        if kind == "histogram":
            value = f"n={instrument.count}, sum={instrument.sum:.4f}"
        else:
            value = f"{instrument.value:.6g}"
        rows.append([name, label_text, kind, value])
    if not rows:
        return "<p class=meta>no metrics recorded</p>"
    return _table(["metric", "labels", "kind", "value"], rows)


def _events_section(events: list[dict]) -> str:
    counts = Counter(e["type"] for e in events)
    rows = [[kind, n] for kind, n in sorted(counts.items())]
    out = [_table(["event type", "count"], rows)]
    incidents = [
        e for e in events if e["type"] in ("retry", "fault", "quarantine")
    ]
    if incidents:
        inc_rows = [
            [
                f"{e['t']:.3f}",
                e["type"],
                e.get("kind") or "-",
                e.get("process") or "-",
                e.get("record") or e.get("target") or "-",
            ]
            for e in incidents
        ]
        out.append("<h3>incidents</h3>")
        out.append(_table(["t", "event", "kind", "process", "target"], inc_rows))
    return "".join(out)


def render_html_report(
    result: Any,
    *,
    metrics: Any = None,
    events: list[dict] | None = None,
    workers: int | None = None,
    title: str = "repro run report",
) -> str:
    """The whole report as one self-contained HTML string."""
    from repro.observability.critpath import explain, render_explain, stage_stats
    from repro.observability.export import trace_placements

    status = "degraded" if result.quarantine else "ok"
    sections: list[str] = []

    meta_rows = [
        ["policy", result.implementation],
        ["wall-clock", f"{result.total_s:.3f} s"],
        ["status", status],
        ["stages", len(result.stage_durations)],
    ]
    if workers is not None:
        meta_rows.append(["workers", workers])
    sections.append("<h2>Run</h2>" + _table(["", ""], meta_rows))

    if result.trace is not None:
        placements = trace_placements(result.trace)
        sections.append("<h2>Schedule (measured Gantt)</h2>" + _gantt_svg(placements))

        self_times = result.trace.stage_self_times()
        bars = [
            (s.name, s.duration_s, self_times.get(s.name, s.duration_s))
            for s in stage_stats(result.trace)
        ]
        sections.append(
            "<h2>Stages (wall-clock vs self time)</h2>" + _stage_bars_svg(bars)
        )

        report = explain(result.trace, workers or 1, profile=result.profile)
        sections.append(
            "<h2>Critical path</h2><pre>"
            + _esc(render_explain(report))
            + "</pre>"
        )
    else:
        stage_rows = [
            [stage, f"{dur:.4f}"] for stage, dur in result.stage_durations.items()
        ]
        sections.append(
            "<h2>Stages</h2>" + _table(["stage", "wall-clock s"], stage_rows)
        )

    if metrics is not None:
        sections.append("<h2>Metrics</h2>" + _metrics_section(metrics))

    if result.quarantine:
        q_rows = [
            [r.record, getattr(r, "process", "-"), getattr(r, "kind", "-"),
             getattr(r, "attempts", "-")]
            for r in result.quarantine
        ]
        sections.append(
            "<h2>Degraded mode</h2>"
            + _table(["record", "process", "fault", "attempts"], q_rows)
        )

    if events:
        sections.append("<h2>Live events</h2>" + _events_section(events))

    status_class = f"status-{status}"
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)} <span class='{status_class}'>[{status}]</span></h1>"
        + "".join(sections)
        + "</body></html>"
    )


def write_html_report(path: Path | str, result: Any, **kwargs: Any) -> Path:
    """Render and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_report(result, **kwargs), encoding="utf-8")
    return path


# -- CLI -----------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    from repro.parallel.backend import Backend

    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Write a self-contained HTML report for one pipeline run "
        "(fresh synthetic run by default; --workspace reports an already "
        "event-logged run).",
    )
    parser.add_argument("output", help="HTML file to write")
    parser.add_argument(
        "--workspace", default=None,
        help="report an existing workspace's .events/ log instead of running",
    )
    parser.add_argument("--event", default="EV-NOV18", help="catalog event id")
    parser.add_argument(
        "--policy", default="dag-parallel", help="scheduling policy to run"
    )
    parser.add_argument(
        "--backend", default=Backend.THREAD.value,
        choices=[backend.value for backend in Backend],
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--scale", type=float, default=0.05, help="dataset size scale")
    parser.add_argument("--periods", type=int, default=30)
    parser.add_argument("--title", default=None, help="report title")
    return parser


def main_report(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-report``."""
    args = _build_parser().parse_args(argv)

    if args.workspace is not None:
        # Offline mode: rebuild the view from the recorded event log.
        from repro.observability.events import read_events, validate_events
        from repro.observability.top import RunView, render_top

        events = read_events(Path(args.workspace))
        if not events:
            print(f"no event log under {args.workspace}/.events", file=sys.stderr)
            return 2
        problems = validate_events(events)
        if problems:
            print(
                f"warning: event log has {len(problems)} validation problem(s); "
                "reporting anyway", file=sys.stderr,
            )
        view = RunView.from_events(events)
        title = args.title or f"repro run — {view.policy or view.implementation}"
        body = (
            f"<h2>Monitor snapshot</h2><pre>{_esc(render_top(view))}</pre>"
            "<h2>Live events</h2>" + _events_section(events)
        )
        text = (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
            f"<h1>{_esc(title)} <span class='status-{view.status}'>"
            f"[{view.status}]</span></h1>" + body + "</body></html>"
        )
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"wrote {out}")
        return 0

    from repro.bench.workloads import scaled_workload
    from repro.engine import pipeline_factory
    from repro.observability.perf import _run_once
    from repro.parallel.backend import resolve_workers
    from repro.synth.events import paper_event

    event = paper_event(args.event)
    workload = scaled_workload(event, args.scale)
    result, metrics, _log = _run_once(
        pipeline_factory(args.policy), event, workload,
        periods=args.periods, backend=args.backend, workers=args.workers,
        sample_interval=0.05,
    )
    title = args.title or f"{args.event} — {args.policy} ({args.backend})"
    out = write_html_report(
        args.output, result, metrics=metrics,
        workers=resolve_workers(args.workers), title=title,
    )
    print(f"wrote {out} ({result.total_s:.3f} s run)")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_report())
