"""The performance-regression gate (``repro-perf``).

``record`` runs the synthetic catalog events through the paper's
implementations — min-of-k wall-clock, per-stage timings with the
tracer's self-time split, resource and I/O summaries — and writes a
canonical ``BENCH_<timestamp>.json``.  ``check`` compares two such
documents with noise-aware per-metric-class thresholds and exits
nonzero on regression, which is what turns the committed baseline into
a gate: the repo's BENCH trajectory starts with the seed baseline this
module recorded, and every future PR can be measured against it.

Thresholds are deliberately loose ( :data:`METRIC_CLASSES` ): measured
mode runs on whatever noisy machine CI provides, so the gate is tuned
to catch *structural* regressions (a stage going 2x, a speedup
collapsing) rather than jitter.  Min-of-k recording attacks the noise
from the other side — the minimum of k repetitions estimates the
machine's uncontended capability far more stably than the mean.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

SCHEMA = "repro-bench/2"

#: Schema versions :func:`validate_bench` accepts.  v2 added the
#: measured ``critical_path_s`` (required) and the optional ``profile``
#: block per implementation entry; v1 documents (the committed seed
#: baseline among them) still validate and compare.
KNOWN_SCHEMAS = ("repro-bench/1", "repro-bench/2")

#: Paper implementations measured by default, sequential baseline first.
DEFAULT_IMPLEMENTATIONS = (
    "seq-original", "seq-optimized", "partial-parallel", "full-parallel",
)


@dataclass(frozen=True)
class Thresholds:
    """Regression tolerance of one metric class.

    A lower-is-better metric regresses when ``current > baseline *
    (1 + rel) + abs``; a higher-is-better one (speedup) when ``current
    < baseline * (1 - rel) - abs``.  The absolute floor keeps tiny
    denominators (a 5 ms stage) from turning scheduler jitter into
    alarms.
    """

    rel: float
    abs: float
    higher_is_better: bool = False

    def regressed(self, baseline: float, current: float) -> bool:
        """Whether ``current`` falls outside the tolerated band."""
        if self.higher_is_better:
            return current < baseline * (1.0 - self.rel) - self.abs
        return current > baseline * (1.0 + self.rel) + self.abs

    def improved(self, baseline: float, current: float) -> bool:
        """Whether ``current`` beats the band on the good side."""
        if self.higher_is_better:
            return current > baseline * (1.0 + self.rel) + self.abs
        return current < baseline * (1.0 - self.rel) - self.abs


#: Metric classes and their noise tolerances.  End-to-end times are the
#: steadiest (whole-pipeline averaging); single stages jitter hard at
#: the small scales CI can afford, hence the wide band; RSS moves with
#: the allocator; speedup ratios divide two noisy numbers.
METRIC_CLASSES: dict[str, Thresholds] = {
    "end_to_end_s": Thresholds(rel=0.25, abs=0.05),
    "stage_s": Thresholds(rel=0.60, abs=0.02),
    "peak_rss_bytes": Thresholds(rel=0.50, abs=32 * 1024 * 1024),
    "speedup": Thresholds(rel=0.30, abs=0.1, higher_is_better=True),
}


# -- recording -------------------------------------------------------------


def _run_once(
    impl_cls: Any, event: Any, workload: Any, *, periods: int, backend: str,
    workers: int | None, sample_interval: float, profile_hz: float | None = None,
) -> tuple[Any, Any, Any]:
    """One traced, metered (optionally profiled) repetition in a fresh
    workspace; returns ``(result, metrics registry, resource log)``."""
    from repro.bench.harness import small_response_config
    from repro.bench.workloads import materialize
    from repro.core import RunContext
    from repro.core.context import ParallelSettings
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.profiling import SamplingProfiler
    from repro.observability.resources import ResourceSampler
    from repro.observability.tracer import Tracer

    base = Path(tempfile.mkdtemp(prefix="repro-perf-"))
    try:
        ctx = RunContext.for_directory(
            base / "ws",
            response_config=small_response_config(n_periods=periods),
            parallel=ParallelSettings.uniform(backend, num_workers=workers),
        )
        ctx.tracer = Tracer()
        ctx.metrics = MetricsRegistry()
        if profile_hz:
            ctx.profiler = SamplingProfiler(hz=profile_hz)
        materialize(event, workload, ctx.workspace.input_dir)
        sampler = ResourceSampler(interval_s=sample_interval, tracer=ctx.tracer)
        with sampler:
            result = impl_cls().run(ctx)
        log = sampler.log()
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return result, ctx.metrics, log


def _measure_one(
    impl_cls: Any, event: Any, workload: Any, *, periods: int, backend: str,
    workers: int | None, sample_interval: float, profile_hz: float | None = None,
) -> dict[str, Any]:
    """One repetition summarized as a bench-document cell."""
    from repro.observability.critpath import (
        critical_path,
        critical_path_length,
        stage_shares,
    )
    from repro.observability.resources import resources_available

    result, registry, log = _run_once(
        impl_cls, event, workload, periods=periods, backend=backend,
        workers=workers, sample_interval=sample_interval, profile_hz=profile_hz,
    )
    trace = result.trace
    stage_self = trace.stage_self_times() if trace is not None else {}
    segments = critical_path(trace) if trace is not None else []
    entry = {
        "total_s": result.total_s,
        "stages": {k: round(v, 6) for k, v in result.stage_durations.items()},
        "stage_self_s": {k: round(v, 6) for k, v in stage_self.items()},
        "critical_path_s": round(critical_path_length(segments), 6),
        "critical_path_stages": {
            k: round(v, 6) for k, v in stage_shares(segments).items()
        },
        "resources": log.summary() if resources_available() and len(log) else None,
        "io": {
            "read_bytes": registry.total("repro_artifact_io_bytes_total", op="read"),
            "write_bytes": registry.total("repro_artifact_io_bytes_total", op="write"),
            "points": registry.total("repro_points_processed_total"),
        },
        "parallel": {
            "chunks": registry.total("repro_parallel_chunks_total"),
            "tasks": registry.total("repro_parallel_tasks_total"),
        },
    }
    if result.profile is not None:
        profile = result.profile
        entry["profile"] = {
            "hz": profile_hz,
            "samples": profile.total_samples,
            "attributed_fraction": round(profile.attributed_fraction(), 4),
            "top_frames": [
                {"frame": frame, "seconds": round(seconds, 4), "samples": count}
                for frame, seconds, count in profile.top_frames(10)
            ],
        }
    return entry


def record_bench(
    *,
    events: Sequence[Any] | None = None,
    implementations: Sequence[str] = DEFAULT_IMPLEMENTATIONS,
    scale: float = 0.02,
    repeats: int = 2,
    periods: int = 30,
    backend: str = "thread",
    workers: int | None = None,
    sample_interval: float = 0.05,
    profile_hz: float | None = None,
) -> dict[str, Any]:
    """Measure the catalog and return the canonical bench document.

    Each (event, implementation) cell runs ``repeats`` times in fresh
    workspaces; the reported numbers come from the fastest repetition
    (min-of-k), all repetition totals are preserved in ``runs_s``.
    With ``profile_hz``, every repetition runs under the sampling
    profiler and each cell embeds its top-frame summary.
    """
    from repro.bench.workloads import scaled_workload
    from repro.engine import pipeline_factory
    from repro.synth.events import PAPER_EVENTS

    events = list(events) if events is not None else list(PAPER_EVENTS)
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "scale": scale,
            "periods": periods,
            "repeats": repeats,
            "backend": backend,
            "workers": workers,
            "profile_hz": profile_hz,
            "events": [e.event_id for e in events],
            "implementations": list(implementations),
        },
        "events": {},
    }
    for event in events:
        workload = scaled_workload(event, scale)
        cell: dict[str, Any] = {
            "n_files": workload.n_files,
            "total_points": workload.total_points,
            "implementations": {},
        }
        for name in implementations:
            impl_cls = pipeline_factory(name)
            reps = [
                _measure_one(
                    impl_cls, event, workload, periods=periods, backend=backend,
                    workers=workers, sample_interval=sample_interval,
                    profile_hz=profile_hz,
                )
                for _ in range(max(1, repeats))
            ]
            best = min(reps, key=lambda r: r["total_s"])
            entry = dict(best)
            entry["total_s"] = round(best["total_s"], 6)
            entry["runs_s"] = [round(r["total_s"], 6) for r in reps]
            cell["implementations"][name] = entry
        seq = cell["implementations"].get("seq-original")
        for name, entry in cell["implementations"].items():
            entry["speedup_vs_original"] = (
                round(seq["total_s"] / entry["total_s"], 4)
                if seq is not None and entry["total_s"] > 0
                else None
            )
        doc["events"][event.event_id] = cell
    return doc


def validate_bench(doc: dict[str, Any]) -> list[str]:
    """Schema check of a bench document; returns the problems found.

    Accepts every version in :data:`KNOWN_SCHEMAS`; the v2-only fields
    (``critical_path_s``, the optional ``profile`` block) are required
    or checked only on v2 documents, so the committed v1 seed baseline
    keeps validating.
    """
    errors: list[str] = []
    schema = doc.get("schema")
    if schema not in KNOWN_SCHEMAS:
        errors.append(f"schema: expected one of {KNOWN_SCHEMAS!r}, got {schema!r}")
    v2 = schema == "repro-bench/2"
    for key in ("created_utc", "host", "config", "events"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    events = doc.get("events")
    if not isinstance(events, dict) or not events:
        errors.append("events: must be a non-empty mapping")
        return errors
    wanted = doc.get("config", {}).get("implementations") or []
    for event_id, cell in events.items():
        impls = cell.get("implementations")
        if not isinstance(impls, dict) or not impls:
            errors.append(f"{event_id}: no implementations")
            continue
        for name in wanted:
            if name not in impls:
                errors.append(f"{event_id}: implementation {name!r} missing")
        for name, entry in impls.items():
            where = f"{event_id}/{name}"
            total = entry.get("total_s")
            if not isinstance(total, (int, float)) or total <= 0:
                errors.append(f"{where}: total_s must be positive")
            if not entry.get("runs_s"):
                errors.append(f"{where}: runs_s missing or empty")
            if not isinstance(entry.get("stages"), dict) or not entry["stages"]:
                errors.append(f"{where}: stages missing or empty")
            if "speedup_vs_original" not in entry:
                errors.append(f"{where}: speedup_vs_original missing")
            if "stage_self_s" not in entry:
                errors.append(f"{where}: stage_self_s missing")
            if v2:
                cp = entry.get("critical_path_s")
                if not isinstance(cp, (int, float)) or cp <= 0:
                    errors.append(f"{where}: critical_path_s must be positive")
                profile = entry.get("profile")
                if profile is not None:
                    if not isinstance(profile.get("samples"), int):
                        errors.append(f"{where}: profile.samples must be an integer")
                    frac = profile.get("attributed_fraction")
                    if not isinstance(frac, (int, float)) or not 0.0 <= frac <= 1.0:
                        errors.append(
                            f"{where}: profile.attributed_fraction must be in [0, 1]"
                        )
                    if not isinstance(profile.get("top_frames"), list):
                        errors.append(f"{where}: profile.top_frames must be a list")
    return errors


def write_bench(doc: dict[str, Any], out_dir: Path | str = ".") -> Path:
    """Write ``doc`` as ``BENCH_<timestamp>.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = (
        doc.get("created_utc", "")
        .replace("-", "").replace(":", "")
    ) or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path


def latest_bench(directory: Path | str = ".") -> Path | None:
    """Newest ``BENCH_*.json`` under ``directory`` (by name, so by
    timestamp), or ``None``."""
    candidates = sorted(Path(directory).glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def resolve_bench_source(path: Path | str) -> tuple[dict[str, Any], str]:
    """Load a bench document from a file *or* a directory.

    A directory selects the newest schema-compatible ``BENCH_*.json``
    in it: candidates are tried newest-first and the first one that
    loads and passes :func:`validate_bench` wins, so a directory of
    CI artifacts with the odd truncated or foreign-schema file still
    resolves.  Raises :class:`ValueError` with every candidate's
    problem when none validates (or the directory holds none at all).
    Returns ``(document, label)``.
    """
    path = Path(path)
    if not path.is_dir():
        return json.loads(path.read_text()), str(path)
    candidates = sorted(path.glob("BENCH_*.json"), reverse=True)
    if not candidates:
        raise ValueError(f"no BENCH_*.json under {path}")
    problems: list[str] = []
    for candidate in candidates:
        try:
            doc = json.loads(candidate.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{candidate.name}: unreadable ({exc})")
            continue
        errors = validate_bench(doc)
        if errors:
            problems.append(f"{candidate.name}: {errors[0]}")
            continue
        return doc, str(candidate)
    raise ValueError(
        f"no schema-compatible BENCH_*.json under {path}; candidates:\n  "
        + "\n  ".join(problems)
    )


def render_bench(doc: dict[str, Any]) -> str:
    """Human-readable report of one bench document.

    The per-stage tables split each stage into total wall-clock and the
    tracer-derived *self* time, so executor overhead (chunk dispatch,
    merging, pool management) is visible separately from measured
    process work.
    """
    from repro.bench.report import format_table

    blocks: list[str] = []
    for event_id, cell in doc.get("events", {}).items():
        impls = cell["implementations"]
        rows = [
            (
                name,
                f"{entry['total_s']:.3f}",
                f"{entry['speedup_vs_original']:.2f}x"
                if entry.get("speedup_vs_original")
                else "-",
                f"{(entry.get('resources') or {}).get('peak_rss_bytes', 0) / 1e6:.0f} MB"
                if entry.get("resources")
                else "-",
            )
            for name, entry in impls.items()
        ]
        blocks.append(
            f"{event_id} ({cell['n_files']} files, {cell['total_points']} points)\n"
            + format_table(("implementation", "total s", "speedup", "peak RSS"), rows)
        )
        for name, entry in impls.items():
            stage_rows = [
                (
                    stage,
                    f"{dur:.4f}",
                    f"{entry.get('stage_self_s', {}).get(stage, 0.0):.4f}",
                )
                for stage, dur in entry.get("stages", {}).items()
            ]
            if stage_rows:
                blocks.append(
                    f"  {name} stages (self = stage overhead outside "
                    "process/chunk spans)\n"
                    + _indent(format_table(("stage", "total s", "self s"), stage_rows))
                )
    return "\n\n".join(blocks)


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


# -- checking --------------------------------------------------------------


@dataclass(frozen=True)
class Delta:
    """One compared metric."""

    event: str
    implementation: str
    metric: str
    metric_class: str
    baseline: float
    current: float
    status: str  # "ok" | "improved" | "REGRESSION"

    @property
    def rel_change(self) -> float:
        """Signed relative change of current vs baseline."""
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / self.baseline


def _cell_metrics(entry: dict[str, Any]) -> list[tuple[str, str, float]]:
    """(metric name, metric class, value) rows of one bench cell."""
    out: list[tuple[str, str, float]] = [
        ("end_to_end_s", "end_to_end_s", float(entry["total_s"]))
    ]
    for stage, dur in (entry.get("stages") or {}).items():
        out.append((f"stage[{stage}]", "stage_s", float(dur)))
    speedup = entry.get("speedup_vs_original")
    if speedup:
        out.append(("speedup", "speedup", float(speedup)))
    resources = entry.get("resources") or {}
    if resources.get("peak_rss_bytes"):
        out.append(
            ("peak_rss_bytes", "peak_rss_bytes", float(resources["peak_rss_bytes"]))
        )
    return out


def check_bench(
    baseline: dict[str, Any], current: dict[str, Any]
) -> tuple[list[Delta], list[Delta]]:
    """Compare two bench documents metric by metric.

    Only (event, implementation, metric) cells present in *both*
    documents are compared — shrinking or growing the measured matrix
    never fails the gate by itself.  Returns ``(all deltas,
    regressions)``.
    """
    deltas: list[Delta] = []
    for event_id, base_cell in (baseline.get("events") or {}).items():
        cur_cell = (current.get("events") or {}).get(event_id)
        if cur_cell is None:
            continue
        for name, base_entry in (base_cell.get("implementations") or {}).items():
            cur_entry = (cur_cell.get("implementations") or {}).get(name)
            if cur_entry is None:
                continue
            cur_metrics = {m: (c, v) for m, c, v in _cell_metrics(cur_entry)}
            for metric, cls_name, base_value in _cell_metrics(base_entry):
                if metric not in cur_metrics:
                    continue
                _, cur_value = cur_metrics[metric]
                thresholds = METRIC_CLASSES[cls_name]
                if thresholds.regressed(base_value, cur_value):
                    status = "REGRESSION"
                elif thresholds.improved(base_value, cur_value):
                    status = "improved"
                else:
                    status = "ok"
                deltas.append(
                    Delta(
                        event=event_id, implementation=name, metric=metric,
                        metric_class=cls_name, baseline=base_value,
                        current=cur_value, status=status,
                    )
                )
    regressions = [d for d in deltas if d.status == "REGRESSION"]
    return deltas, regressions


def render_deltas(deltas: list[Delta], *, only_notable: bool = True) -> str:
    """The delta table ``repro-perf check`` prints.

    ``only_notable`` hides in-band rows unless everything is in band
    (then a short all-clear summary renders instead).
    """
    from repro.bench.report import format_table

    notable = [d for d in deltas if d.status != "ok"]
    shown = notable if (only_notable and notable) else deltas
    if not shown:
        return "no comparable metrics"
    rows = [
        (
            d.event, d.implementation, d.metric,
            f"{d.baseline:.4g}", f"{d.current:.4g}",
            f"{d.rel_change:+.1%}", d.status,
        )
        for d in sorted(
            shown, key=lambda d: (d.status != "REGRESSION", d.event,
                                  d.implementation, d.metric)
        )
    ]
    table = format_table(
        ("event", "implementation", "metric", "baseline", "current", "delta", "status"),
        rows,
    )
    if only_notable and notable:
        ok_count = len(deltas) - len(notable)
        return table + f"\n({ok_count} further metrics within thresholds)"
    return table


def _worst_stage_summary(
    regressions: list[Delta], baseline: dict[str, Any], current: dict[str, Any]
) -> str | None:
    """One actionable line naming the worst-regressed stage.

    Picks the stage regression with the largest relative slowdown and
    reports its measured *self-time* movement (the tracer's
    :meth:`Trace.stage_self_times` split, preserved per entry as
    ``stage_self_s``), so the failure message already says whether the
    stage's own overhead or its scheduled work regressed — without
    opening the BENCH JSON.
    """
    stage_regs = [d for d in regressions if d.metric_class == "stage_s"]
    if not stage_regs:
        return None
    worst = max(stage_regs, key=lambda d: d.rel_change)
    stage = worst.metric[len("stage["):-1]
    line = (
        f"worst-regressed stage: {stage} "
        f"({worst.event}/{worst.implementation}): "
        f"{worst.baseline:.4g} s -> {worst.current:.4g} s "
        f"({worst.rel_change:+.1%})"
    )

    def _self_time(doc: dict[str, Any]) -> float | None:
        entry = (
            (doc.get("events") or {}).get(worst.event, {})
            .get("implementations", {}).get(worst.implementation, {})
        )
        value = (entry.get("stage_self_s") or {}).get(stage)
        return float(value) if value is not None else None

    base_self = _self_time(baseline)
    cur_self = _self_time(current)
    if base_self is not None and cur_self is not None:
        line += (
            f"; measured self-time {base_self:.4g} s -> {cur_self:.4g} s "
            f"({cur_self - base_self:+.4g} s)"
        )
    return line


# -- explaining ------------------------------------------------------------


def explain_event(
    event: Any,
    *,
    implementations: Sequence[str] = DEFAULT_IMPLEMENTATIONS,
    scale: float = 0.02,
    periods: int = 30,
    backend: str = "thread",
    workers: int | None = None,
    profile_hz: float | None = 97.0,
    top: int = 3,
) -> list[tuple[str, dict[str, Any], float | None]]:
    """Bottleneck reports for one event, one per implementation.

    Each implementation runs once, traced and (by default) profiled;
    the report is :func:`repro.observability.critpath.explain` plus the
    measured speedup against the ``seq-original`` run of the same
    batch.  Returns ``(name, report, measured speedup)`` triples.
    """
    from repro.bench.workloads import scaled_workload
    from repro.engine import pipeline_factory
    from repro.observability.critpath import explain as build_explain
    from repro.parallel.backend import resolve_workers

    workload = scaled_workload(event, scale)
    measured: list[tuple[str, dict[str, Any], float]] = []
    for name in implementations:
        result, _registry, _log = _run_once(
            pipeline_factory(name), event, workload, periods=periods,
            backend=backend, workers=workers, sample_interval=0.05,
            profile_hz=profile_hz,
        )
        report = build_explain(
            result.trace, resolve_workers(workers), profile=result.profile, top=top
        )
        measured.append((name, report, result.total_s))
    seq_total = next(
        (total for name, _r, total in measured if name == "seq-original"), None
    )
    return [
        (
            name,
            report,
            seq_total / total if seq_total and total > 0 else None,
        )
        for name, report, total in measured
    ]


# -- CLI -------------------------------------------------------------------


def _add_record_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--events", default="all",
        help="comma-separated catalog event ids, or 'all' (default)",
    )
    parser.add_argument(
        "--policies", "--implementations", dest="implementations",
        default=",".join(DEFAULT_IMPLEMENTATIONS),
        help="comma-separated scheduling policy names "
        "(--implementations is the deprecated alias)",
    )
    parser.add_argument("--scale", type=float, default=0.02, help="workload scale")
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="repetitions per cell; reported numbers are min-of-k",
    )
    parser.add_argument("--periods", type=int, default=30, help="response-spectrum periods")
    parser.add_argument("--backend", default="thread", help="parallel backend")
    parser.add_argument("--workers", type=int, default=None, help="parallel workers")


def _resolve_events(spec: str) -> list[Any]:
    from repro.synth.events import PAPER_EVENTS, paper_event

    if spec == "all":
        return list(PAPER_EVENTS)
    return [paper_event(event_id.strip()) for event_id in spec.split(",") if event_id.strip()]


def _record_from_args(args: argparse.Namespace) -> dict[str, Any]:
    return record_bench(
        events=_resolve_events(args.events),
        implementations=[n.strip() for n in args.implementations.split(",") if n.strip()],
        scale=args.scale,
        repeats=args.repeats,
        periods=args.periods,
        backend=args.backend,
        workers=args.workers,
        profile_hz=args.hz if getattr(args, "profile", False) else None,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Record performance baselines and check for regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="measure the catalog, write BENCH_<ts>.json")
    _add_record_options(rec)
    rec.add_argument(
        "--out-dir", default=".", help="directory for the BENCH_<timestamp>.json"
    )
    rec.add_argument(
        "--quiet", action="store_true", help="suppress the per-event report"
    )
    rec.add_argument(
        "--profile", action="store_true",
        help="run every repetition under the sampling profiler and embed "
             "top-frame summaries in the bench document",
    )
    rec.add_argument(
        "--hz", type=float, default=97.0, help="profiler sampling rate (with --profile)"
    )

    chk = sub.add_parser("check", help="compare against a baseline; exit 1 on regression")
    _add_record_options(chk)
    chk.add_argument(
        "--baseline", default=None,
        help="baseline BENCH_*.json (default: newest in the current directory)",
    )
    chk.add_argument(
        "--against", default=None,
        help="compare an already-recorded BENCH_*.json instead of running "
        "fresh; a directory selects its newest schema-compatible bench file",
    )
    chk.add_argument(
        "--advisory", action="store_true",
        help="report regressions but always exit 0 (CI smoke mode)",
    )
    chk.add_argument(
        "--all-deltas", action="store_true", help="print in-band rows too"
    )

    exp = sub.add_parser(
        "explain",
        help="run each implementation once and print the bottleneck report: "
             "per-stage critical-path shares, parallel efficiency, top frames, "
             "and measured vs modeled (Amdahl / work-span) speedup",
    )
    exp.add_argument("--event", default="EV-NOV18", help="catalog event id")
    exp.add_argument(
        "--policies", "--implementations", dest="implementations",
        default=",".join(DEFAULT_IMPLEMENTATIONS),
        help="comma-separated scheduling policy names "
        "(--implementations is the deprecated alias)",
    )
    exp.add_argument("--scale", type=float, default=0.02, help="workload scale")
    exp.add_argument("--periods", type=int, default=30, help="response-spectrum periods")
    exp.add_argument("--backend", default="thread", help="parallel backend")
    exp.add_argument("--workers", type=int, default=None, help="parallel workers")
    exp.add_argument("--hz", type=float, default=97.0, help="profiler sampling rate")
    exp.add_argument(
        "--no-profile", action="store_true",
        help="skip the sampling profiler (critical path and model only)",
    )
    exp.add_argument("--top", type=int, default=3, help="frames per stage in the report")
    return parser


def main_perf(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-perf``."""
    args = _build_parser().parse_args(argv)
    if args.command == "record":
        doc = _record_from_args(args)
        errors = validate_bench(doc)
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            return 1
        path = write_bench(doc, args.out_dir)
        if not args.quiet:
            print(render_bench(doc))
            print()
        print(f"bench written to {path}")
        import os

        if os.environ.get("REPRO_LEDGER"):
            from repro.observability.ledger import RunLedger, entries_from_bench

            ledger = RunLedger(os.environ["REPRO_LEDGER"])
            entries = entries_from_bench(doc)
            for entry in entries:
                ledger.append(entry)
            print(
                f"ledger: appended {len(entries)} cell(s) "
                f"to {os.environ['REPRO_LEDGER']}"
            )
        return 0

    if args.command == "explain":
        from repro.observability.critpath import render_explain
        from repro.synth.events import paper_event

        reports = explain_event(
            paper_event(args.event),
            implementations=[
                n.strip() for n in args.implementations.split(",") if n.strip()
            ],
            scale=args.scale,
            periods=args.periods,
            backend=args.backend,
            workers=args.workers,
            profile_hz=None if args.no_profile else args.hz,
            top=args.top,
        )
        print(f"event {args.event}, backend {args.backend}")
        for name, report, measured in reports:
            print(f"\n== {name} ==")
            print(render_explain(report, measured_speedup=measured))
        return 0

    # check
    baseline_path = Path(args.baseline) if args.baseline else latest_bench(".")
    if baseline_path is None or not baseline_path.exists():
        print("no baseline BENCH_*.json found; record one first", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    if args.against:
        try:
            current, current_label = resolve_bench_source(args.against)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        current = _record_from_args(args)
        errors = validate_bench(current)
        if errors:
            for err in errors:
                print(f"schema error: {err}", file=sys.stderr)
            return 1
        current_label = "fresh run"
    deltas, regressions = check_bench(baseline, current)
    print(f"baseline: {baseline_path}")
    print(f"current:  {current_label}")
    print(render_deltas(deltas, only_notable=not args.all_deltas))
    if regressions:
        worst = _worst_stage_summary(regressions, baseline, current)
        if worst:
            print(worst)
        verdict = f"{len(regressions)} regression(s) beyond thresholds"
        if args.advisory:
            print(f"ADVISORY: {verdict} (advisory mode, not failing)")
            return 0
        print(f"FAIL: {verdict}", file=sys.stderr)
        return 1
    print("OK: all compared metrics within thresholds")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_perf())
