"""Cross-process sampling profiler.

The tracer answers *when* a stage ran; this module answers *where
inside it the CPU time went*.  A :class:`SamplingProfiler` thread wakes
``hz`` times per second, snapshots every interpreter frame via
``sys._current_frames()``, and folds each stack into a :class:`Profile`
— a weighted multiset of ``(stack, labels)`` pairs.  Labels are the
span attribution: each sampled thread is tagged with the stage,
process ``PXX``, implementation, backend and loop span that were active
on it, resolved from the tracer's live per-thread span stacks
(driver threads) or from the explicit label registrations the worker
shims of :mod:`repro.parallel.omp` make around each chunk/task body.

Crossing process boundaries works exactly like the metric shards of
:mod:`repro.observability.metrics`: pool workers run their own private
sampler, bracketed per chunk/task by :func:`begin_worker_profile` /
:func:`drain_worker_profile`; the drained :meth:`Profile.to_dict` shard
travels home with the chunk results and the driver merges it with
:meth:`Profile.merge`.  Merging is associative and commutative (pure
addition of sample weights), so the merged profile is independent of
scheduling order, chunking, and backend — the property suite checks
this.

A profile exports as collapsed-stack text (``flamegraph.pl`` /
speedscope paste format) and as speedscope JSON
(https://www.speedscope.app), and its top frames annotate the Chrome
trace's stage spans.  When no profiler is installed the hooks cost one
pid-guarded global read per loop; with one installed, overhead is the
sampler thread's tick (~tens of microseconds per sample at the default
rate — see ``docs/profiling.md`` for measured numbers).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ReproError

#: Default sampling rate (samples per second).  Prime-ish, so the timer
#: does not phase-lock with 10 ms scheduler ticks or 50 ms resource
#: samples.
DEFAULT_HZ = 97.0

#: Deepest stack we record; frames below the cut are dropped root-side.
MAX_STACK_DEPTH = 128

#: Module prefixes of the interpreter's own plumbing.  A stack made
#: entirely of these is a parked thread (pool worker between chunks,
#: executor management thread); a labeled stack whose *leaf* is one is
#: a thread waiting on a barrier/queue inside attributed work.
_RUNTIME_MODULES = (
    "threading",
    "queue",
    "selectors",
    "concurrent",
    "multiprocessing",
    "socket",
    "subprocess",
)

#: Thread names the sampler never records: its own tick thread and the
#: sibling telemetry threads, which would otherwise profile the act of
#: profiling.
EXCLUDED_THREAD_NAMES = ("stack-sampler", "resource-sampler")

LabelKey = tuple[tuple[str, str], ...]
StackKey = tuple[str, ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _frame_name(frame: Any) -> str:
    """One frame rendered as ``module:function``."""
    module = frame.f_globals.get("__name__")
    if not module:
        module = os.path.basename(frame.f_code.co_filename or "?")
    return f"{module}:{frame.f_code.co_name}"


def unwind(frame: Any) -> StackKey:
    """The stack of ``frame``, root first, capped at the depth limit."""
    names: list[str] = []
    while frame is not None and len(names) < MAX_STACK_DEPTH:
        names.append(_frame_name(frame))
        frame = frame.f_back
    names.reverse()
    return tuple(names)


def _is_runtime_frame(name: str) -> bool:
    module = name.split(":", 1)[0]
    return module.startswith(_RUNTIME_MODULES)


def stack_state(stack: StackKey) -> str:
    """Classify a stack: ``working``, ``waiting`` (attributable work
    parked on a lock/queue/barrier) or ``idle`` (pure runtime plumbing,
    e.g. a pool thread between chunks)."""
    if not stack:
        return "idle"
    if all(_is_runtime_frame(name) for name in stack):
        return "idle"
    if _is_runtime_frame(stack[-1]):
        return "waiting"
    return "working"


class Profile:
    """A weighted multiset of sampled call stacks.

    Each entry keys on ``(labels, stack)`` and accumulates a sample
    count plus the seconds those samples represent (count x the
    sampling interval in force when they were taken, so profiles
    recorded at different rates merge without bias).  Merging adds
    entry-wise — associative and commutative — which is what lets
    per-worker shards travel home with chunk results and fold in any
    order.
    """

    def __init__(self, interval_s: float = 1.0 / DEFAULT_HZ) -> None:
        if interval_s <= 0:
            raise ReproError(f"sampling interval must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self._entries: dict[tuple[LabelKey, StackKey], list[float]] = {}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def record(
        self, stack: StackKey, labels: dict[str, Any] | None = None,
        weight_s: float | None = None, count: int = 1,
    ) -> None:
        """Fold ``count`` samples of ``stack`` into the profile."""
        key = (_label_key(labels or {}), tuple(stack))
        weight = float(weight_s) if weight_s is not None else count * self.interval_s
        with self._lock:
            slot = self._entries.get(key)
            if slot is None:
                self._entries[key] = [float(count), weight]
            else:
                slot[0] += count
                slot[1] += weight

    # -- reading -----------------------------------------------------------

    def entries(self) -> list[tuple[dict[str, str], StackKey, int, float]]:
        """Every ``(labels, stack, count, seconds)`` row, sorted."""
        with self._lock:
            items = sorted(self._entries.items())
        return [
            (dict(labels), stack, int(slot[0]), slot[1])
            for (labels, stack), slot in items
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_samples(self) -> int:
        """Number of samples recorded (all states)."""
        with self._lock:
            return int(sum(slot[0] for slot in self._entries.values()))

    @property
    def total_seconds(self) -> float:
        """Summed sample weight in seconds."""
        with self._lock:
            return sum(slot[1] for slot in self._entries.values())

    def _matches(self, labels: dict[str, str], wanted: dict[str, str]) -> bool:
        return all(labels.get(k) == v for k, v in wanted.items())

    def attributed_fraction(self) -> float:
        """Fraction of non-idle samples that carry span attribution.

        Idle samples (parked pool threads, executor plumbing) are
        excluded from the denominator: they are no thread's *work*.
        The acceptance bar for a merged pipeline profile is >= 0.95.
        """
        attributed = 0
        denominator = 0
        for labels, _stack, count, _s in self.entries():
            if labels.get("state") == "idle":
                continue
            denominator += count
            if any(k in labels for k in ("span", "stage", "process", "implementation")):
                attributed += count
        return attributed / denominator if denominator else 0.0

    def top_frames(
        self, n: int = 10, *, include_waiting: bool = False, **label_filter: str
    ) -> list[tuple[str, float, int]]:
        """The hottest leaf frames: ``(frame, seconds, count)`` rows.

        Self-time attribution — each sample charges its leaf frame.
        Waiting and idle samples are excluded by default so barrier
        waits do not drown the actual work; pass label filters
        (``stage="IX"``) to restrict to one attribution slice.
        """
        wanted = {str(k): str(v) for k, v in label_filter.items()}
        agg: dict[str, list[float]] = {}
        for labels, stack, count, seconds in self.entries():
            if not stack or labels.get("state") == "idle":
                continue
            if not include_waiting and labels.get("state") == "waiting":
                continue
            if not self._matches(labels, wanted):
                continue
            slot = agg.setdefault(stack[-1], [0.0, 0.0])
            slot[0] += seconds
            slot[1] += count
        ranked = sorted(agg.items(), key=lambda kv: (-kv[1][0], kv[0]))
        return [(frame, seconds, int(count)) for frame, (seconds, count) in ranked[:n]]

    def label_values(self, key: str) -> list[str]:
        """Distinct values of one label key, sorted."""
        return sorted({
            labels[key] for labels, _stack, _c, _s in self.entries() if key in labels
        })

    # -- serialization / merging ------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (also the shard wire format)."""
        return {
            "interval_s": self.interval_s,
            "entries": [
                {
                    "labels": [list(pair) for pair in sorted(labels.items())],
                    "stack": list(stack),
                    "count": count,
                    "seconds": seconds,
                }
                for labels, stack, count, seconds in self.entries()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Profile":
        """Inverse of :meth:`to_dict`."""
        profile = cls(interval_s=float(data.get("interval_s") or 1.0 / DEFAULT_HZ))
        profile.merge(data)
        return profile

    def merge(self, other: "Profile | dict[str, Any]") -> "Profile":
        """Fold another profile (or its :meth:`to_dict` shard) into this
        one.  Entry-wise addition: associative and commutative, so
        shards merge in any order and grouping.  Returns ``self``."""
        shard = other.to_dict() if isinstance(other, Profile) else other
        for entry in shard.get("entries", ()):
            self.record(
                tuple(entry["stack"]),
                dict(tuple(pair) for pair in entry["labels"]),
                weight_s=float(entry["seconds"]),
                count=int(entry["count"]),
            )
        return self

    # -- exports -----------------------------------------------------------

    def to_collapsed(self, *, include_idle: bool = False) -> str:
        """Collapsed-stack text: one ``frame;frame;frame count`` line
        per distinct stack (flamegraph.pl / speedscope paste format).
        Stacks are aggregated across label sets; counts are samples."""
        agg: dict[StackKey, int] = {}
        for labels, stack, count, _seconds in self.entries():
            if not stack:
                continue
            if not include_idle and labels.get("state") == "idle":
                continue
            agg[stack] = agg.get(stack, 0) + count
        return "".join(
            f"{';'.join(stack)} {count}\n" for stack, count in sorted(agg.items())
        )

    @classmethod
    def from_collapsed(cls, text: str, interval_s: float = 1.0 / DEFAULT_HZ) -> "Profile":
        """Parse collapsed-stack text back into a profile (labels are
        not part of the format and come back empty)."""
        profile = cls(interval_s=interval_s)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            stack_text, _, count_text = line.rpartition(" ")
            profile.record(tuple(stack_text.split(";")), count=int(count_text))
        return profile

    def to_speedscope(
        self, name: str = "repro", *, group_by: str | None = None,
        include_idle: bool = False,
    ) -> dict[str, Any]:
        """The profile in speedscope's JSON file format.

        Each distinct stack becomes one weighted sample of a
        ``"sampled"`` profile.  ``group_by`` (a label key, e.g.
        ``"stage"``) splits the samples into one profile per label
        value, so the speedscope profile picker doubles as a per-stage
        flamegraph browser.
        """
        frames: list[dict[str, str]] = []
        frame_index: dict[str, int] = {}

        def index_of(frame: str) -> int:
            if frame not in frame_index:
                frame_index[frame] = len(frames)
                frames.append({"name": frame})
            return frame_index[frame]

        groups: dict[str, list[tuple[StackKey, float]]] = {}
        for labels, stack, _count, seconds in self.entries():
            if not stack:
                continue
            if not include_idle and labels.get("state") == "idle":
                continue
            group = labels.get(group_by, "-") if group_by else name
            groups.setdefault(group, []).append((stack, seconds))

        profiles = []
        for group in sorted(groups):
            samples = []
            weights = []
            for stack, seconds in groups[group]:
                samples.append([index_of(frame) for frame in stack])
                weights.append(round(seconds, 6))
            profiles.append(
                {
                    "type": "sampled",
                    "name": group,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": round(sum(weights), 6),
                    "samples": samples,
                    "weights": weights,
                }
            )
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": profiles,
            "name": name,
            "activeProfileIndex": 0,
            "exporter": "repro.observability.profiling",
        }


def write_speedscope(
    path: Path | str, profile: Profile, *, name: str = "repro",
    group_by: str | None = None,
) -> Path:
    """Write :meth:`Profile.to_speedscope` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(profile.to_speedscope(name, group_by=group_by), indent=1) + "\n"
    )
    return path


def write_collapsed(path: Path | str, profile: Profile) -> Path:
    """Write :meth:`Profile.to_collapsed` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(profile.to_collapsed())
    return path


# -- span attribution ------------------------------------------------------


def span_stack_labels(spans: list[Any]) -> dict[str, str]:
    """Attribution labels of one thread's open span stack.

    Walks outermost to innermost, so inner spans refine outer ones:
    the run span contributes the implementation, the stage span the
    stage, the process span ``PXX``, cluster rank spans the rank, and
    the innermost span names the ``span`` label.
    """
    labels: dict[str, str] = {}
    for span in spans:
        if span.kind in ("run", "implementation"):
            labels["implementation"] = str(
                span.attributes.get("implementation", span.name)
            )
        elif span.kind == "stage":
            labels["stage"] = span.name
        elif span.kind == "process":
            labels["stage"] = str(span.attributes.get("stage", labels.get("stage", "")))
            pid = span.attributes.get("pid")
            labels["process"] = f"P{pid}" if pid is not None else span.name
        elif span.kind == "rank":
            labels["rank"] = str(span.attributes.get("rank", span.name))
        elif span.kind == "batch":
            labels["batch"] = span.name
    if spans:
        labels["span"] = spans[-1].name
    return labels


# -- the sampler -----------------------------------------------------------


class SamplingProfiler:
    """Timer-thread wall-clock profiler of every interpreter thread.

    Use as a context manager (or :meth:`start` / :meth:`stop`) around
    the work being observed; :attr:`profile` accumulates across the
    whole session, and worker shards merged in by the parallel runtime
    land in the same object.  A pickled profiler (the process backend
    pickles the :class:`~repro.core.context.RunContext` into its
    workers) deserializes *disabled and empty*: workers sample
    themselves through the window protocol below, never through the
    driver's object.
    """

    def __init__(self, hz: float = DEFAULT_HZ, tracer: Any = None) -> None:
        if hz <= 0:
            raise ReproError(f"sampling rate must be positive, got {hz}")
        self.hz = float(hz)
        self.enabled = True
        self._tracer = tracer
        self.profile = Profile(interval_s=1.0 / self.hz)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- pickling: cross the process boundary as a no-op ----------------

    def __getstate__(self) -> dict[str, Any]:
        return {"hz": self.hz}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(hz=state.get("hz", DEFAULT_HZ))
        self.enabled = False

    def attach_tracer(self, tracer: Any) -> None:
        """Late-bind the tracer whose span stacks attribute samples."""
        if tracer is not None:
            self._tracer = tracer

    # -- attribution -------------------------------------------------------

    def _labels_for(self, tid: int, stack: StackKey) -> dict[str, str]:
        labels = thread_labels(tid)
        if labels is None and self._tracer is not None:
            spans = getattr(self._tracer, "open_spans", lambda: {})().get(tid)
            if spans:
                labels = span_stack_labels(spans)
        labels = dict(labels) if labels else {}
        state = stack_state(stack)
        if state != "working" and (labels or state == "idle"):
            labels["state"] = state
        return labels

    def labels_here(self) -> dict[str, str]:
        """Attribution labels of the *calling* thread, right now.

        The parallel runtime calls this on the driver thread when a
        loop starts, capturing run/stage/process attribution to hand
        to worker shims whose threads have no span stack of their own.
        """
        if self._tracer is None:
            return {}
        spans = getattr(self._tracer, "open_spans", lambda: {})().get(
            threading.get_ident()
        )
        return span_stack_labels(spans) if spans else {}

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> int:
        """Take one snapshot of every thread; returns samples recorded."""
        names = {t.ident: t.name for t in threading.enumerate()}
        own = threading.get_ident()
        recorded = 0
        for tid, frame in sys._current_frames().items():
            if tid == own or tid == getattr(self._thread, "ident", None):
                continue
            if names.get(tid, "") in EXCLUDED_THREAD_NAMES:
                continue
            stack = unwind(frame)
            self.profile.record(stack, self._labels_for(tid, stack))
            recorded += 1
        return recorded

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def start(self) -> "SamplingProfiler":
        """Start the sampling thread (idempotent; no-op when disabled)."""
        if self._thread is not None or not self.enabled:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Stop sampling; returns the accumulated :attr:`profile`."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


# -- collection plumbing ---------------------------------------------------
#
# Mirrors the metrics module: the driver installs its profiler for the
# run's duration; worker shims bracket each chunk/task with
# begin_worker_profile / drain_worker_profile.  In-process (serial and
# thread backends) the driver's sampler already sees the worker
# threads, so the window just registers attribution labels for them;
# in pool processes a private per-process sampler records into a
# swappable window profile that ships home as a shard.  All slots are
# pid-guarded so state inherited across a fork is treated as absent.

_installed: tuple[SamplingProfiler, int] | None = None
_thread_labels: tuple[dict[int, dict[str, str]], int] | None = None
_worker_sampler: tuple["_WorkerSampler", int] | None = None


def installed_profiler() -> SamplingProfiler | None:
    """The driver-installed profiler, unless inherited across a fork."""
    if _installed is not None and _installed[1] == os.getpid():
        return _installed[0]
    return None


@contextmanager
def profiling_session(
    profiler: SamplingProfiler | None, tracer: Any = None
) -> Iterator[SamplingProfiler | None]:
    """Install ``profiler`` as this process's sampler and run it.

    Tolerates ``None`` (yields without installing) so callers can pass
    an optional profiler straight through.
    """
    global _installed
    if profiler is None or not profiler.enabled:
        yield None
        return
    profiler.attach_tracer(tracer)
    previous = _installed
    _installed = (profiler, os.getpid())
    try:
        with profiler:
            yield profiler
    finally:
        _installed = previous


def thread_labels(tid: int) -> dict[str, str] | None:
    """Labels registered for one thread, if any (pid-guarded)."""
    if _thread_labels is None or _thread_labels[1] != os.getpid():
        return None
    return _thread_labels[0].get(tid)


def _register_thread_labels(labels: dict[str, str]) -> int:
    global _thread_labels
    tid = threading.get_ident()
    if _thread_labels is None or _thread_labels[1] != os.getpid():
        _thread_labels = ({}, os.getpid())
    _thread_labels[0][tid] = labels
    return tid


def _unregister_thread_labels(tid: int) -> None:
    if _thread_labels is not None and _thread_labels[1] == os.getpid():
        _thread_labels[0].pop(tid, None)


@contextmanager
def labeled_thread(labels: dict[str, str]) -> Iterator[None]:
    """Attribute this thread's samples to ``labels`` for the block."""
    tid = _register_thread_labels(labels)
    try:
        yield
    finally:
        _unregister_thread_labels(tid)


class _WorkerSampler:
    """The per-pool-process sampler behind the window protocol.

    One daemon thread per worker process, started lazily on the first
    profiled chunk and reused for every later one (thread creation is
    not paid per chunk).  Samples are recorded only while a window is
    open, into that window's private profile, tagged with the window's
    labels — between windows the ticks fall on the floor.
    """

    def __init__(self, hz: float) -> None:
        self.hz = float(hz)
        self._lock = threading.Lock()
        self._window: tuple[Profile, dict[str, str]] | None = None
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="stack-sampler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            with self._lock:
                window = self._window
            if window is None:
                continue
            profile, labels = window
            own = threading.get_ident()
            names = {t.ident: t.name for t in threading.enumerate()}
            for tid, frame in sys._current_frames().items():
                if tid == own or names.get(tid, "") in EXCLUDED_THREAD_NAMES:
                    continue
                stack = unwind(frame)
                state = stack_state(stack)
                if state == "idle":
                    continue
                tagged = dict(labels)
                if state == "waiting":
                    tagged["state"] = state
                profile.record(stack, tagged)

    def open(self, labels: dict[str, str]) -> None:
        with self._lock:
            self._window = (Profile(interval_s=1.0 / self.hz), dict(labels))

    def close(self) -> Profile | None:
        with self._lock:
            window, self._window = self._window, None
        return window[0] if window is not None else None


def begin_worker_profile(hz: float, labels: dict[str, str]) -> tuple[str, Any]:
    """Open a profiling window around one chunk/task body.

    In a process with an installed driver profiler (serial and thread
    backends) this registers the labels for the calling thread so the
    driver's sampler attributes it; in a bare pool process it opens a
    window on the process's private sampler.  Returns an opaque token
    for :func:`drain_worker_profile`.
    """
    if installed_profiler() is not None:
        return ("labels", _register_thread_labels(dict(labels)))
    global _worker_sampler
    if _worker_sampler is None or _worker_sampler[1] != os.getpid():
        _worker_sampler = (_WorkerSampler(hz), os.getpid())
    _worker_sampler[0].open(labels)
    return ("window", _worker_sampler[0])


def drain_worker_profile(token: tuple[str, Any]) -> dict[str, Any] | None:
    """Close a window opened by :func:`begin_worker_profile`.

    Returns the worker's profile shard (``None`` when the driver's
    sampler covered the thread directly, or nothing was caught)."""
    kind, value = token
    if kind == "labels":
        _unregister_thread_labels(value)
        return None
    profile = value.close()
    if profile is None or len(profile) == 0:
        return None
    return profile.to_dict()


def merge_profile_shard(shard: dict[str, Any] | None) -> None:
    """Fold a worker's profile shard into the installed profiler."""
    if not shard:
        return
    profiler = installed_profiler()
    if profiler is not None:
        profiler.profile.merge(shard)
