"""``repro-profile``: one-command profiled pipeline runs.

Runs a pipeline implementation on a synthetic catalog event with the
cross-process sampling profiler attached, then writes every export the
profiler supports next to each other:

``<impl>.speedscope.json``
    Flamegraph for https://speedscope.app (or ``speedscope`` locally).
``<impl>.collapsed``
    Collapsed-stack text for Brendan Gregg's ``flamegraph.pl`` and
    friends.
``<impl>.trace.json``
    Chrome Trace Event JSON of the span trace with resource counter
    tracks and per-stage top-frame annotations folded in.
``<impl>.report.txt``
    The measured bottleneck report (critical path, per-stage parallel
    efficiency, Amdahl / work-span speedup model) — the same text
    ``repro-perf explain`` prints.

``--overhead-check`` instead times bare runs against profiled runs
(min-of-k each) and fails when the profiler costs more than the
tolerance — the guard CI uses to keep "negligible when off, cheap when
on" an enforced property rather than a hope.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Any

from repro.parallel.backend import Backend

#: Relative profiler overhead ceiling for ``--overhead-check``.
OVERHEAD_TOLERANCE = 0.10
#: Absolute floor (seconds) under which an overhead delta is noise:
#: scheduler jitter on a sub-second run can exceed 10% relative
#: without saying anything about the profiler.
OVERHEAD_FLOOR_S = 0.05


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Profile a pipeline run and export flamegraphs plus a "
        "measured bottleneck report.",
    )
    parser.add_argument(
        "--event", default="EV-NOV18", help="catalog event to synthesize and run"
    )
    parser.add_argument(
        "--policy",
        "--implementation",
        "-i",
        dest="policy",
        default="full-parallel",
        help="scheduling policy to profile (--implementation is the "
        "deprecated alias; see repro.engine.policy_names())",
    )
    parser.add_argument(
        "--backend",
        default=Backend.THREAD.value,
        choices=[backend.value for backend in Backend],
        help="backend for the parallel implementations",
    )
    parser.add_argument("--workers", type=int, default=None, help="parallel worker count")
    parser.add_argument("--scale", type=float, default=0.05, help="dataset size scale")
    parser.add_argument(
        "--periods", type=int, default=30, help="response-spectrum period count"
    )
    parser.add_argument("--hz", type=float, default=97.0, help="sampling frequency")
    parser.add_argument(
        "--out-dir", default="profile-out", help="directory for the exports"
    )
    parser.add_argument(
        "--top", type=int, default=5, help="frames per stage in the report"
    )
    parser.add_argument(
        "--overhead-check",
        action="store_true",
        help="measure profiler overhead (bare vs profiled, min-of-k) instead "
        "of exporting; exit 1 beyond tolerance",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="repetitions per arm of --overhead-check"
    )
    return parser


def _bare_run_seconds(
    impl_cls: Any, event: Any, workload: Any, *, periods: int, backend: str,
    workers: int | None, profile_hz: float | None,
) -> float:
    """Wall-clock of one un-traced run, optionally profiled.

    Deliberately leaves tracer and metrics off so the comparison
    isolates the sampler's own cost.
    """
    from repro.bench.harness import small_response_config
    from repro.bench.workloads import materialize
    from repro.core import RunContext
    from repro.core.context import ParallelSettings

    base = Path(tempfile.mkdtemp(prefix="repro-profile-"))
    try:
        ctx = RunContext.for_directory(
            base / "ws",
            response_config=small_response_config(n_periods=periods),
            parallel=ParallelSettings.uniform(backend, num_workers=workers),
        )
        if profile_hz:
            from repro.observability.profiling import SamplingProfiler

            ctx.profiler = SamplingProfiler(hz=profile_hz)
        materialize(event, workload, ctx.workspace.input_dir)
        result = impl_cls().run(ctx)
        return result.total_s
    finally:
        shutil.rmtree(base, ignore_errors=True)


def _overhead_check(args: argparse.Namespace) -> int:
    from repro.bench.workloads import scaled_workload
    from repro.engine import pipeline_factory
    from repro.synth.events import paper_event

    event = paper_event(args.event)
    workload = scaled_workload(event, args.scale)
    impl_cls = pipeline_factory(args.policy)
    run = lambda hz: _bare_run_seconds(  # noqa: E731 - tiny local closure
        impl_cls, event, workload, periods=args.periods,
        backend=args.backend, workers=args.workers, profile_hz=hz,
    )
    # Interleave the arms so drift (cache warmup, thermal) hits both.
    bare: list[float] = []
    profiled: list[float] = []
    for _ in range(max(1, args.repeats)):
        bare.append(run(None))
        profiled.append(run(args.hz))
    base_s = min(bare)
    prof_s = min(profiled)
    delta = prof_s - base_s
    rel = delta / base_s if base_s > 0 else 0.0
    print(
        f"{args.policy} on {args.event} ({args.backend}, "
        f"{args.hz:g} Hz, min of {len(bare)}):"
    )
    print(f"  bare     {base_s:.4f} s")
    print(f"  profiled {prof_s:.4f} s")
    print(f"  overhead {delta:+.4f} s ({rel:+.1%})")
    if rel > OVERHEAD_TOLERANCE and delta > OVERHEAD_FLOOR_S:
        print(
            f"FAIL: profiler overhead beyond {OVERHEAD_TOLERANCE:.0%} "
            f"(and above the {OVERHEAD_FLOOR_S:g} s noise floor)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: within {OVERHEAD_TOLERANCE:.0%} tolerance")
    return 0


def main_profile(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-profile``."""
    args = _build_parser().parse_args(argv)
    if args.overhead_check:
        return _overhead_check(args)

    from repro.bench.workloads import scaled_workload
    from repro.engine import pipeline_factory
    from repro.observability.critpath import explain, render_explain
    from repro.observability.export import write_chrome_trace
    from repro.observability.perf import _run_once
    from repro.observability.profiling import write_collapsed, write_speedscope
    from repro.parallel.backend import resolve_workers
    from repro.synth.events import paper_event

    event = paper_event(args.event)
    workload = scaled_workload(event, args.scale)
    result, _metrics, log = _run_once(
        pipeline_factory(args.policy), event, workload,
        periods=args.periods, backend=args.backend, workers=args.workers,
        sample_interval=0.05, profile_hz=args.hz,
    )
    profile = result.profile
    trace = result.trace
    if profile is None or trace is None:
        print("run produced no profile/trace", file=sys.stderr)
        return 1

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    name = args.policy
    title = f"{args.event} {name} ({args.backend})"
    speedscope = write_speedscope(
        out_dir / f"{name}.speedscope.json", profile, name=title
    )
    collapsed = write_collapsed(out_dir / f"{name}.collapsed", profile)
    chrome = write_chrome_trace(
        out_dir / f"{name}.trace.json", trace,
        resources=log if len(log) else None, profile=profile,
    )
    report = explain(
        trace, resolve_workers(args.workers), profile=profile, top=args.top
    )
    report_text = render_explain(report)
    report_path = out_dir / f"{name}.report.txt"
    report_path.write_text(f"{title}\n{report_text}\n", encoding="utf-8")

    attributed = profile.attributed_fraction()
    print(f"{title}: {result.total_s:.3f} s")
    print(
        f"profile: {profile.total_samples} samples at {args.hz:g} Hz, "
        f"{attributed:.1%} span-attributed"
    )
    print("top frames (self time):")
    for frame, seconds, count in profile.top_frames(args.top):
        print(f"  {frame:<60} {seconds:7.3f} s  {count:5d} samples")
    print()
    print(report_text)
    print()
    for path in (speedscope, collapsed, chrome, report_path):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_profile())
