"""The persistent run ledger (``repro-ledger``).

BENCH documents are loose files and traces are per-run artifacts; the
ledger is the memory *across* runs: one SQLite row per finished
pipeline run — policy, backend, workers, end-to-end and per-stage
durations, tracer self-times, measured critical path, quarantine
signature — appended automatically by :func:`repro.run`,
``repro-process`` and ``repro-perf record`` whenever the
``REPRO_LEDGER`` environment variable names a database (or explicitly
via ``--ledger``/the ``ledger=`` API parameter).

``repro-ledger`` reads it back: ``list``/``show`` for history,
``compare`` for any two rows, and ``trend`` — which walks consecutive
comparable runs (same event, policy, backend, worker count) and flags
cross-run regressions with the same noise-aware per-metric-class
thresholds ``repro-perf check`` applies (:data:`~repro.observability.
perf.METRIC_CLASSES`), so a stage going 2x slower between two recorded
runs surfaces without anyone diffing BENCH files by hand.
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

#: Environment variable naming the auto-append database.
LEDGER_ENV = "REPRO_LEDGER"

#: Default database filename for the CLI when neither ``--db`` nor the
#: environment variable is set.
DEFAULT_DB = "repro-ledger.sqlite"

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    created_utc TEXT NOT NULL,
    source TEXT NOT NULL,
    event_id TEXT,
    workspace TEXT,
    implementation TEXT NOT NULL,
    backend TEXT,
    workers INTEGER,
    total_s REAL NOT NULL,
    stages TEXT NOT NULL,
    stage_self TEXT,
    critical_path_s REAL,
    quarantined INTEGER NOT NULL DEFAULT 0,
    quarantine_signature TEXT,
    speedup REAL,
    extra TEXT
)
"""

_COLUMNS = (
    "created_utc", "source", "event_id", "workspace", "implementation",
    "backend", "workers", "total_s", "stages", "stage_self",
    "critical_path_s", "quarantined", "quarantine_signature", "speedup",
    "extra",
)

#: JSON-encoded columns, decoded on read.
_JSON_COLUMNS = ("stages", "stage_self", "extra")


class RunLedger:
    """One SQLite run-history database (rows are plain dicts)."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute(_TABLE_SQL)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path)
        conn.row_factory = sqlite3.Row
        return conn

    def append(self, entry: dict[str, Any]) -> int:
        """Insert one run entry; returns the new row id."""
        values = []
        for col in _COLUMNS:
            value = entry.get(col)
            if col in _JSON_COLUMNS and value is not None:
                value = json.dumps(value, sort_keys=True)
            values.append(value)
        placeholders = ", ".join("?" for _ in _COLUMNS)
        with self._connect() as conn:
            cur = conn.execute(
                f"INSERT INTO runs ({', '.join(_COLUMNS)}) VALUES ({placeholders})",
                values,
            )
            return int(cur.lastrowid)

    @staticmethod
    def _decode(row: sqlite3.Row) -> dict[str, Any]:
        entry = dict(row)
        for col in _JSON_COLUMNS:
            if entry.get(col):
                entry[col] = json.loads(entry[col])
        return entry

    def rows(
        self, *, limit: int | None = None, event_id: str | None = None,
        implementation: str | None = None,
    ) -> list[dict[str, Any]]:
        """All rows (oldest first), optionally filtered."""
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if event_id is not None:
            clauses.append("event_id = ?")
            params.append(event_id)
        if implementation is not None:
            clauses.append("implementation = ?")
            params.append(implementation)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        with self._connect() as conn:
            rows = [self._decode(r) for r in conn.execute(query, params)]
        return rows[-limit:] if limit else rows

    def get(self, run_id: int) -> dict[str, Any] | None:
        """One row by id, or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        return self._decode(row) if row is not None else None

    def __len__(self) -> int:
        with self._connect() as conn:
            return int(conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])


# -- building entries ----------------------------------------------------


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def run_entry(
    ctx: Any, result: Any, *, source: str = "run", event_id: str | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Ledger entry for one finished run (context + result)."""
    stage_self: dict[str, float] = {}
    critical_path_s = None
    if result.trace is not None:
        from repro.observability.critpath import critical_path, critical_path_length

        stage_self = {
            k: round(v, 6) for k, v in result.trace.stage_self_times().items()
        }
        critical_path_s = round(
            critical_path_length(critical_path(result.trace)), 6
        )
    quarantined = sorted({r.record for r in result.quarantine})
    return {
        "created_utc": _utc_now(),
        "source": source,
        "event_id": event_id,
        "workspace": str(ctx.workspace.root),
        "implementation": result.implementation,
        "backend": ctx.parallel.loop_backend.value,
        "workers": ctx.parallel.workers,
        "total_s": round(float(result.total_s), 6),
        "stages": {k: round(float(v), 6) for k, v in result.stage_durations.items()},
        "stage_self": stage_self or None,
        "critical_path_s": critical_path_s,
        "quarantined": len(quarantined),
        "quarantine_signature": ",".join(quarantined) or None,
        "speedup": None,
        "extra": extra,
    }


def entries_from_bench(doc: dict[str, Any]) -> list[dict[str, Any]]:
    """Ledger entries for every cell of a BENCH document (min-of-k)."""
    config = doc.get("config") or {}
    entries: list[dict[str, Any]] = []
    for event_id, cell in (doc.get("events") or {}).items():
        for name, entry in (cell.get("implementations") or {}).items():
            entries.append({
                "created_utc": doc.get("created_utc") or _utc_now(),
                "source": "perf-record",
                "event_id": event_id,
                "workspace": None,
                "implementation": name,
                "backend": config.get("backend"),
                "workers": config.get("workers"),
                "total_s": float(entry["total_s"]),
                "stages": entry.get("stages") or {},
                "stage_self": entry.get("stage_self_s") or None,
                "critical_path_s": entry.get("critical_path_s"),
                "quarantined": 0,
                "quarantine_signature": None,
                "speedup": entry.get("speedup_vs_original"),
                "extra": {"runs_s": entry.get("runs_s")},
            })
    return entries


def maybe_append_run(
    ctx: Any, result: Any, *, source: str = "run", event_id: str | None = None,
) -> int | None:
    """Auto-append hook the runner calls after every finished run.

    A no-op unless :data:`LEDGER_ENV` names a database; appending never
    raises — a broken ledger must not fail a pipeline run.
    """
    path = os.environ.get(LEDGER_ENV)
    if not path:
        return None
    try:
        return RunLedger(path).append(
            run_entry(ctx, result, source=source, event_id=event_id)
        )
    except Exception:  # pragma: no cover - ledger failures never fail runs
        import logging

        logging.getLogger("repro.observability").debug(
            "ledger append to %s failed", path, exc_info=True
        )
        return None


# -- comparing / trending ------------------------------------------------


@dataclass(frozen=True)
class LedgerDelta:
    """One metric compared between two ledger rows."""

    older_id: int
    newer_id: int
    metric: str
    metric_class: str
    older: float
    newer: float
    status: str  # "ok" | "improved" | "REGRESSION"

    @property
    def rel_change(self) -> float:
        if self.older == 0:
            return 0.0 if self.newer == 0 else float("inf")
        return (self.newer - self.older) / self.older


def _row_metrics(row: dict[str, Any]) -> list[tuple[str, str, float]]:
    """(metric, metric class, value) rows of one ledger entry, matching
    the classes of :data:`repro.observability.perf.METRIC_CLASSES`."""
    out: list[tuple[str, str, float]] = [
        ("end_to_end_s", "end_to_end_s", float(row["total_s"]))
    ]
    for stage, dur in (row.get("stages") or {}).items():
        out.append((f"stage[{stage}]", "stage_s", float(dur)))
    if row.get("speedup"):
        out.append(("speedup", "speedup", float(row["speedup"])))
    return out


def compare_rows(
    older: dict[str, Any], newer: dict[str, Any]
) -> tuple[list[LedgerDelta], list[LedgerDelta]]:
    """Compare two rows with the perf gate's noise-aware thresholds.

    Returns ``(all deltas, regressions)``; only metrics present in both
    rows are compared.
    """
    from repro.observability.perf import METRIC_CLASSES

    newer_metrics = {m: (c, v) for m, c, v in _row_metrics(newer)}
    deltas: list[LedgerDelta] = []
    for metric, cls_name, old_value in _row_metrics(older):
        if metric not in newer_metrics:
            continue
        _, new_value = newer_metrics[metric]
        thresholds = METRIC_CLASSES[cls_name]
        if thresholds.regressed(old_value, new_value):
            status = "REGRESSION"
        elif thresholds.improved(old_value, new_value):
            status = "improved"
        else:
            status = "ok"
        deltas.append(
            LedgerDelta(
                older_id=int(older.get("id") or 0),
                newer_id=int(newer.get("id") or 0),
                metric=metric, metric_class=cls_name,
                older=old_value, newer=new_value, status=status,
            )
        )
    regressions = [d for d in deltas if d.status == "REGRESSION"]
    return deltas, regressions


def _group_key(row: dict[str, Any]) -> tuple:
    return (
        row.get("event_id"), row.get("implementation"),
        row.get("backend"), row.get("workers"),
    )


def trend(
    rows: Iterable[dict[str, Any]],
) -> list[tuple[dict[str, Any], dict[str, Any], list[LedgerDelta]]]:
    """Regressions between consecutive comparable runs.

    Rows are grouped by (event, implementation, backend, workers) — two
    runs under different configurations are never compared — and each
    consecutive pair within a group is checked.  Returns
    ``(older row, newer row, regressions)`` triples for pairs that
    regressed.
    """
    groups: dict[tuple, list[dict[str, Any]]] = {}
    for row in rows:
        groups.setdefault(_group_key(row), []).append(row)
    flagged = []
    for group in groups.values():
        group.sort(key=lambda r: int(r.get("id") or 0))
        for older, newer in zip(group, group[1:]):
            _, regressions = compare_rows(older, newer)
            if regressions:
                flagged.append((older, newer, regressions))
    return flagged


# -- CLI -----------------------------------------------------------------


def _resolve_db(arg: str | None) -> Path:
    return Path(arg or os.environ.get(LEDGER_ENV) or DEFAULT_DB)


def _render_rows(rows: list[dict[str, Any]]) -> str:
    from repro.bench.report import format_table

    table_rows = [
        (
            str(row["id"]),
            str(row["created_utc"]),
            str(row["source"]),
            str(row.get("event_id") or "-"),
            str(row["implementation"]),
            str(row.get("backend") or "-"),
            str(row.get("workers") or "-"),
            f"{row['total_s']:.3f}",
            str(row.get("quarantined") or 0),
        )
        for row in rows
    ]
    return format_table(
        ("id", "recorded", "source", "event", "policy", "backend", "workers",
         "total s", "quar"),
        table_rows,
    )


def _render_deltas(deltas: list[LedgerDelta]) -> str:
    from repro.bench.report import format_table

    rows = [
        (
            d.metric, f"{d.older:.4g}", f"{d.newer:.4g}",
            f"{d.rel_change:+.1%}", d.status,
        )
        for d in sorted(deltas, key=lambda d: (d.status != "REGRESSION", d.metric))
    ]
    return format_table(("metric", "older", "newer", "delta", "status"), rows)


def _show_row(row: dict[str, Any]) -> str:
    lines = [
        f"run {row['id']} — {row['implementation']} "
        f"({row.get('source')}, recorded {row['created_utc']})",
        f"  event:      {row.get('event_id') or '-'}",
        f"  workspace:  {row.get('workspace') or '-'}",
        f"  backend:    {row.get('backend') or '-'} x{row.get('workers') or '-'}",
        f"  total:      {row['total_s']:.3f} s",
    ]
    if row.get("critical_path_s"):
        lines.append(f"  critpath:   {row['critical_path_s']:.3f} s")
    if row.get("speedup"):
        lines.append(f"  speedup:    {row['speedup']:.2f}x vs seq-original")
    if row.get("quarantined"):
        lines.append(
            f"  quarantined: {row['quarantined']} "
            f"({row.get('quarantine_signature')})"
        )
    stages = row.get("stages") or {}
    if stages:
        lines.append("  stages:")
        self_times = row.get("stage_self") or {}
        for stage, dur in stages.items():
            self_s = self_times.get(stage)
            suffix = f"  (self {self_s:.4f} s)" if self_s is not None else ""
            lines.append(f"    {stage:>6}: {dur:8.4f} s{suffix}")
    return "\n".join(lines)


def main_ledger(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-ledger``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-ledger",
        description="Inspect the persistent run ledger and flag cross-run "
                    "regressions.",
    )
    parser.add_argument(
        "--db", default=None,
        help=f"ledger database (default: ${LEDGER_ENV} or ./{DEFAULT_DB})",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lst = sub.add_parser("list", help="recorded runs, oldest first")
    lst.add_argument("--limit", type=int, default=None, help="show only the newest N")
    lst.add_argument("--event", default=None, help="filter by catalog event id")
    lst.add_argument("--policy", default=None, help="filter by policy name")
    shw = sub.add_parser("show", help="one run in full")
    shw.add_argument("run_id", type=int)
    cmp_ = sub.add_parser("compare", help="two runs, perf-gate thresholds")
    cmp_.add_argument("older_id", type=int)
    cmp_.add_argument("newer_id", type=int)
    trd = sub.add_parser(
        "trend",
        help="walk consecutive comparable runs; exit 1 on regressions",
    )
    trd.add_argument("--event", default=None, help="filter by catalog event id")
    trd.add_argument("--policy", default=None, help="filter by policy name")
    trd.add_argument(
        "--advisory", action="store_true",
        help="report regressions but always exit 0",
    )
    args = parser.parse_args(argv)

    db = _resolve_db(args.db)
    if not db.exists():
        print(f"no ledger at {db}; record a run with REPRO_LEDGER={db} first",
              file=sys.stderr)
        return 2
    ledger = RunLedger(db)

    if args.command == "list":
        rows = ledger.rows(
            limit=args.limit, event_id=args.event, implementation=args.policy
        )
        if not rows:
            print("ledger is empty")
            return 0
        print(_render_rows(rows))
        return 0

    if args.command == "show":
        row = ledger.get(args.run_id)
        if row is None:
            print(f"no run {args.run_id} in {db}", file=sys.stderr)
            return 2
        print(_show_row(row))
        return 0

    if args.command == "compare":
        older, newer = ledger.get(args.older_id), ledger.get(args.newer_id)
        if older is None or newer is None:
            missing = args.older_id if older is None else args.newer_id
            print(f"no run {missing} in {db}", file=sys.stderr)
            return 2
        deltas, regressions = compare_rows(older, newer)
        if not deltas:
            print("no comparable metrics")
            return 0
        print(_render_deltas(deltas))
        if regressions:
            print(f"{len(regressions)} regression(s) beyond thresholds")
            return 1
        print("OK: all compared metrics within thresholds")
        return 0

    # trend
    rows = ledger.rows(event_id=args.event, implementation=args.policy)
    if len(rows) < 2:
        print("need at least two recorded runs to trend")
        return 0
    flagged = trend(rows)
    if not flagged:
        print(f"OK: no regressions across {len(rows)} recorded runs")
        return 0
    for older, newer, regressions in flagged:
        print(
            f"run {older['id']} -> {newer['id']} "
            f"({newer['implementation']}, {newer.get('event_id') or '-'}, "
            f"{newer.get('backend') or '-'} x{newer.get('workers') or '-'}):"
        )
        print(_render_deltas(regressions))
    verdict = f"{len(flagged)} regressed run pair(s)"
    if args.advisory:
        print(f"ADVISORY: {verdict} (advisory mode, not failing)")
        return 0
    print(f"FAIL: {verdict}", file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    sys.exit(main_ledger())
