"""OS-level resource telemetry.

The paper reasons about machine saturation — "the eight logical
processors stay busy through stage IX" — which span wall-clock alone
cannot show.  A :class:`ResourceSampler` thread reads ``/proc`` at a
fixed interval and timestamps each :class:`ResourceSample` on the
*span timeline* (the owning tracer's clock when one is supplied), so a
sample at ``t`` can be laid directly against the spans open at ``t``:
:meth:`ResourceLog.utilization_between` answers the stage-IX question
numerically, and the Chrome-trace exporter renders the same samples as
counter tracks above the span rows.

Everything here degrades gracefully: on hosts without a ``/proc``
(macOS, Windows) :func:`resources_available` is false and the sampler
records nothing, but constructing and starting it stays safe.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

_PROC_STAT = "/proc/stat"
_PROC_STATUS = "/proc/self/status"
_PROC_FD = "/proc/self/fd"

#: Core busy fraction above which we call the core "busy" when counting
#: saturated cores in :meth:`ResourceLog.summary`.
BUSY_CORE_THRESHOLD = 0.5


def resources_available() -> bool:
    """Whether this host exposes the ``/proc`` files we sample."""
    return os.path.exists(_PROC_STAT) and os.path.exists(_PROC_STATUS)


@dataclass
class ResourceSample:
    """One reading of the process and machine state.

    ``t_s`` is an offset on the span timeline (tracer clock when the
    sampler was given one).  ``per_core`` holds busy fractions in
    [0, 1] per logical processor, measured over the interval since the
    previous sample.
    """

    t_s: float
    per_core: tuple[float, ...]
    rss_bytes: int
    open_fds: int
    n_threads: int
    #: Cumulative context-switch counts of the process (from
    #: ``/proc/self/status``).  Voluntary switches are blocking waits
    #: (I/O, locks); involuntary ones are preemptions — a rising
    #: involuntary rate with more runnable threads than cores is the
    #: oversubscription signature.  Zero on hosts without ``/proc``.
    vol_ctx_switches: int = 0
    invol_ctx_switches: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "t_s": self.t_s,
            "per_core": list(self.per_core),
            "rss_bytes": self.rss_bytes,
            "open_fds": self.open_fds,
            "n_threads": self.n_threads,
            "vol_ctx_switches": self.vol_ctx_switches,
            "invol_ctx_switches": self.invol_ctx_switches,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResourceSample":
        """Inverse of :meth:`to_dict`."""
        return cls(
            t_s=float(data["t_s"]),
            per_core=tuple(float(v) for v in data["per_core"]),
            rss_bytes=int(data["rss_bytes"]),
            open_fds=int(data["open_fds"]),
            n_threads=int(data["n_threads"]),
            vol_ctx_switches=int(data.get("vol_ctx_switches", 0)),
            invol_ctx_switches=int(data.get("invol_ctx_switches", 0)),
        )


@dataclass
class ResourceLog:
    """A finished sequence of samples plus the interval that spaced them."""

    interval_s: float
    samples: list[ResourceSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "interval_s": self.interval_s,
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResourceLog":
        """Inverse of :meth:`to_dict`."""
        return cls(
            interval_s=float(data["interval_s"]),
            samples=[ResourceSample.from_dict(s) for s in data.get("samples") or []],
        )

    def summary(self) -> dict[str, Any]:
        """Aggregate view: peak RSS, core-utilization statistics.

        ``max_busy_cores`` counts cores above
        :data:`BUSY_CORE_THRESHOLD` in the single busiest sample — the
        direct answer to "how many cores did we actually keep busy?".
        """
        if not self.samples:
            return {
                "n_samples": 0,
                "n_cores": 0,
                "peak_rss_bytes": 0,
                "mean_utilization": 0.0,
                "max_utilization": 0.0,
                "max_busy_cores": 0,
                "peak_open_fds": 0,
                "peak_threads": 0,
                "vol_ctx_switches": 0,
                "invol_ctx_switches": 0,
            }
        means = [
            sum(s.per_core) / len(s.per_core) if s.per_core else 0.0
            for s in self.samples
        ]
        return {
            "n_samples": len(self.samples),
            "n_cores": max(len(s.per_core) for s in self.samples),
            "peak_rss_bytes": max(s.rss_bytes for s in self.samples),
            "mean_utilization": sum(means) / len(means),
            "max_utilization": max(means),
            "max_busy_cores": max(
                sum(1 for u in s.per_core if u > BUSY_CORE_THRESHOLD)
                for s in self.samples
            ),
            "peak_open_fds": max(s.open_fds for s in self.samples),
            "peak_threads": max(s.n_threads for s in self.samples),
            # The counters are cumulative; the run's own switch counts
            # are the spread between first and last sample.
            "vol_ctx_switches": (
                self.samples[-1].vol_ctx_switches - self.samples[0].vol_ctx_switches
            ),
            "invol_ctx_switches": (
                self.samples[-1].invol_ctx_switches - self.samples[0].invol_ctx_switches
            ),
        }

    def utilization_between(self, t0: float, t1: float) -> dict[str, float]:
        """Core-utilization statistics over samples with t0 <= t_s <= t1.

        Pass a span's ``start_s`` / ``end_s`` to ask "were the cores
        busy during this stage?".  Empty windows return zeros.
        """
        window = [s for s in self.samples if t0 <= s.t_s <= t1]
        if not window:
            return {"n_samples": 0, "mean_utilization": 0.0, "max_busy_cores": 0.0}
        means = [
            sum(s.per_core) / len(s.per_core) if s.per_core else 0.0 for s in window
        ]
        return {
            "n_samples": len(window),
            "mean_utilization": sum(means) / len(means),
            "max_busy_cores": float(
                max(
                    sum(1 for u in s.per_core if u > BUSY_CORE_THRESHOLD)
                    for s in window
                )
            ),
        }


def _read_core_ticks() -> list[tuple[int, int]]:
    """Per-core (busy, total) jiffy totals from ``/proc/stat``."""
    out: list[tuple[int, int]] = []
    try:
        with open(_PROC_STAT, encoding="ascii") as fh:
            for line in fh:
                if not line.startswith("cpu") or line[3] in (" ", "\t"):
                    continue  # skip the aggregate "cpu " line
                fields = [int(v) for v in line.split()[1:]]
                total = sum(fields)
                # idle + iowait are the idle classes; everything else is busy.
                idle = fields[3] + (fields[4] if len(fields) > 4 else 0)
                out.append((total - idle, total))
    except OSError:
        return []
    return out


def _read_status() -> tuple[int, int, int, int]:
    """(RSS bytes, threads, voluntary switches, involuntary switches)
    from ``/proc/self/status``."""
    rss = 0
    threads = 0
    vol = 0
    invol = 0
    try:
        with open(_PROC_STATUS, encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1]) * 1024
                elif line.startswith("Threads:"):
                    threads = int(line.split()[1])
                elif line.startswith("voluntary_ctxt_switches:"):
                    vol = int(line.split()[1])
                elif line.startswith("nonvoluntary_ctxt_switches:"):
                    invol = int(line.split()[1])
    except OSError:
        pass
    return rss, threads, vol, invol


def _count_open_fds() -> int:
    try:
        return len(os.listdir(_PROC_FD))
    except OSError:
        return 0


class ResourceSampler:
    """Background thread sampling ``/proc`` on a fixed interval.

    Use as a context manager around the work being observed::

        sampler = ResourceSampler(interval_s=0.05, tracer=ctx.tracer)
        with sampler:
            impl.run(ctx)
        log = sampler.log()

    When ``tracer`` is given, samples carry :meth:`Tracer.now` offsets
    and line up with the trace's spans; otherwise they use a private
    ``perf_counter`` zeroed at :meth:`start`.
    """

    def __init__(self, interval_s: float = 0.05, tracer: Any = None) -> None:
        self.interval_s = float(interval_s)
        self._tracer = tracer
        self._samples: list[ResourceSample] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0
        self._prev_ticks: list[tuple[int, int]] = []

    def _now(self) -> float:
        if self._tracer is not None:
            return float(self._tracer.now())
        return time.perf_counter() - self._t0

    def _sample_once(self) -> None:
        ticks = _read_core_ticks()
        per_core: list[float] = []
        for i, (busy, total) in enumerate(ticks):
            if i < len(self._prev_ticks):
                prev_busy, prev_total = self._prev_ticks[i]
                dt = total - prev_total
                per_core.append((busy - prev_busy) / dt if dt > 0 else 0.0)
            else:
                per_core.append(0.0)
        self._prev_ticks = ticks
        rss, threads, vol, invol = _read_status()
        self._samples.append(
            ResourceSample(
                t_s=self._now(),
                per_core=tuple(min(1.0, max(0.0, u)) for u in per_core),
                rss_bytes=rss,
                open_fds=_count_open_fds(),
                n_threads=threads,
                vol_ctx_switches=vol,
                invol_ctx_switches=invol,
            )
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()
        self._sample_once()  # closing sample so short runs record something

    def start(self) -> "ResourceSampler":
        """Start sampling (no-op on hosts without ``/proc``)."""
        if self._thread is not None or not resources_available():
            return self
        self._t0 = time.perf_counter()
        self._stop.clear()
        self._prev_ticks = _read_core_ticks()
        self._thread = threading.Thread(
            target=self._run, name="resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> ResourceLog:
        """Stop sampling and return the finished :class:`ResourceLog`."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self.log()

    def log(self) -> ResourceLog:
        """The samples collected so far."""
        return ResourceLog(interval_s=self.interval_s, samples=list(self._samples))

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def merge_logs(logs: Iterable[ResourceLog]) -> ResourceLog:
    """Concatenate logs (e.g. per-repetition) into one, sorted by time."""
    logs = list(logs)
    samples = sorted(
        (s for log in logs for s in log.samples), key=lambda s: s.t_s
    )
    interval = min((log.interval_s for log in logs), default=0.05)
    return ResourceLog(interval_s=interval, samples=samples)
