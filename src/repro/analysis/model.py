"""Shared result model of the static/runtime analyses.

Every check reports :class:`Finding` records; the lint driver and the
CI gate only need to agree on severities:

- ``error``   — a conformance violation or a provable race; always
  fails the lint.
- ``warning`` — suspicious but not provably wrong (e.g. a declared
  read the static pass cannot see); fails only under ``--strict``.
- ``info``    — advisory output (e.g. stage-merge opportunities);
  never fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by an analysis pass."""

    check: str  # "conformance" | "schedule" | "races" | "audit"
    severity: str
    message: str
    process: str | None = None  # "P4" etc. when attributable

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        subject = f" [{self.process}]" if self.process else ""
        return f"{self.severity:<7} {self.check}{subject}: {self.message}"


@dataclass
class Report:
    """Accumulated findings of one lint run."""

    findings: list[Finding] = field(default_factory=list)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def counts(self) -> dict[str, int]:
        out = {severity: 0 for severity in _SEVERITIES}
        for finding in self.findings:
            out[finding.severity] += 1
        return out

    def failed(self, strict: bool = False) -> bool:
        """Whether the lint should exit non-zero."""
        counts = self.counts()
        if counts[ERROR]:
            return True
        return strict and counts[WARNING] > 0

    def render(self) -> str:
        counts = self.counts()
        lines = [finding.render() for finding in sorted(
            self.findings,
            key=lambda f: (_SEVERITIES.index(f.severity), f.check, f.process or "", f.message),
        )]
        lines.append(
            f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
            f"{counts[INFO]} info"
        )
        return "\n".join(lines)
