"""The ``repro-lint`` driver: run every static analysis, report, gate.

Composes the three analyses into one report:

1. static conformance (:mod:`repro.analysis.static_conformance`),
2. schedule re-derivation (:mod:`repro.analysis.schedule_check`),
3. schedule race proof (:mod:`repro.analysis.races`),

and optionally the runtime audit cross-check of a recorded workspace
(:mod:`repro.analysis.audit`).  Exit status: 0 when the report is
clean, 1 when it failed (errors always; warnings too under
``--strict``).  Info findings never fail.

The ``graph`` subcommand runs the graph-level verifier
(:mod:`repro.analysis.graphlint`) over registered scheduling policies
instead of the fixed registry plan::

    repro-lint graph                       # verify every policy
    repro-lint graph --policy dag-parallel # just one
    repro-lint graph --audit WS            # + happens-before cross-check
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.model import Report
from repro.analysis.audit import audit_findings
from repro.analysis.races import race_findings
from repro.analysis.schedule_check import schedule_findings
from repro.analysis.static_conformance import conformance_findings


def run_lint(
    processes_dir: Path | None = None,
    audit_root: Path | None = None,
    stations: list[str] | None = None,
) -> Report:
    """Run all analyses and return the combined report."""
    report = Report()
    report.extend(conformance_findings(processes_dir))
    report.extend(schedule_findings())
    report.extend(race_findings())
    if audit_root is not None:
        report.extend(audit_findings(audit_root, stations))
    return report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static conformance, schedule and race analysis of the pipeline.",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too (errors always fail)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON instead of text",
    )
    parser.add_argument(
        "--processes-dir",
        metavar="DIR",
        help="analyze this directory of p*.py modules instead of the "
        "installed repro.core.processes package",
    )
    parser.add_argument(
        "--audit",
        metavar="WORKSPACE",
        help="additionally cross-check the audit logs recorded in this "
        "workspace (a run made with 'repro-process --audit')",
    )
    return parser


def _build_graph_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint graph",
        description="Graph-level verification of engine scheduling policies.",
    )
    parser.add_argument(
        "--policy", action="append", metavar="NAME", dest="policies",
        help="verify this registered policy (repeatable); default: all",
    )
    parser.add_argument(
        "--all-policies", action="store_true",
        help="verify every registered policy (the default when no "
        "--policy is given)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too (errors always fail)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON instead of text",
    )
    parser.add_argument(
        "--audit",
        metavar="WORKSPACE",
        help="additionally run the happens-before cross-check against the "
        "plan and access logs recorded in this workspace",
    )
    return parser


def run_graph_lint(
    policies: list[str] | None = None, audit_root: Path | None = None
) -> tuple[Report, dict[str, list]]:
    """Verify policies (all registered ones by default) plus, optionally,
    a recorded run's happens-before ordering.  Returns the combined
    report and the findings grouped by policy name."""
    from repro.analysis.graphlint import happens_before_findings, verify_policy
    from repro.engine.policy import policy_names

    names = list(policies) if policies else list(policy_names())
    report = Report()
    by_policy: dict[str, list] = {}
    for name in names:
        findings = verify_policy(name)
        by_policy[name] = findings
        report.extend(findings)
    if audit_root is not None:
        findings = happens_before_findings(audit_root)
        by_policy["<audit>"] = findings
        report.extend(findings)
    return report, by_policy


def main_graph_lint(argv: list[str]) -> int:
    """The ``repro-lint graph`` subcommand."""
    args = _build_graph_parser().parse_args(argv)
    audit_root = Path(args.audit) if args.audit else None
    report, by_policy = run_graph_lint(args.policies, audit_root)
    if args.as_json:
        print(json.dumps(
            [
                {
                    "policy": policy,
                    "check": f.check,
                    "severity": f.severity,
                    "process": f.process,
                    "message": f.message,
                }
                for policy, findings in by_policy.items()
                for f in findings
            ],
            indent=2,
        ))
    else:
        for policy, findings in by_policy.items():
            verdict = "clean" if not any(
                f.severity != "info" for f in findings
            ) else "FINDINGS"
            print(f"[{policy}] {verdict}")
            for finding in findings:
                print(f"  {finding.render()}")
        counts = report.counts()
        print(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info across {len(by_policy)} target(s)"
        )
    return 1 if report.failed(strict=args.strict) else 0


def main_lint(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-lint``."""
    if argv is None:
        import sys

        argv = sys.argv[1:]
    if argv and argv[0] == "graph":
        return main_graph_lint(argv[1:])
    args = _build_parser().parse_args(argv)
    processes_dir = Path(args.processes_dir) if args.processes_dir else None
    audit_root = Path(args.audit) if args.audit else None
    stations = None
    if audit_root is not None:
        input_dir = audit_root / "input"
        if input_dir.is_dir():
            stations = sorted(p.stem for p in input_dir.glob("*.v1"))
    report = run_lint(
        processes_dir=processes_dir, audit_root=audit_root, stations=stations
    )
    if args.as_json:
        print(json.dumps(
            [
                {
                    "check": f.check,
                    "severity": f.severity,
                    "process": f.process,
                    "message": f.message,
                }
                for f in report.findings
            ],
            indent=2,
        ))
    else:
        print(report.render())
    return 1 if report.failed(strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    import sys

    sys.exit(main_lint())
