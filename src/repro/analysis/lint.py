"""The ``repro-lint`` driver: run every static analysis, report, gate.

Composes the three analyses into one report:

1. static conformance (:mod:`repro.analysis.static_conformance`),
2. schedule re-derivation (:mod:`repro.analysis.schedule_check`),
3. schedule race proof (:mod:`repro.analysis.races`),

and optionally the runtime audit cross-check of a recorded workspace
(:mod:`repro.analysis.audit`).  Exit status: 0 when the report is
clean, 1 when it failed (errors always; warnings too under
``--strict``).  Info findings never fail.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.model import Report
from repro.analysis.audit import audit_findings
from repro.analysis.races import race_findings
from repro.analysis.schedule_check import schedule_findings
from repro.analysis.static_conformance import conformance_findings


def run_lint(
    processes_dir: Path | None = None,
    audit_root: Path | None = None,
    stations: list[str] | None = None,
) -> Report:
    """Run all analyses and return the combined report."""
    report = Report()
    report.extend(conformance_findings(processes_dir))
    report.extend(schedule_findings())
    report.extend(race_findings())
    if audit_root is not None:
        report.extend(audit_findings(audit_root, stations))
    return report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static conformance, schedule and race analysis of the pipeline.",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on warnings too (errors always fail)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON instead of text",
    )
    parser.add_argument(
        "--processes-dir",
        metavar="DIR",
        help="analyze this directory of p*.py modules instead of the "
        "installed repro.core.processes package",
    )
    parser.add_argument(
        "--audit",
        metavar="WORKSPACE",
        help="additionally cross-check the audit logs recorded in this "
        "workspace (a run made with 'repro-process --audit')",
    )
    return parser


def main_lint(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-lint``."""
    args = _build_parser().parse_args(argv)
    processes_dir = Path(args.processes_dir) if args.processes_dir else None
    audit_root = Path(args.audit) if args.audit else None
    stations = None
    if audit_root is not None:
        input_dir = audit_root / "input"
        if input_dir.is_dir():
            stations = sorted(p.stem for p in input_dir.glob("*.v1"))
    report = run_lint(
        processes_dir=processes_dir, audit_root=audit_root, stations=stations
    )
    if args.as_json:
        print(json.dumps(
            [
                {
                    "check": f.check,
                    "severity": f.severity,
                    "process": f.process,
                    "message": f.message,
                }
                for f in report.findings
            ],
            indent=2,
        ))
    else:
        print(report.render())
    return 1 if report.failed(strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    import sys

    sys.exit(main_lint())
