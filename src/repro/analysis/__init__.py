"""Static and runtime analyses of the pipeline's data-flow claims.

The dependency analysis in :mod:`repro.core.dependencies` is only as
good as the registry declarations it consumes.  This package makes
those declarations *checkable* from three independent directions:

- :mod:`repro.analysis.static_conformance` — AST extraction of every
  workspace access in the process modules, diffed against the registry;
- :mod:`repro.analysis.schedule_check` — re-derivation of the §IV
  redundancy elimination and the Fig. 9 stage plan from declarations;
- :mod:`repro.analysis.races` — symbolic proof that each parallel
  stage's per-unit write sets are pairwise disjoint;
- :mod:`repro.analysis.audit` — cross-check of recorded runtime access
  logs (see :mod:`repro.core.auditing`) against all of the above;
- :mod:`repro.analysis.effects` — static effect inference for arbitrary
  task callables (the custom tasks a pipeline builder wires);
- :mod:`repro.analysis.graphlint` — the graph-level verifier: effect
  conformance, per-region race proofs, ordering/redundancy analysis and
  the happens-before runtime cross-check for any engine pipeline;
- :mod:`repro.analysis.lint` — the ``repro-lint`` CLI combining them
  (``repro-lint graph`` drives the graph verifier).
"""

from repro.analysis.model import ERROR, INFO, WARNING, Finding, Report
from repro.analysis.audit import audit_findings, classify_path, observed_access
from repro.analysis.effects import EffectSet, infer_effects
from repro.analysis.graphlint import (
    happens_before_findings,
    verify_builder,
    verify_graph,
    verify_policy,
)
from repro.analysis.races import race_findings
from repro.analysis.schedule_check import derive_redundant, schedule_findings
from repro.analysis.static_conformance import analyze_processes, conformance_findings
from repro.analysis.lint import main_lint, run_lint

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "EffectSet",
    "Finding",
    "Report",
    "analyze_processes",
    "audit_findings",
    "classify_path",
    "conformance_findings",
    "derive_redundant",
    "happens_before_findings",
    "infer_effects",
    "main_lint",
    "observed_access",
    "race_findings",
    "run_lint",
    "schedule_findings",
    "verify_builder",
    "verify_graph",
    "verify_policy",
]
