"""Graph-level verifier for arbitrary engine pipelines.

``repro-lint``'s original passes prove the *fixed* 20-process registry
safe; this module proves (or refutes) the same properties for any
:class:`~repro.engine.graph.TaskGraph` a user composes with the
:class:`~repro.engine.graph.PipelineBuilder`, custom tasks included:

- **effect conformance** — each custom task's declared reads/writes are
  diffed against what :mod:`repro.analysis.effects` infers from its
  callable's source (undeclared inferred effects are errors; declared
  effects the code never performs are warnings; ``opaque`` tasks are
  taken on trust and reported as such);
- **race freedom per region** — the name-template absorption argument
  of :mod:`repro.analysis.races` lifted from Fig. 9 stage plans to
  barrier regions: every pair of concurrent units (loop units, temp
  folder instances, whole tasks) is proven write-disjoint, and every
  refutation is localized to a task pair with the colliding name
  patterns as counterexample;
- **ordering soundness** — plan validation (cycle, coverage,
  intra-region edges) plus unproducible-read detection: a task whose
  read has no producer scheduled before it either consumes pre-existing
  input (warning) or can never see the bytes it needs (error);
- **redundancy** — the dead-write / identical-recompute derivation of
  :mod:`repro.analysis.schedule_check` applied to the graph's process
  order, plus an identity-level dead-write screen for custom tasks;
- **fusion certificates** — each ``+``-labelled fused region is either
  certified conflict-free or rejected by the race counterexamples that
  landed in it.

The runtime side of the bargain is :func:`happens_before_findings`: the
executor records the barrier plan it ran
(:func:`repro.core.auditing.record_plan`), each audited access carries
its task attribution, and the plan's region index is a vector clock —
two accesses are ordered iff their epochs differ or they belong to one
task (or its barrier-ordered driver scope).  Any conflicting pair the
clock calls concurrent is an access the static proof claimed
impossible, and is reported as an error.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

from repro.analysis.effects import EffectSet, infer_effects
from repro.analysis.model import ERROR, INFO, WARNING, Finding
from repro.analysis.races import (
    IDENTITY_ATOMS,
    UnitAccess,
    process_unit_models,
    unit_collisions,
)
from repro.analysis.schedule_check import derive_redundant
from repro.core.auditing import iter_events, load_plan
from repro.core.registry import PROCESSES
from repro.engine.graph import LOOP, TEMP_FOLDERS, Region, Task, TaskGraph
from repro.errors import DependencyError, PipelineError

#: Identities a pipeline may consume without producing: the raw input
#: records exist before any process runs.
EXTERNAL_INPUTS = frozenset({"raw_v1"})

CHECK = "graph"


# -- per-task effects --------------------------------------------------------


def task_effects(task: Task) -> tuple[EffectSet, list[Finding]]:
    """The identity-level effects of one task, plus conformance findings.

    Process tasks take their effects from the registry (already proven
    by the conformance pass).  Custom tasks are inferred from source
    and diffed against their builder declarations; the returned set is
    the union of both, so the race proof stays conservative even while
    a mis-declaration is being reported.
    """
    findings: list[Finding] = []
    if task.pid is not None:
        spec = PROCESSES[task.pid]
        effects = EffectSet(
            reads={ref.identity for ref in spec.reads},
            writes={ref.identity for ref in spec.writes},
        )
        return effects, findings

    declared = EffectSet(reads=set(task.reads), writes=set(task.writes))
    if task.opaque:
        findings.append(Finding(
            CHECK, INFO,
            "opaque task: declared effects "
            f"(reads {sorted(declared.reads)}, writes {sorted(declared.writes)}) "
            "taken on trust, body not analyzed",
            process=task.name,
        ))
        return declared, findings

    inferred = infer_effects(task.run) if task.run is not None else EffectSet()
    for why in inferred.unknowns:
        findings.append(Finding(
            CHECK, WARNING,
            f"effect inference incomplete: {why}",
            process=task.name,
        ))
    if not task.reads and not task.writes:
        if inferred.reads or inferred.all_writes():
            findings.append(Finding(
                CHECK, INFO,
                f"no declared effects; using inferred reads "
                f"{sorted(inferred.reads)}, writes {sorted(inferred.all_writes())}",
                process=task.name,
            ))
        return inferred, findings

    for identity in sorted(inferred.reads - declared.reads):
        findings.append(Finding(
            CHECK, ERROR,
            f"body reads {identity!r} but the task does not declare it",
            process=task.name,
        ))
    for identity in sorted(inferred.all_writes() - declared.writes):
        findings.append(Finding(
            CHECK, ERROR,
            f"body writes {identity!r} but the task does not declare it",
            process=task.name,
        ))
    if inferred.complete:
        for identity in sorted(declared.reads - inferred.reads):
            findings.append(Finding(
                CHECK, WARNING,
                f"declares a read of {identity!r} the body never performs",
                process=task.name,
            ))
        for identity in sorted(declared.writes - inferred.all_writes()):
            findings.append(Finding(
                CHECK, WARNING,
                f"declares a write of {identity!r} the body never performs",
                process=task.name,
            ))
    effects = EffectSet(
        reads=declared.reads | inferred.reads,
        writes=declared.writes | inferred.all_writes(),
        unknowns=list(inferred.unknowns),
    )
    return effects, findings


# -- unit models -------------------------------------------------------------


def _identity_atoms(identity: str, task: Task, findings: list[Finding]):
    atoms = IDENTITY_ATOMS.get(identity)
    if atoms is None:
        findings.append(Finding(
            CHECK, ERROR,
            f"unknown artifact identity {identity!r}; "
            f"known: {sorted(IDENTITY_ATOMS)}",
            process=task.name,
        ))
        return []
    return atoms


def _stage_name_of(pid: int, fallback: str) -> str:
    from repro.core.stages import STAGES

    for stage in STAGES:
        if pid in stage.processes:
            return stage.name
    return fallback


def task_units(
    task: Task, effects: EffectSet, findings: list[Finding]
) -> list[UnitAccess]:
    """The concurrent-unit model of one task, owner-namespaced.

    Loop/temp-folder process tasks contribute their keyed inner units
    plus a *driver residual*: the registry atoms the inner units do not
    already cover (work-list reads, post-barrier merges).  Everything
    else is a single unit.  Key classes are namespaced by task so two
    concurrent tasks over the same key class (two station loops) are
    compared with possibly-equal keys, which is exactly the situation
    a task graph can create and a single stage cannot.
    """
    reads = [a for i in sorted(effects.reads) for a in _identity_atoms(i, task, findings)]
    writes = [
        a for i in sorted(effects.writes | effects.deletes)
        for a in _identity_atoms(i, task, findings)
    ]
    if task.pid is not None and task.strategy in (LOOP, TEMP_FOLDERS):
        try:
            inner = process_unit_models(
                task.pid, task.strategy, _stage_name_of(task.pid, task.name)
            )
        except ValueError as exc:
            findings.append(Finding(CHECK, ERROR, str(exc), process=task.name))
            inner = []
        units = [
            UnitAccess(
                f"{task.name}:{unit.name}",
                f"{task.name}/{unit.key_class}",
                reads=unit.reads,
                writes=unit.writes,
            )
            for unit in inner
        ]
        covered = {a for unit in inner for a in unit.reads + unit.writes}
        driver = UnitAccess(
            f"{task.name}:driver",
            f"task-{task.name}",
            reads=[a for a in reads if a not in covered],
            writes=[a for a in writes if a not in covered],
        )
        if driver.reads or driver.writes:
            units.append(driver)
        return units
    return [UnitAccess(task.name, f"task-{task.name}", reads=reads, writes=writes)]


# -- the verifier ------------------------------------------------------------


def verify_graph(
    graph: TaskGraph, regions: list[Region] | None = None
) -> list[Finding]:
    """All findings for one graph under one barrier plan.

    With ``regions`` omitted the graph's own derived layering is
    verified — the plan :func:`repro.engine.executor.run_graph` would
    execute.  An empty error count is the proof; every error carries a
    task-pair (or task) counterexample.
    """
    findings: list[Finding] = []
    if regions is None:
        regions = graph.derive_regions()

    try:
        graph.validate_regions(regions)
    except PipelineError as exc:
        findings.append(Finding(CHECK, ERROR, f"invalid barrier plan: {exc}"))
        return findings

    effects: dict[str, EffectSet] = {}
    for task in graph.tasks:
        task_fx, task_findings = task_effects(task)
        effects[task.name] = task_fx
        findings.extend(task_findings)

    region_of = {
        task.name: index for index, region in enumerate(regions) for task in region.tasks
    }
    findings.extend(_unproducible_reads(graph, regions, region_of, effects))

    race_errors_by_region: dict[int, int] = defaultdict(int)
    for index, region in enumerate(regions):
        units: list[UnitAccess] = []
        for task in region.tasks:
            units.extend(task_units(task, effects[task.name], findings))
        for a, b, x, y, kind in unit_collisions(units):
            race_errors_by_region[index] += 1
            findings.append(Finding(
                CHECK, ERROR,
                f"region {region.label}: units {a.name!r} and {b.name!r} may "
                f"{kind}-collide on {x.render()} vs {y.render()}",
            ))

    for index, region in enumerate(regions):
        if "+" not in region.label:
            continue
        if race_errors_by_region[index]:
            findings.append(Finding(
                CHECK, ERROR,
                f"fusion {region.label} rejected: "
                f"{race_errors_by_region[index]} conflict(s) among its members",
            ))
        else:
            findings.append(Finding(
                CHECK, INFO,
                f"fusion {region.label} certified: members pairwise "
                "conflict-free under the name-template model",
            ))

    findings.extend(_redundancy(graph, regions, region_of, effects))
    return findings


def _unproducible_reads(
    graph: TaskGraph,
    regions: list[Region],
    region_of: dict[str, int],
    effects: dict[str, EffectSet],
) -> list[Finding]:
    producers: dict[str, list[str]] = defaultdict(list)
    for task in graph.tasks:
        for identity in effects[task.name].writes | effects[task.name].deletes:
            producers[identity].append(task.name)
    findings: list[Finding] = []
    for task in graph.tasks:
        for identity in sorted(effects[task.name].reads):
            if identity in EXTERNAL_INPUTS:
                continue
            if identity in effects[task.name].writes | effects[task.name].deletes:
                continue  # self-produced: body order covers the read
            others = [p for p in producers.get(identity, []) if p != task.name]
            if not others:
                findings.append(Finding(
                    CHECK, WARNING,
                    f"reads {identity!r} which no task in this graph produces; "
                    "assumed pre-existing in the workspace",
                    process=task.name,
                ))
                continue
            earlier = [p for p in others if region_of[p] < region_of[task.name]]
            if not earlier:
                where = ", ".join(
                    f"{p} (region {regions[region_of[p]].label})" for p in others
                )
                findings.append(Finding(
                    CHECK, ERROR,
                    f"reads {identity!r} but every producer runs no earlier "
                    f"than it does: {where}; add an explicit ordering edge",
                    process=task.name,
                ))
    return findings


def _redundancy(
    graph: TaskGraph,
    regions: list[Region],
    region_of: dict[str, int],
    effects: dict[str, EffectSet],
) -> list[Finding]:
    findings: list[Finding] = []
    order = tuple(
        task.pid for region in regions for task in region.tasks if task.pid is not None
    )
    if len(order) > 1:
        for pid in derive_redundant(order):
            findings.append(Finding(
                CHECK, INFO,
                "redundant under the dead-write/identical-recompute rules: "
                "removing it leaves every read the same bytes",
                process=f"P{pid}",
            ))
    # Identity-level dead-write screen for custom tasks: every write is
    # overwritten later with no intervening reader.
    for task in graph.tasks:
        if task.pid is not None or task.opaque:
            continue
        writes = effects[task.name].writes | effects[task.name].deletes
        if not writes or not effects[task.name].complete:
            continue
        if all(
            _write_is_dead(identity, task.name, graph, region_of, effects)
            for identity in writes
        ):
            findings.append(Finding(
                CHECK, INFO,
                "every write is overwritten before any task reads it; "
                "the task appears redundant",
                process=task.name,
            ))
    return findings


def _write_is_dead(
    identity: str,
    writer: str,
    graph: TaskGraph,
    region_of: dict[str, int],
    effects: dict[str, EffectSet],
) -> bool:
    epoch = region_of[writer]
    later_writers = [
        t.name for t in graph.tasks
        if t.name != writer
        and identity in (effects[t.name].writes | effects[t.name].deletes)
        and region_of[t.name] > epoch
    ]
    if not later_writers:
        return False
    next_rewrite = min(region_of[name] for name in later_writers)
    return not any(
        t.name != writer
        and identity in effects[t.name].reads
        and epoch < region_of[t.name] <= next_rewrite
        for t in graph.tasks
    )


# -- entry points over builders and policies ---------------------------------


def verify_builder(builder, regions: list[Region] | None = None) -> list[Finding]:
    """Verify a :class:`PipelineBuilder` without letting it raise.

    A cyclic wiring is reported as an error finding (with the cycle as
    counterexample) instead of propagating ``DependencyError``, so one
    call gives a complete report for any builder state.
    """
    try:
        graph = builder.build()
    except DependencyError as exc:
        return [Finding(CHECK, ERROR, f"builder {builder.name!r}: {exc}")]
    return verify_graph(graph, regions)


def verify_policy(policy) -> list[Finding]:
    """Verify a policy's static plan (name, instance, builder or graph).

    Policies that schedule dynamically (the legacy wavefront and
    incremental runners) have no static plan to verify; that is
    reported as an advisory, not a failure.
    """
    from repro.engine.policy import resolve_policy

    resolved = resolve_policy(policy)
    try:
        graph, regions = resolved.plan(None)
    except PipelineError as exc:
        return [Finding(CHECK, INFO, str(exc))]
    return verify_graph(graph, regions)


# -- happens-before runtime cross-check --------------------------------------


def happens_before_findings(root: Path | str) -> list[Finding]:
    """Check a recorded run's accesses against its recorded plan.

    The executor stores the barrier plan it ran next to the audit logs;
    each region index is the epoch of every access its tasks performed.
    Two accesses are *ordered* iff their epochs differ (a barrier sits
    between them) or they belong to the same task and either shares a
    unit or touches the barrier-ordered driver scope.  Any remaining
    pair on one path with a write between them is concurrent-by-plan:
    an access the static race proof claimed impossible.
    """
    root = Path(root)
    plan = load_plan(root)
    if plan is None:
        return [Finding(
            CHECK, WARNING,
            f"no recorded plan under {root}; run an engine policy with "
            "auditing enabled to record one",
        )]
    epoch: dict[str, int] = {}
    labels: list[str] = []
    for index, region in enumerate(plan.get("regions", [])):
        labels.append(str(region.get("label", index)))
        for name in region.get("tasks", []):
            epoch[str(name)] = index

    by_path: dict[str, list] = defaultdict(list)
    mapped = 0
    for event in iter_events(root):
        if event.process is None:
            continue
        if event.process in epoch:
            mapped += 1
            by_path[event.path].append(event)

    findings: list[Finding] = []
    if not mapped:
        findings.append(Finding(
            CHECK, WARNING,
            f"plan {plan.get('policy', '?')!r} recorded but no audited access "
            "maps to its tasks; nothing to cross-check",
        ))
        return findings

    seen: set[tuple] = set()
    for path, events in sorted(by_path.items()):
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if a.op == "read" and b.op == "read":
                    continue
                if epoch[a.process] != epoch[b.process]:
                    continue  # a barrier orders the two epochs
                if a.process == b.process and (
                    a.unit == b.unit or a.unit == "-" or b.unit == "-"
                ):
                    continue  # program/barrier order within one task
                key = (path, a.process, a.unit, b.process, b.unit, a.op, b.op)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    CHECK, ERROR,
                    f"happens-before violation on {path}: {a.process}[{a.unit}] "
                    f"{a.op} and {b.process}[{b.unit}] {b.op} are concurrent in "
                    f"epoch {labels[epoch[a.process]]}",
                ))
    if not findings:
        findings.append(Finding(
            CHECK, INFO,
            f"happens-before clean: {mapped} access(es) across "
            f"{len(labels)} epoch(s) of plan {plan.get('policy', '?')!r}, "
            "0 pairs contradict the static proof",
        ))
    return findings
