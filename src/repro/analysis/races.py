"""Schedule race detector: prove per-unit write sets disjoint.

For every parallel stage of the Fig. 9 plan this pass builds the
*symbolic* file-access sets of one unit of parallelism — a station, a
trace, a work-list file or a whole member process — using parameterized
artifact-name templates (``{u}l.v2``, ``{u}f.ps``, …), and proves that
no two concurrent units can touch the same file with at least one
write.  This is the static counterpart of the runtime auditor
(:mod:`repro.analysis.audit`): the auditor observes one run, this pass
covers *all* runs.

Name templates and the disjointness argument
--------------------------------------------

An atom is either a literal path (``work/filter.par``) or a template
``prefix + KEY + suffix`` where KEY is the unit's distinguishing key
(station code, or station+component composite).  Keys of two distinct
units of the same *key class* are distinct strings; keys are drawn
from the uppercase station alphabet (plus a trailing lowercase
component letter for composite keys).  Two templates can only collide
if one suffix is a proper suffix of the other and the absorbed middle
segment could be part of a key — segments containing lowercase
characters (the component letters and the ``f``/``r`` plot markers)
are refuted by the alphabet argument.  Temp folders (stages IV, V,
VIII) are modeled as one private literal per unit: their names embed
the unit index, so they are distinct by construction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.analysis.model import ERROR, Finding
from repro.core.stages import STAGES, StageSpec, LOOP, SEQ, TASKS, TEMP_FOLDERS
from repro.core.registry import PROCESSES

COMPONENTS = ("l", "t", "v")

#: Characters a unit key may contain (station codes are uppercase
#: alphanumeric; composite keys end in one lowercase component letter).
_KEY_CHARS = set("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789")


@dataclass(frozen=True)
class Atom:
    """One file-name pattern: literal, or ``prefix + KEY + suffix``."""

    prefix: str
    suffix: str | None = None  # None -> literal path, prefix is the whole name
    key_class: str = ""

    @property
    def literal(self) -> bool:
        return self.suffix is None

    def render(self) -> str:
        if self.literal:
            return self.prefix
        return f"{self.prefix}{{u:{self.key_class}}}{self.suffix}"


def lit(name: str) -> Atom:
    return Atom(prefix=name)


def tpl(suffix: str, key_class: str = "station", prefix: str = "work/") -> Atom:
    return Atom(prefix=prefix, suffix=suffix, key_class=key_class)


@dataclass
class UnitAccess:
    """Symbolic access sets of one unit of parallelism in a stage."""

    name: str
    key_class: str  # units of the same class have pairwise-distinct keys
    reads: list[Atom] = field(default_factory=list)
    writes: list[Atom] = field(default_factory=list)


def _segment_possible_in_key(segment: str) -> bool:
    """Could this literal segment be absorbed into a unit key?"""
    return all(ch in _KEY_CHARS for ch in segment)


def atoms_may_collide(a: Atom, b: Atom, same_unit_keys_distinct: bool) -> bool:
    """Whether two atoms from *different units* can name the same file.

    ``same_unit_keys_distinct`` is true when both atoms' units belong to
    the same key class (their keys are then known unequal).
    """
    if a.literal and b.literal:
        return a.prefix == b.prefix
    if a.literal != b.literal:
        literal, template = (a, b) if a.literal else (b, a)
        if not literal.prefix.startswith(template.prefix):
            return False
        rest = literal.prefix[len(template.prefix):]
        if not rest.endswith(template.suffix or ""):
            return False
        stem = rest[: len(rest) - len(template.suffix or "")]
        return bool(stem) and _segment_possible_in_key(stem[-1:])
    # template vs template
    if a.prefix != b.prefix:
        # All templated names live in flat directories; distinct
        # directory prefixes cannot produce equal paths.
        return False
    sa, sb = a.suffix or "", b.suffix or ""
    if sa == sb:
        return not same_unit_keys_distinct
    if len(sa) == len(sb):
        return False  # equal length, different text: keys can't absorb it
    longer, shorter = (sa, sb) if len(sa) > len(sb) else (sb, sa)
    if not longer.endswith(shorter):
        return False
    absorbed = longer[: len(longer) - len(shorter)]
    return _segment_possible_in_key(absorbed)


# -- per-stage unit models (mirrors staged.py / the paper's Fig. 9) ----


def _station_unit(stage_name: str, pid: int) -> list[UnitAccess]:
    if pid == 3:
        return [UnitAccess(
            "separate_station", "station",
            reads=[tpl(".v1", prefix="input/")],
            writes=[tpl(f"{c}.v1") for c in COMPONENTS],
        )]
    if pid in (4, 13):
        params = lit("work/filter.par") if pid == 4 else lit("work/filter_corrected.par")
        return [UnitAccess(
            "correction_instance", "station",
            reads=[params] + [tpl(f"{c}.v1") for c in COMPONENTS],
            writes=[tpl(f"{c}.v2") for c in COMPONENTS]
            + [tpl(f"{c}.max") for c in COMPONENTS]
            # The private temp folder embeds the unit's ordinal, so it
            # is a template keyed by the same unit.
            + [tpl("", key_class="station", prefix=f"work/tmp/{stage_name.lower()}_")],
        )]
    if pid == 7:
        return [UnitAccess(
            "fourier_instance", "station",
            reads=[tpl(f"{c}.v2") for c in COMPONENTS],
            writes=[tpl(f"{c}.f") for c in COMPONENTS]
            + [tpl("", key_class="station", prefix=f"work/tmp/{stage_name.lower()}_")],
        )]
    raise ValueError(f"no station-unit model for P{pid}")


def _loop_units(stage_name: str, pid: int) -> list[UnitAccess]:
    if pid == 3:
        return _station_unit(stage_name, pid)
    if pid == 10:
        # Inner loop over one station's components; results are
        # returned in memory, the driver writes filter_corrected.par
        # after the barrier.
        return [UnitAccess(
            "analyze_component", "trace",
            reads=[tpl(".f", key_class="trace")],
            writes=[],
        )]
    if pid == 16:
        return [UnitAccess(
            "response_for_trace", "trace",
            reads=[tpl(".v2", key_class="trace")],
            writes=[tpl(".r", key_class="trace")],
        )]
    if pid == 19:
        # The interleaved work list holds each (station, component)
        # twice — once as a V2 file, once as an R file — so the two
        # subgroups are distinct unit classes that may share keys.
        v2_unit = UnitAccess(
            "set_data_apart[v2]", "gem_v2",
            reads=[tpl(".v2", key_class="gem_v2")],
            writes=[tpl(f"2{q}.gem", key_class="gem_v2") for q in ("A", "V", "D")],
        )
        r_unit = UnitAccess(
            "set_data_apart[r]", "gem_r",
            reads=[tpl(".r", key_class="gem_r")],
            writes=[tpl(f"R{q}.gem", key_class="gem_r") for q in ("A", "V", "D")],
        )
        return [v2_unit, r_unit]
    raise ValueError(f"no loop-unit model for P{pid}")


#: Artifact identity -> the file-name atoms it expands to.  Shared by
#: the stage-plan race proof below and the graph-level verifier
#: (:mod:`repro.analysis.graphlint`), which lifts the same absorption
#: argument from Fig. 9 stage plans to arbitrary task graphs.
IDENTITY_ATOMS: dict[str, list[Atom]] = {
    "flags": [lit("work/flags.dat")],
    "flags2": [lit("work/flags2.dat")],
    "v1_list": [lit("work/v1files.lst")],
    "filter_params": [lit("work/filter.par")],
    "filter_corrected": [lit("work/filter_corrected.par")],
    "maxvals": [lit("work/maxvals.dat")],
    "maxvals2": [lit("work/maxvals2.dat")],
    "acc_meta": [lit("work/accgraph.meta")],
    "fourier_meta": [lit("work/fourier.meta")],
    "response_meta": [lit("work/response.meta")],
    "fouriergraph_meta": [lit("work/fouriergraph.meta")],
    "responsegraph_meta": [lit("work/responsegraph.meta")],
    "raw_v1": [tpl(".v1", prefix="input/")],
    "comp_v1": [tpl(f"{c}.v1") for c in COMPONENTS],
    "comp_v2": [tpl(f"{c}.v2") for c in COMPONENTS],
    "comp_f": [tpl(f"{c}.f") for c in COMPONENTS],
    "comp_r": [tpl(f"{c}.r") for c in COMPONENTS],
    "plot_acc": [tpl(".ps")],
    "plot_fourier": [tpl("f.ps")],
    "plot_response": [tpl("r.ps")],
    "gem": [
        tpl(f"{c}{source}{q}.gem")
        for c in COMPONENTS
        for source in ("2", "R")
        for q in ("A", "V", "D")
    ],
}

#: key_class prefixes marking a UnitAccess that is one single instance
#: (a whole member process / task), not a class of keyed loop units.
SINGLETON_PREFIXES = ("process-", "task-")


def _task_units(stage: StageSpec) -> list[UnitAccess]:
    """TASKS stages: one unit per member process; access sets are the
    registry declarations expanded to name patterns."""
    units = []
    for pid in stage.processes:
        spec = PROCESSES[pid]
        units.append(UnitAccess(
            spec.label, f"process-{pid}",
            reads=[atom for ref in spec.reads for atom in IDENTITY_ATOMS[ref.identity]],
            writes=[atom for ref in spec.writes for atom in IDENTITY_ATOMS[ref.identity]],
        ))
    return units


def process_unit_models(pid: int, strategy: str, stage_name: str) -> list[UnitAccess]:
    """Concurrency-unit models of one process under one strategy.

    ``loop`` and ``temp_folders`` return the keyed per-unit templates
    (stations, traces, work-list files); ``seq``/``task`` strategies
    run as one indivisible unit and return no inner model.  Raises
    :class:`ValueError` for a pid the strategy has no model for — a
    builder wiring, say, P12 as a loop is asking for an execution the
    engine cannot perform either.
    """
    if strategy == LOOP:
        return _loop_units(stage_name, pid)
    if strategy == TEMP_FOLDERS:
        return _station_unit(stage_name, pid)
    return []


def stage_units(stage: StageSpec) -> list[UnitAccess]:
    """The concurrent-unit model of one stage (its most parallel form)."""
    strategy = stage.full_strategy
    if strategy == SEQ:
        return []
    if strategy == TASKS:
        return _task_units(stage)
    (pid,) = stage.processes
    if strategy == LOOP:
        return _loop_units(stage.name, pid)
    if strategy == TEMP_FOLDERS:
        return _station_unit(stage.name, pid)
    raise ValueError(f"unknown strategy {strategy!r}")


def unit_collisions(
    units: Sequence[UnitAccess],
) -> list[tuple[UnitAccess, UnitAccess, Atom, Atom, str]]:
    """Every potential conflict among concurrently-running units.

    Returns ``(unit_a, unit_b, atom_a, atom_b, kind)`` tuples with
    ``kind`` in ``write/write``, ``write/read``, ``read/write``.  An
    empty list is the race-freedom proof: no two concurrent units can
    name the same file with at least one write between them.
    """
    collisions: list[tuple[UnitAccess, UnitAccess, Atom, Atom, str]] = []
    for i, a in enumerate(units):
        for b in units[i:]:
            same_class = a.key_class == b.key_class
            distinct_instances = a is not b
            # A unit class with many instances also races against
            # *itself* across instances (same templates, distinct
            # keys) — covered by same_class with keys distinct.
            if a is b and a.key_class.startswith(SINGLETON_PREFIXES):
                continue  # a single-instance unit cannot self-race
            pairs = (
                [(x, y, "write/write") for x in a.writes for y in b.writes]
                + [(x, y, "write/read") for x in a.writes for y in b.reads]
            )
            if distinct_instances:
                pairs += [(x, y, "read/write") for x in a.reads for y in b.writes]
            for x, y, kind in pairs:
                if a is b and x is y and kind != "write/write":
                    continue
                if atoms_may_collide(x, y, same_unit_keys_distinct=same_class):
                    collisions.append((a, b, x, y, kind))
    return collisions


def race_findings() -> list[Finding]:
    """Prove every stage's units pairwise write-disjoint (or report)."""
    findings: list[Finding] = []
    for stage in STAGES:
        for a, b, x, y, kind in unit_collisions(stage_units(stage)):
            findings.append(Finding(
                "races", ERROR,
                f"stage {stage.name}: units {a.name!r} and {b.name!r} "
                f"may {kind}-collide on {x.render()} vs {y.render()}",
            ))
    return findings
