"""Static effect inference for arbitrary task callables.

:mod:`repro.analysis.static_conformance` proves the twenty registry
process bodies match their declarations, but it only knows how to walk
the in-tree ``core/processes`` package.  The engine's
:class:`~repro.engine.graph.PipelineBuilder` accepts *arbitrary*
callables as custom tasks, and the graph verifier
(:mod:`repro.analysis.graphlint`) needs their artifact effects too.
This module lifts the same closed-vocabulary AST walk to any Python
function it can get source for:

- the shared name vocabularies (``CONSTANT_IDENTITY``,
  ``NAME_IDENTITY``, ``ACCESSOR_IDENTITY``, ``IO_FUNCS``,
  ``TOOL_EFFECTS``) are imported from the conformance pass, so both
  analyses agree on what every artifact is called;
- a call to a registry entry point (``run_p07(ctx)``) is charged the
  callee's *declared* registry effects — the conformance pass already
  proved those true of the body, so re-walking it would only repeat
  the proof;
- module-level string constants reachable through the callable's
  ``__globals__`` and function-local ``from repro.core.artifacts
  import ...`` aliases both resolve to identities;
- anything the walk cannot resolve is reported as an *unknown* effect,
  never guessed — the verifier downgrades its proof accordingly.

The inference is sound-by-refusal, not complete: a task that shells
out, fans work to ranks, or computes file names dynamically should be
declared ``opaque=True`` at the builder, which skips inference and
takes the declared effects on trust (reported as such).
"""

from __future__ import annotations

import ast
import functools
import inspect
import re
import textwrap
from dataclasses import dataclass, field

from repro.analysis.static_conformance import (
    ACCESSOR_IDENTITY,
    CONSTANT_IDENTITY,
    IO_FUNCS,
    NAME_IDENTITY,
    TOOL_EFFECTS,
    TRANSIENT_CONSTANTS,
    TRANSIENT_NAMES,
    TRANSIENT_SUFFIXES,
)
from repro.core.registry import PROCESSES

_RUN_PROCESS_RE = re.compile(r"^run_p(\d{2})$")

#: Expressions that smuggle the whole workspace into a callee we cannot
#: see: the context object itself, or its workspace handle.
_CONTEXT_NAMES = {"ctx", "context", "workspace", "ws"}

#: Attribute names that denote the workspace (or one of its whole
#: directories) in an attribute chain like ``ctx.workspace.root``.
_WORKSPACE_ATTRS = {"workspace", "root", "work_dir", "input_dir", "tmp_dir"}

#: Helper functions with positional artifact-name parameters: function
#: name -> (direction, argument index of the name).
_NAME_ARG_FUNCS: dict[str, tuple[str, int]] = {
    "merge_max_files": ("write", 1),
    "_merge_suffixed": ("write", 2),
    "merge_suffixed": ("write", 2),
}

#: Zero-surprise helpers with fixed effects.
_FIXED_EFFECT_FUNCS: dict[str, list[tuple[str, str]]] = {
    "stations_from_list": [("read", "v1_list")],
}

#: Path/directory bookkeeping methods that touch no artifact content.
_INERT_PATH_METHODS = {
    "mkdir", "exists", "is_file", "is_dir", "iterdir", "rmdir", "resolve",
    "absolute", "relative_to", "with_suffix", "with_name", "joinpath",
    "append", "extend", "add", "items", "keys", "values", "get", "pop",
    "format", "join", "split", "strip", "startswith", "endswith", "lower",
    "upper", "sort", "set_override", "record",
}


@dataclass
class EffectSet:
    """Artifact-identity effects inferred from one callable.

    ``unknowns`` lists every access the walk saw but could not resolve
    to the closed vocabulary; a non-empty list means the set is a lower
    bound, not a proof.
    """

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    deletes: set[str] = field(default_factory=set)
    unknowns: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether the walk resolved every access it found."""
        return not self.unknowns

    def all_writes(self) -> set[str]:
        """Writes plus deletes: everything that mutates an artifact."""
        return self.writes | self.deletes

    def charge(self, direction: str, identity: str) -> None:
        {"read": self.reads, "write": self.writes, "delete": self.deletes}[
            direction
        ].add(identity)


def _unwrap(fn):
    """Peel ``functools.partial`` layers and bound-method wrappers."""
    while isinstance(fn, functools.partial):
        fn = fn.func
    return inspect.unwrap(getattr(fn, "__func__", fn))


def _function_node(fn) -> ast.FunctionDef | None:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


class _FunctionWalk:
    """One callable's AST walk; recursion shares the ``seen`` set."""

    def __init__(self, fn, out: EffectSet, seen: set[int]) -> None:
        self.fn = fn
        self.out = out
        self.seen = seen
        self.globals = getattr(fn, "__globals__", {}) or {}
        self.constants: dict[str, str] = {}
        self.locals: dict[str, ast.expr] = {}

    # -- resolution ----------------------------------------------------

    def _resolve_name(self, node: ast.expr | None, _depth: int = 0):
        """An expression holding an artifact *file name* -> resolution.

        Returns ``("id", identity)``, ``("unknown", why)``, or ``None``
        for a recognized scratch file.
        """
        if node is None:
            return ("unknown", "missing name argument")
        if _depth > 8:
            return ("unknown", "deeply nested name expression")
        if isinstance(node, ast.Name):
            if node.id in self.constants:
                return ("id", self.constants[node.id])
            if node.id in TRANSIENT_CONSTANTS:
                return None
            value = self.globals.get(node.id)
            if isinstance(value, str):
                if value in NAME_IDENTITY:
                    return ("id", NAME_IDENTITY[value])
                if value in TRANSIENT_NAMES or value.endswith(TRANSIENT_SUFFIXES):
                    return None
            if node.id in CONSTANT_IDENTITY:
                return ("id", CONSTANT_IDENTITY[node.id])
            if node.id in self.locals:
                return self._resolve_name(self.locals[node.id], _depth + 1)
            return ("unknown", f"name bound to {node.id!r}")
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in NAME_IDENTITY:
                return ("id", NAME_IDENTITY[node.value])
            if node.value in TRANSIENT_NAMES or node.value.endswith(TRANSIENT_SUFFIXES):
                return None
            return ("unknown", f"literal {node.value!r}")
        if isinstance(node, ast.JoinedStr):
            return ("unknown", "f-string file name")
        return ("unknown", ast.dump(node)[:60])

    def _resolve_path(self, node: ast.expr | None, _depth: int = 0):
        """An expression holding an artifact *path* -> resolution."""
        if node is None:
            return ("unknown", "missing path argument")
        if _depth > 8:
            return ("unknown", "deeply nested path expression")
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "work":
                return self._resolve_name(node.args[0] if node.args else None)
            if attr in ACCESSOR_IDENTITY:
                return ("id", ACCESSOR_IDENTITY[attr])
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return self._resolve_name(node.right)
        if isinstance(node, ast.Name) and node.id in self.locals:
            return self._resolve_path(self.locals[node.id], _depth + 1)
        return self._resolve_name(node, _depth)

    def _is_workspace_expr(self, node: ast.expr) -> bool:
        """Does this argument hand the callee the whole workspace?

        True for the context object itself and for attribute chains
        naming the workspace or one of its whole directories
        (``ctx.workspace``, ``ctx.workspace.root``).  Scalar attribute
        chains (``ctx.parallel.workers``) stay false: handing a callee
        a number cannot produce artifact I/O.
        """
        if isinstance(node, ast.Name):
            return node.id in _CONTEXT_NAMES
        if isinstance(node, ast.Attribute):
            if node.attr in _WORKSPACE_ATTRS:
                return True
            if isinstance(node.value, ast.Attribute):
                return self._is_workspace_expr(node.value)
        return False

    # -- the walk ------------------------------------------------------

    def run(self) -> None:
        node = _function_node(self.fn)
        if node is None:
            name = getattr(self.fn, "__qualname__", repr(self.fn))
            self.out.unknowns.append(f"source of {name} is unavailable")
            return
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.ImportFrom) and stmt.module:
                if stmt.module.endswith("artifacts"):
                    for alias in stmt.names:
                        if alias.name in CONSTANT_IDENTITY:
                            bound = alias.asname or alias.name
                            self.constants[bound] = CONSTANT_IDENTITY[alias.name]
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self.locals[target.id] = stmt.value
        for call in ast.walk(node):
            if isinstance(call, ast.Call):
                self._visit_call(call)

    def _charge_resolved(self, direction: str, resolved) -> None:
        if resolved is None:
            return
        kind, value = resolved
        if kind == "id":
            self.out.charge(direction, value)
        else:
            self.out.unknowns.append(f"{direction} of unresolved target ({value})")

    def _visit_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Name):
            self._visit_name_call(call, func.id)
        elif isinstance(func, ast.Attribute):
            self._visit_method_call(call, func)

    def _visit_name_call(self, call: ast.Call, name: str) -> None:
        match = _RUN_PROCESS_RE.match(name)
        if match and int(match.group(1)) in PROCESSES:
            spec = PROCESSES[int(match.group(1))]
            for ref in spec.reads:
                self.out.reads.add(ref.identity)
            for ref in spec.writes:
                self.out.writes.add(ref.identity)
            return
        if name in IO_FUNCS:
            direction, intrinsic = IO_FUNCS[name]
            resolved = self._resolve_path(call.args[0] if call.args else None)
            if resolved is not None and resolved[0] != "id" and intrinsic is not None:
                resolved = ("id", intrinsic)
            self._charge_resolved(direction, resolved)
            return
        if name in TOOL_EFFECTS:
            for direction, identity in TOOL_EFFECTS[name]:
                self.out.charge(direction, identity)
            return
        if name in _NAME_ARG_FUNCS:
            direction, position = _NAME_ARG_FUNCS[name]
            arg = call.args[position] if len(call.args) > position else None
            self._charge_resolved(direction, self._resolve_name(arg))
            return
        if name in _FIXED_EFFECT_FUNCS:
            for direction, identity in _FIXED_EFFECT_FUNCS[name]:
                self.out.charge(direction, identity)
            return
        if name in ("write_tool_config", "read_tool_config", "partial", "print"):
            if name == "partial" and call.args and isinstance(call.args[0], ast.Name):
                self._recurse(call.args[0].id, call)
            return
        self._recurse(name, call)

    def _recurse(self, name: str, call: ast.Call) -> None:
        """Follow a call into another Python function when possible."""
        target = self.globals.get(name)
        if target is not None and inspect.isfunction(target):
            key = id(getattr(target, "__code__", target))
            if key not in self.seen:
                self.seen.add(key)
                _FunctionWalk(target, self.out, self.seen).run()
            return
        # Not followable: only worrying if it receives the workspace.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if self._is_workspace_expr(arg):
                self.out.unknowns.append(
                    f"call to {name}(...) passes the workspace to unanalyzable code"
                )
                return

    def _visit_method_call(self, call: ast.Call, func: ast.Attribute) -> None:
        attr = func.attr
        if attr == "require_input":
            self.out.reads.add("raw_v1")
            return
        if attr == "glob":
            pattern = ""
            if call.args and isinstance(call.args[0], ast.Constant):
                pattern = str(call.args[0].value)
            receiver = func.value
            if (
                isinstance(receiver, ast.Attribute)
                and receiver.attr == "input_dir"
                and pattern.endswith(".v1")
            ):
                self.out.reads.add("raw_v1")
                return
            if pattern.endswith(TRANSIENT_SUFFIXES):
                return
            self.out.unknowns.append(f"read of unresolved target (glob({pattern!r}))")
            return
        if attr in ("write_text", "write_bytes", "touch", "rename"):
            self._charge_resolved("write", self._resolve_path(func.value))
            return
        if attr in ("read_text", "read_bytes"):
            self._charge_resolved("read", self._resolve_path(func.value))
            return
        if attr == "unlink":
            resolved = self._resolve_path(func.value)
            if resolved is not None and resolved[0] == "id":
                self.out.deletes.add(resolved[1])
            elif resolved is not None:
                self.out.unknowns.append(
                    f"delete of unresolved target ({resolved[1]})"
                )
            return
        if attr in _INERT_PATH_METHODS or attr in ACCESSOR_IDENTITY or attr == "work":
            return
        # An unknown method that swallows the workspace is a blind spot.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if self._is_workspace_expr(arg):
                self.out.unknowns.append(
                    f"method call .{attr}(...) passes the workspace to "
                    "unanalyzable code"
                )
                return


def infer_effects(fn) -> EffectSet:
    """Infer the artifact effects of one task callable.

    Accepts plain functions, bound methods and ``functools.partial``
    wrappers (pre-bound arguments are ignored — only the body is
    walked).  Never raises on unanalyzable input; the failure mode is
    an :class:`EffectSet` whose ``unknowns`` explain what could not be
    resolved.
    """
    target = _unwrap(fn)
    out = EffectSet()
    seen = {id(getattr(target, "__code__", target))}
    _FunctionWalk(target, out, seen).run()
    return out
