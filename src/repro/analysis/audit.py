"""Runtime audit analysis: check recorded accesses against the rules.

:mod:`repro.core.auditing` records what a run *actually* opened; this
module turns those event logs into findings:

- **conformance** — each process's observed reads/writes, classified
  back to registry identities, must be a subset of its declarations
  (a process may skip work, e.g. a guard that only stats a file, but
  may never touch something undeclared);
- **conflicts** — two different concurrency units of the same process
  (two stations, two traces, two temp-folder instances) must never
  touch the same file with at least one write/delete between them;
  likewise two processes that run concurrently in the same stage.

Unit ``"-"`` is a process's top-level (driver) scope: driver-side
accesses are barrier-ordered against the loop units by construction
(merges happen after ``parallel_for`` returns), so only unit-vs-unit
pairs where both units are real loop units count as concurrent.
Scratch files (temp folders, ``*.max`` parts, ``tool.cfg``, wavefront
``_wf_*.par`` handoffs) are excluded from conformance but still
participate in conflict detection.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.model import ERROR, INFO, WARNING, Finding
from repro.core.auditing import AuditEvent, iter_events, load_plan
from repro.core.registry import PROCESSES
from repro.core.stages import STAGES

#: Simple work/ file name -> identity.
_SIMPLE = {
    "flags.dat": "flags",
    "flags2.dat": "flags2",
    "v1files.lst": "v1_list",
    "filter.par": "filter_params",
    "filter_corrected.par": "filter_corrected",
    "maxvals.dat": "maxvals",
    "maxvals2.dat": "maxvals2",
    "accgraph.meta": "acc_meta",
    "fourier.meta": "fourier_meta",
    "response.meta": "response_meta",
    "fouriergraph.meta": "fouriergraph_meta",
    "responsegraph.meta": "responsegraph_meta",
}

_TRANSIENT_SUFFIXES = (".max", ".max1", ".max2")

#: Pipeline process label -> index of its stage in the Fig. 9 plan
#: (absent for the redundant processes, which never run concurrently).
_STAGE_INDEX: dict[str, int] = {
    f"P{pid}": index for index, stage in enumerate(STAGES) for pid in stage.processes
}


def classify_path(rel_path: str, stations: list[str] | None = None) -> tuple[str, str | None]:
    """Map a root-relative path to ``(kind, identity)``.

    Kinds: ``artifact`` (identity set), ``transient`` (process-private
    scratch), ``unknown``.
    """
    if rel_path.startswith("input/"):
        if rel_path.endswith(".v1"):
            return "artifact", "raw_v1"
        return "unknown", None
    if not rel_path.startswith("work/"):
        return "unknown", None
    name = rel_path[len("work/"):]
    if name.startswith("tmp/"):
        return "transient", None
    if name in _SIMPLE:
        return "artifact", _SIMPLE[name]
    if name == "tool.cfg" or name.endswith(_TRANSIENT_SUFFIXES):
        return "transient", None
    if name.startswith("_wf_") and name.endswith(".par"):
        return "transient", None
    if name.endswith(".v1"):
        return "artifact", "comp_v1"
    if name.endswith(".v2"):
        return "artifact", "comp_v2"
    if name.endswith(".f"):
        return "artifact", "comp_f"
    if name.endswith(".r"):
        return "artifact", "comp_r"
    if name.endswith(".gem"):
        return "artifact", "gem"
    if name.endswith(".ps"):
        stem = name[: -len(".ps")]
        if stations is not None:
            if stem in stations:
                return "artifact", "plot_acc"
            if stem.endswith("f") and stem[:-1] in stations:
                return "artifact", "plot_fourier"
            if stem.endswith("r") and stem[:-1] in stations:
                return "artifact", "plot_response"
            return "unknown", None
        if stem.endswith("f"):
            return "artifact", "plot_fourier"
        if stem.endswith("r"):
            return "artifact", "plot_response"
        return "artifact", "plot_acc"
    return "unknown", None


@dataclass
class ObservedAccess:
    """Identity-level access sets one process exhibited at runtime."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)


def observed_access(
    root: Path | str, stations: list[str] | None = None
) -> dict[str, ObservedAccess]:
    """Per-process observed identity sets from a recorded run."""
    out: dict[str, ObservedAccess] = defaultdict(ObservedAccess)
    for event in iter_events(root):
        if event.process is None:
            continue
        kind, identity = classify_path(event.path, stations)
        if kind != "artifact" or identity is None:
            continue
        access = out[event.process]
        if event.op == "read":
            access.reads.add(identity)
        else:  # write or delete
            access.writes.add(identity)
    return dict(out)


def _plan_epochs(root: Path | str | None) -> dict[str, int]:
    """Task -> barrier-epoch map from the run's recorded plan, if any."""
    if root is None:
        return {}
    plan = load_plan(root)
    if plan is None:
        return {}
    return {
        str(name): index
        for index, region in enumerate(plan.get("regions", []))
        for name in region.get("tasks", [])
    }


def _conflict_pairs(
    events: list[AuditEvent], epochs: dict[str, int] | None = None
) -> list[tuple[AuditEvent, AuditEvent]]:
    """Concurrent-access conflicts among one path's events.

    When the run recorded its barrier plan, two tasks of that plan are
    concurrent iff they share an epoch (region index); processes the
    plan does not name — and every run without a plan — fall back to
    the Fig. 9 stage rule.
    """
    epochs = epochs or {}
    conflicts = []
    for i, a in enumerate(events):
        for b in events[i + 1:]:
            if a.op == "read" and b.op == "read":
                continue
            if a.process is None or b.process is None:
                continue
            if a.process == b.process:
                # Two units of the same process; "-" is the barrier-
                # ordered driver scope.
                if a.unit != b.unit and a.unit != "-" and b.unit != "-":
                    conflicts.append((a, b))
            elif a.process in epochs and b.process in epochs:
                # The executed plan's region index is the vector clock:
                # different epochs are separated by a barrier.
                if epochs[a.process] == epochs[b.process]:
                    conflicts.append((a, b))
            else:
                # Two member processes of the same TASKS stage run
                # concurrently; everything else is barrier-ordered.
                sa = _STAGE_INDEX.get(a.process)
                sb = _STAGE_INDEX.get(b.process)
                if sa is not None and sa == sb:
                    conflicts.append((a, b))
    return conflicts


def conflict_findings(root: Path | str) -> list[Finding]:
    """Conflicting concurrent accesses recorded in one run."""
    by_path: dict[str, list[AuditEvent]] = defaultdict(list)
    for event in iter_events(root):
        by_path[event.path].append(event)
    epochs = _plan_epochs(root)
    findings = []
    for path, events in sorted(by_path.items()):
        seen = set()
        for a, b in _conflict_pairs(events, epochs):
            key = (a.process, a.unit, b.process, b.unit, a.op, b.op)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "audit", ERROR,
                f"conflicting concurrent access on {path}: "
                f"{a.process}[{a.unit}] {a.op} vs {b.process}[{b.unit}] {b.op}",
            ))
    return findings


def audit_findings(
    root: Path | str, stations: list[str] | None = None
) -> list[Finding]:
    """Full audit report for one recorded run."""
    findings: list[Finding] = []
    root = Path(root)
    events = list(iter_events(root))
    if not events:
        findings.append(Finding("audit", WARNING, f"no audit events recorded under {root}"))
        return findings

    unattributed = sum(1 for e in events if e.process is None)
    if unattributed:
        findings.append(Finding(
            "audit", INFO,
            f"{unattributed} access(es) outside any process scope "
            "(orchestrator/verification reads; not conformance-checked)",
        ))
    unknown_paths = sorted({
        e.path for e in events
        if e.process is not None and classify_path(e.path, stations)[0] == "unknown"
    })
    for path in unknown_paths:
        findings.append(Finding("audit", WARNING, f"unclassifiable path accessed: {path}"))

    observed = observed_access(root, stations)
    for label in sorted(observed, key=lambda l: int(l[1:]) if l[1:].isdigit() else 99):
        pid_text = label[1:]
        if not pid_text.isdigit() or int(pid_text) not in PROCESSES:
            findings.append(Finding("audit", WARNING, f"events from unknown process {label!r}"))
            continue
        spec = PROCESSES[int(pid_text)]
        declared_reads = {ref.identity for ref in spec.reads}
        declared_writes = {ref.identity for ref in spec.writes}
        access = observed[label]
        for identity in sorted(access.reads - declared_reads):
            findings.append(Finding(
                "audit", ERROR,
                f"observed read of {identity!r} is not declared", process=label,
            ))
        for identity in sorted(access.writes - declared_writes):
            findings.append(Finding(
                "audit", ERROR,
                f"observed write of {identity!r} is not declared", process=label,
            ))
        for identity in sorted(declared_reads - access.reads):
            findings.append(Finding(
                "audit", INFO,
                f"declared read of {identity!r} not observed in this run", process=label,
            ))
        for identity in sorted(declared_writes - access.writes):
            findings.append(Finding(
                "audit", INFO,
                f"declared write of {identity!r} not observed in this run", process=label,
            ))

    findings.extend(conflict_findings(root))
    return findings
