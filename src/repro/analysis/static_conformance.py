"""Static conformance: do the process bodies match their declarations?

The registry (:mod:`repro.core.registry`) declares every process's
reads and writes, and the whole dependency analysis — the stage plan,
the redundancy elimination, the race-freedom argument — rests on those
declarations being *true*.  This pass closes the loop: it parses each
``core/processes/p*.py`` module (AST only, nothing is imported or
executed), extracts every workspace access the code can perform, and
diffs the observed identity sets against the declared ones.

Extraction walks each ``run_pXX`` root through the intra-package call
graph (``run_p12`` → ``run_p03``, ``run_p13`` →
``run_correction_sequential``, …), substituting artifact-name
parameters at call sites, so a helper shared by two processes is
charged to each caller with the names *that caller* passes.  I/O
enters through a closed vocabulary:

- format readers/writers (``read_v2``, ``write_fourier``, …), each
  with a direction and, where the format implies one, an intrinsic
  artifact identity;
- workspace accessors (``.work(NAME)``, ``.component_v2(...)``,
  ``.raw_v1(...)``, ``.plot_fourier(...)``, …);
- path methods (``.write_text``, ``.unlink``, ``.glob``);
- the legacy tools (``correction_tool``, ``fourier_tool``), modeled by
  their documented directory contracts.

Scratch files (``tool.cfg``, ``*.max`` parts) are recognized and
excluded — they are private to a process and never part of the
declared interface.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.model import ERROR, WARNING, Finding
from repro.core.registry import PROCESSES

#: Artifact-name constant (as imported from repro.core.artifacts) ->
#: registry identity.
CONSTANT_IDENTITY: dict[str, str] = {
    "FLAGS": "flags",
    "FLAGS2": "flags2",
    "V1_LIST": "v1_list",
    "FILTER_PARAMS": "filter_params",
    "FILTER_CORRECTED": "filter_corrected",
    "MAXVALS": "maxvals",
    "MAXVALS2": "maxvals2",
    "ACCGRAPH_META": "acc_meta",
    "FOURIER_META": "fourier_meta",
    "RESPONSE_META": "response_meta",
    "FOURIERGRAPH_META": "fouriergraph_meta",
    "RESPONSEGRAPH_META": "responsegraph_meta",
}

#: Literal file name -> registry identity (for string-constant access).
NAME_IDENTITY: dict[str, str] = {
    "flags.dat": "flags",
    "flags2.dat": "flags2",
    "v1files.lst": "v1_list",
    "filter.par": "filter_params",
    "filter_corrected.par": "filter_corrected",
    "maxvals.dat": "maxvals",
    "maxvals2.dat": "maxvals2",
    "accgraph.meta": "acc_meta",
    "fourier.meta": "fourier_meta",
    "response.meta": "response_meta",
    "fouriergraph.meta": "fouriergraph_meta",
    "responsegraph.meta": "responsegraph_meta",
}

#: Workspace accessor method -> identity of the path it names.
ACCESSOR_IDENTITY: dict[str, str] = {
    "raw_v1": "raw_v1",
    "component_v1": "comp_v1",
    "component_v2": "comp_v2",
    "component_f": "comp_f",
    "component_r": "comp_r",
    "gem": "gem",
    "plot_accelerograph": "plot_acc",
    "plot_fourier": "plot_fourier",
    "plot_response": "plot_response",
}

#: I/O function -> (direction, intrinsic identity or None).  The
#: intrinsic identity applies when the path argument is dynamic: a
#: ``read_v2`` of *any* path consumes a comp_v2-format artifact.
IO_FUNCS: dict[str, tuple[str, str | None]] = {
    "read_v1": ("read", None),
    "read_component_v1": ("read", "comp_v1"),
    "write_component_v1": ("write", "comp_v1"),
    "read_v2": ("read", "comp_v2"),
    "write_v2": ("write", "comp_v2"),
    "read_fourier": ("read", "comp_f"),
    "write_fourier": ("write", "comp_f"),
    "read_response": ("read", "comp_r"),
    "write_response": ("write", "comp_r"),
    "write_gem": ("write", "gem"),
    "read_filelist": ("read", None),
    "write_filelist": ("write", None),
    "read_metadata": ("read", None),
    "write_metadata": ("write", None),
    "read_filter_params": ("read", None),
    "write_filter_params": ("write", None),
    "require": ("read", None),
    "plot_accelerograph": ("write", "plot_acc"),
    "plot_fourier_spectrum": ("write", "plot_fourier"),
    "plot_response_spectrum": ("write", "plot_response"),
}

#: The legacy tools' directory contracts (their code is out of scope
#: for the AST pass, exactly as the original binaries were for the
#: paper): what each instance reads and writes inside its folder.
#: The parameter-file read of the correction tool is charged through
#: the explicit ``require(...)`` guard its callers perform.
TOOL_EFFECTS: dict[str, list[tuple[str, str]]] = {
    "correction_tool": [("read", "comp_v1"), ("write", "comp_v2")],
    "fourier_tool": [("read", "comp_v2"), ("write", "comp_f")],
}

#: Names that denote process-private scratch files, never declared.
TRANSIENT_CONSTANTS = {"TOOL_CONFIG"}
TRANSIENT_SUFFIXES = (".max", ".max1", ".max2")
TRANSIENT_NAMES = {"tool.cfg"}

_MODULE_RE = re.compile(r"^p(\d\d)_.*\.py$")

# Resolution results: ("id", identity) | ("param", name) |
# ("unknown", description) | None meaning "scratch file, not tracked".
_Resolved = tuple[str, str] | None


@dataclass
class FunctionInfo:
    """One top-level function: its AST, parameters and home module."""

    name: str
    pid: int
    node: ast.FunctionDef
    params: list[str]


@dataclass
class AccessSummary:
    """Accesses attributable to one process root."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    unknowns: list[str] = field(default_factory=list)


def default_processes_dir() -> Path:
    """The in-tree ``core/processes`` package directory."""
    import repro.core.processes as pkg

    return Path(pkg.__file__).parent


def _function_params(node: ast.FunctionDef) -> list[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    return names


class _PackageIndex:
    """All analyzable functions of a processes directory, by name."""

    def __init__(self, processes_dir: Path) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.module_constants: dict[int, dict[str, str]] = {}
        self.pids: list[int] = []
        for path in sorted(processes_dir.iterdir()):
            match = _MODULE_RE.match(path.name)
            if not match:
                continue
            pid = int(match.group(1))
            self.pids.append(pid)
            tree = ast.parse(path.read_text(), filename=str(path))
            constants: dict[str, str] = {}
            for node in tree.body:
                if isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        name = alias.asname or alias.name
                        if alias.name in CONSTANT_IDENTITY:
                            constants[name] = CONSTANT_IDENTITY[alias.name]
                elif isinstance(node, ast.FunctionDef):
                    self.functions[node.name] = FunctionInfo(
                        name=node.name,
                        pid=pid,
                        node=node,
                        params=_function_params(node),
                    )
            self.module_constants[pid] = constants


class _Extractor:
    """Summarizes accesses per function and propagates over calls."""

    def __init__(self, index: _PackageIndex) -> None:
        self.index = index
        self._memo: dict[str, list[tuple[str, _Resolved]]] = {}
        self._in_progress: set[str] = set()

    # -- name / path resolution ---------------------------------------

    def _resolve_name(self, node: ast.expr | None, info: FunctionInfo) -> _Resolved:
        """Resolve an expression holding an artifact *file name*."""
        if node is None:
            return ("unknown", "missing name argument")
        if isinstance(node, ast.Name):
            constants = self.index.module_constants.get(info.pid, {})
            if node.id in constants:
                return ("id", constants[node.id])
            if node.id in TRANSIENT_CONSTANTS:
                return None
            if node.id in info.params:
                return ("param", node.id)
            return ("unknown", f"name bound to {node.id!r}")
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in NAME_IDENTITY:
                return ("id", NAME_IDENTITY[node.value])
            if node.value in TRANSIENT_NAMES or node.value.endswith(TRANSIENT_SUFFIXES):
                return None
            return ("unknown", f"literal {node.value!r}")
        if isinstance(node, ast.JoinedStr):
            # f-strings name per-unit scratch files (e.g. _wf parts).
            return ("unknown", "f-string file name")
        return ("unknown", ast.dump(node)[:60])

    def _resolve_path(self, node: ast.expr | None, info: FunctionInfo) -> _Resolved:
        """Resolve an expression holding an artifact *path*."""
        if node is None:
            return ("unknown", "missing path argument")
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "work":
                return self._resolve_name(node.args[0] if node.args else None, info)
            if attr in ACCESSOR_IDENTITY:
                return ("id", ACCESSOR_IDENTITY[attr])
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return self._resolve_name(node.right, info)
        if isinstance(node, ast.Name) and node.id in info.params:
            return ("param", node.id)
        return ("unknown", "dynamic path expression")

    # -- call-site substitution ---------------------------------------

    def _substitution(
        self, call: ast.Call, callee: FunctionInfo, caller: FunctionInfo, skip: int = 0
    ) -> dict[str, _Resolved]:
        """Map the callee's parameters to caller-side name resolutions."""
        mapping: dict[str, _Resolved] = {}
        for position, arg in enumerate(call.args[skip:], start=skip):
            if position < len(callee.params):
                mapping[callee.params[position]] = self._resolve_name(arg, caller)
        for keyword in call.keywords:
            if keyword.arg is not None:
                mapping[keyword.arg] = self._resolve_name(keyword.value, caller)
        return mapping

    # -- summaries ------------------------------------------------------

    def summary(self, name: str) -> list[tuple[str, _Resolved]]:
        """Accesses of one package function, with parameters symbolic."""
        if name in self._memo:
            return self._memo[name]
        if name in self._in_progress:
            return []  # recursion guard; the package has no cycles
        self._in_progress.add(name)
        info = self.index.functions[name]
        entries: list[tuple[str, _Resolved]] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                entries.extend(self._call_entries(node, info))
        self._in_progress.discard(name)
        self._memo[name] = entries
        return entries

    def _call_entries(
        self, call: ast.Call, info: FunctionInfo
    ) -> list[tuple[str, _Resolved]]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._name_call_entries(call, func.id, info)
        if isinstance(func, ast.Attribute):
            return self._method_call_entries(call, func, info)
        return []

    def _name_call_entries(
        self, call: ast.Call, name: str, info: FunctionInfo
    ) -> list[tuple[str, _Resolved]]:
        if name in IO_FUNCS:
            direction, intrinsic = IO_FUNCS[name]
            resolved = self._resolve_path(call.args[0] if call.args else None, info)
            if resolved is None:
                return []
            if resolved[0] == "id":
                return [(direction, resolved)]
            if intrinsic is not None:
                return [(direction, ("id", intrinsic))]
            return [(direction, resolved)]
        if name in TOOL_EFFECTS:
            return [(direction, ("id", identity)) for direction, identity in TOOL_EFFECTS[name]]
        if name == "merge_max_files":
            out_name = call.args[1] if len(call.args) > 1 else None
            resolved = self._resolve_name(out_name, info)
            return [("write", resolved)] if resolved is not None else []
        if name in ("write_tool_config", "read_tool_config"):
            return []  # scratch tool.cfg only
        if name == "partial" and call.args and isinstance(call.args[0], ast.Name):
            return self._inlined(call, call.args[0].id, info, skip=1)
        if name in self.index.functions:
            return self._inlined(call, name, info, skip=0)
        return []

    def _inlined(
        self, call: ast.Call, callee_name: str, info: FunctionInfo, skip: int
    ) -> list[tuple[str, _Resolved]]:
        if callee_name not in self.index.functions:
            return []
        callee = self.index.functions[callee_name]
        substitution = self._substitution(call, callee, info, skip=skip)
        entries: list[tuple[str, _Resolved]] = []
        for direction, resolved in self.summary(callee_name):
            if resolved is not None and resolved[0] == "param":
                resolved = substitution.get(
                    resolved[1], ("unknown", f"unbound parameter {resolved[1]!r}")
                )
            if resolved is not None:
                entries.append((direction, resolved))
        return entries

    def _method_call_entries(
        self, call: ast.Call, func: ast.Attribute, info: FunctionInfo
    ) -> list[tuple[str, _Resolved]]:
        attr = func.attr
        if attr == "require_input":
            return [("read", ("id", "raw_v1"))]
        if attr == "glob":
            pattern = ""
            if call.args and isinstance(call.args[0], ast.Constant):
                pattern = str(call.args[0].value)
            receiver = func.value
            if (
                isinstance(receiver, ast.Attribute)
                and receiver.attr == "input_dir"
                and pattern.endswith(".v1")
            ):
                return [("read", ("id", "raw_v1"))]
            if pattern.endswith(TRANSIENT_SUFFIXES):
                return []
            return [("read", ("unknown", f"glob({pattern!r})"))]
        if attr in ("write_text", "write_bytes", "touch"):
            resolved = self._resolve_path(func.value, info)
            return [("write", resolved)] if resolved is not None else []
        if attr in ("read_text", "read_bytes"):
            resolved = self._resolve_path(func.value, info)
            return [("read", resolved)] if resolved is not None else []
        if attr in ("unlink", "rename"):
            resolved = self._resolve_path(func.value, info)
            return [("write", resolved)] if resolved is not None else []
        return []


def analyze_processes(processes_dir: Path | None = None) -> dict[int, AccessSummary]:
    """Observed per-process identity access, rooted at each ``run_pXX``."""
    directory = processes_dir or default_processes_dir()
    index = _PackageIndex(directory)
    extractor = _Extractor(index)
    out: dict[int, AccessSummary] = {}
    for pid in index.pids:
        root = f"run_p{pid:02d}"
        summary = AccessSummary()
        if root not in index.functions:
            summary.unknowns.append(f"module has no {root}() entry point")
            out[pid] = summary
            continue
        for direction, resolved in extractor.summary(root):
            if resolved is None:
                continue
            kind, value = resolved
            if kind == "id":
                (summary.reads if direction == "read" else summary.writes).add(value)
            else:
                summary.unknowns.append(f"{direction} of unresolved target ({value})")
        out[pid] = summary
    return out


def conformance_findings(processes_dir: Path | None = None) -> list[Finding]:
    """Diff observed access against the registry declarations."""
    findings: list[Finding] = []
    observed = analyze_processes(processes_dir)
    for pid, summary in sorted(observed.items()):
        if pid not in PROCESSES:
            findings.append(
                Finding("conformance", ERROR, f"module p{pid:02d} has no registry entry")
            )
            continue
        spec = PROCESSES[pid]
        declared_reads = {ref.identity for ref in spec.reads}
        declared_writes = {ref.identity for ref in spec.writes}
        label = spec.label
        for identity in sorted(summary.reads - declared_reads):
            findings.append(
                Finding(
                    "conformance", ERROR,
                    f"reads {identity!r} but the registry does not declare it",
                    process=label,
                )
            )
        for identity in sorted(summary.writes - declared_writes):
            findings.append(
                Finding(
                    "conformance", ERROR,
                    f"writes {identity!r} but the registry does not declare it",
                    process=label,
                )
            )
        for identity in sorted(declared_reads - summary.reads):
            findings.append(
                Finding(
                    "conformance", WARNING,
                    f"declares a read of {identity!r} the code never performs",
                    process=label,
                )
            )
        for identity in sorted(declared_writes - summary.writes):
            findings.append(
                Finding(
                    "conformance", WARNING,
                    f"declares a write of {identity!r} the code never performs",
                    process=label,
                )
            )
        for unknown in summary.unknowns:
            findings.append(
                Finding("conformance", WARNING, f"unresolvable access: {unknown}", process=label)
            )
    for pid in sorted(set(PROCESSES) - set(observed)):
        findings.append(
            Finding(
                "conformance", ERROR,
                f"registry declares P{pid} but no p{pid:02d}_*.py module exists",
            )
        )
    return findings
