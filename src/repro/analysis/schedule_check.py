"""Schedule conformance: re-derive the optimization from declarations.

The paper's §IV eliminates three redundant processes and its Fig. 9
folds the remaining seventeen into eleven barrier stages.  Both of
those results are *derivable* from the registry's versioned read/write
declarations, so this pass derives them independently and fails if the
hand-maintained constants (``REDUNDANT_PROCESSES``,
``OPTIMIZED_ORDER``, ``STAGES``) ever drift from what the declarations
imply.

Two elimination rules reproduce §IV:

- **dead write** — every version the process writes is overwritten by
  a later process before anyone reads it (P6: its plots are replotted
  by P15, unread in between);
- **identical recompute** — the process writes exactly the next
  versions of what one earlier process wrote, from equal resolved
  reads, with no input rewritten in between, so its outputs are
  byte-identical to files that already exist (P12 vs P3, P14 vs P5).
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.model import ERROR, INFO, Finding
from repro.core.dependencies import (
    build_process_graph,
    parallelizable_sets,
    validate_sequential_order,
    validate_stage_plan,
)
from repro.core.registry import (
    LATEST,
    OPTIMIZED_ORDER,
    ORIGINAL_ORDER,
    PROCESSES,
    REDUNDANT_PROCESSES,
)
from repro.core.stages import STAGES, stage_plan


def _resolved_reads(pid: int, versions: dict[str, list[int]]) -> set[tuple[str, int]]:
    """A process's reads with LATEST pinned to the newest version."""
    out = set()
    for ref in PROCESSES[pid].reads:
        present = versions.get(ref.identity, [])
        version = max(present) if (ref.version == LATEST and present) else ref.version
        if ref.version == LATEST and not present:
            version = 0
        out.add((ref.identity, version))
    return out


def derive_redundant(order: tuple[int, ...] = ORIGINAL_ORDER) -> list[int]:
    """Processes the declarations prove removable from ``order``."""
    position = {pid: i for i, pid in enumerate(order)}
    versions: dict[str, list[int]] = defaultdict(list)
    writer: dict[tuple[str, int], int] = {}
    for pid in order:
        for ref in PROCESSES[pid].writes:
            versions[ref.identity].append(ref.version)
            writer[(ref.identity, ref.version)] = pid
    readers: dict[tuple[str, int], list[int]] = defaultdict(list)
    for pid in order:
        for key in _resolved_reads(pid, versions):
            readers[key].append(pid)

    redundant: list[int] = []
    for pid in order:
        writes = {(ref.identity, ref.version) for ref in PROCESSES[pid].writes}
        if not writes:
            continue
        if _is_dead_writer(pid, writes, writer, readers):
            redundant.append(pid)
            continue
        if _is_identical_recompute(pid, writes, position, writer, readers):
            redundant.append(pid)
    return redundant


def _is_dead_writer(
    pid: int,
    writes: set[tuple[str, int]],
    writer: dict[tuple[str, int], int],
    readers: dict[tuple[str, int], list[int]],
) -> bool:
    """Every write is overwritten later and read by no one."""
    for identity, version in writes:
        if readers.get((identity, version)):
            return False
        if (identity, version + 1) not in writer:
            return False
    return True


def _is_identical_recompute(
    pid: int,
    writes: set[tuple[str, int]],
    position: dict[int, int],
    writer: dict[tuple[str, int], int],
    readers: dict[tuple[str, int], list[int]],
) -> bool:
    """The process reproduces, byte-identically, what an earlier single
    process already wrote (so its outputs already exist on disk)."""
    previous = {(identity, version - 1) for identity, version in writes}
    producers = {writer.get(key) for key in previous}
    if len(producers) != 1 or None in producers:
        return False
    (producer,) = producers
    if producer is None or position[producer] >= position[pid]:
        return False
    versions_all: dict[str, list[int]] = defaultdict(list)
    for key in writer:
        versions_all[key[0]].append(key[1])
    if _resolved_reads(pid, versions_all) != _resolved_reads(producer, versions_all):
        return False
    # No input of the pair may be rewritten between the two runs,
    # otherwise the recompute would see different bytes.
    for identity, _version in _resolved_reads(pid, versions_all):
        for version in versions_all.get(identity, []):
            rewriter = writer[(identity, version)]
            if position[producer] < position[rewriter] < position[pid]:
                return False
    return True


def schedule_findings() -> list[Finding]:
    """Check the hand-maintained schedule constants against derivation."""
    findings: list[Finding] = []

    derived = sorted(derive_redundant())
    if derived != sorted(REDUNDANT_PROCESSES):
        findings.append(
            Finding(
                "schedule", ERROR,
                f"declarations imply redundant processes {derived}, but "
                f"REDUNDANT_PROCESSES is {sorted(REDUNDANT_PROCESSES)}",
            )
        )
    expected_optimized = tuple(p for p in ORIGINAL_ORDER if p not in derived)
    if OPTIMIZED_ORDER != expected_optimized:
        findings.append(
            Finding(
                "schedule", ERROR,
                f"OPTIMIZED_ORDER {OPTIMIZED_ORDER} != derived {expected_optimized}",
            )
        )

    for name, order in (("ORIGINAL_ORDER", ORIGINAL_ORDER), ("OPTIMIZED_ORDER", OPTIMIZED_ORDER)):
        try:
            validate_sequential_order(order)
        except Exception as exc:  # StageOrderError / DependencyError
            findings.append(Finding("schedule", ERROR, f"{name} is invalid: {exc}"))

    stage_members = [pid for stage in STAGES for pid in stage.processes]
    if sorted(stage_members) != sorted(OPTIMIZED_ORDER):
        findings.append(
            Finding(
                "schedule", ERROR,
                f"stage plan covers {sorted(stage_members)} but the optimized "
                f"order is {sorted(OPTIMIZED_ORDER)}",
            )
        )
    try:
        validate_stage_plan(stage_plan())
    except Exception as exc:
        findings.append(Finding("schedule", ERROR, f"stage plan is invalid: {exc}"))

    findings.extend(_merge_opportunities())
    return findings


def _merge_opportunities() -> list[Finding]:
    """Advisory: consecutive stages with no edges between them could be
    fused into one barrier region (latency, not correctness)."""
    findings: list[Finding] = []
    try:
        graph = build_process_graph(list(OPTIMIZED_ORDER))
    except Exception:
        return findings  # already reported as an order error
    layers = parallelizable_sets(OPTIMIZED_ORDER)
    if len(layers) < len(STAGES):
        findings.append(
            Finding(
                "schedule", INFO,
                f"dependency layering needs only {len(layers)} barrier layers; "
                f"the plan uses {len(STAGES)} stages (faithful to Fig. 9)",
            )
        )
    for earlier, later in zip(STAGES, STAGES[1:]):
        crossing = [
            (a, b)
            for a in earlier.processes
            for b in later.processes
            if graph.has_edge(a, b)
        ]
        if not crossing:
            findings.append(
                Finding(
                    "schedule", INFO,
                    f"stages {earlier.name} and {later.name} share no direct "
                    "dependency edge and could start concurrently",
                )
            )
    return findings
