"""Benchmark workloads.

A workload is an event's file-count/point-count structure.  Model-mode
experiments only need the structure; measured-mode experiments
additionally materialize scaled-down synthetic datasets on disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.synth.dataset import DatasetManifest, generate_event_dataset
from repro.synth.events import PAPER_EVENTS, EventSpec


@dataclass(frozen=True)
class EventWorkload:
    """Structure of one event's processing workload."""

    event_id: str
    label: str
    file_points: tuple[int, ...]

    @property
    def n_files(self) -> int:
        """Number of V1 input files (stations)."""
        return len(self.file_points)

    @property
    def total_points(self) -> int:
        """Total data points across all files."""
        return sum(self.file_points)


def workload_for(event: EventSpec) -> EventWorkload:
    """Workload structure of one catalog event."""
    return EventWorkload(
        event_id=event.event_id,
        label=event.date,
        file_points=tuple(event.file_points()),
    )


def paper_workloads() -> list[EventWorkload]:
    """The six Table I workloads, smallest first."""
    return [workload_for(event) for event in PAPER_EVENTS]


def scaled_workload(event: EventSpec, scale: float, *, min_points: int = 400) -> EventWorkload:
    """A proportionally shrunken workload for wall-clock measurement.

    Keeps the event's file count and per-file point *ratios* while
    dividing sizes by ``1/scale``, so measured runs exercise the same
    loop structure in tractable time on small machines.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    points = [max(min_points, int(round(p * scale))) for p in event.file_points()]
    return EventWorkload(
        event_id=f"{event.event_id}-x{scale:g}",
        label=f"{event.date} (x{scale:g})",
        file_points=tuple(points),
    )


def materialize(event: EventSpec, workload: EventWorkload, directory: Path | str) -> DatasetManifest:
    """Write a workload's synthetic V1 dataset to disk."""
    return generate_event_dataset(
        event, directory, points_override=list(workload.file_points)
    )
