"""Experiment E1 — Table I: per-event execution times and speedups.

Model mode: the calibrated cost model replayed on the simulated
i5-12450H for all six events and all four implementations, compared
against the paper's published row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.paper_data import PAPER_TABLE1, PaperEventRow, paper_row
from repro.bench.report import format_table, relative_error
from repro.bench.taskgraphs import simulate_implementation
from repro.bench.workloads import EventWorkload, paper_workloads
from repro.parallel.simulate import PAPER_MACHINE, SimulatedMachine

IMPLEMENTATIONS = ("seq-original", "seq-optimized", "partial-parallel", "full-parallel")


@dataclass(frozen=True)
class Table1Row:
    """One reproduced Table I row (all times seconds)."""

    event_id: str
    label: str
    v1_files: int
    data_points: int
    seq_original_s: float
    seq_optimized_s: float
    partial_parallel_s: float
    full_parallel_s: float

    @property
    def speedup(self) -> float:
        """End-to-end speedup (seq original / fully parallel)."""
        return self.seq_original_s / self.full_parallel_s

    def paper(self) -> PaperEventRow:
        """The published row this one reproduces."""
        return paper_row(self.event_id)


def table1_model(
    model: CostModel = DEFAULT_COST_MODEL,
    machine: SimulatedMachine = PAPER_MACHINE,
    workloads: list[EventWorkload] | None = None,
) -> list[Table1Row]:
    """Reproduce Table I in model mode (all six events)."""
    rows = []
    for workload in workloads if workloads is not None else paper_workloads():
        times = {
            impl: simulate_implementation(impl, workload, model, machine).makespan_s
            for impl in IMPLEMENTATIONS
        }
        rows.append(
            Table1Row(
                event_id=workload.event_id,
                label=workload.label,
                v1_files=workload.n_files,
                data_points=workload.total_points,
                seq_original_s=times["seq-original"],
                seq_optimized_s=times["seq-optimized"],
                partial_parallel_s=times["partial-parallel"],
                full_parallel_s=times["full-parallel"],
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Paper-style rendering with the published values alongside."""
    headers = (
        "Event", "Files", "Points",
        "SeqOri", "(paper)", "SeqOpt", "(paper)",
        "PartPar", "(paper)", "FullPar", "(paper)",
        "SpeedUp", "(paper)",
    )
    body = []
    for row in rows:
        p = row.paper()
        body.append(
            (
                row.label, row.v1_files, row.data_points,
                row.seq_original_s, p.seq_original_s,
                row.seq_optimized_s, p.seq_optimized_s,
                row.partial_parallel_s, p.partial_parallel_s,
                row.full_parallel_s, p.full_parallel_s,
                f"{row.speedup:.2f}x", f"{p.speedup:.2f}x",
            )
        )
    return format_table(headers, body)


def max_relative_error(rows: list[Table1Row]) -> float:
    """Worst |relative error| across every cell of the table."""
    worst = 0.0
    for row in rows:
        p = row.paper()
        for ours, theirs in (
            (row.seq_original_s, p.seq_original_s),
            (row.seq_optimized_s, p.seq_optimized_s),
            (row.partial_parallel_s, p.partial_parallel_s),
            (row.full_parallel_s, p.full_parallel_s),
            (row.speedup, p.speedup),
        ):
            worst = max(worst, abs(relative_error(ours, theirs)))
    return worst
