"""Experiment E4 — Fig. 13: speedup and throughput vs problem size.

For each event (ascending total data points): the end-to-end speedup
of the fully-parallelized implementation (the paper reports 2.4x to
2.9x, growing quasi-logarithmically — Amdahl's effect) and the
throughput in data points per second (sequential ~800, parallel
1,700–2,300).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.report import format_table
from repro.bench.table1 import Table1Row, table1_model
from repro.parallel.simulate import PAPER_MACHINE, SimulatedMachine


@dataclass(frozen=True)
class Figure13Row:
    """One x-position of Fig. 13."""

    event_id: str
    label: str
    data_points: int
    speedup: float
    points_per_second_parallel: float
    points_per_second_sequential: float


def figure13_model(
    model: CostModel = DEFAULT_COST_MODEL,
    machine: SimulatedMachine = PAPER_MACHINE,
) -> list[Figure13Row]:
    """Both series of Fig. 13, ascending problem size (model mode)."""
    rows = sorted(table1_model(model, machine), key=lambda r: r.data_points)
    return [
        Figure13Row(
            event_id=row.event_id,
            label=row.label,
            data_points=row.data_points,
            speedup=row.speedup,
            points_per_second_parallel=row.data_points / row.full_parallel_s,
            points_per_second_sequential=row.data_points / row.seq_original_s,
        )
        for row in rows
    ]


def render_figure13(rows: list[Figure13Row]) -> str:
    """Tabular rendering of both series."""
    headers = ("Event", "Points", "Speedup", "Par pts/s", "Seq pts/s")
    body = [
        (
            r.label,
            r.data_points,
            f"{r.speedup:.2f}x",
            f"{r.points_per_second_parallel:.0f}",
            f"{r.points_per_second_sequential:.0f}",
        )
        for r in rows
    ]
    return format_table(headers, body)


def speedup_is_increasing(rows: list[Figure13Row]) -> bool:
    """Fig. 13's qualitative claim: speedup grows with problem size."""
    speedups = [r.speedup for r in rows]
    return all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
