"""Calibrated per-process cost model.

Each process's sequential cost on the paper's platform is modeled as

    cost(event) = fixed + per_file * n_files + per_point * total_points

— linear in total data points, as the paper observes ("execution time
is linearly proportional to the total amount of data points", §VII-C),
with a small per-station term for file handling and plotting setup.

**Calibration protocol** (DESIGN.md §6): the coefficients below are
anchored ONLY on the largest event (19 files / 384k points): its
sequential-original total of 483.7 s, the stage IX share of 57.2%, and
the 57.7 s cost of the three redundant processes.  The other five
events of Table I and every parallel number are *predictions*,
compared against the paper in EXPERIMENTS.md.

The resource fractions (``io``/``mem``) feed the simulated machine's
contention model; they are set from each process's character (file
shuffling vs. spectral math vs. plotting), not fitted per event.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.workloads import EventWorkload
from repro.core.registry import PROCESSES
from repro.errors import CalibrationError


@dataclass(frozen=True)
class ProcessCost:
    """Cost coefficients and resource profile of one process."""

    fixed_s: float
    per_file_s: float
    per_point_s: float
    io: float
    mem: float

    def cost(self, n_files: int, points: int) -> float:
        """Sequential cost for an event of the given size."""
        return self.fixed_s + self.per_file_s * n_files + self.per_point_s * points


def _per_point(anchor_cost: float, fixed: float, per_file: float) -> float:
    """Back out the per-point slope from the anchor event's cost."""
    remainder = anchor_cost - fixed - per_file * _ANCHOR_FILES
    if remainder < -1e-3:
        raise CalibrationError("anchor cost smaller than its fixed terms")
    return max(remainder, 0.0) / _ANCHOR_POINTS

# The calibration anchor: the largest Table I event.
_ANCHOR_FILES = 19
_ANCHOR_POINTS = 384_000

# Anchor-event sequential costs per process (seconds).  Chosen so that
# (a) they sum to the published 483.7 s, (b) stage IX (P16) carries the
# published 57.2% share (276.7 s), and (c) the redundant processes
# P6 + P12 + P14 carry the published 57.7 s (483.7 - 426.0).
_ANCHOR_COSTS: dict[int, float] = {
    0: 0.05,
    1: 1.50,
    2: 0.30,
    3: 20.00,
    4: 22.00,
    5: 1.00,
    6: 32.00,   # redundant plot of the default-corrected records
    7: 20.00,
    8: 0.50,
    9: 12.00,
    10: 4.00,
    11: 0.002,
    12: 20.00,  # redundant re-split, same cost shape as P3
    13: 22.00,
    14: 5.70,   # redundant metadata rewrite
    15: 24.00,
    16: 276.70,  # 57.2% of 483.7
    17: 0.50,
    18: 14.00,
    19: 7.448,
}

# Fixed and per-file parts (seconds); the per-point slope absorbs the
# rest of each anchor cost.
_SHAPE: dict[int, tuple[float, float]] = {
    #    fixed, per_file
    0: (0.05, 0.0),
    1: (0.10, 0.0737),
    2: (0.30, 0.0),
    3: (0.20, 0.10),
    4: (0.20, 0.10),
    5: (0.40, 0.0316),
    6: (0.30, 0.40),
    7: (0.20, 0.10),
    8: (0.20, 0.0158),
    9: (0.30, 0.30),
    10: (0.10, 0.05),
    11: (0.002, 0.0),
    12: (0.20, 0.10),
    13: (0.20, 0.10),
    14: (0.50, 0.0632),
    15: (0.30, 0.40),
    16: (0.50, 0.20),
    17: (0.20, 0.0158),
    18: (0.30, 0.30),
    19: (0.20, 0.15),
}

# Resource profiles: how each process's time divides between disk I/O,
# memory bandwidth and pure compute.
_RESOURCES: dict[int, tuple[float, float]] = {
    #    io,  mem
    0: (0.50, 0.0),
    1: (0.85, 0.0),
    2: (0.50, 0.0),
    3: (0.75, 0.10),
    4: (0.30, 0.30),
    5: (0.60, 0.0),
    6: (0.50, 0.20),
    7: (0.35, 0.30),
    8: (0.60, 0.0),
    9: (0.50, 0.20),
    10: (0.20, 0.20),
    11: (0.50, 0.0),
    12: (0.75, 0.10),
    13: (0.30, 0.30),
    14: (0.60, 0.0),
    15: (0.50, 0.20),
    16: (0.15, 0.55),
    17: (0.60, 0.0),
    18: (0.50, 0.20),
    19: (0.90, 0.05),
}


@dataclass(frozen=True)
class Overheads:
    """Parallel-runtime overheads charged by the task-graph builder.

    All values are physically motivated constants, not per-event fits:
    OpenMP task spawn latency, loop-chunk dispatch, temp-folder
    creation plus per-point file staging (stages IV/V/VIII copy every
    input in and every output back out), and the sequential EXE copy
    the paper performs per folder "to avoid races".
    """

    task_spawn_s: float = 0.004
    loop_item_s: float = 0.002
    tool_instance_fixed_s: float = 0.25
    tool_staging_per_point_s: float = 1.2e-5
    exe_move_s: float = 0.05
    #: Serial driver work after each *parallel* stage: OpenMP region
    #: teardown, metadata re-reads and file-cache flushing before the
    #: next stage may start.  This is the second calibration knob
    #: (see EXPERIMENTS.md): the paper's per-stage times and its
    #: Table I totals differ by a residual that is absent from every
    #: stage bar, grows with data volume, and appears once per
    #: parallel stage (5 in the partial implementation, 10 in the
    #: full one).
    driver_fixed_s: float = 0.35
    driver_per_point_s: float = 9.0e-6

    def driver_cost(self, points: int) -> float:
        """Per-parallel-stage serial driver cost for an event size."""
        return self.driver_fixed_s + self.driver_per_point_s * points


class CostModel:
    """Maps (process, workload) to sequential cost and resource profile."""

    def __init__(
        self,
        anchor_costs: dict[int, float] | None = None,
        shape: dict[int, tuple[float, float]] | None = None,
        resources: dict[int, tuple[float, float]] | None = None,
        overheads: Overheads | None = None,
    ) -> None:
        anchor = anchor_costs or _ANCHOR_COSTS
        shape = shape or _SHAPE
        resources = resources or _RESOURCES
        self.overheads = overheads or Overheads()
        self._costs: dict[int, ProcessCost] = {}
        for pid in PROCESSES:
            if pid not in anchor or pid not in shape or pid not in resources:
                raise CalibrationError(f"cost model missing parameters for P{pid}")
            fixed, per_file = shape[pid]
            io, mem = resources[pid]
            self._costs[pid] = ProcessCost(
                fixed_s=fixed,
                per_file_s=per_file,
                per_point_s=_per_point(anchor[pid], fixed, per_file),
                io=io,
                mem=mem,
            )

    def process(self, pid: int) -> ProcessCost:
        """Coefficients of one process."""
        return self._costs[pid]

    def cost(self, pid: int, workload: EventWorkload) -> float:
        """Sequential cost of one process for a workload."""
        return self._costs[pid].cost(workload.n_files, workload.total_points)

    def file_cost_shares(self, pid: int, workload: EventWorkload) -> list[float]:
        """Per-file slices of a process's cost (for loop task graphs).

        The per-point part divides proportionally to each file's data
        points — the pipeline's natural load imbalance; fixed and
        per-file parts divide evenly.
        """
        pc = self._costs[pid]
        n = workload.n_files
        even = (pc.fixed_s + pc.per_file_s * n) / n
        return [even + pc.per_point_s * pts for pts in workload.file_points]

    def sequential_total(self, pids: tuple[int, ...], workload: EventWorkload) -> float:
        """Sum of process costs — the sequential execution time."""
        return sum(self.cost(pid, workload) for pid in pids)


#: The calibrated model used by every model-mode benchmark.
DEFAULT_COST_MODEL = CostModel()
