"""Experiment E2/E5 — Fig. 11: per-stage times and speedups.

Sequential-original vs fully-parallelized per-stage execution times on
the largest event (19 files / 384k points), plus the per-stage
speedups quoted in §VII-B.  Stages I and II are reported together as
"I-II", matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.bench.paper_data import PAPER_STAGE_SPEEDUPS, PAPER_STAGE_IX_SHARE
from repro.bench.report import format_table
from repro.bench.taskgraphs import simulate_implementation
from repro.bench.workloads import EventWorkload, paper_workloads
from repro.core.stages import STAGES
from repro.parallel.simulate import PAPER_MACHINE, SimulatedMachine


@dataclass(frozen=True)
class StageRow:
    """One bar pair of Fig. 11."""

    stage: str
    sequential_s: float
    parallel_s: float
    paper_speedup: float | None

    @property
    def speedup(self) -> float:
        """Per-stage speedup (sequential / parallel elapsed)."""
        return self.sequential_s / self.parallel_s if self.parallel_s > 0 else 1.0


def _merge_i_ii(durations: dict[str, float]) -> dict[str, float]:
    merged = dict(durations)
    merged["I-II"] = merged.pop("I", 0.0) + merged.pop("II", 0.0)
    return merged


def figure11_model(
    model: CostModel = DEFAULT_COST_MODEL,
    machine: SimulatedMachine = PAPER_MACHINE,
    workload: EventWorkload | None = None,
) -> list[StageRow]:
    """Per-stage seq-vs-full times for the largest event, model mode.

    Sequential per-stage time is the sum of the stage's process costs;
    parallel per-stage time is the stage's elapsed span in the
    simulated fully-parallel schedule.
    """
    if workload is None:
        workload = paper_workloads()[-1]
    seq_durations = {
        stage.name: sum(model.cost(pid, workload) for pid in stage.processes)
        for stage in STAGES
    }
    full = simulate_implementation("full-parallel", workload, model, machine)
    par_durations = full.stage_durations()
    seq_m = _merge_i_ii(seq_durations)
    par_m = _merge_i_ii(par_durations)
    rows = []
    for name in ("I-II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI"):
        rows.append(
            StageRow(
                stage=name,
                sequential_s=seq_m.get(name, 0.0),
                parallel_s=par_m.get(name, 0.0),
                paper_speedup=PAPER_STAGE_SPEEDUPS.get(name),
            )
        )
    return rows


def stage_ix_share(rows: list[StageRow], seq_original_total: float) -> float:
    """Stage IX's share of the sequential-original total (paper: 57.2%)."""
    ix = next(r for r in rows if r.stage == "IX")
    return ix.sequential_s / seq_original_total


def render_figure11(rows: list[StageRow]) -> str:
    """Tabular rendering of the figure's bar pairs."""
    headers = ("Stage", "Seq (s)", "FullPar (s)", "Speedup", "Paper")
    body = [
        (
            r.stage,
            r.sequential_s,
            r.parallel_s,
            f"{r.speedup:.2f}x",
            f"{r.paper_speedup:.2f}x" if r.paper_speedup else "-",
        )
        for r in rows
    ]
    return format_table(headers, body)


__all__ = [
    "StageRow",
    "figure11_model",
    "stage_ix_share",
    "render_figure11",
    "PAPER_STAGE_IX_SHARE",
]
