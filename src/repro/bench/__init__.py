"""Benchmark harness: regenerates every evaluation artifact of the paper.

Two modes exist for every experiment:

- **model mode** — per-process costs from the calibrated cost model
  (:mod:`repro.bench.costmodel`, anchored only on the largest event's
  published per-stage data), replayed on the simulated i5-12450H
  (:mod:`repro.parallel.simulate`).  This reproduces the paper's
  numbers on hardware with any core count — including this 1-core
  container.
- **measured mode** — real wall-clock runs of the Python pipeline on
  scaled-down synthetic events (:mod:`repro.bench.harness`), which
  documents what the library itself does on the present machine.

Experiment index (see DESIGN.md §5): Table I (:mod:`table1`), Fig. 11
(:mod:`figure11`), Fig. 12 (:mod:`figure12`), Fig. 13 (:mod:`figure13`)
and the ablation studies of §VIII (:mod:`ablation`).
"""

from repro.bench.paper_data import (
    PAPER_TABLE1,
    PAPER_STAGE_SPEEDUPS,
    PaperEventRow,
)
from repro.bench.costmodel import CostModel, Overheads, DEFAULT_COST_MODEL
from repro.bench.workloads import EventWorkload, paper_workloads, scaled_workload
from repro.bench.taskgraphs import build_sim_tasks, simulate_implementation
from repro.bench.table1 import table1_model, Table1Row
from repro.bench.figure11 import figure11_model, StageRow
from repro.bench.figure12 import figure12_model
from repro.bench.figure13 import figure13_model, Figure13Row
from repro.bench.harness import measure_implementations, MeasuredRow
from repro.bench.report import format_table, comparison_table

__all__ = [
    "PAPER_TABLE1",
    "PAPER_STAGE_SPEEDUPS",
    "PaperEventRow",
    "CostModel",
    "Overheads",
    "DEFAULT_COST_MODEL",
    "EventWorkload",
    "paper_workloads",
    "scaled_workload",
    "build_sim_tasks",
    "simulate_implementation",
    "table1_model",
    "Table1Row",
    "figure11_model",
    "StageRow",
    "figure12_model",
    "figure13_model",
    "Figure13Row",
    "measure_implementations",
    "MeasuredRow",
    "format_table",
    "comparison_table",
]
